//! CRC-8 / CRC-16 / CRC-32 over fixed-size packets (paper Table 4:
//! 128-byte packets, polynomial division workloads from Hacker's Delight).
//!
//! **Reference**: bitwise and table-driven implementations of plain
//! (init = 0, non-reflected, no final XOR) CRCs with the standard
//! polynomials 0x07 (CRC-8), 0x1021 (CRC-16/CCITT), 0x04C11DB7 (CRC-32).
//!
//! **pLUTo mapping**: CRC is linear over GF(2), so the CRC of a packet is
//! the XOR of the independent contributions of each byte position:
//! `crc(M) = ⊕_i T_i[M[i]]`, where `T_i` is a 256-entry LUT giving byte
//! `M[i]`'s contribution from position `i`. pLUTo queries `T_i` for *all
//! packets at once* (one slot per packet) and folds the contributions with
//! nibble-wise XOR LUT queries — turning the serial per-byte dependency
//! into `packet_len` bulk queries. The serial remainder the paper mentions
//! (§8.2) is the per-position loop itself.

use crate::wide::Planes;
use pluto_core::lut::catalog;
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// Width-generic plain CRC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcSpec {
    /// CRC width in bits (8, 16, or 32).
    pub width: u32,
    /// Generator polynomial (without the implicit leading 1).
    pub poly: u64,
}

impl CrcSpec {
    /// CRC-8 (poly 0x07).
    pub const CRC8: CrcSpec = CrcSpec {
        width: 8,
        poly: 0x07,
    };
    /// CRC-16/CCITT (poly 0x1021).
    pub const CRC16: CrcSpec = CrcSpec {
        width: 16,
        poly: 0x1021,
    };
    /// CRC-32 (poly 0x04C11DB7, non-reflected).
    pub const CRC32: CrcSpec = CrcSpec {
        width: 32,
        poly: 0x04C1_1DB7,
    };

    fn mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    fn top_bit(&self) -> u64 {
        1u64 << (self.width - 1)
    }
}

/// Bitwise reference CRC of `data`.
pub fn crc_bitwise(spec: CrcSpec, data: &[u8]) -> u64 {
    let mut crc = 0u64;
    for &byte in data {
        crc ^= (byte as u64) << (spec.width - 8);
        for _ in 0..8 {
            crc = if crc & spec.top_bit() != 0 {
                ((crc << 1) ^ spec.poly) & spec.mask()
            } else {
                (crc << 1) & spec.mask()
            };
        }
    }
    crc
}

/// Builds the classic 256-entry byte-update table.
pub fn crc_table(spec: CrcSpec) -> Vec<u64> {
    (0..256u64).map(|b| crc_bitwise(spec, &[b as u8])).collect()
}

/// Table-driven reference CRC (the CPU baseline kernel).
pub fn crc_table_driven(spec: CrcSpec, table: &[u64], data: &[u8]) -> u64 {
    let mut crc = 0u64;
    for &byte in data {
        let idx = ((crc >> (spec.width - 8)) ^ byte as u64) & 0xFF;
        crc = ((crc << 8) ^ table[idx as usize]) & spec.mask();
    }
    crc
}

/// Contribution LUT of byte position `i` in an `len`-byte packet:
/// `T_i[b] = crc(b · x^{8(len−1−i)})`, i.e. the CRC of `b` followed by
/// `len−1−i` zero bytes.
pub fn contribution_table(spec: CrcSpec, len: usize, i: usize) -> Vec<u64> {
    let zeros = len - 1 - i;
    (0..256u64)
        .map(|b| {
            let mut msg = vec![b as u8];
            msg.extend(std::iter::repeat(0u8).take(zeros));
            crc_bitwise(spec, &msg)
        })
        .collect()
}

/// Computes the CRC of every packet simultaneously on `machine`.
///
/// All packets must share one length. Returns one CRC per packet.
///
/// # Errors
/// Propagates machine errors; fails on empty or ragged packet sets.
pub fn crc_pluto(
    machine: &mut PlutoMachine,
    spec: CrcSpec,
    packets: &[Vec<u8>],
) -> Result<Vec<u64>, PlutoError> {
    let Some(len) = packets.first().map(Vec::len) else {
        return Ok(Vec::new());
    };
    if packets.iter().any(|p| p.len() != len) {
        return Err(PlutoError::LayoutMismatch {
            reason: "packets must share one length".into(),
        });
    }
    let limbs = (spec.width / 4) as usize;
    let n = packets.len();
    let xor4 = catalog::xor(4)?;
    // Accumulator planes start at zero.
    let mut acc = Planes {
        planes: vec![vec![0u64; n]; limbs],
    };
    // One staging buffer for every byte plane (CRC-32 over 100-byte
    // packets reuses it 100 times instead of reallocating).
    let mut bytes: Vec<u64> = Vec::with_capacity(n);
    for i in 0..len {
        // Byte i of every packet, as one bulk query input vector.
        bytes.clear();
        bytes.extend(packets.iter().map(|p| p[i] as u64));
        let table = contribution_table(spec, len, i);
        // One nibble-extraction LUT query per plane of the contribution.
        let mut contrib_planes = Vec::with_capacity(limbs);
        for l in 0..limbs {
            let lut = Lut::from_fn(format!("crc{}_pos{}_n{}", spec.width, i, l), 8, 4, |b| {
                (table[b as usize] >> (4 * l)) & 0xF
            })?;
            contrib_planes.push(machine.apply(&lut, &bytes)?.values);
        }
        // Fold into the accumulator with nibble XORs.
        for (acc_plane, contrib) in acc.planes.iter_mut().zip(&contrib_planes) {
            let folded = machine.apply2(&xor4, acc_plane, 4, contrib, 4)?.values;
            *acc_plane = folded;
        }
    }
    Ok(acc.to_values())
}

/// Reference CRCs of a packet batch (CPU baseline semantics).
pub fn crc_reference(spec: CrcSpec, packets: &[Vec<u8>]) -> Vec<u64> {
    let table = crc_table(spec);
    packets
        .iter()
        .map(|p| crc_table_driven(spec, &table, p))
        .collect()
}

/// A machine sized for the CRC working set (position-specific LUTs are
/// ephemeral, so the store cache needs one pair per distinct LUT name —
/// bounded by `packet_len × limbs + 1`).
///
/// # Errors
/// Propagates machine construction errors.
pub fn crc_machine(
    design: pluto_core::DesignKind,
    packet_len: usize,
    width: u32,
) -> Result<PlutoMachine, PlutoError> {
    let lut_pairs = packet_len as u16 * (width / 4) as u16 + 2;
    PlutoMachine::new(
        pluto_dram::DramConfig {
            row_bytes: 128,
            burst_bytes: 16,
            banks: 2,
            subarrays_per_bank: (2 * lut_pairs + 4).max(16),
            rows_per_subarray: 512,
            ..pluto_dram::DramConfig::ddr4_2400()
        },
        design,
    )
}

/// Placeholder re-export so `wide` is visibly the shared substrate.
pub use crate::wide::Planes as CrcPlanes;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::DesignKind;

    #[test]
    fn bitwise_crc8_known_value() {
        // CRC-8 (poly 0x07) of "123456789" is 0xF4 — the standard check
        // value for CRC-8/SMBUS (init 0, no reflection, no final xor).
        assert_eq!(crc_bitwise(CrcSpec::CRC8, b"123456789"), 0xF4);
    }

    #[test]
    fn bitwise_crc16_known_value() {
        // CRC-16/XMODEM (poly 0x1021, init 0): check value 0x31C3.
        assert_eq!(crc_bitwise(CrcSpec::CRC16, b"123456789"), 0x31C3);
    }

    #[test]
    fn table_driven_matches_bitwise() {
        for spec in [CrcSpec::CRC8, CrcSpec::CRC16, CrcSpec::CRC32] {
            let table = crc_table(spec);
            for pkt in gen::packets(11, 8, 32) {
                assert_eq!(
                    crc_table_driven(spec, &table, &pkt),
                    crc_bitwise(spec, &pkt),
                    "width {}",
                    spec.width
                );
            }
        }
    }

    #[test]
    fn crc_linearity_decomposition() {
        // The property the pLUTo mapping relies on: the CRC equals the XOR
        // of per-position contributions.
        for spec in [CrcSpec::CRC8, CrcSpec::CRC16, CrcSpec::CRC32] {
            let pkt = &gen::packets(5, 1, 16)[0];
            let folded = (0..pkt.len()).fold(0u64, |acc, i| {
                acc ^ contribution_table(spec, pkt.len(), i)[pkt[i] as usize]
            });
            assert_eq!(folded, crc_bitwise(spec, pkt), "width {}", spec.width);
        }
    }

    #[test]
    fn pluto_crc8_matches_reference() {
        let packets = gen::packets(21, 24, 8);
        let mut m = crc_machine(DesignKind::Gmc, 8, 8).unwrap();
        let out = crc_pluto(&mut m, CrcSpec::CRC8, &packets).unwrap();
        assert_eq!(out, crc_reference(CrcSpec::CRC8, &packets));
        assert!(m.totals().time > pluto_dram::Picos::ZERO);
    }

    #[test]
    fn pluto_crc16_matches_reference() {
        let packets = gen::packets(22, 16, 6);
        let mut m = crc_machine(DesignKind::Bsa, 6, 16).unwrap();
        let out = crc_pluto(&mut m, CrcSpec::CRC16, &packets).unwrap();
        assert_eq!(out, crc_reference(CrcSpec::CRC16, &packets));
    }

    #[test]
    fn pluto_crc32_matches_reference() {
        let packets = gen::packets(23, 10, 4);
        let mut m = crc_machine(DesignKind::Bsa, 4, 32).unwrap();
        let out = crc_pluto(&mut m, CrcSpec::CRC32, &packets).unwrap();
        assert_eq!(out, crc_reference(CrcSpec::CRC32, &packets));
    }

    #[test]
    fn empty_and_ragged_inputs() {
        let mut m = crc_machine(DesignKind::Bsa, 4, 8).unwrap();
        assert!(crc_pluto(&mut m, CrcSpec::CRC8, &[]).unwrap().is_empty());
        let ragged = vec![vec![1u8, 2], vec![3u8]];
        assert!(crc_pluto(&mut m, CrcSpec::CRC8, &ragged).is_err());
    }
}

// --- Pluggable scenario -------------------------------------------------

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::session::{self, Session, Workload};
use sim_support::StdRng;

/// The CRC workload (Table 4) as a pluggable [`Workload`] scenario: one
/// measurement batch of `spec`-CRCs over 128 B packets.
#[derive(Debug)]
pub struct CrcWorkload {
    id: WorkloadId,
    spec: CrcSpec,
    count: usize,
    /// Shards pin their packet slice; `prepare` must not regenerate it.
    pinned: bool,
    packets: Vec<Vec<u8>>,
}

/// Packets per CRC shard: one measurement batch. Shards don't go finer —
/// every shard must load its own copy of the 128 position-specific
/// contribution LUTs (just as an independent subarray group would), so
/// sub-batch shards would be dominated by LUT loading rather than
/// queries.
const CRC_SHARD_PACKETS: usize = crate::MEASURE_BATCH_ELEMS;

impl CrcWorkload {
    /// A scenario for `spec` (CRC-8, CRC-16, or CRC-32) over one
    /// measurement batch of 128 B packets.
    ///
    /// # Panics
    /// Panics on CRC widths other than 8, 16, or 32 (the Table 4 set).
    pub fn new(spec: CrcSpec) -> Self {
        CrcWorkload::with_packets(spec, crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over `count` packets; batches beyond one measurement
    /// batch split into [`Workload::shards`] of independent packet
    /// groups.
    ///
    /// # Panics
    /// Panics on CRC widths other than 8, 16, or 32 (the Table 4 set).
    pub fn with_packets(spec: CrcSpec, count: usize) -> Self {
        let id = match spec.width {
            8 => WorkloadId::Crc8,
            16 => WorkloadId::Crc16,
            32 => WorkloadId::Crc32,
            w => panic!("CrcWorkload supports CRC-8/16/32, not width {w}"),
        };
        let mut w = CrcWorkload {
            id,
            spec,
            count,
            pinned: false,
            packets: Vec::new(),
        };
        w.regenerate();
        w
    }

    /// Paper-pinned dataset; generator seeds are fixed so figure data is
    /// bit-stable across runs and sessions.
    fn regenerate(&mut self) {
        self.packets = gen::packets(
            0xC0 + self.spec.width as u64,
            self.count,
            gen::CRC_PACKET_BYTES,
        );
    }
}

impl Workload for CrcWorkload {
    fn id(&self) -> &'static str {
        self.id.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = crc_pluto(sess.machine_mut(), self.spec, &self.packets)?;
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_words(&crc_reference(self.spec, &self.packets))
    }

    fn input_bytes(&self) -> f64 {
        (self.packets.len() * gen::CRC_PACKET_BYTES) as f64
    }

    fn min_subarrays(&self) -> u16 {
        // One LUT-store subarray pair per position-specific contribution
        // LUT, plus headroom for the scratch/data subarrays.
        let pairs = (gen::CRC_PACKET_BYTES as u16) * (self.spec.width / 4) as u16 + 8;
        2 * pairs + 8
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.packets
            .chunks(CRC_SHARD_PACKETS.max(1))
            .map(|chunk| {
                Box::new(CrcWorkload {
                    id: self.id,
                    spec: self.spec,
                    count: chunk.len(),
                    pinned: true,
                    packets: chunk.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}
