//! VMPC one-way function over packets (paper Table 4: 512-byte packets).
//!
//! Zoltak's VMPC function transforms a value through a fixed 256-byte
//! permutation `P` three times with an increment in between:
//! `Q[x] = P[(P[P[x]] + 1) mod 256]`. It is designed to be hard to invert
//! and is the core of the VMPC stream cipher family. On a CPU this is
//! three dependent, cache-hostile table lookups per byte; on pLUTo it is
//! three chained bulk LUT queries plus one increment LUT — the archetypal
//! "complex operation as memory reads" workload.

use pluto_core::{Lut, PlutoError, PlutoMachine};
use sim_support::{Rng, SeedableRng, StdRng};

/// A 256-byte permutation (the VMPC `P` table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation(pub [u8; 256]);

impl Permutation {
    /// Derives a permutation from a key via a deterministic Fisher–Yates
    /// shuffle (standing in for the VMPC KSA, which likewise produces a
    /// key-dependent permutation).
    pub fn from_key(key: u64) -> Self {
        let mut p: Vec<u8> = (0..=255).collect();
        let mut rng = StdRng::seed_from_u64(key);
        for i in (1..256).rev() {
            let j = rng.gen_range(0..=i);
            p.swap(i, j);
        }
        let mut arr = [0u8; 256];
        arr.copy_from_slice(&p);
        Permutation(arr)
    }

    /// Applies the VMPC one-way function to a single byte.
    pub fn vmpc(&self, x: u8) -> u8 {
        let p = &self.0;
        p[(p[p[x as usize] as usize] as usize + 1) % 256]
    }
}

/// Reference transformation of a packet batch.
pub fn vmpc_reference(perm: &Permutation, packets: &[Vec<u8>]) -> Vec<Vec<u8>> {
    packets
        .iter()
        .map(|p| p.iter().map(|&b| perm.vmpc(b)).collect())
        .collect()
}

/// pLUTo transformation: three chained 256-entry permutation queries plus
/// one increment LUT, applied to every packet byte in bulk.
///
/// # Errors
/// Propagates machine errors.
pub fn vmpc_pluto(
    machine: &mut PlutoMachine,
    perm: &Permutation,
    packets: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, PlutoError> {
    let p_lut = Lut::from_table("vmpc_p", 8, 8, perm.0.iter().map(|&b| b as u64).collect())?;
    let inc = Lut::from_fn("inc8", 8, 8, |x| (x + 1) & 0xFF)?;
    let flat: Vec<u64> = packets
        .iter()
        .flat_map(|p| p.iter().map(|&b| b as u64))
        .collect();
    let s1 = machine.apply(&p_lut, &flat)?.values;
    let s2 = machine.apply(&p_lut, &s1)?.values;
    let s3 = machine.apply(&inc, &s2)?.values;
    let s4 = machine.apply(&p_lut, &s3)?.values;
    // Re-chunk into packets.
    let mut out = Vec::with_capacity(packets.len());
    let mut cursor = 0usize;
    for p in packets {
        out.push(
            s4[cursor..cursor + p.len()]
                .iter()
                .map(|&v| v as u8)
                .collect(),
        );
        cursor += p.len();
    }
    Ok(out)
}

/// Composes the full function into one LUT (the memoized alternative the
/// paper's §6.5 "first-time generation" path enables).
pub fn composed_lut(perm: &Permutation) -> Result<Lut, PlutoError> {
    Lut::from_fn("vmpc_q", 8, 8, |x| perm.vmpc(x as u8) as u64)
}

/// pLUTo transformation via the composed single LUT: one query per batch.
///
/// # Errors
/// Propagates machine errors.
pub fn vmpc_pluto_composed(
    machine: &mut PlutoMachine,
    perm: &Permutation,
    packets: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, PlutoError> {
    let q = composed_lut(perm)?;
    let flat: Vec<u64> = packets
        .iter()
        .flat_map(|p| p.iter().map(|&b| b as u64))
        .collect();
    let out = machine.apply(&q, &flat)?.values;
    let mut res = Vec::with_capacity(packets.len());
    let mut cursor = 0usize;
    for p in packets {
        res.push(
            out[cursor..cursor + p.len()]
                .iter()
                .map(|&v| v as u8)
                .collect(),
        );
        cursor += p.len();
    }
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::{DesignKind, PlutoMachine};
    use pluto_dram::DramConfig;

    fn machine() -> PlutoMachine {
        PlutoMachine::new(
            DramConfig {
                row_bytes: 128,
                burst_bytes: 16,
                banks: 2,
                subarrays_per_bank: 16,
                rows_per_subarray: 512,
                ..DramConfig::ddr4_2400()
            },
            DesignKind::Gmc,
        )
        .unwrap()
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = Permutation::from_key(99);
        let mut seen = [false; 256];
        for &v in &p.0 {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn vmpc_differs_from_identity_and_p() {
        let p = Permutation::from_key(4);
        let same_as_p = (0..=255u8)
            .filter(|&x| p.vmpc(x) == p.0[x as usize])
            .count();
        assert!(same_as_p < 64, "Q should not collapse to P");
    }

    #[test]
    fn pluto_matches_reference() {
        let perm = Permutation::from_key(1234);
        let packets = gen::packets(77, 5, 64);
        let expect = vmpc_reference(&perm, &packets);
        let mut m = machine();
        let out = vmpc_pluto(&mut m, &perm, &packets).unwrap();
        assert_eq!(out, expect);
        // Chained mapping issues four bulk queries per batch chunk.
        assert!(m.totals().calls >= 4);
    }

    #[test]
    fn composed_lut_is_equivalent_but_fewer_queries() {
        let perm = Permutation::from_key(5);
        let packets = gen::packets(3, 4, 32);
        let expect = vmpc_reference(&perm, &packets);
        let mut m = machine();
        let chained_calls_before = m.totals().calls;
        vmpc_pluto(&mut m, &perm, &packets).unwrap();
        let chained_calls = m.totals().calls - chained_calls_before;
        let mut m2 = machine();
        let out = vmpc_pluto_composed(&mut m2, &perm, &packets).unwrap();
        assert_eq!(out, expect);
        assert!(m2.totals().calls < chained_calls);
    }
}

// --- Pluggable scenario -------------------------------------------------

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::session::{self, Session, Workload};

/// The VMPC workload (Table 4) as a pluggable [`Workload`] scenario: the
/// one-way function over one measurement packet.
#[derive(Debug)]
pub struct VmpcWorkload {
    perm: Permutation,
    packets: Vec<Vec<u8>>,
}

impl VmpcWorkload {
    /// A scenario over the paper-pinned key and packet data.
    pub fn new() -> Self {
        let mut w = VmpcWorkload {
            perm: Permutation::from_key(0xBEEF),
            packets: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.perm = Permutation::from_key(0xBEEF);
        self.packets = gen::packets(0x7E, 1, crate::MEASURE_BATCH_ELEMS);
    }
}

impl Default for VmpcWorkload {
    fn default() -> Self {
        VmpcWorkload::new()
    }
}

impl Workload for VmpcWorkload {
    fn id(&self) -> &'static str {
        WorkloadId::Vmpc.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        self.regenerate();
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = vmpc_pluto(sess.machine_mut(), &self.perm, &self.packets)?;
        Ok(session::encode_packets(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_packets(&vmpc_reference(&self.perm, &self.packets))
    }

    fn input_bytes(&self) -> f64 {
        crate::MEASURE_BATCH_ELEMS as f64
    }
}
