//! Bit counting (paper Table 4: BC-4 with a 16-entry LUT, BC-8 with a
//! 256-entry LUT — the Hacker's Delight population-count workload).

use pluto_core::lut::catalog;
use pluto_core::{PlutoError, PlutoMachine};

/// Reference population counts of `bits`-wide values.
pub fn popcount_reference(values: &[u64]) -> Vec<u64> {
    values.iter().map(|v| v.count_ones() as u64).collect()
}

/// BC-4: 4-bit popcount via a 16-entry LUT (one bulk query stream).
///
/// # Errors
/// Propagates machine errors.
pub fn bc4_pluto(m: &mut PlutoMachine, values: &[u64]) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply(&catalog::popcount(4)?, values)?.values)
}

/// BC-8: 8-bit popcount via a 256-entry LUT.
///
/// # Errors
/// Propagates machine errors.
pub fn bc8_pluto(m: &mut PlutoMachine, values: &[u64]) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply(&catalog::popcount(8)?, values)?.values)
}

/// Popcount of 16-bit words by summing the two per-byte BC-8 counts with a
/// 512-entry add LUT (how the paper composes BC-8 into wider counts).
///
/// # Errors
/// Propagates machine errors.
pub fn popcount_u16_pluto(m: &mut PlutoMachine, values: &[u64]) -> Result<Vec<u64>, PlutoError> {
    let bc8 = catalog::popcount(8)?;
    // Per-byte counts are ≤ 8, so a (count ≤ 15) + (count ≤ 15) LUT with a
    // 5-bit result covers the sum (≤ 16). 8-bit index = 256 entries.
    let add = catalog::add(4)?;
    let lo: Vec<u64> = values.iter().map(|&v| v & 0xFF).collect();
    let hi: Vec<u64> = values.iter().map(|&v| (v >> 8) & 0xFF).collect();
    let c_lo = m.apply(&bc8, &lo)?.values;
    let c_hi = m.apply(&bc8, &hi)?.values;
    // Counts ≤ 8 each fit the 4-bit add operands; the 5-bit sum ≤ 16.
    let mut c_lo4 = c_lo;
    let mut c_hi4 = c_hi;
    for v in c_lo4.iter_mut().chain(c_hi4.iter_mut()) {
        debug_assert!(*v <= 8);
        *v &= 0xF;
    }
    Ok(m.apply2(&add, &c_lo4, 4, &c_hi4, 4)?.values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::DesignKind;
    use pluto_dram::DramConfig;

    fn machine() -> PlutoMachine {
        PlutoMachine::new(
            DramConfig {
                row_bytes: 128,
                burst_bytes: 16,
                banks: 2,
                subarrays_per_bank: 32,
                rows_per_subarray: 512,
                ..DramConfig::ddr4_2400()
            },
            DesignKind::Bsa,
        )
        .unwrap()
    }

    #[test]
    fn bc4_matches_reference() {
        let v = gen::values(8, 100, 4);
        let mut m = machine();
        assert_eq!(bc4_pluto(&mut m, &v).unwrap(), popcount_reference(&v));
    }

    #[test]
    fn bc8_matches_reference() {
        let v = gen::values(9, 100, 8);
        let mut m = machine();
        assert_eq!(bc8_pluto(&mut m, &v).unwrap(), popcount_reference(&v));
    }

    #[test]
    fn bc8_full_range() {
        let v: Vec<u64> = (0..256).collect();
        let mut m = machine();
        assert_eq!(bc8_pluto(&mut m, &v).unwrap(), popcount_reference(&v));
    }

    #[test]
    fn composed_u16_popcount() {
        let v = gen::values(10, 64, 16);
        let mut m = machine();
        assert_eq!(
            popcount_u16_pluto(&mut m, &v).unwrap(),
            popcount_reference(&v)
        );
        // Extremes.
        let mut m = machine();
        assert_eq!(
            popcount_u16_pluto(&mut m, &[0, 0xFFFF, 0x8001]).unwrap(),
            vec![0, 16, 2]
        );
    }
}

// --- Pluggable scenario -------------------------------------------------

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::session::{self, Session, Workload};
use sim_support::StdRng;

/// The bit-counting workload (Fig. 9 BC-4/BC-8) as a pluggable
/// [`Workload`] scenario.
#[derive(Debug)]
pub struct BitcountWorkload {
    id: WorkloadId,
    bits: u32,
    elems: usize,
    /// Shards pin their input slice; `prepare` must not regenerate it.
    pinned: bool,
    values: Vec<u64>,
}

impl BitcountWorkload {
    /// A scenario for `bits`-wide popcounts (4 or 8) over one measurement
    /// batch.
    ///
    /// # Panics
    /// Panics on widths other than 4 or 8.
    pub fn new(bits: u32) -> Self {
        BitcountWorkload::with_batch(bits, crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a batch of `elems` values; oversize batches split
    /// into measurement-row-sized [`Workload::shards`] for cluster
    /// fan-out.
    ///
    /// # Panics
    /// Panics on widths other than 4 or 8.
    pub fn with_batch(bits: u32, elems: usize) -> Self {
        let id = match bits {
            4 => WorkloadId::Bc4,
            8 => WorkloadId::Bc8,
            _ => panic!("BitcountWorkload supports BC-4 and BC-8, not {bits}"),
        };
        let mut w = BitcountWorkload {
            id,
            bits,
            elems,
            pinned: false,
            values: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.values = gen::values(17, self.elems, self.bits);
    }
}

impl Workload for BitcountWorkload {
    fn id(&self) -> &'static str {
        self.id.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let m = sess.machine_mut();
        let out = if self.bits == 4 {
            bc4_pluto(m, &self.values)?
        } else {
            bc8_pluto(m, &self.values)?
        };
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_words(&popcount_reference(&self.values))
    }

    fn input_bytes(&self) -> f64 {
        (self.values.len() as f64) * self.bits as f64 / 8.0
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.values
            .chunks(crate::MEASURE_BATCH_ELEMS)
            .map(|c| {
                Box::new(BitcountWorkload {
                    id: self.id,
                    bits: self.bits,
                    elems: c.len(),
                    pinned: true,
                    values: c.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}
