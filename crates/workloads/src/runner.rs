//! End-to-end workload drivers for the figure harness.
//!
//! The unified execution API (`DESIGN.md` §5–6) does the heavy lifting: a
//! [`pluto_core::session::Session`] (or a multi-worker
//! [`pluto_core::cluster::Cluster`]) built from an explicit
//! [`pluto_core::session::ExecConfig`] runs the pluggable scenarios
//! enumerated by [`crate::registry`], and each run yields a
//! [`pluto_core::session::CostReport`]. [`PlutoCost`] is a thin newtype
//! pairing such a report with the [`WorkloadId`] the caller asked for
//! (alias ids are preserved).
//!
//! Command timing/energy in the engine is independent of the row *width*
//! (a sweep step costs tRCD(+tRP) whether the row is 256 B or 8 KiB), so
//! the functional run uses narrow 256 B rows for speed and the measured
//! batch cost is reported against the paper-equivalent byte volume of
//! 8 KiB rows (a fixed ×32 slot ratio on DDR4; ×1 on 3DS, whose rows are
//! 256 B). [`scaled_wall_time`] then scales a batch cost to arbitrary
//! input volumes, subarray-level parallelism, and tFAW throttling —
//! providing the pLUTo series of Figs. 7–10, 13, 14.

use pluto_baselines::WorkloadId;
use pluto_core::session::CostReport;
use pluto_dram::TimingParams;

/// Measured serial cost of one row batch of a workload on one design:
/// a [`CostReport`] tagged with the requested [`WorkloadId`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlutoCost {
    /// Which workload (as requested — alias ids are preserved).
    pub id: WorkloadId,
    /// The session-level measurement, labeled with the requested id.
    pub report: CostReport,
}

impl PlutoCost {
    /// Tags a session [`CostReport`] with the requested workload id (the
    /// report's `workload` label follows the id, so alias requests keep
    /// their alias label).
    pub fn from_report(id: WorkloadId, mut report: CostReport) -> Self {
        report.workload = id.label();
        PlutoCost { id, report }
    }

    /// Serial seconds per paper-equivalent input byte.
    pub fn secs_per_byte(&self) -> f64 {
        self.report.secs_per_byte()
    }

    /// Joules per paper-equivalent input byte (SALP-independent, §8.3).
    pub fn joules_per_byte(&self) -> f64 {
        self.report.joules_per_byte()
    }
}

/// Wall-clock seconds to process `volume_bytes` of input given a measured
/// batch cost, `subarrays`-way SALP, and a tFAW scale (0.0 = unthrottled).
pub fn scaled_wall_time(
    cost: &PlutoCost,
    volume_bytes: f64,
    subarrays: usize,
    t_faw_scale: f64,
    timing: &TimingParams,
) -> f64 {
    cost.report
        .scaled_wall_time(volume_bytes, subarrays, t_faw_scale, timing)
}

/// Energy in joules to process `volume_bytes` (independent of SALP, §8.3).
pub fn scaled_energy(cost: &PlutoCost, volume_bytes: f64) -> f64 {
    cost.report.scaled_energy(volume_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload_for;
    use pluto_core::cluster::Cluster;
    use pluto_core::session::{ExecConfig, Session};
    use pluto_core::DesignKind;
    use pluto_dram::{MemoryKind, Picos};

    fn measure_on(id: WorkloadId, design: DesignKind, kind: MemoryKind) -> PlutoCost {
        let mut workload = workload_for(id);
        let mut session = Session::builder(design).memory(kind).build().unwrap();
        let report = session.run(workload.as_mut()).unwrap();
        PlutoCost::from_report(id, report)
    }

    fn measure(id: WorkloadId, design: DesignKind) -> PlutoCost {
        measure_on(id, design, MemoryKind::Ddr4)
    }

    #[test]
    fn measure_validates_quick_workloads() {
        for id in [
            WorkloadId::Vmpc,
            WorkloadId::ImgBin,
            WorkloadId::ColorGrade,
            WorkloadId::Bc4,
            WorkloadId::Bc8,
            WorkloadId::Add4,
            WorkloadId::BitwiseRow,
        ] {
            let cost = measure(id, DesignKind::Gmc);
            assert!(cost.report.validated, "{id} failed validation");
            assert!(cost.report.time > Picos::ZERO, "{id}");
            assert!(cost.report.acts > 0, "{id}");
            assert!(cost.report.paper_bytes > 0.0, "{id}");
            assert_eq!(cost.report.kind, MemoryKind::Ddr4);
            assert_eq!(cost.report.workload, id.label());
        }
    }

    #[test]
    fn gmc_cheaper_than_gsa_per_byte() {
        let gmc = measure(WorkloadId::ImgBin, DesignKind::Gmc);
        let gsa = measure(WorkloadId::ImgBin, DesignKind::Gsa);
        assert!(gmc.secs_per_byte() < gsa.secs_per_byte());
        assert!(gmc.joules_per_byte() < gsa.joules_per_byte());
    }

    #[test]
    fn wall_time_scales_down_with_subarrays() {
        let cost = measure(WorkloadId::Bc8, DesignKind::Bsa);
        let t = TimingParams::ddr4_2400();
        let one = scaled_wall_time(&cost, 1e6, 1, 0.0, &t);
        let sixteen = scaled_wall_time(&cost, 1e6, 16, 0.0, &t);
        assert!((one / sixteen - 16.0).abs() < 1e-6);
    }

    #[test]
    fn tfaw_floor_binds_at_high_parallelism() {
        let cost = measure(WorkloadId::Bc8, DesignKind::Gmc);
        let t = TimingParams::ddr4_2400();
        let free = scaled_wall_time(&cost, 1e6, 2048, 0.0, &t);
        let nominal = scaled_wall_time(&cost, 1e6, 2048, 1.0, &t);
        assert!(nominal >= free);
    }

    #[test]
    fn energy_is_parallelism_independent() {
        let cost = measure(WorkloadId::Bc4, DesignKind::Bsa);
        assert!((scaled_energy(&cost, 2e6) / scaled_energy(&cost, 1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_path_agrees_with_the_session_path() {
        // The replacement for the removed `measure`/`measure_on` shims:
        // a cluster-run job is bit-identical to its Session counterpart,
        // on both memory kinds.
        let mut cluster = Cluster::new(2);
        cluster.submit(
            ExecConfig::measurement(DesignKind::Gmc),
            workload_for(WorkloadId::Bc4),
        );
        cluster.submit(
            ExecConfig::measurement_on(DesignKind::Gmc, MemoryKind::Stacked3d),
            workload_for(WorkloadId::Bc4),
        );
        let reports = cluster.run().unwrap();
        let ddr4 = PlutoCost::from_report(WorkloadId::Bc4, reports[0]);
        assert_eq!(ddr4, measure(WorkloadId::Bc4, DesignKind::Gmc));
        assert_eq!(
            PlutoCost::from_report(WorkloadId::Bc4, reports[1]),
            measure_on(WorkloadId::Bc4, DesignKind::Gmc, MemoryKind::Stacked3d)
        );
        assert_eq!(reports[1].kind, MemoryKind::Stacked3d);
    }

    #[test]
    fn alias_ids_measure_identically_to_their_canonical_workload() {
        let canonical = measure(WorkloadId::Mul8, DesignKind::Gmc);
        let alias = measure(WorkloadId::MulQ1_7, DesignKind::Gmc);
        assert_eq!(alias.id, WorkloadId::MulQ1_7, "requested id is preserved");
        assert_eq!(alias.report.workload, WorkloadId::MulQ1_7.label());
        assert_eq!(alias.report.time, canonical.report.time);
        assert_eq!(alias.report.energy, canonical.report.energy);
        assert_eq!(alias.report.acts, canonical.report.acts);
        assert_eq!(alias.report.paper_bytes, canonical.report.paper_bytes);
    }
}
