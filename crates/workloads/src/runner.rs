//! End-to-end workload drivers for the figure harness.
//!
//! This module is now a thin compatibility layer over the unified
//! execution API (`DESIGN.md` §5): a [`pluto_core::session::Session`]
//! built from an explicit [`pluto_core::session::ExecConfig`] runs the
//! pluggable scenarios enumerated by [`crate::registry`], and each run
//! yields a [`pluto_core::session::CostReport`]. [`PlutoCost`] pairs such
//! a report with the [`WorkloadId`] the caller asked for; the deprecated
//! [`measure`]/[`measure_on`] shims remain for one release.
//!
//! Command timing/energy in the engine is independent of the row *width*
//! (a sweep step costs tRCD(+tRP) whether the row is 256 B or 8 KiB), so
//! the functional run uses narrow 256 B rows for speed and the measured
//! batch cost is reported against the paper-equivalent byte volume of
//! 8 KiB rows (a fixed ×32 slot ratio on DDR4; ×1 on 3DS, whose rows are
//! 256 B). [`scaled_wall_time`] then scales a batch cost to arbitrary
//! input volumes, subarray-level parallelism, and tFAW throttling —
//! providing the pLUTo series of Figs. 7–10, 13, 14.

use crate::workload_for;
use pluto_baselines::WorkloadId;
use pluto_core::session::{CostReport, Session};
use pluto_core::{DesignKind, PlutoError};
use pluto_dram::{MemoryKind, PicoJoules, Picos, TimingParams};

/// Measured serial cost of one row batch of a workload on one design:
/// a [`CostReport`] tagged with the requested [`WorkloadId`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlutoCost {
    /// Which workload (as requested — alias ids are preserved).
    pub id: WorkloadId,
    /// Which design.
    pub design: DesignKind,
    /// Which memory kind the batch was measured on.
    pub kind: MemoryKind,
    /// Serial single-subarray time of the batch.
    pub time: Picos,
    /// Dynamic DRAM energy of the batch.
    pub energy: PicoJoules,
    /// Row activations issued in the batch (tFAW-relevant).
    pub acts: u64,
    /// Paper-equivalent input bytes covered by the batch (8 KiB rows).
    pub paper_bytes: f64,
    /// Whether the functional output matched the reference bit-for-bit.
    pub validated: bool,
}

impl PlutoCost {
    /// Tags a session [`CostReport`] with the requested workload id.
    pub fn from_report(id: WorkloadId, report: CostReport) -> Self {
        PlutoCost {
            id,
            design: report.design,
            kind: report.kind,
            time: report.time,
            energy: report.energy,
            acts: report.acts,
            paper_bytes: report.paper_bytes,
            validated: report.validated,
        }
    }

    /// The session-level view of this cost (workload labeled by the
    /// requested id).
    pub fn report(&self) -> CostReport {
        CostReport {
            workload: self.id.label(),
            design: self.design,
            kind: self.kind,
            time: self.time,
            energy: self.energy,
            acts: self.acts,
            paper_bytes: self.paper_bytes,
            validated: self.validated,
        }
    }

    /// Serial seconds per paper-equivalent input byte.
    pub fn secs_per_byte(&self) -> f64 {
        self.report().secs_per_byte()
    }

    /// Joules per paper-equivalent input byte (SALP-independent, §8.3).
    pub fn joules_per_byte(&self) -> f64 {
        self.report().joules_per_byte()
    }
}

/// Measures `id` on `design`/`kind` through the session API.
fn run_one(id: WorkloadId, design: DesignKind, kind: MemoryKind) -> Result<PlutoCost, PlutoError> {
    let mut workload = workload_for(id);
    let mut session = Session::builder(design).memory(kind).build()?;
    let report = session.run(workload.as_mut())?;
    Ok(PlutoCost::from_report(id, report))
}

/// Like [`measure`], but on the given memory kind (`Stacked3d` models the
/// paper's pLUTo-3DS configurations: HMC timings and energies).
///
/// Unlike the old thread-local implementation, nested/interleaved
/// measurements on different kinds compose: the kind is a parameter of
/// the underlying [`Session`], not ambient state to save and restore.
///
/// # Errors
/// Propagates machine/workload errors.
#[deprecated(note = "build a Session over pluto_workloads::workload_for instead (DESIGN.md §5)")]
pub fn measure_on(
    id: WorkloadId,
    design: DesignKind,
    kind: MemoryKind,
) -> Result<PlutoCost, PlutoError> {
    run_one(id, design, kind)
}

/// Runs the pLUTo mapping of `id` on `design` (DDR4), validating against
/// the reference and measuring one batch.
///
/// # Errors
/// Propagates machine/workload errors.
#[deprecated(note = "build a Session over pluto_workloads::workload_for instead (DESIGN.md §5)")]
pub fn measure(id: WorkloadId, design: DesignKind) -> Result<PlutoCost, PlutoError> {
    run_one(id, design, MemoryKind::Ddr4)
}

/// Wall-clock seconds to process `volume_bytes` of input given a measured
/// batch cost, `subarrays`-way SALP, and a tFAW scale (0.0 = unthrottled).
pub fn scaled_wall_time(
    cost: &PlutoCost,
    volume_bytes: f64,
    subarrays: usize,
    t_faw_scale: f64,
    timing: &TimingParams,
) -> f64 {
    cost.report()
        .scaled_wall_time(volume_bytes, subarrays, t_faw_scale, timing)
}

/// Energy in joules to process `volume_bytes` (independent of SALP, §8.3).
pub fn scaled_energy(cost: &PlutoCost, volume_bytes: f64) -> f64 {
    cost.report().scaled_energy(volume_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure_new(id: WorkloadId, design: DesignKind) -> PlutoCost {
        run_one(id, design, MemoryKind::Ddr4).unwrap()
    }

    #[test]
    fn measure_validates_quick_workloads() {
        for id in [
            WorkloadId::Vmpc,
            WorkloadId::ImgBin,
            WorkloadId::ColorGrade,
            WorkloadId::Bc4,
            WorkloadId::Bc8,
            WorkloadId::Add4,
            WorkloadId::BitwiseRow,
        ] {
            let cost = measure_new(id, DesignKind::Gmc);
            assert!(cost.validated, "{id} failed validation");
            assert!(cost.time > Picos::ZERO, "{id}");
            assert!(cost.acts > 0, "{id}");
            assert!(cost.paper_bytes > 0.0, "{id}");
            assert_eq!(cost.kind, MemoryKind::Ddr4);
        }
    }

    #[test]
    fn gmc_cheaper_than_gsa_per_byte() {
        let gmc = measure_new(WorkloadId::ImgBin, DesignKind::Gmc);
        let gsa = measure_new(WorkloadId::ImgBin, DesignKind::Gsa);
        assert!(gmc.secs_per_byte() < gsa.secs_per_byte());
        assert!(gmc.joules_per_byte() < gsa.joules_per_byte());
    }

    #[test]
    fn wall_time_scales_down_with_subarrays() {
        let cost = measure_new(WorkloadId::Bc8, DesignKind::Bsa);
        let t = TimingParams::ddr4_2400();
        let one = scaled_wall_time(&cost, 1e6, 1, 0.0, &t);
        let sixteen = scaled_wall_time(&cost, 1e6, 16, 0.0, &t);
        assert!((one / sixteen - 16.0).abs() < 1e-6);
    }

    #[test]
    fn tfaw_floor_binds_at_high_parallelism() {
        let cost = measure_new(WorkloadId::Bc8, DesignKind::Gmc);
        let t = TimingParams::ddr4_2400();
        let free = scaled_wall_time(&cost, 1e6, 2048, 0.0, &t);
        let nominal = scaled_wall_time(&cost, 1e6, 2048, 1.0, &t);
        assert!(nominal >= free);
    }

    #[test]
    fn energy_is_parallelism_independent() {
        let cost = measure_new(WorkloadId::Bc4, DesignKind::Bsa);
        assert!((scaled_energy(&cost, 2e6) / scaled_energy(&cost, 1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_session_path() {
        let shim = measure(WorkloadId::Bc4, DesignKind::Gmc).unwrap();
        let new = measure_new(WorkloadId::Bc4, DesignKind::Gmc);
        assert_eq!(shim, new);
        let shim3d = measure_on(WorkloadId::Bc4, DesignKind::Gmc, MemoryKind::Stacked3d).unwrap();
        assert_eq!(shim3d.kind, MemoryKind::Stacked3d);
    }

    #[test]
    fn alias_ids_measure_identically_to_their_canonical_workload() {
        let canonical = measure_new(WorkloadId::Mul8, DesignKind::Gmc);
        let alias = measure_new(WorkloadId::MulQ1_7, DesignKind::Gmc);
        assert_eq!(alias.id, WorkloadId::MulQ1_7, "requested id is preserved");
        assert_eq!(alias.time, canonical.time);
        assert_eq!(alias.energy, canonical.energy);
        assert_eq!(alias.acts, canonical.acts);
        assert_eq!(alias.paper_bytes, canonical.paper_bytes);
    }
}
