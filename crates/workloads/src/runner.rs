//! End-to-end workload drivers for the figure harness.
//!
//! [`measure`] runs one workload's pLUTo mapping *functionally* on the
//! command-level simulator, validates the output against the reference
//! implementation, and returns the measured serial cost of one "row batch".
//!
//! Command timing/energy in the engine is independent of the row *width*
//! (a sweep step costs tRCD(+tRP) whether the row is 256 B or 8 KiB), so
//! the functional run uses narrow 256 B rows for speed and the measured
//! batch cost is reported against the paper-equivalent byte volume of
//! 8 KiB rows (a fixed ×32 slot ratio). [`scaled_wall_time`] then scales a
//! batch cost to arbitrary input volumes, subarray-level parallelism, and
//! tFAW throttling — providing the pLUTo series of Figs. 7–10, 13, 14.

use crate::{bitcount, bitwise, crc, gen, image, salsa20, vecops, vmpc};
use pluto_baselines::WorkloadId;
use pluto_core::{DesignKind, PlutoError, PlutoMachine};
use pluto_dram::{DramConfig, MemoryKind, PicoJoules, Picos, TimingParams};
use std::cell::Cell;

thread_local! {
    /// Memory kind used by [`measurement_machine`] (set by [`measure_on`]).
    static MEASURE_KIND: Cell<MemoryKind> = const { Cell::new(MemoryKind::Ddr4) };
}

/// Row size used for fast functional measurement runs.
const MEASURE_ROW_BYTES: usize = 256;

/// Row size of the paper's DDR4 configuration.
const PAPER_ROW_BYTES: usize = 8192;

/// Measured serial cost of one row batch of a workload on one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlutoCost {
    /// Which workload.
    pub id: WorkloadId,
    /// Which design.
    pub design: DesignKind,
    /// Serial single-subarray time of the batch.
    pub time: Picos,
    /// Dynamic DRAM energy of the batch.
    pub energy: PicoJoules,
    /// Row activations issued in the batch (tFAW-relevant).
    pub acts: u64,
    /// Paper-equivalent input bytes covered by the batch (8 KiB rows).
    pub paper_bytes: f64,
    /// Whether the functional output matched the reference bit-for-bit.
    pub validated: bool,
}

impl PlutoCost {
    /// Serial seconds per paper-equivalent input byte.
    pub fn secs_per_byte(&self) -> f64 {
        self.time.as_secs() / self.paper_bytes
    }

    /// Joules per paper-equivalent input byte (SALP-independent, §8.3).
    pub fn joules_per_byte(&self) -> f64 {
        self.energy.as_joules() / self.paper_bytes
    }
}

fn measurement_machine(design: DesignKind, subarrays: u16) -> Result<PlutoMachine, PlutoError> {
    PlutoMachine::new(
        DramConfig {
            kind: MEASURE_KIND.with(Cell::get),
            row_bytes: MEASURE_ROW_BYTES,
            burst_bytes: 32,
            banks: 1,
            subarrays_per_bank: subarrays,
            rows_per_subarray: 512,
        },
        design,
    )
}

/// Scaling factor from measurement rows to paper rows: the paper's DDR4
/// rows are 8 KiB; its 3DS rows are 256 B (equal to the measurement rows).
fn row_ratio() -> f64 {
    match MEASURE_KIND.with(Cell::get) {
        MemoryKind::Ddr4 => PAPER_ROW_BYTES as f64 / MEASURE_ROW_BYTES as f64,
        MemoryKind::Stacked3d => 1.0,
    }
}

/// Like [`measure`], but on the given memory kind (`Stacked3d` models the
/// paper's pLUTo-3DS configurations: HMC timings and energies).
///
/// # Errors
/// Propagates machine/workload errors.
pub fn measure_on(
    id: WorkloadId,
    design: DesignKind,
    kind: MemoryKind,
) -> Result<PlutoCost, PlutoError> {
    MEASURE_KIND.with(|k| k.set(kind));
    let result = measure(id, design);
    MEASURE_KIND.with(|k| k.set(MemoryKind::Ddr4));
    result
}

/// Runs the pLUTo mapping of `id` on `design`, validating against the
/// reference and measuring one batch.
///
/// # Errors
/// Propagates machine/workload errors.
pub fn measure(id: WorkloadId, design: DesignKind) -> Result<PlutoCost, PlutoError> {
    use WorkloadId::*;
    // Elements sized to one measurement row (≤ 256 8-bit slots).
    let n = 192usize;
    let (machine, input_bytes_run, validated) = match id {
        Crc8 | Crc16 | Crc32 => {
            let spec = match id {
                Crc8 => crc::CrcSpec::CRC8,
                Crc16 => crc::CrcSpec::CRC16,
                _ => crc::CrcSpec::CRC32,
            };
            let len = gen::CRC_PACKET_BYTES;
            let pairs = (len as u16) * (spec.width / 4) as u16 + 8;
            let mut m = measurement_machine(design, 2 * pairs + 8)?;
            let packets = gen::packets(0xC0 + spec.width as u64, n, len);
            let out = crc::crc_pluto(&mut m, spec, &packets)?;
            let ok = out == crc::crc_reference(spec, &packets);
            (m, (n * len) as f64, ok)
        }
        Salsa20 => {
            let blocks = 96usize;
            let mut m = measurement_machine(design, 128)?;
            let states: Vec<[u32; 16]> = (0..blocks)
                .map(|i| salsa20::initial_state(&[7u8; 32], &[1u8; 8], i as u64))
                .collect();
            let out = salsa20::salsa20_core_pluto(&mut m, &states, 10)?;
            let ok = states
                .iter()
                .zip(&out)
                .all(|(s, o)| *o == salsa20::salsa20_core(*s));
            (m, (blocks * 64) as f64, ok)
        }
        Vmpc => {
            let mut m = measurement_machine(design, 16)?;
            let perm = vmpc::Permutation::from_key(0xBEEF);
            let packets = gen::packets(0x7E, 1, n);
            let out = vmpc::vmpc_pluto(&mut m, &perm, &packets)?;
            let ok = out == vmpc::vmpc_reference(&perm, &packets);
            (m, n as f64, ok)
        }
        ImgBin => {
            let mut m = measurement_machine(design, 16)?;
            let img = gen::Image::synthetic(5, n);
            let out = image::binarize_pluto(&mut m, &img, 128)?;
            let ok = out == image::binarize_reference(&img, 128);
            (m, (3 * n) as f64, ok)
        }
        ColorGrade => {
            let mut m = measurement_machine(design, 16)?;
            let img = gen::Image::synthetic(6, n);
            let curves = image::GradingCurves::cinematic();
            let out = image::grade_pluto(&mut m, &img, &curves)?;
            let ok = out == curves.apply_reference(&img);
            (m, (3 * n) as f64, ok)
        }
        Add4 | Add8 => {
            // ADD8 composes two 4-bit LUT adds; ADD4 is a single query.
            let mut m = measurement_machine(design, 64)?;
            let bits = if id == Add4 { 4 } else { 8 };
            let a = gen::values(11, n, bits);
            let b = gen::values(12, n, bits);
            let ok = if id == Add4 {
                let out = vecops::add4_pluto(&mut m, &a, &b)?;
                out == vecops::add4_reference(&a, &b)
            } else {
                let pa = crate::wide::Planes::from_values(&a, 2);
                let pb = crate::wide::Planes::from_values(&b, 2);
                let out = crate::wide::add(&mut m, &pa, &pb, false)?.to_values();
                let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) & 0xFF).collect();
                out == expect
            };
            (m, (n as f64) * bits as f64 / 8.0 * 2.0, ok)
        }
        Mul8 | MulQ1_7 => {
            let mut m = measurement_machine(design, 64)?;
            let a = gen::values(13, n, 8);
            let b = gen::values(14, n, 8);
            let out = vecops::q1_7_mul_pluto(&mut m, &a, &b)?;
            let ok = out == vecops::qmul_reference(7, &a, &b);
            (m, (n * 2) as f64, ok)
        }
        Mul16 | MulQ1_15 => {
            let count = 64usize;
            let mut m = measurement_machine(design, 64)?;
            let a = gen::values(15, count, 16);
            let b = gen::values(16, count, 16);
            let out = vecops::q1_15_mul_pluto(&mut m, &a, &b)?;
            let ok = out == vecops::qmul_reference(15, &a, &b);
            (m, (count * 4) as f64, ok)
        }
        Bc4 | Bc8 => {
            let mut m = measurement_machine(design, 16)?;
            let bits = if id == Bc4 { 4 } else { 8 };
            let v = gen::values(17, n, bits);
            let out = if id == Bc4 {
                bitcount::bc4_pluto(&mut m, &v)?
            } else {
                bitcount::bc8_pluto(&mut m, &v)?
            };
            let ok = out == bitcount::popcount_reference(&v);
            (m, (n as f64) * bits as f64 / 8.0, ok)
        }
        BitwiseRow => {
            let mut m = measurement_machine(design, 32)?;
            let a: Vec<u8> = gen::values(18, n, 8).iter().map(|&v| v as u8).collect();
            let b: Vec<u8> = gen::values(19, n, 8).iter().map(|&v| v as u8).collect();
            let out = bitwise::bitwise_pluto(&mut m, bitwise::BitOp::Xor, &a, &b)?;
            let ok = out == bitwise::bitwise_reference(bitwise::BitOp::Xor, &a, &b);
            (m, (n * 2) as f64, ok)
        }
    };
    let totals = machine.totals();
    let stats_energy = totals.energy;
    Ok(PlutoCost {
        id,
        design,
        time: totals.time,
        energy: stats_energy,
        // Sweep steps dominate activations; count both plus clones.
        acts: totals_acts(&machine),
        paper_bytes: input_bytes_run * row_ratio(),
        validated,
    })
}

fn totals_acts(machine: &PlutoMachine) -> u64 {
    let s = machine.engine_stats();
    s.activates
}

/// Wall-clock seconds to process `volume_bytes` of input given a measured
/// batch cost, `subarrays`-way SALP, and a tFAW scale (0.0 = unthrottled).
pub fn scaled_wall_time(
    cost: &PlutoCost,
    volume_bytes: f64,
    subarrays: usize,
    t_faw_scale: f64,
    timing: &TimingParams,
) -> f64 {
    let batches = volume_bytes / cost.paper_bytes;
    let serial = cost.time.as_secs() * batches;
    let parallel = serial / subarrays.max(1) as f64;
    if t_faw_scale <= 0.0 {
        return parallel;
    }
    let t_faw = timing.t_faw.as_secs() * t_faw_scale;
    let act_floor = cost.acts as f64 * batches * t_faw / 4.0;
    parallel.max(act_floor)
}

/// Energy in joules to process `volume_bytes` (independent of SALP, §8.3).
pub fn scaled_energy(cost: &PlutoCost, volume_bytes: f64) -> f64 {
    cost.joules_per_byte() * volume_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_validates_quick_workloads() {
        for id in [
            WorkloadId::Vmpc,
            WorkloadId::ImgBin,
            WorkloadId::ColorGrade,
            WorkloadId::Bc4,
            WorkloadId::Bc8,
            WorkloadId::Add4,
            WorkloadId::BitwiseRow,
        ] {
            let cost = measure(id, DesignKind::Gmc).unwrap();
            assert!(cost.validated, "{id} failed validation");
            assert!(cost.time > Picos::ZERO, "{id}");
            assert!(cost.acts > 0, "{id}");
            assert!(cost.paper_bytes > 0.0, "{id}");
        }
    }

    #[test]
    fn gmc_cheaper_than_gsa_per_byte() {
        let gmc = measure(WorkloadId::ImgBin, DesignKind::Gmc).unwrap();
        let gsa = measure(WorkloadId::ImgBin, DesignKind::Gsa).unwrap();
        assert!(gmc.secs_per_byte() < gsa.secs_per_byte());
        assert!(gmc.joules_per_byte() < gsa.joules_per_byte());
    }

    #[test]
    fn wall_time_scales_down_with_subarrays() {
        let cost = measure(WorkloadId::Bc8, DesignKind::Bsa).unwrap();
        let t = TimingParams::ddr4_2400();
        let one = scaled_wall_time(&cost, 1e6, 1, 0.0, &t);
        let sixteen = scaled_wall_time(&cost, 1e6, 16, 0.0, &t);
        assert!((one / sixteen - 16.0).abs() < 1e-6);
    }

    #[test]
    fn tfaw_floor_binds_at_high_parallelism() {
        let cost = measure(WorkloadId::Bc8, DesignKind::Gmc).unwrap();
        let t = TimingParams::ddr4_2400();
        let free = scaled_wall_time(&cost, 1e6, 2048, 0.0, &t);
        let nominal = scaled_wall_time(&cost, 1e6, 2048, 1.0, &t);
        assert!(nominal >= free);
    }

    #[test]
    fn energy_is_parallelism_independent() {
        let cost = measure(WorkloadId::Bc4, DesignKind::Bsa).unwrap();
        assert!((scaled_energy(&cost, 2e6) / scaled_energy(&cost, 1e6) - 2.0).abs() < 1e-9);
    }
}
