//! Deterministic synthetic data generators.
//!
//! The paper evaluates on network packets (CRC/ciphers) and 936 000-pixel
//! 3-channel images. We generate deterministic equivalents with a
//! fixed-seed RNG so every run of the suite reproduces identical data.

use sim_support::{Rng, SeedableRng, StdRng};

/// The paper's image size: 936 000 pixels (Table 4).
pub const PAPER_IMAGE_PIXELS: usize = 936_000;

/// The paper's CRC packet size in bytes (Table 4).
pub const CRC_PACKET_BYTES: usize = 128;

/// The paper's cipher packet size in bytes (Table 4).
pub const CIPHER_PACKET_BYTES: usize = 512;

/// Generates `count` packets of `len` pseudo-random bytes.
pub fn packets(seed: u64, count: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..len).map(|_| rng.gen()).collect())
        .collect()
}

/// A synthetic 3-channel 8-bit image: smooth gradients plus seeded noise,
/// stored planar (R plane, G plane, B plane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Pixels per channel.
    pub pixels: usize,
    /// The three channel planes (R, G, B), each `pixels` bytes.
    pub channels: [Vec<u8>; 3],
}

impl Image {
    /// Generates an image of `pixels` pixels (gradient + noise).
    pub fn synthetic(seed: u64, pixels: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = (pixels as f64).sqrt().ceil() as usize;
        let mut channels: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (c, chan) in channels.iter_mut().enumerate() {
            chan.reserve(pixels);
            for p in 0..pixels {
                let x = p % width;
                let y = p / width;
                let base = match c {
                    0 => (x * 255 / width.max(1)) as i32,
                    1 => (y * 255 / (pixels / width.max(1)).max(1)) as i32,
                    _ => (((x + y) * 255) / (2 * width.max(1))) as i32,
                };
                let noise: i32 = rng.gen_range(-16..=16);
                chan.push((base + noise).clamp(0, 255) as u8);
            }
        }
        Image { pixels, channels }
    }

    /// Total bytes across all channels.
    pub fn bytes(&self) -> usize {
        self.pixels * 3
    }
}

/// `count` pseudo-random `bits`-wide values.
pub fn values(seed: u64, count: usize, bits: u32) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (0..count).map(|_| rng.gen::<u64>() & mask).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_are_deterministic() {
        assert_eq!(packets(7, 3, 16), packets(7, 3, 16));
        assert_ne!(packets(7, 3, 16), packets(8, 3, 16));
        let p = packets(1, 4, CRC_PACKET_BYTES);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|pkt| pkt.len() == 128));
    }

    #[test]
    fn image_has_three_equal_planes() {
        let img = Image::synthetic(42, 1000);
        assert_eq!(img.channels[0].len(), 1000);
        assert_eq!(img.channels[1].len(), 1000);
        assert_eq!(img.channels[2].len(), 1000);
        assert_eq!(img.bytes(), 3000);
        assert_eq!(img, Image::synthetic(42, 1000));
    }

    #[test]
    fn image_spans_the_intensity_range() {
        let img = Image::synthetic(1, 10_000);
        let max = *img.channels[0].iter().max().unwrap();
        let min = *img.channels[0].iter().min().unwrap();
        assert!(max > 200 && min < 55, "gradient covers the range");
    }

    #[test]
    fn values_respect_width() {
        let v = values(3, 100, 4);
        assert!(v.iter().all(|&x| x < 16));
        let v = values(3, 10, 64);
        assert!(v.iter().any(|&x| x > u32::MAX as u64));
    }
}
