//! Image binarization and color grading (paper Table 4: 3-channel 8-bit
//! images of 936 000 pixels; binarization threshold 50 %, 8-bit → 8-bit
//! grading).
//!
//! Both are pure per-pixel 8-bit → 8-bit maps — the paper's canonical
//! "nonlinear operation that prior PuM cannot express" — and compile to a
//! single 256-entry LUT query per channel batch.

use crate::gen::Image;
use pluto_core::lut::catalog;
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// Reference binarization: every channel thresholded at `threshold`
/// (paper: 50 % ⇒ 128).
pub fn binarize_reference(img: &Image, threshold: u8) -> Image {
    Image {
        pixels: img.pixels,
        channels: [0, 1, 2].map(|c| {
            img.channels[c]
                .iter()
                .map(|&p| if p >= threshold { 255 } else { 0 })
                .collect()
        }),
    }
}

/// A per-channel color-grading curve set (8-bit → 8-bit LUTs, the paper's
/// Final-Cut-style "color grading via LUT" workload).
#[derive(Debug, Clone)]
pub struct GradingCurves {
    /// One 256-entry curve per channel.
    pub curves: [Vec<u8>; 3],
}

impl GradingCurves {
    /// A cinematic-style deterministic grade: lifted shadows + warm gamma
    /// on R, neutral G, cooled highlights on B.
    pub fn cinematic() -> Self {
        let curve = |lift: f64, gamma: f64, gain: f64| -> Vec<u8> {
            (0..256)
                .map(|v| {
                    let x = v as f64 / 255.0;
                    let y = ((x + lift).max(0.0).powf(gamma) * gain).clamp(0.0, 1.0);
                    (y * 255.0).round() as u8
                })
                .collect()
        };
        GradingCurves {
            curves: [
                curve(0.02, 0.9, 1.05),
                curve(0.0, 1.0, 1.0),
                curve(-0.01, 1.1, 0.98),
            ],
        }
    }

    /// Applies the curves in software (reference).
    pub fn apply_reference(&self, img: &Image) -> Image {
        Image {
            pixels: img.pixels,
            channels: [0, 1, 2].map(|c| {
                img.channels[c]
                    .iter()
                    .map(|&p| self.curves[c][p as usize])
                    .collect()
            }),
        }
    }
}

/// pLUTo binarization: one 256-entry LUT query stream per channel.
///
/// # Errors
/// Propagates machine errors.
pub fn binarize_pluto(
    machine: &mut PlutoMachine,
    img: &Image,
    threshold: u8,
) -> Result<Image, PlutoError> {
    let lut = catalog::binarize(threshold)?;
    let mut channels: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (chan, src) in channels.iter_mut().zip(&img.channels) {
        let vals: Vec<u64> = src.iter().map(|&p| p as u64).collect();
        *chan = machine
            .apply(&lut, &vals)?
            .values
            .into_iter()
            .map(|v| v as u8)
            .collect();
    }
    Ok(Image {
        pixels: img.pixels,
        channels,
    })
}

/// pLUTo color grading: one per-channel curve LUT query stream.
///
/// # Errors
/// Propagates machine errors.
pub fn grade_pluto(
    machine: &mut PlutoMachine,
    img: &Image,
    curves: &GradingCurves,
) -> Result<Image, PlutoError> {
    let mut channels: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (c, chan) in channels.iter_mut().enumerate() {
        let lut = Lut::from_table(
            format!("grade_ch{c}"),
            8,
            8,
            curves.curves[c].iter().map(|&v| v as u64).collect(),
        )?;
        let vals: Vec<u64> = img.channels[c].iter().map(|&p| p as u64).collect();
        *chan = machine
            .apply(&lut, &vals)?
            .values
            .into_iter()
            .map(|v| v as u8)
            .collect();
    }
    Ok(Image {
        pixels: img.pixels,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_core::DesignKind;
    use pluto_dram::DramConfig;

    fn machine() -> PlutoMachine {
        PlutoMachine::new(
            DramConfig {
                row_bytes: 256,
                burst_bytes: 32,
                banks: 2,
                subarrays_per_bank: 16,
                rows_per_subarray: 512,
                ..DramConfig::ddr4_2400()
            },
            DesignKind::Bsa,
        )
        .unwrap()
    }

    #[test]
    fn binarize_reference_thresholds() {
        let img = Image::synthetic(3, 500);
        let bin = binarize_reference(&img, 128);
        for c in 0..3 {
            for (i, &p) in bin.channels[c].iter().enumerate() {
                assert_eq!(p, if img.channels[c][i] >= 128 { 255 } else { 0 });
            }
        }
    }

    #[test]
    fn pluto_binarization_matches_reference() {
        let img = Image::synthetic(9, 700);
        let mut m = machine();
        let out = binarize_pluto(&mut m, &img, 128).unwrap();
        assert_eq!(out, binarize_reference(&img, 128));
    }

    #[test]
    fn pluto_grading_matches_reference() {
        let img = Image::synthetic(10, 600);
        let curves = GradingCurves::cinematic();
        let mut m = machine();
        let out = grade_pluto(&mut m, &img, &curves).unwrap();
        assert_eq!(out, curves.apply_reference(&img));
    }

    #[test]
    fn grading_curves_are_monotone_enough() {
        // Sanity on the synthetic curves: end points ordered.
        let c = GradingCurves::cinematic();
        for ch in &c.curves {
            assert!(ch[255] > ch[0]);
            assert_eq!(ch.len(), 256);
        }
    }

    #[test]
    fn binarize_extreme_thresholds() {
        let img = Image::synthetic(4, 100);
        let all_white = binarize_reference(&img, 0);
        assert!(all_white.channels[0].iter().all(|&p| p == 255));
        let mut m = machine();
        let out = binarize_pluto(&mut m, &img, 0).unwrap();
        assert_eq!(out, all_white);
    }
}

// --- Pluggable scenarios ------------------------------------------------

use pluto_baselines::WorkloadId;
use pluto_core::session::{Session, Workload};
use sim_support::StdRng;

fn encode_image(img: &Image) -> Vec<u8> {
    img.channels
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect()
}

/// Splits an image into measurement-tile-sized sub-images (all three
/// channel planes cut at the same pixel boundaries) for cluster shard
/// fan-out.
fn image_tiles(img: &Image) -> Vec<Image> {
    let chunk = crate::MEASURE_BATCH_ELEMS;
    (0..img.pixels)
        .step_by(chunk.max(1))
        .map(|start| {
            let end = (start + chunk).min(img.pixels);
            Image {
                pixels: end - start,
                channels: [0, 1, 2].map(|c| img.channels[c][start..end].to_vec()),
            }
        })
        .collect()
}

/// The image binarization workload (Table 4) as a pluggable [`Workload`]
/// scenario: a 3-channel synthetic image at the paper's 50% threshold,
/// one measurement tile by default.
#[derive(Debug)]
pub struct BinarizeWorkload {
    img: Image,
    pixels: usize,
    /// Shards pin their tile; `prepare` must not regenerate it.
    pinned: bool,
    threshold: u8,
}

impl BinarizeWorkload {
    /// A scenario over the paper-pinned synthetic tile.
    pub fn new() -> Self {
        BinarizeWorkload::with_pixels(crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a `pixels`-pixel synthetic image; images larger
    /// than one measurement tile split into per-tile
    /// [`Workload::shards`].
    pub fn with_pixels(pixels: usize) -> Self {
        BinarizeWorkload {
            img: Image::synthetic(5, pixels),
            pixels,
            pinned: false,
            threshold: 128,
        }
    }
}

impl Default for BinarizeWorkload {
    fn default() -> Self {
        BinarizeWorkload::new()
    }
}

impl Workload for BinarizeWorkload {
    fn id(&self) -> &'static str {
        WorkloadId::ImgBin.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.img = Image::synthetic(5, self.pixels);
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = binarize_pluto(sess.machine_mut(), &self.img, self.threshold)?;
        Ok(encode_image(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        encode_image(&binarize_reference(&self.img, self.threshold))
    }

    fn input_bytes(&self) -> f64 {
        (3 * self.img.pixels) as f64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        image_tiles(&self.img)
            .into_iter()
            .map(|tile| {
                Box::new(BinarizeWorkload {
                    pixels: tile.pixels,
                    img: tile,
                    pinned: true,
                    threshold: self.threshold,
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

/// The color-grading workload (Table 4) as a pluggable [`Workload`]
/// scenario: the cinematic curve set over a 3-channel synthetic image,
/// one measurement tile by default.
#[derive(Debug)]
pub struct GradeWorkload {
    img: Image,
    pixels: usize,
    /// Shards pin their tile; `prepare` must not regenerate it.
    pinned: bool,
    curves: GradingCurves,
}

impl GradeWorkload {
    /// A scenario over the paper-pinned synthetic tile.
    pub fn new() -> Self {
        GradeWorkload::with_pixels(crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a `pixels`-pixel synthetic image; images larger
    /// than one measurement tile split into per-tile
    /// [`Workload::shards`].
    pub fn with_pixels(pixels: usize) -> Self {
        GradeWorkload {
            img: Image::synthetic(6, pixels),
            pixels,
            pinned: false,
            curves: GradingCurves::cinematic(),
        }
    }
}

impl Default for GradeWorkload {
    fn default() -> Self {
        GradeWorkload::new()
    }
}

impl Workload for GradeWorkload {
    fn id(&self) -> &'static str {
        WorkloadId::ColorGrade.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.img = Image::synthetic(6, self.pixels);
            self.curves = GradingCurves::cinematic();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = grade_pluto(sess.machine_mut(), &self.img, &self.curves)?;
        Ok(encode_image(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        encode_image(&self.curves.apply_reference(&self.img))
    }

    fn input_bytes(&self) -> f64 {
        (3 * self.img.pixels) as f64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        image_tiles(&self.img)
            .into_iter()
            .map(|tile| {
                Box::new(GradeWorkload {
                    pixels: tile.pixels,
                    img: tile,
                    pinned: true,
                    curves: self.curves.clone(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}
