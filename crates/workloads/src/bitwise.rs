//! Row-level bitwise logic (paper Table 4: "Row-Level Bitwise Logic
//! Operations, # LUT entries: 4").
//!
//! A 4-entry LUT means a 2-bit index — i.e. the operands are processed as
//! *paired single bits*. The pLUTo mapping therefore bit-slices each byte
//! vector into eight bit planes and issues one 4-entry-LUT query stream per
//! plane. (Ambit can do AND/OR natively; XOR/XNOR are where pLUTo's LUT
//! flexibility pays off — Table 6.)

use pluto_core::lut::catalog;
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// The row-level bitwise operations evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BitOp {
    And,
    Or,
    Xor,
    Xnor,
    Not,
}

impl BitOp {
    /// All five operations.
    pub const ALL: [BitOp; 5] = [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::Xnor, BitOp::Not];

    /// Reference semantics on bytes.
    pub fn reference(self, a: u8, b: u8) -> u8 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
            BitOp::Xnor => !(a ^ b),
            BitOp::Not => !a,
        }
    }

    /// The paired-bit (4-entry or 2-entry) LUT for this operation.
    ///
    /// # Errors
    /// Never fails for these widths; the `Result` mirrors LUT construction.
    pub fn lut(self) -> Result<Lut, PlutoError> {
        match self {
            BitOp::And => catalog::and(1),
            BitOp::Or => catalog::or(1),
            BitOp::Xor => catalog::xor(1),
            BitOp::Xnor => catalog::xnor(1),
            BitOp::Not => catalog::not(1),
        }
    }
}

/// Reference byte-vector operation.
pub fn bitwise_reference(op: BitOp, a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter()
        .zip(b.iter().chain(std::iter::repeat(&0)))
        .map(|(&x, &y)| op.reference(x, y))
        .collect()
}

/// pLUTo byte-vector operation via eight bit-plane query streams of the
/// 4-entry LUT.
///
/// # Errors
/// Propagates machine errors.
pub fn bitwise_pluto(
    m: &mut PlutoMachine,
    op: BitOp,
    a: &[u8],
    b: &[u8],
) -> Result<Vec<u8>, PlutoError> {
    let lut = op.lut()?;
    let mut out = vec![0u8; a.len()];
    // Bit-plane staging buffers shared by all eight planes.
    let mut pa: Vec<u64> = Vec::with_capacity(a.len());
    let mut pb: Vec<u64> = Vec::with_capacity(b.len());
    for bit in 0..8u32 {
        pa.clear();
        pa.extend(a.iter().map(|&x| ((x >> bit) & 1) as u64));
        let result = if op == BitOp::Not {
            m.apply(&lut, &pa)?.values
        } else {
            pb.clear();
            pb.extend(b.iter().map(|&x| ((x >> bit) & 1) as u64));
            m.apply2(&lut, &pa, 1, &pb, 1)?.values
        };
        for (i, v) in result.iter().enumerate() {
            out[i] |= (*v as u8) << bit;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::DesignKind;
    use pluto_dram::DramConfig;

    fn machine() -> PlutoMachine {
        PlutoMachine::new(
            DramConfig {
                row_bytes: 64,
                burst_bytes: 8,
                banks: 2,
                subarrays_per_bank: 32,
                rows_per_subarray: 64,
                ..DramConfig::ddr4_2400()
            },
            DesignKind::Gmc,
        )
        .unwrap()
    }

    #[test]
    fn all_ops_match_reference() {
        let a: Vec<u8> = gen::values(61, 48, 8).iter().map(|&v| v as u8).collect();
        let b: Vec<u8> = gen::values(62, 48, 8).iter().map(|&v| v as u8).collect();
        for op in BitOp::ALL {
            let mut m = machine();
            let out = bitwise_pluto(&mut m, op, &a, &b).unwrap();
            assert_eq!(out, bitwise_reference(op, &a, &b), "{op:?}");
        }
    }

    #[test]
    fn four_entry_luts() {
        // Table 4: the row-level bitwise workload uses 4-entry LUTs.
        assert_eq!(BitOp::Xor.lut().unwrap().len(), 4);
        assert_eq!(BitOp::And.lut().unwrap().len(), 4);
        assert_eq!(BitOp::Not.lut().unwrap().len(), 2);
    }

    #[test]
    fn xnor_is_complement_of_xor() {
        let a: Vec<u8> = vec![0xAA, 0x0F, 0xFF];
        let b: Vec<u8> = vec![0x55, 0x0F, 0x00];
        let x = bitwise_reference(BitOp::Xor, &a, &b);
        let nx = bitwise_reference(BitOp::Xnor, &a, &b);
        for (p, q) in x.iter().zip(&nx) {
            assert_eq!(p ^ q, 0xFF);
        }
    }
}

// --- Pluggable scenario -------------------------------------------------

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::session::Session;
use pluto_core::Workload;
use sim_support::StdRng;

/// The row-level bitwise workload (Table 4) as a pluggable [`Workload`]
/// scenario: bulk XOR — the operation prior PuM cannot run natively —
/// over one byte-vector measurement batch.
#[derive(Debug)]
pub struct BitwiseWorkload {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl BitwiseWorkload {
    /// A scenario over the paper-pinned operand vectors.
    pub fn new() -> Self {
        let mut w = BitwiseWorkload {
            a: Vec::new(),
            b: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.a = gen::values(18, crate::MEASURE_BATCH_ELEMS, 8)
            .iter()
            .map(|&v| v as u8)
            .collect();
        self.b = gen::values(19, crate::MEASURE_BATCH_ELEMS, 8)
            .iter()
            .map(|&v| v as u8)
            .collect();
    }
}

impl Default for BitwiseWorkload {
    fn default() -> Self {
        BitwiseWorkload::new()
    }
}

impl Workload for BitwiseWorkload {
    fn id(&self) -> &'static str {
        WorkloadId::BitwiseRow.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        self.regenerate();
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        bitwise_pluto(sess.machine_mut(), BitOp::Xor, &self.a, &self.b)
    }

    fn run_reference(&self) -> Vec<u8> {
        bitwise_reference(BitOp::Xor, &self.a, &self.b)
    }

    fn input_bytes(&self) -> f64 {
        (self.a.len() + self.b.len()) as f64
    }

    fn min_subarrays(&self) -> u16 {
        32
    }
}
