//! Salsa20 stream cipher (paper Table 4: 512-byte packets).
//!
//! **Reference**: the full Salsa20/20 core from Bernstein's specification
//! (quarter-round → row-round/column-round → double-round ×10, feed-forward
//! add), plus keystream encryption of packets.
//!
//! **pLUTo mapping**: the core's three primitive operations — 32-bit
//! modular addition, XOR, and fixed-distance rotation — run on nibble
//! planes via [`crate::wide`]: additions as ripple-carry 4-bit LUT adds,
//! XORs as paired-nibble LUT queries, rotations as plane renaming plus an
//! 8-bit → 4-bit merge LUT. One simulated run encrypts *all packets in
//! parallel* (one slot per packet/block).

use crate::wide::{self, Planes};
use pluto_core::{PlutoError, PlutoMachine};

/// The Salsa20 rotation constants per quarter-round step.
const ROTATIONS: [u32; 4] = [7, 9, 13, 18];

/// Reference quarter-round (Bernstein's spec §3).
pub fn quarterround(y: [u32; 4]) -> [u32; 4] {
    let z1 = y[1] ^ y[0].wrapping_add(y[3]).rotate_left(ROTATIONS[0]);
    let z2 = y[2] ^ z1.wrapping_add(y[0]).rotate_left(ROTATIONS[1]);
    let z3 = y[3] ^ z2.wrapping_add(z1).rotate_left(ROTATIONS[2]);
    let z0 = y[0] ^ z3.wrapping_add(z2).rotate_left(ROTATIONS[3]);
    [z0, z1, z2, z3]
}

fn rowround(y: [u32; 16]) -> [u32; 16] {
    let mut z = [0u32; 16];
    let idx = [[0, 1, 2, 3], [5, 6, 7, 4], [10, 11, 8, 9], [15, 12, 13, 14]];
    for row in idx {
        let q = quarterround([y[row[0]], y[row[1]], y[row[2]], y[row[3]]]);
        for (k, &i) in row.iter().enumerate() {
            z[i] = q[k];
        }
    }
    z
}

fn columnround(x: [u32; 16]) -> [u32; 16] {
    let mut z = [0u32; 16];
    let idx = [[0, 4, 8, 12], [5, 9, 13, 1], [10, 14, 2, 6], [15, 3, 7, 11]];
    for col in idx {
        let q = quarterround([x[col[0]], x[col[1]], x[col[2]], x[col[3]]]);
        for (k, &i) in col.iter().enumerate() {
            z[i] = q[k];
        }
    }
    z
}

/// Reference Salsa20/20 core: 10 double-rounds plus the feed-forward add.
pub fn salsa20_core(input: [u32; 16]) -> [u32; 16] {
    let mut x = input;
    for _ in 0..10 {
        x = rowround(columnround(x));
    }
    let mut out = [0u32; 16];
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
    out
}

/// Builds the Salsa20 initial state for (key, nonce, counter) — 256-bit key
/// variant with the "expand 32-byte k" constants.
pub fn initial_state(key: &[u8; 32], nonce: &[u8; 8], counter: u64) -> [u32; 16] {
    let word = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let mut s = [0u32; 16];
    s[0] = 0x61707865;
    s[5] = 0x3320646e;
    s[10] = 0x79622d32;
    s[15] = 0x6b206574;
    for i in 0..4 {
        s[1 + i] = word(&key[4 * i..]);
        s[11 + i] = word(&key[16 + 4 * i..]);
    }
    s[6] = word(&nonce[0..]);
    s[7] = word(&nonce[4..]);
    s[8] = counter as u32;
    s[9] = (counter >> 32) as u32;
    s
}

/// Reference encryption of one packet (keystream XOR).
pub fn encrypt_reference(key: &[u8; 32], nonce: &[u8; 8], packet: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(packet.len());
    for (block_i, chunk) in packet.chunks(64).enumerate() {
        let ks = salsa20_core(initial_state(key, nonce, block_i as u64));
        for (j, &byte) in chunk.iter().enumerate() {
            let ks_byte = (ks[j / 4] >> (8 * (j % 4))) as u8;
            out.push(byte ^ ks_byte);
        }
    }
    out
}

// ------------------------------------------------------------------
// pLUTo mapping: states as 16 nibble-plane vectors (one slot per block).
// ------------------------------------------------------------------

/// Per-block Salsa20 state vectorized across blocks.
#[derive(Debug, Clone)]
pub struct VectorState {
    /// `words[i]` holds word `i` of every block's state.
    pub words: Vec<Planes>,
}

impl VectorState {
    /// Builds the vector state from per-block scalar states.
    pub fn from_states(states: &[[u32; 16]]) -> Self {
        let words = (0..16)
            .map(|w| {
                let vals: Vec<u64> = states.iter().map(|s| s[w] as u64).collect();
                Planes::from_values(&vals, 8)
            })
            .collect();
        VectorState { words }
    }

    /// Extracts per-block scalar states.
    pub fn to_states(&self) -> Vec<[u32; 16]> {
        let n = self.words[0].len();
        let cols: Vec<Vec<u64>> = self.words.iter().map(Planes::to_values).collect();
        (0..n)
            .map(|i| {
                let mut s = [0u32; 16];
                for w in 0..16 {
                    s[w] = cols[w][i] as u32;
                }
                s
            })
            .collect()
    }
}

fn quarterround_pluto(m: &mut PlutoMachine, y: [&Planes; 4]) -> Result<[Planes; 4], PlutoError> {
    let t = wide::add(m, y[0], y[3], false)?;
    let r = wide::rotl32(m, &t, ROTATIONS[0])?;
    let z1 = wide::xor(m, y[1], &r)?;
    let t = wide::add(m, &z1, y[0], false)?;
    let r = wide::rotl32(m, &t, ROTATIONS[1])?;
    let z2 = wide::xor(m, y[2], &r)?;
    let t = wide::add(m, &z2, &z1, false)?;
    let r = wide::rotl32(m, &t, ROTATIONS[2])?;
    let z3 = wide::xor(m, y[3], &r)?;
    let t = wide::add(m, &z3, &z2, false)?;
    let r = wide::rotl32(m, &t, ROTATIONS[3])?;
    let z0 = wide::xor(m, y[0], &r)?;
    Ok([z0, z1, z2, z3])
}

fn round_pluto(
    m: &mut PlutoMachine,
    state: &mut VectorState,
    groups: [[usize; 4]; 4],
) -> Result<(), PlutoError> {
    for g in groups {
        let q = quarterround_pluto(
            m,
            [
                &state.words[g[0]],
                &state.words[g[1]],
                &state.words[g[2]],
                &state.words[g[3]],
            ],
        )?;
        for (k, &i) in g.iter().enumerate() {
            state.words[i] = q[k].clone();
        }
    }
    Ok(())
}

/// Runs the Salsa20 core on every block in parallel; `double_rounds = 10`
/// is the full Salsa20/20 (reduced-round variants are used by fast tests).
///
/// # Errors
/// Propagates machine errors.
pub fn salsa20_core_pluto(
    m: &mut PlutoMachine,
    states: &[[u32; 16]],
    double_rounds: usize,
) -> Result<Vec<[u32; 16]>, PlutoError> {
    let input = VectorState::from_states(states);
    let mut x = VectorState {
        words: input.words.clone(),
    };
    let columns = [[0, 4, 8, 12], [5, 9, 13, 1], [10, 14, 2, 6], [15, 3, 7, 11]];
    let rows = [[0, 1, 2, 3], [5, 6, 7, 4], [10, 11, 8, 9], [15, 12, 13, 14]];
    for _ in 0..double_rounds {
        round_pluto(m, &mut x, columns)?;
        round_pluto(m, &mut x, rows)?;
    }
    // Feed-forward addition.
    for w in 0..16 {
        x.words[w] = wide::add(m, &x.words[w], &input.words[w], false)?;
    }
    Ok(x.to_states())
}

/// Full pLUTo packet encryption: generates every block's keystream with
/// the in-DRAM core, then XORs it into the packets with nibble-plane LUT
/// queries (the complete Table 4 workload, end to end in memory).
///
/// All packets must share one length that is a multiple of 64 bytes.
///
/// # Errors
/// Propagates machine errors; fails on ragged or non-block-aligned input.
pub fn encrypt_pluto(
    m: &mut PlutoMachine,
    key: &[u8; 32],
    nonce: &[u8; 8],
    packets: &[Vec<u8>],
    double_rounds: usize,
) -> Result<Vec<Vec<u8>>, PlutoError> {
    let Some(len) = packets.first().map(Vec::len) else {
        return Ok(Vec::new());
    };
    if packets.iter().any(|p| p.len() != len) || len % 64 != 0 {
        return Err(PlutoError::LayoutMismatch {
            reason: "packets must share one 64-byte-aligned length".into(),
        });
    }
    let blocks_per_packet = len / 64;
    // One state per (packet, block) pair; all swept in parallel.
    let states: Vec<[u32; 16]> = (0..packets.len() * blocks_per_packet)
        .map(|i| initial_state(key, nonce, (i % blocks_per_packet) as u64))
        .collect();
    let keystream = salsa20_core_pluto(m, &states, double_rounds)?;
    // XOR the keystream into the data, word-plane by word-plane, in DRAM.
    let mut out = vec![vec![0u8; len]; packets.len()];
    for w in 0..16usize {
        let data_words: Vec<u64> = (0..states.len())
            .map(|s| {
                let pkt = s / blocks_per_packet;
                let off = (s % blocks_per_packet) * 64 + w * 4;
                u32::from_le_bytes([
                    packets[pkt][off],
                    packets[pkt][off + 1],
                    packets[pkt][off + 2],
                    packets[pkt][off + 3],
                ]) as u64
            })
            .collect();
        let ks_words: Vec<u64> = keystream.iter().map(|st| st[w] as u64).collect();
        let cipher = wide::xor(
            m,
            &Planes::from_values(&data_words, 8),
            &Planes::from_values(&ks_words, 8),
        )?
        .to_values();
        for (s, &cw) in cipher.iter().enumerate() {
            let pkt = s / blocks_per_packet;
            let off = (s % blocks_per_packet) * 64 + w * 4;
            out[pkt][off..off + 4].copy_from_slice(&(cw as u32).to_le_bytes());
        }
    }
    Ok(out)
}

/// Reference core with a configurable number of double-rounds (for
/// cross-validation against the reduced-round pLUTo runs).
pub fn salsa20_core_reduced(input: [u32; 16], double_rounds: usize) -> [u32; 16] {
    let mut x = input;
    for _ in 0..double_rounds {
        x = rowround(columnround(x));
    }
    let mut out = [0u32; 16];
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_core::DesignKind;

    #[test]
    fn quarterround_spec_vectors() {
        // Test vectors from the Salsa20 specification (Bernstein, §3).
        assert_eq!(quarterround([0, 0, 0, 0]), [0, 0, 0, 0]);
        assert_eq!(
            quarterround([0x00000001, 0, 0, 0]),
            [0x08008145, 0x00000080, 0x00010200, 0x20500000]
        );
        assert_eq!(
            quarterround([0, 0x00000001, 0, 0]),
            [0x88000100, 0x00000001, 0x00000200, 0x00402000]
        );
    }

    #[test]
    fn core_changes_and_feedforward() {
        let s = initial_state(&[7u8; 32], &[1u8; 8], 0);
        let out = salsa20_core(s);
        assert_ne!(out, s);
        // Zero double-rounds: the core is exactly input + input.
        let ff = salsa20_core_reduced(s, 0);
        for i in 0..16 {
            assert_eq!(ff[i], s[i].wrapping_add(s[i]));
        }
    }

    #[test]
    fn encryption_roundtrips() {
        let key = [9u8; 32];
        let nonce = [3u8; 8];
        let pkt: Vec<u8> = (0..100u16).map(|i| (i * 7) as u8).collect();
        let ct = encrypt_reference(&key, &nonce, &pkt);
        assert_ne!(ct, pkt);
        let pt = encrypt_reference(&key, &nonce, &ct);
        assert_eq!(pt, pkt);
    }

    #[test]
    fn pluto_core_matches_reference_one_double_round() {
        // One double-round exercises every op class (add/xor/all four
        // rotation constants); the full 20-round run is covered by the
        // (slower) integration suite.
        let states: Vec<[u32; 16]> = (0..3u32)
            .map(|k| initial_state(&[k as u8; 32], &[5u8; 8], k as u64))
            .collect();
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let out = salsa20_core_pluto(&mut m, &states, 1).unwrap();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(out[i], salsa20_core_reduced(*s, 1), "block {i}");
        }
    }

    #[test]
    fn pluto_encryption_roundtrips_and_matches_reference_shape() {
        // Reduced-round end-to-end encryption: encrypt-then-encrypt with
        // the same keystream must recover the plaintext, and the keystream
        // must match the reduced-round reference core.
        let key = [5u8; 32];
        let nonce = [2u8; 8];
        let packets = crate::gen::packets(99, 2, 64);
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let ct = encrypt_pluto(&mut m, &key, &nonce, &packets, 1).unwrap();
        assert_ne!(ct, packets);
        let pt = encrypt_pluto(&mut m, &key, &nonce, &ct, 1).unwrap();
        assert_eq!(pt, packets);
        // Keystream agreement with the reference core.
        let ks = salsa20_core_reduced(initial_state(&key, &nonce, 0), 1);
        let first_word = u32::from_le_bytes([ct[0][0], ct[0][1], ct[0][2], ct[0][3]]);
        let data_word =
            u32::from_le_bytes([packets[0][0], packets[0][1], packets[0][2], packets[0][3]]);
        assert_eq!(first_word, data_word ^ ks[0]);
    }

    #[test]
    fn pluto_encryption_rejects_bad_shapes() {
        let mut m = wide::test_machine(DesignKind::Bsa).unwrap();
        let ragged = vec![vec![0u8; 64], vec![0u8; 128]];
        assert!(encrypt_pluto(&mut m, &[0; 32], &[0; 8], &ragged, 1).is_err());
        let unaligned = vec![vec![0u8; 60]];
        assert!(encrypt_pluto(&mut m, &[0; 32], &[0; 8], &unaligned, 1).is_err());
        assert!(encrypt_pluto(&mut m, &[0; 32], &[0; 8], &[], 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn vector_state_roundtrip() {
        let states: Vec<[u32; 16]> = (0..4u32)
            .map(|k| {
                let mut s = [0u32; 16];
                for (w, slot) in s.iter_mut().enumerate() {
                    *slot = k * 131 + w as u32 * 7919;
                }
                s
            })
            .collect();
        let v = VectorState::from_states(&states);
        assert_eq!(v.to_states(), states);
    }
}

// --- Pluggable scenario -------------------------------------------------

use pluto_baselines::WorkloadId;
use pluto_core::session::{Session, Workload};
use sim_support::StdRng;

/// Blocks in one Salsa20 measurement batch.
const MEASURE_BLOCKS: usize = 96;

/// The Salsa20 workload (Table 4) as a pluggable [`Workload`] scenario:
/// the full 10-double-round core over one batch of 64 B blocks.
#[derive(Debug)]
pub struct Salsa20Workload {
    states: Vec<[u32; 16]>,
}

impl Salsa20Workload {
    /// A scenario over the paper-pinned key/nonce/counter schedule.
    pub fn new() -> Self {
        let mut w = Salsa20Workload { states: Vec::new() };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.states = (0..MEASURE_BLOCKS)
            .map(|i| initial_state(&[7u8; 32], &[1u8; 8], i as u64))
            .collect();
    }

    fn encode(states: &[[u32; 16]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(states.len() * 64);
        for s in states {
            for w in s {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }
}

impl Default for Salsa20Workload {
    fn default() -> Self {
        Salsa20Workload::new()
    }
}

impl Workload for Salsa20Workload {
    fn id(&self) -> &'static str {
        WorkloadId::Salsa20.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        self.regenerate();
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = salsa20_core_pluto(sess.machine_mut(), &self.states, 10)?;
        Ok(Salsa20Workload::encode(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        let expect: Vec<[u32; 16]> = self.states.iter().map(|&s| salsa20_core(s)).collect();
        Salsa20Workload::encode(&expect)
    }

    fn input_bytes(&self) -> f64 {
        (self.states.len() * 64) as f64
    }

    fn min_subarrays(&self) -> u16 {
        128
    }
}
