//! Nibble-plane wide arithmetic on a [`PlutoMachine`].
//!
//! pLUTo LUTs are small (≤ the subarray's row count, §5.6), so wide
//! arithmetic is decomposed into 4-bit limbs: a `4L`-bit vector is held as
//! `L` *planes* of 4-bit elements (plane 0 = least significant nibble).
//! All plane operations are bulk LUT queries or Ambit/DRISA commands —
//! exactly the decomposition the paper's library would emit for the
//! Salsa20, VMPC, and Q-format multiply workloads.

use pluto_core::lut::{catalog, Lut};
use pluto_core::{DesignKind, PlutoError, PlutoMachine};

/// A vector of `4 × planes.len()`-bit values in nibble-plane form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Planes {
    /// `planes[l][i]` is bits `4l..4l+4` of element `i`.
    pub planes: Vec<Vec<u64>>,
}

impl Planes {
    /// Splits `values` (each below `2^(4·limbs)`) into nibble planes.
    pub fn from_values(values: &[u64], limbs: usize) -> Self {
        let planes = (0..limbs)
            .map(|l| values.iter().map(|&v| (v >> (4 * l)) & 0xF).collect())
            .collect();
        Planes { planes }
    }

    /// Reassembles the wide values.
    pub fn to_values(&self) -> Vec<u64> {
        let n = self.planes.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| {
                self.planes
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (l, p)| acc | (p[i] << (4 * l)))
            })
            .collect()
    }

    /// Number of 4-bit limbs.
    pub fn limbs(&self) -> usize {
        self.planes.len()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.planes.first().map_or(0, Vec::len)
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn addc_lut() -> Result<Lut, PlutoError> {
    // (sum5 << 1 | carry_in) -> sum5 + carry_in. Real sums never exceed
    // 15 + 15 + 1 = 31, but the LUT tabulates every 6-bit index, so the
    // output width is 6 bits.
    Lut::from_fn("addc5", 6, 6, |x| (x >> 1) + (x & 1))
}

fn low4_lut() -> Result<Lut, PlutoError> {
    Lut::from_fn("low4of6", 6, 4, |x| x & 0xF)
}

fn carry_lut() -> Result<Lut, PlutoError> {
    Lut::from_fn("carry6", 6, 1, |x| (x >> 4) & 1)
}

fn low4of8_lut() -> Result<Lut, PlutoError> {
    Lut::from_fn("low4of8", 8, 4, |x| x & 0xF)
}

fn hi4of8_lut() -> Result<Lut, PlutoError> {
    Lut::from_fn("hi4of8", 8, 4, |x| x >> 4)
}

/// `a + b (+ carry_in) mod 2^(4·limbs)`, ripple-carry over 4-bit LUT adds.
///
/// # Errors
/// Propagates machine errors.
pub fn add(
    m: &mut PlutoMachine,
    a: &Planes,
    b: &Planes,
    carry_in: bool,
) -> Result<Planes, PlutoError> {
    assert_eq!(a.limbs(), b.limbs(), "operand widths must match");
    let n = a.len();
    let add4 = catalog::add(4)?;
    let addc = addc_lut()?;
    let low4 = low4_lut()?;
    let carry6 = carry_lut()?;
    let mut carry: Vec<u64> = vec![u64::from(carry_in); n];
    let mut out = Vec::with_capacity(a.limbs());
    for l in 0..a.limbs() {
        let s1 = m.apply2(&add4, &a.planes[l], 4, &b.planes[l], 4)?.values;
        let s2 = m.apply2(&addc, &s1, 5, &carry, 1)?.values;
        out.push(m.apply(&low4, &s2)?.values);
        carry = m.apply(&carry6, &s2)?.values;
    }
    Ok(Planes { planes: out })
}

/// `a - b mod 2^(4·limbs)` via two's complement: `a + NOT(b) + 1`.
///
/// # Errors
/// Propagates machine errors.
pub fn sub(m: &mut PlutoMachine, a: &Planes, b: &Planes) -> Result<Planes, PlutoError> {
    let not4 = catalog::not(4)?;
    let mut nb = Vec::with_capacity(b.limbs());
    for p in &b.planes {
        nb.push(m.apply(&not4, p)?.values);
    }
    add(m, a, &Planes { planes: nb }, true)
}

/// Plane-wise bitwise XOR via 4-entry-per-pair LUT queries.
///
/// # Errors
/// Propagates machine errors.
pub fn xor(m: &mut PlutoMachine, a: &Planes, b: &Planes) -> Result<Planes, PlutoError> {
    assert_eq!(a.limbs(), b.limbs());
    let xor4 = catalog::xor(4)?;
    let mut out = Vec::with_capacity(a.limbs());
    for l in 0..a.limbs() {
        out.push(m.apply2(&xor4, &a.planes[l], 4, &b.planes[l], 4)?.values);
    }
    Ok(Planes { planes: out })
}

/// Left-rotation of 32-bit values (8 limbs) by `r` bits: whole-nibble
/// rotation is plane renaming (free, like the paper's row-address
/// remapping); the residual `r mod 4` bits merge adjacent planes through an
/// 8-bit → 4-bit LUT.
///
/// # Errors
/// Propagates machine errors.
pub fn rotl32(m: &mut PlutoMachine, a: &Planes, r: u32) -> Result<Planes, PlutoError> {
    assert_eq!(a.limbs(), 8, "rotl32 requires 32-bit (8-limb) values");
    let r = r % 32;
    let plane_rot = (r / 4) as usize;
    let s = r % 4;
    // Rotate planes: new plane l = old plane (l - plane_rot) mod 8.
    let rotated: Vec<Vec<u64>> = (0..8)
        .map(|l| a.planes[(l + 8 - plane_rot) % 8].clone())
        .collect();
    if s == 0 {
        return Ok(Planes { planes: rotated });
    }
    // new[l] = ((rot[l] << s) | (rot[l-1] >> (4-s))) & 0xF
    let merge = Lut::from_fn(format!("rotmerge{s}"), 8, 4, move |x| {
        let hi = x >> 4;
        let lo = x & 0xF;
        ((hi << s) | (lo >> (4 - s))) & 0xF
    })?;
    let mut out = Vec::with_capacity(8);
    for l in 0..8 {
        let prev = &rotated[(l + 7) % 8];
        out.push(m.apply2(&merge, &rotated[l], 4, prev, 4)?.values);
    }
    Ok(Planes { planes: out })
}

/// Schoolbook multiplication over 4-bit limbs: `a × b` producing
/// `a.limbs() + b.limbs()` limbs. Each partial product is one `mul4` LUT
/// query; accumulation uses the ripple-carry adder above.
///
/// # Errors
/// Propagates machine errors.
pub fn mul(m: &mut PlutoMachine, a: &Planes, b: &Planes) -> Result<Planes, PlutoError> {
    let n = a.len();
    let out_limbs = a.limbs() + b.limbs();
    let mul4 = catalog::mul(4)?;
    let low = low4of8_lut()?;
    let hi = hi4of8_lut()?;
    let zero: Vec<u64> = vec![0; n];
    let mut acc = Planes {
        planes: vec![zero.clone(); out_limbs],
    };
    for i in 0..a.limbs() {
        for j in 0..b.limbs() {
            let p = m.apply2(&mul4, &a.planes[i], 4, &b.planes[j], 4)?.values;
            let lo_p = m.apply(&low, &p)?.values;
            let hi_p = m.apply(&hi, &p)?.values;
            // Partial product shifted to limb position i + j.
            let mut planes = vec![zero.clone(); out_limbs];
            planes[i + j] = lo_p;
            if i + j + 1 < out_limbs {
                planes[i + j + 1] = hi_p;
            }
            acc = add(m, &acc, &Planes { planes }, false)?;
        }
    }
    Ok(acc)
}

/// Logical right shift of nibble-plane values by `bits` (vacated high bits
/// fill with zero).
///
/// # Errors
/// Propagates machine errors.
pub fn shr(m: &mut PlutoMachine, a: &Planes, bits: u32) -> Result<Planes, PlutoError> {
    let limbs = a.limbs();
    let n = a.len();
    let plane_shift = (bits / 4) as usize;
    let s = bits % 4;
    let zero: Vec<u64> = vec![0; n];
    let shifted: Vec<Vec<u64>> = (0..limbs)
        .map(|l| {
            a.planes
                .get(l + plane_shift)
                .cloned()
                .unwrap_or_else(|| zero.clone())
        })
        .collect();
    if s == 0 {
        return Ok(Planes { planes: shifted });
    }
    // new[l] = (cur >> s) | ((next << (4-s)) & 0xF)
    let merge = Lut::from_fn(format!("shrmerge{s}"), 8, 4, move |x| {
        let next = x >> 4;
        let cur = x & 0xF;
        ((cur >> s) | (next << (4 - s))) & 0xF
    })?;
    let mut out = Vec::with_capacity(limbs);
    for l in 0..limbs {
        let next = shifted.get(l + 1).cloned().unwrap_or_else(|| zero.clone());
        out.push(m.apply2(&merge, &next, 4, &shifted[l], 4)?.values);
    }
    Ok(Planes { planes: out })
}

/// A fresh machine suitable for wide-arithmetic workloads (enough subarray
/// pairs for the LUT working set).
///
/// # Errors
/// Propagates machine construction errors.
pub fn test_machine(design: DesignKind) -> Result<PlutoMachine, PlutoError> {
    PlutoMachine::new(
        pluto_dram::DramConfig {
            row_bytes: 128,
            burst_bytes: 16,
            banks: 2,
            subarrays_per_bank: 128,
            rows_per_subarray: 512,
            ..pluto_dram::DramConfig::ddr4_2400()
        },
        design,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_roundtrip() {
        let vals = vec![0xDEADBEEF, 0x01234567, 0, 0xFFFFFFFF];
        let p = Planes::from_values(&vals, 8);
        assert_eq!(p.to_values(), vals);
        assert_eq!(p.limbs(), 8);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn add_mod_2_32() {
        let mut m = test_machine(DesignKind::Gmc).unwrap();
        let a: Vec<u64> = vec![0xFFFFFFFF, 1, 0x80000000, 0x12345678];
        let b: Vec<u64> = vec![1, 2, 0x80000000, 0x9ABCDEF0];
        let pa = Planes::from_values(&a, 8);
        let pb = Planes::from_values(&b, 8);
        let sum = add(&mut m, &pa, &pb, false).unwrap().to_values();
        let expect: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x + y) & 0xFFFFFFFF)
            .collect();
        assert_eq!(sum, expect);
    }

    #[test]
    fn sub_is_twos_complement() {
        let mut m = test_machine(DesignKind::Gmc).unwrap();
        let a: Vec<u64> = vec![5, 0, 0x10000];
        let b: Vec<u64> = vec![7, 1, 1];
        let pa = Planes::from_values(&a, 8);
        let pb = Planes::from_values(&b, 8);
        let d = sub(&mut m, &pa, &pb).unwrap().to_values();
        let expect: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x.wrapping_sub(y) & 0xFFFFFFFF)
            .collect();
        assert_eq!(d, expect);
    }

    #[test]
    fn xor_matches_reference() {
        let mut m = test_machine(DesignKind::Bsa).unwrap();
        let a: Vec<u64> = vec![0xF0F0A5A5, 0x12345678];
        let b: Vec<u64> = vec![0x0FF05A5A, 0x87654321];
        let r = xor(
            &mut m,
            &Planes::from_values(&a, 8),
            &Planes::from_values(&b, 8),
        )
        .unwrap()
        .to_values();
        assert_eq!(r, vec![0xFF00FFFF, 0x95511559]);
    }

    #[test]
    fn rotl32_all_shift_classes() {
        let mut m = test_machine(DesignKind::Gmc).unwrap();
        let vals: Vec<u64> = vec![0x80000001, 0x12345678, 0xDEADBEEF];
        for r in [0u32, 4, 7, 9, 13, 18, 31] {
            let p = Planes::from_values(&vals, 8);
            let out = rotl32(&mut m, &p, r).unwrap().to_values();
            let expect: Vec<u64> = vals
                .iter()
                .map(|&v| ((v as u32).rotate_left(r)) as u64)
                .collect();
            assert_eq!(out, expect, "r = {r}");
        }
    }

    #[test]
    fn mul_8x8_to_16() {
        let mut m = test_machine(DesignKind::Gmc).unwrap();
        let a: Vec<u64> = vec![255, 16, 7, 200];
        let b: Vec<u64> = vec![255, 16, 13, 123];
        let pa = Planes::from_values(&a, 2);
        let pb = Planes::from_values(&b, 2);
        let p = mul(&mut m, &pa, &pb).unwrap();
        assert_eq!(p.limbs(), 4);
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(p.to_values(), expect);
    }

    #[test]
    fn shr_matches_reference() {
        let mut m = test_machine(DesignKind::Gmc).unwrap();
        let vals: Vec<u64> = vec![0xFFFF, 0x8000, 0x1234];
        for s in [0u32, 3, 4, 7, 8] {
            let p = Planes::from_values(&vals, 4);
            let out = shr(&mut m, &p, s).unwrap().to_values();
            let expect: Vec<u64> = vals.iter().map(|&v| (v >> s) & 0xFFFF).collect();
            assert_eq!(out, expect, "s = {s}");
        }
    }
}
