//! Direct large-table workloads exercising the §5.6 partitioned-LUT path.
//!
//! Both scenarios tabulate the *whole* function as one logical LUT that
//! exceeds `rows_per_subarray`, so every query runs through the
//! partitioned data path (`pluto_core::partition`) that the
//! machine/controller route oversized LUTs through transparently:
//!
//! * [`Gamma12Workload`] — a direct 12-bit → 8-bit tone map (4096-entry
//!   table, 8 segments on the 512-row measurement geometry): the
//!   wide-input pixel pipeline the paper's §5.6 flags as the regime where
//!   partitioning trades energy for capacity.
//! * [`MulDirect8Workload`] — a direct-table 8×8 → 16-bit multiply
//!   (65 536-entry table, 128 segments): the capacity–computation
//!   tradeoff in its purest form, contrasting with the existing
//!   nibble-plane `Mul8` mapping ([`crate::vecops::QMulWorkload`]) that
//!   decomposes the same product into 4-bit-limb LUTs.
//!
//! Under §5.6 cost semantics a partitioned query keeps single-query
//! latency but pays segment-count × energy, so these scenarios are
//! latency-competitive with the small-LUT workloads while their
//! energy-per-byte exposes the partitioning tax the related LUT-PIM
//! literature optimizes (LoCalut; Khabbazan et al.).

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::lut::catalog;
use pluto_core::session::{self, Session, Workload};
use pluto_core::{Lut, PlutoError, PlutoMachine};
use sim_support::StdRng;

/// The direct 12-bit → 8-bit tone-map curve: `y = round(255·√(x/4095))`,
/// a lift-the-shadows display gamma. `sqrt` is correctly rounded per
/// IEEE-754, so the table is bit-stable on every platform.
///
/// # Errors
/// Never fails for these widths; the `Result` mirrors [`Lut::from_fn`].
pub fn gamma12_lut() -> Result<Lut, PlutoError> {
    Lut::from_fn("gamma12", 12, 8, |x| {
        (255.0 * (x as f64 / 4095.0).sqrt()).round() as u64
    })
}

/// Reference tone map (host software).
pub fn gamma12_reference(pixels: &[u64]) -> Vec<u64> {
    pixels
        .iter()
        .map(|&x| (255.0 * (x as f64 / 4095.0).sqrt()).round() as u64)
        .collect()
}

/// pLUTo tone map: one partitioned 4096-entry LUT query stream.
///
/// # Errors
/// Propagates machine errors.
pub fn gamma12_pluto(m: &mut PlutoMachine, pixels: &[u64]) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply(&gamma12_lut()?, pixels)?.values)
}

/// Reference direct multiply (host software).
pub fn mul_direct8_reference(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// pLUTo direct multiply: the full 8×8 → 16 product as *one* partitioned
/// 65 536-entry LUT query stream (`lut[(a << 8) | b]`), instead of the
/// nibble-plane decomposition [`crate::vecops::q1_7_mul_pluto`] uses.
///
/// # Errors
/// Propagates machine errors.
pub fn mul_direct8_pluto(
    m: &mut PlutoMachine,
    a: &[u64],
    b: &[u64],
) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply2(&catalog::mul(8)?, a, 8, b, 8)?.values)
}

/// The direct 12-bit tone-map workload as a pluggable [`Workload`]
/// scenario over a synthetic 12-bit sensor plane.
#[derive(Debug)]
pub struct Gamma12Workload {
    elems: usize,
    /// Shards pin their input slice; `prepare` must not regenerate it.
    pinned: bool,
    pixels: Vec<u64>,
}

impl Gamma12Workload {
    /// A scenario over one measurement batch.
    pub fn new() -> Self {
        Gamma12Workload::with_batch(crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a batch of `elems` 12-bit pixels; oversize batches
    /// split into measurement-sized [`Workload::shards`].
    pub fn with_batch(elems: usize) -> Self {
        let mut w = Gamma12Workload {
            elems,
            pinned: false,
            pixels: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.pixels = gen::values(21, self.elems, 12);
    }
}

impl Default for Gamma12Workload {
    fn default() -> Self {
        Gamma12Workload::new()
    }
}

impl Workload for Gamma12Workload {
    fn id(&self) -> &'static str {
        WorkloadId::Gamma12.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = gamma12_pluto(sess.machine_mut(), &self.pixels)?;
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_words(&gamma12_reference(&self.pixels))
    }

    fn input_bytes(&self) -> f64 {
        self.pixels.len() as f64 * 12.0 / 8.0
    }

    fn min_subarrays(&self) -> u16 {
        // 8 segment pairs (4096 entries / 512 rows) after the data
        // subarray, plus headroom.
        20
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.pixels
            .chunks(crate::MEASURE_BATCH_ELEMS)
            .map(|chunk| {
                Box::new(Gamma12Workload {
                    elems: chunk.len(),
                    pinned: true,
                    pixels: chunk.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

/// The direct-table 8×8 → 16 multiply workload as a pluggable
/// [`Workload`] scenario.
#[derive(Debug)]
pub struct MulDirect8Workload {
    elems: usize,
    /// Shards pin their input slice; `prepare` must not regenerate it.
    pinned: bool,
    a: Vec<u64>,
    b: Vec<u64>,
}

impl MulDirect8Workload {
    /// A scenario over one measurement batch.
    pub fn new() -> Self {
        MulDirect8Workload::with_batch(crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a batch of `elems` operand pairs; oversize batches
    /// split into measurement-sized [`Workload::shards`].
    pub fn with_batch(elems: usize) -> Self {
        let mut w = MulDirect8Workload {
            elems,
            pinned: false,
            a: Vec::new(),
            b: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.a = gen::values(22, self.elems, 8);
        self.b = gen::values(23, self.elems, 8);
    }
}

impl Default for MulDirect8Workload {
    fn default() -> Self {
        MulDirect8Workload::new()
    }
}

impl Workload for MulDirect8Workload {
    fn id(&self) -> &'static str {
        WorkloadId::MulDirect8.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = mul_direct8_pluto(sess.machine_mut(), &self.a, &self.b)?;
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_words(&mul_direct8_reference(&self.a, &self.b))
    }

    fn input_bytes(&self) -> f64 {
        (self.a.len() * 2) as f64
    }

    fn min_subarrays(&self) -> u16 {
        // 128 segment pairs (65 536 entries / 512 rows) after the data
        // subarray, plus headroom.
        260
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.a
            .chunks(crate::MEASURE_BATCH_ELEMS)
            .zip(self.b.chunks(crate::MEASURE_BATCH_ELEMS))
            .map(|(ca, cb)| {
                Box::new(MulDirect8Workload {
                    elems: ca.len(),
                    pinned: true,
                    a: ca.to_vec(),
                    b: cb.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_core::DesignKind;
    use pluto_dram::DramConfig;

    fn machine(subarrays: u16, design: DesignKind) -> PlutoMachine {
        PlutoMachine::new(
            DramConfig {
                row_bytes: 256,
                burst_bytes: 32,
                banks: 1,
                subarrays_per_bank: subarrays,
                rows_per_subarray: 512,
                ..DramConfig::ddr4_2400()
            },
            design,
        )
        .unwrap()
    }

    #[test]
    fn gamma12_lut_is_monotone_and_saturating() {
        let lut = gamma12_lut().unwrap();
        assert_eq!(lut.len(), 4096);
        let e = lut.elements();
        assert!(e.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(e[0], 0);
        assert_eq!(*e.last().unwrap(), 255);
    }

    #[test]
    fn pluto_gamma12_matches_reference() {
        let pixels = gen::values(99, 80, 12);
        let mut m = machine(20, DesignKind::Gmc);
        assert_eq!(
            gamma12_pluto(&mut m, &pixels).unwrap(),
            gamma12_reference(&pixels)
        );
    }

    #[test]
    fn pluto_mul_direct8_matches_reference_and_nibble_planes() {
        let a = gen::values(91, 12, 8);
        let b = gen::values(92, 12, 8);
        let mut m = machine(260, DesignKind::Gmc);
        let direct = mul_direct8_pluto(&mut m, &a, &b).unwrap();
        assert_eq!(direct, mul_direct8_reference(&a, &b));
        // The direct table computes the same unsigned product the
        // nibble-plane Mul8 mapping decomposes (before its Q1.7 sign and
        // shift steps): cross-check against host truth on edge operands.
        let edge = [0u64, 1, 127, 128, 255];
        for &x in &edge {
            for &y in &edge {
                let out = mul_direct8_pluto(&mut m, &[x], &[y]).unwrap();
                assert_eq!(out, vec![x * y], "{x} * {y}");
            }
        }
    }

    #[test]
    fn scenarios_shard_on_measurement_batches() {
        let g = Gamma12Workload::with_batch(3 * crate::MEASURE_BATCH_ELEMS);
        assert_eq!(g.shards().len(), 3);
        let m = MulDirect8Workload::with_batch(2 * crate::MEASURE_BATCH_ELEMS + 1);
        let shards = m.shards();
        assert_eq!(shards.len(), 3);
    }
}
