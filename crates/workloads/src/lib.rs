//! # pluto-workloads — the eleven evaluated workloads (paper Table 4)
//!
//! Every workload exists in two forms:
//!
//! 1. a **reference software implementation** (the ground truth the paper's
//!    CPU baseline runs), and
//! 2. a **pLUTo mapping** executing on a simulated [`PlutoMachine`] —
//!    decomposed into bulk LUT queries, Ambit bitwise operations, and DRISA
//!    shifts exactly as the paper's §6 stack would emit them.
//!
//! Integration tests assert the two produce bit-identical outputs, and the
//! machine's accumulated command stream provides the pLUTo side of every
//! figure (7–10, 13, 14).
//!
//! | Module | Paper workload |
//! |---|---|
//! | [`crc`] | CRC-8/16/32 over 128 B packets (linearity-based parallel mapping) |
//! | [`salsa20`] | Salsa20 cipher over 512 B packets |
//! | [`vmpc`] | VMPC one-way function over 512 B packets |
//! | [`image`] | Image binarization + color grading (3x8-bit, 936 000 px) |
//! | [`vecops`] | LUT-based vector addition; Q1.7 / Q1.15 point-wise multiply |
//! | [`bitcount`] | BC-4 / BC-8 bit counting |
//! | [`bitwise`] | Row-level bitwise AND/OR/XOR/XNOR (4-entry LUTs) |
//! | [`direct`] | §5.6 partitioned large-LUT scenarios (Gamma12 tone map, direct-table MulDirect8) |
//! | `pluto_qnn::pluto_exec` | §12 inference scenarios (QNN-GEMV8 tile, QNN-MLP forward pass) |
//! | [`wide`] | Nibble-plane wide arithmetic the mappings are built from |
//! | [`gen`] | Deterministic synthetic data generators |
//! | [`runner`] | End-to-end drivers used by the figure harness |
//!
//! Every workload is also a first-class pluggable scenario: each module
//! exposes a struct implementing [`pluto_core::session::Workload`]
//! (`CrcWorkload`, `Salsa20Workload`, …), [`registry`] enumerates the
//! eighteen canonical scenarios, and [`workload_for`] resolves a
//! [`WorkloadId`] (aliases included) to its scenario. A
//! [`pluto_core::session::Session`] runs them serially; a
//! [`pluto_core::cluster::Cluster`] runs them across a worker pool with
//! bit-identical results. The vecops, bitcount, image, and CRC scenarios
//! also implement real input sharding (`with_batch`/`with_pixels`/
//! `with_packets` + [`pluto_core::session::Workload::shards`]), so one
//! oversize batch fans out across workers and reduces to one validated
//! report — see `DESIGN.md` §5–6, `examples/session.rs`, and
//! `examples/cluster.rs`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitcount;
pub mod bitwise;
pub mod crc;
pub mod direct;
pub mod gen;
pub mod image;
pub mod runner;
pub mod salsa20;
pub mod vecops;
pub mod vmpc;
pub mod wide;

use pluto_baselines::WorkloadId;

pub use pluto_core::prelude::*;

/// Elements in one measurement batch, sized to one 256 B measurement row
/// (≤ 256 8-bit slots).
pub(crate) const MEASURE_BATCH_ELEMS: usize = 192;

/// All eighteen canonical workloads as pluggable scenarios, in
/// [`WorkloadId::CANONICAL`] (paper Table 4 + §5.6 large-LUT + §12
/// inference) order.
pub fn registry() -> Vec<Box<dyn Workload>> {
    WorkloadId::CANONICAL
        .into_iter()
        .map(workload_for)
        .collect()
}

/// The scenario implementing `id`'s pLUTo mapping. Aliases resolve to
/// their canonical workload ([`WorkloadId::canonical`]), so `MulQ1_7`
/// yields the same scenario as `Mul8`.
pub fn workload_for(id: WorkloadId) -> Box<dyn Workload> {
    match id.canonical() {
        WorkloadId::Crc8 => Box::new(crc::CrcWorkload::new(crc::CrcSpec::CRC8)),
        WorkloadId::Crc16 => Box::new(crc::CrcWorkload::new(crc::CrcSpec::CRC16)),
        WorkloadId::Crc32 => Box::new(crc::CrcWorkload::new(crc::CrcSpec::CRC32)),
        WorkloadId::Salsa20 => Box::new(salsa20::Salsa20Workload::new()),
        WorkloadId::Vmpc => Box::new(vmpc::VmpcWorkload::new()),
        WorkloadId::ImgBin => Box::new(image::BinarizeWorkload::new()),
        WorkloadId::ColorGrade => Box::new(image::GradeWorkload::new()),
        WorkloadId::Add4 => Box::new(vecops::AddWorkload::new(4)),
        WorkloadId::Add8 => Box::new(vecops::AddWorkload::new(8)),
        WorkloadId::Mul8 => Box::new(vecops::QMulWorkload::new(7)),
        WorkloadId::Mul16 => Box::new(vecops::QMulWorkload::new(15)),
        WorkloadId::Bc4 => Box::new(bitcount::BitcountWorkload::new(4)),
        WorkloadId::Bc8 => Box::new(bitcount::BitcountWorkload::new(8)),
        WorkloadId::BitwiseRow => Box::new(bitwise::BitwiseWorkload::new()),
        WorkloadId::Gamma12 => Box::new(direct::Gamma12Workload::new()),
        WorkloadId::MulDirect8 => Box::new(direct::MulDirect8Workload::new()),
        WorkloadId::QnnGemv8 => Box::new(pluto_qnn::pluto_exec::QnnGemvWorkload::new()),
        WorkloadId::QnnMlp => Box::new(pluto_qnn::pluto_exec::QnnMlpWorkload::new()),
        WorkloadId::MulQ1_7 | WorkloadId::MulQ1_15 => {
            unreachable!("aliases resolve via canonical()")
        }
    }
}

/// The standalone lookup table a workload's *serve-mode* queries hit —
/// what a `pluto_core::serve::Server` request stream references by
/// [`WorkloadId`] instead of shipping a table per query. `None` for the
/// workloads whose mapping is a multi-step LUT *program* (CRC, Salsa20,
/// VMPC, color grading, the nibble-plane Q-multiplies) rather than one
/// table: those serve through their [`Workload`] scenarios, not single
/// queries.
///
/// The returned LUTs are exactly the tables the batch scenarios load —
/// Gamma12's 4096-entry tone map, MulDirect8's 65 536-entry product
/// table, the binarization threshold-128 map — so serve traffic and
/// figure sweeps exercise identical contents (and share the packed-row
/// cache).
pub fn serve_lut(id: WorkloadId) -> Option<Lut> {
    let lut = match id.canonical() {
        WorkloadId::Add4 => catalog::add(4),
        WorkloadId::Add8 => catalog::add(8),
        WorkloadId::Bc4 => catalog::popcount(4),
        WorkloadId::Bc8 => catalog::popcount(8),
        WorkloadId::ImgBin => catalog::binarize(128),
        WorkloadId::BitwiseRow => catalog::xor(1),
        WorkloadId::Gamma12 => direct::gamma12_lut(),
        WorkloadId::MulDirect8 => catalog::mul(8),
        // The signed product table every direct-path GEMV layer queries
        // (the QNN-MLP scenario itself is a multi-query program).
        WorkloadId::QnnGemv8 => pluto_qnn::gemv::smul_lut(8),
        _ => return None,
    };
    Some(lut.expect("canonical serve LUTs are well-formed"))
}
