//! # pluto-workloads — the eleven evaluated workloads (paper Table 4)
//!
//! Every workload exists in two forms:
//!
//! 1. a **reference software implementation** (the ground truth the paper's
//!    CPU baseline runs), and
//! 2. a **pLUTo mapping** executing on a simulated [`PlutoMachine`] —
//!    decomposed into bulk LUT queries, Ambit bitwise operations, and DRISA
//!    shifts exactly as the paper's §6 stack would emit them.
//!
//! Integration tests assert the two produce bit-identical outputs, and the
//! machine's accumulated command stream provides the pLUTo side of every
//! figure (7–10, 13, 14).
//!
//! | Module | Paper workload |
//! |---|---|
//! | [`crc`] | CRC-8/16/32 over 128 B packets (linearity-based parallel mapping) |
//! | [`salsa20`] | Salsa20 cipher over 512 B packets |
//! | [`vmpc`] | VMPC one-way function over 512 B packets |
//! | [`image`] | Image binarization + color grading (3x8-bit, 936 000 px) |
//! | [`vecops`] | LUT-based vector addition; Q1.7 / Q1.15 point-wise multiply |
//! | [`bitcount`] | BC-4 / BC-8 bit counting |
//! | [`bitwise`] | Row-level bitwise AND/OR/XOR/XNOR (4-entry LUTs) |
//! | [`wide`] | Nibble-plane wide arithmetic the mappings are built from |
//! | [`gen`] | Deterministic synthetic data generators |
//! | [`runner`] | End-to-end drivers used by the figure harness |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitcount;
pub mod bitwise;
pub mod crc;
pub mod gen;
pub mod image;
pub mod runner;
pub mod salsa20;
pub mod vecops;
pub mod vmpc;
pub mod wide;

pub use pluto_core::prelude::*;
