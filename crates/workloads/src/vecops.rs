//! LUT-based vector addition and Q-format point-wise multiplication
//! (paper Table 4: 4-bit addition; Q1.7 and Q1.15 multiplies).
//!
//! Q1.m is a signed fixed-point format: one sign bit, `m` fraction bits,
//! values in [−1, 1). The product of two Q1.m values is computed as the
//! wrapping signed product shifted right by `m` — the reference uses host
//! integer arithmetic; the pLUTo mapping decomposes the multiply into
//! 4-bit-limb LUT partial products ([`crate::wide::mul`]) with sign
//! correction and LUT-based shifting.

use crate::wide::{self, Planes};
use pluto_core::lut::catalog;
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// Reference 4-bit vector addition (5-bit results, the paper's LUT-based
/// vector-add workload).
pub fn add4_reference(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(&x, &y)| (x + y) & 0x1F).collect()
}

/// pLUTo 4-bit vector addition: one `add4` LUT query stream.
///
/// # Errors
/// Propagates machine errors.
pub fn add4_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply2(&catalog::add(4)?, a, 4, b, 4)?.values)
}

/// Reference Q1.m point-wise product (wrapping, like the hardware).
///
/// Operands and results are raw two's-complement words of `m + 1` bits.
pub fn qmul_reference(frac_bits: u32, a: &[u64], b: &[u64]) -> Vec<u64> {
    let width = frac_bits + 1;
    let mask = (1u64 << width) - 1;
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let sx = sign_extend(x, width);
            let sy = sign_extend(y, width);
            (((sx * sy) >> frac_bits) as u64) & mask
        })
        .collect()
}

fn sign_extend(v: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((v << shift) as i64) >> shift
}

/// pLUTo Q1.7 product: 8-bit operands. Unsigned 8×8 → 16 limb multiply,
/// two conditional sign corrections (`p −= (b << 8)` when `a < 0`, and
/// symmetrically), then an arithmetic shift right by 7 — all as LUT
/// queries on nibble planes.
///
/// # Errors
/// Propagates machine errors.
pub fn q1_7_mul_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    qmul_pluto(m, 7, a, b)
}

/// pLUTo Q1.15 product: 16-bit operands via the same decomposition.
///
/// # Errors
/// Propagates machine errors.
pub fn q1_15_mul_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    qmul_pluto(m, 15, a, b)
}

fn qmul_pluto(
    m: &mut PlutoMachine,
    frac_bits: u32,
    a: &[u64],
    b: &[u64],
) -> Result<Vec<u64>, PlutoError> {
    let width = frac_bits + 1; // 8 or 16
    let limbs = (width / 4) as usize;
    let n = a.len();
    let pa = Planes::from_values(a, limbs);
    let pb = Planes::from_values(b, limbs);
    // Unsigned product, 2×limbs wide.
    let prod = wide::mul(m, &pa, &pb)?;
    // Signed correction: for two's-complement operands interpreted
    // unsigned, signed = unsigned − (a<0 ? b<<width : 0) − (b<0 ? a<<width : 0)
    // (mod 2^(2·width)).
    let sign = Lut::from_fn("sign4", 4, 1, |x| x >> 3)?;
    let select = Lut::from_fn("select4", 5, 4, |x| {
        let flag = x & 1;
        if flag == 1 {
            x >> 1
        } else {
            0
        }
    })?;
    let a_neg = m.apply(&sign, &pa.planes[limbs - 1])?.values;
    let b_neg = m.apply(&sign, &pb.planes[limbs - 1])?.values;
    let zero: Vec<u64> = vec![0; n];
    let corr =
        |operand: &Planes, flag: &[u64], mach: &mut PlutoMachine| -> Result<Planes, PlutoError> {
            // (operand << width) masked by flag, as a 2·width-wide value.
            let mut planes = vec![zero.clone(); 2 * limbs];
            for l in 0..limbs {
                planes[limbs + l] = mach.apply2(&select, &operand.planes[l], 4, flag, 1)?.values;
            }
            Ok(Planes { planes })
        };
    let corr_b = corr(&pb, &a_neg, m)?;
    let corr_a = corr(&pa, &b_neg, m)?;
    let step = wide::sub(m, &prod, &corr_b)?;
    let signed = wide::sub(m, &step, &corr_a)?;
    // Arithmetic shift right by frac_bits == logical shift then take the
    // low `width` bits (the discarded high bits carry the sign copies).
    let shifted = wide::shr(m, &signed, frac_bits)?;
    let out = Planes {
        planes: shifted.planes[..limbs].to_vec(),
    };
    Ok(out.to_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::DesignKind;

    #[test]
    fn add4_matches_reference() {
        let a = gen::values(1, 60, 4);
        let b = gen::values(2, 60, 4);
        let mut m = wide::test_machine(DesignKind::Bsa).unwrap();
        assert_eq!(add4_pluto(&mut m, &a, &b).unwrap(), add4_reference(&a, &b));
    }

    #[test]
    fn qmul_reference_known_values() {
        // Q1.7: 0.5 × 0.5 = 0.25  (64 × 64 >> 7 = 32).
        assert_eq!(qmul_reference(7, &[64], &[64]), vec![32]);
        // −1.0 × 0.5 = −0.5  (0x80 × 0x40 ⇒ 0xC0).
        assert_eq!(qmul_reference(7, &[0x80], &[0x40]), vec![0xC0]);
        // −1.0 × −0.5 = 0.5.
        assert_eq!(qmul_reference(7, &[0x80], &[0xC0]), vec![0x40]);
    }

    #[test]
    fn pluto_q1_7_matches_reference() {
        let a = gen::values(31, 24, 8);
        let b = gen::values(32, 24, 8);
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let out = q1_7_mul_pluto(&mut m, &a, &b).unwrap();
        assert_eq!(out, qmul_reference(7, &a, &b));
    }

    #[test]
    fn pluto_q1_15_matches_reference() {
        let a = gen::values(41, 10, 16);
        let b = gen::values(42, 10, 16);
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let out = q1_15_mul_pluto(&mut m, &a, &b).unwrap();
        assert_eq!(out, qmul_reference(15, &a, &b));
    }

    #[test]
    fn qmul_edge_cases() {
        let edge: Vec<u64> = vec![0x00, 0x7F, 0x80, 0xFF, 0x01];
        let mut m = wide::test_machine(DesignKind::Bsa).unwrap();
        for &x in &edge {
            for &y in &edge {
                let out = q1_7_mul_pluto(&mut m, &[x], &[y]).unwrap();
                assert_eq!(out, qmul_reference(7, &[x], &[y]), "{x:#x} * {y:#x}");
            }
        }
    }
}
