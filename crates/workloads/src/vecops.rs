//! LUT-based vector addition and Q-format point-wise multiplication
//! (paper Table 4: 4-bit addition; Q1.7 and Q1.15 multiplies).
//!
//! Q1.m is a signed fixed-point format: one sign bit, `m` fraction bits,
//! values in [−1, 1). The product of two Q1.m values is computed as the
//! wrapping signed product shifted right by `m` — the reference uses host
//! integer arithmetic; the pLUTo mapping decomposes the multiply into
//! 4-bit-limb LUT partial products ([`crate::wide::mul`]) with sign
//! correction and LUT-based shifting.

use crate::wide::{self, Planes};
use pluto_core::lut::catalog;
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// Reference 4-bit vector addition (5-bit results, the paper's LUT-based
/// vector-add workload).
pub fn add4_reference(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(&x, &y)| (x + y) & 0x1F).collect()
}

/// pLUTo 4-bit vector addition: one `add4` LUT query stream.
///
/// # Errors
/// Propagates machine errors.
pub fn add4_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    Ok(m.apply2(&catalog::add(4)?, a, 4, b, 4)?.values)
}

/// Reference Q1.m point-wise product (wrapping, like the hardware).
///
/// Operands and results are raw two's-complement words of `m + 1` bits.
pub fn qmul_reference(frac_bits: u32, a: &[u64], b: &[u64]) -> Vec<u64> {
    let width = frac_bits + 1;
    let mask = (1u64 << width) - 1;
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let sx = sign_extend(x, width);
            let sy = sign_extend(y, width);
            (((sx * sy) >> frac_bits) as u64) & mask
        })
        .collect()
}

fn sign_extend(v: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((v << shift) as i64) >> shift
}

/// pLUTo Q1.7 product: 8-bit operands. Unsigned 8×8 → 16 limb multiply,
/// two conditional sign corrections (`p −= (b << 8)` when `a < 0`, and
/// symmetrically), then an arithmetic shift right by 7 — all as LUT
/// queries on nibble planes.
///
/// # Errors
/// Propagates machine errors.
pub fn q1_7_mul_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    qmul_pluto(m, 7, a, b)
}

/// pLUTo Q1.15 product: 16-bit operands via the same decomposition.
///
/// # Errors
/// Propagates machine errors.
pub fn q1_15_mul_pluto(m: &mut PlutoMachine, a: &[u64], b: &[u64]) -> Result<Vec<u64>, PlutoError> {
    qmul_pluto(m, 15, a, b)
}

fn qmul_pluto(
    m: &mut PlutoMachine,
    frac_bits: u32,
    a: &[u64],
    b: &[u64],
) -> Result<Vec<u64>, PlutoError> {
    let width = frac_bits + 1; // 8 or 16
    let limbs = (width / 4) as usize;
    let n = a.len();
    let pa = Planes::from_values(a, limbs);
    let pb = Planes::from_values(b, limbs);
    // Unsigned product, 2×limbs wide.
    let prod = wide::mul(m, &pa, &pb)?;
    // Signed correction: for two's-complement operands interpreted
    // unsigned, signed = unsigned − (a<0 ? b<<width : 0) − (b<0 ? a<<width : 0)
    // (mod 2^(2·width)).
    let sign = Lut::from_fn("sign4", 4, 1, |x| x >> 3)?;
    let select = Lut::from_fn("select4", 5, 4, |x| {
        let flag = x & 1;
        if flag == 1 {
            x >> 1
        } else {
            0
        }
    })?;
    let a_neg = m.apply(&sign, &pa.planes[limbs - 1])?.values;
    let b_neg = m.apply(&sign, &pb.planes[limbs - 1])?.values;
    let zero: Vec<u64> = vec![0; n];
    let corr =
        |operand: &Planes, flag: &[u64], mach: &mut PlutoMachine| -> Result<Planes, PlutoError> {
            // (operand << width) masked by flag, as a 2·width-wide value.
            let mut planes = vec![zero.clone(); 2 * limbs];
            for l in 0..limbs {
                planes[limbs + l] = mach.apply2(&select, &operand.planes[l], 4, flag, 1)?.values;
            }
            Ok(Planes { planes })
        };
    let corr_b = corr(&pb, &a_neg, m)?;
    let corr_a = corr(&pa, &b_neg, m)?;
    let step = wide::sub(m, &prod, &corr_b)?;
    let signed = wide::sub(m, &step, &corr_a)?;
    // Arithmetic shift right by frac_bits == logical shift then take the
    // low `width` bits (the discarded high bits carry the sign copies).
    let shifted = wide::shr(m, &signed, frac_bits)?;
    let out = Planes {
        planes: shifted.planes[..limbs].to_vec(),
    };
    Ok(out.to_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pluto_core::DesignKind;

    #[test]
    fn add4_matches_reference() {
        let a = gen::values(1, 60, 4);
        let b = gen::values(2, 60, 4);
        let mut m = wide::test_machine(DesignKind::Bsa).unwrap();
        assert_eq!(add4_pluto(&mut m, &a, &b).unwrap(), add4_reference(&a, &b));
    }

    #[test]
    fn qmul_reference_known_values() {
        // Q1.7: 0.5 × 0.5 = 0.25  (64 × 64 >> 7 = 32).
        assert_eq!(qmul_reference(7, &[64], &[64]), vec![32]);
        // −1.0 × 0.5 = −0.5  (0x80 × 0x40 ⇒ 0xC0).
        assert_eq!(qmul_reference(7, &[0x80], &[0x40]), vec![0xC0]);
        // −1.0 × −0.5 = 0.5.
        assert_eq!(qmul_reference(7, &[0x80], &[0xC0]), vec![0x40]);
    }

    #[test]
    fn pluto_q1_7_matches_reference() {
        let a = gen::values(31, 24, 8);
        let b = gen::values(32, 24, 8);
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let out = q1_7_mul_pluto(&mut m, &a, &b).unwrap();
        assert_eq!(out, qmul_reference(7, &a, &b));
    }

    #[test]
    fn pluto_q1_15_matches_reference() {
        let a = gen::values(41, 10, 16);
        let b = gen::values(42, 10, 16);
        let mut m = wide::test_machine(DesignKind::Gmc).unwrap();
        let out = q1_15_mul_pluto(&mut m, &a, &b).unwrap();
        assert_eq!(out, qmul_reference(15, &a, &b));
    }

    #[test]
    fn qmul_edge_cases() {
        let edge: Vec<u64> = vec![0x00, 0x7F, 0x80, 0xFF, 0x01];
        let mut m = wide::test_machine(DesignKind::Bsa).unwrap();
        for &x in &edge {
            for &y in &edge {
                let out = q1_7_mul_pluto(&mut m, &[x], &[y]).unwrap();
                assert_eq!(out, qmul_reference(7, &[x], &[y]), "{x:#x} * {y:#x}");
            }
        }
    }
}

// --- Pluggable scenarios ------------------------------------------------

use crate::gen;
use pluto_baselines::WorkloadId;
use pluto_core::session::{self, Session, Workload};
use sim_support::StdRng;

/// The LUT-based vector addition workload (Fig. 9 ADD4/ADD8) as a
/// pluggable [`Workload`] scenario. ADD8 composes two 4-bit LUT adds via
/// nibble planes; ADD4 is a single query.
#[derive(Debug)]
pub struct AddWorkload {
    id: WorkloadId,
    bits: u32,
    elems: usize,
    /// Shards pin their input slice; `prepare` must not regenerate it.
    pinned: bool,
    a: Vec<u64>,
    b: Vec<u64>,
}

impl AddWorkload {
    /// A scenario for `bits`-wide addition (4 or 8) over one measurement
    /// batch.
    ///
    /// # Panics
    /// Panics on widths other than 4 or 8.
    pub fn new(bits: u32) -> Self {
        AddWorkload::with_batch(bits, crate::MEASURE_BATCH_ELEMS)
    }

    /// A scenario over a batch of `elems` element pairs. Batches larger
    /// than one measurement row split into row-sized [`Workload::shards`]
    /// for cluster fan-out.
    ///
    /// # Panics
    /// Panics on widths other than 4 or 8.
    pub fn with_batch(bits: u32, elems: usize) -> Self {
        let id = match bits {
            4 => WorkloadId::Add4,
            8 => WorkloadId::Add8,
            _ => panic!("AddWorkload supports 4- and 8-bit adds, not {bits}"),
        };
        let mut w = AddWorkload {
            id,
            bits,
            elems,
            pinned: false,
            a: Vec::new(),
            b: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        self.a = gen::values(11, self.elems, self.bits);
        self.b = gen::values(12, self.elems, self.bits);
    }
}

impl Workload for AddWorkload {
    fn id(&self) -> &'static str {
        self.id.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let m = sess.machine_mut();
        let out = if self.bits == 4 {
            add4_pluto(m, &self.a, &self.b)?
        } else {
            let pa = Planes::from_values(&self.a, 2);
            let pb = Planes::from_values(&self.b, 2);
            wide::add(m, &pa, &pb, false)?.to_values()
        };
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        let expect: Vec<u64> = if self.bits == 4 {
            add4_reference(&self.a, &self.b)
        } else {
            self.a
                .iter()
                .zip(&self.b)
                .map(|(&x, &y)| (x + y) & 0xFF)
                .collect()
        };
        session::encode_words(&expect)
    }

    fn input_bytes(&self) -> f64 {
        (self.a.len() as f64) * self.bits as f64 / 8.0 * 2.0
    }

    fn min_subarrays(&self) -> u16 {
        64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        let chunk = crate::MEASURE_BATCH_ELEMS;
        self.a
            .chunks(chunk)
            .zip(self.b.chunks(chunk))
            .map(|(ca, cb)| {
                Box::new(AddWorkload {
                    id: self.id,
                    bits: self.bits,
                    elems: ca.len(),
                    pinned: true,
                    a: ca.to_vec(),
                    b: cb.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

/// The fixed-point multiply workload (Fig. 9 MUL8/MUL16 = Fig. 12b
/// Q1.7/Q1.15) as a pluggable [`Workload`] scenario.
#[derive(Debug)]
pub struct QMulWorkload {
    id: WorkloadId,
    frac_bits: u32,
    elems: usize,
    /// Shards pin their input slice; `prepare` must not regenerate it.
    pinned: bool,
    a: Vec<u64>,
    b: Vec<u64>,
}

impl QMulWorkload {
    /// A scenario for the Q1.`frac_bits` multiply (7 or 15) over one
    /// measurement batch.
    ///
    /// # Panics
    /// Panics on fractional widths other than 7 or 15.
    pub fn new(frac_bits: u32) -> Self {
        // 64 16-bit elements keep the Q1.15 batch run time level with
        // the 8-bit workloads.
        let elems = if frac_bits == 7 {
            crate::MEASURE_BATCH_ELEMS
        } else {
            64
        };
        QMulWorkload::with_batch(frac_bits, elems)
    }

    /// A scenario over a batch of `elems` operand pairs; oversize batches
    /// split into measurement-sized [`Workload::shards`].
    ///
    /// # Panics
    /// Panics on fractional widths other than 7 or 15.
    pub fn with_batch(frac_bits: u32, elems: usize) -> Self {
        let id = match frac_bits {
            7 => WorkloadId::Mul8,
            15 => WorkloadId::Mul16,
            _ => panic!("QMulWorkload supports Q1.7 and Q1.15, not Q1.{frac_bits}"),
        };
        let mut w = QMulWorkload {
            id,
            frac_bits,
            elems,
            pinned: false,
            a: Vec::new(),
            b: Vec::new(),
        };
        w.regenerate();
        w
    }

    fn regenerate(&mut self) {
        if self.frac_bits == 7 {
            self.a = gen::values(13, self.elems, 8);
            self.b = gen::values(14, self.elems, 8);
        } else {
            self.a = gen::values(15, self.elems, 16);
            self.b = gen::values(16, self.elems, 16);
        }
    }

    /// Natural shard granularity: one measurement batch.
    fn shard_elems(&self) -> usize {
        if self.frac_bits == 7 {
            crate::MEASURE_BATCH_ELEMS
        } else {
            64
        }
    }
}

impl Workload for QMulWorkload {
    fn id(&self) -> &'static str {
        self.id.label()
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        if !self.pinned {
            self.regenerate();
        }
    }

    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let m = sess.machine_mut();
        let out = if self.frac_bits == 7 {
            q1_7_mul_pluto(m, &self.a, &self.b)?
        } else {
            q1_15_mul_pluto(m, &self.a, &self.b)?
        };
        Ok(session::encode_words(&out))
    }

    fn run_reference(&self) -> Vec<u8> {
        session::encode_words(&qmul_reference(self.frac_bits, &self.a, &self.b))
    }

    fn input_bytes(&self) -> f64 {
        (self.a.len() * if self.frac_bits == 7 { 2 } else { 4 }) as f64
    }

    fn min_subarrays(&self) -> u16 {
        64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        let chunk = self.shard_elems();
        self.a
            .chunks(chunk)
            .zip(self.b.chunks(chunk))
            .map(|(ca, cb)| {
                Box::new(QMulWorkload {
                    id: self.id,
                    frac_bits: self.frac_bits,
                    elems: ca.len(),
                    pinned: true,
                    a: ca.to_vec(),
                    b: cb.to_vec(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}
