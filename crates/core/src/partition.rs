//! Partitioned LUT queries across subarrays (paper §5.6).
//!
//! A single-subarray query supports at most `rows_per_subarray` LUT
//! elements. Larger LUTs are *partitioned*: segment `k` (rows
//! `k·R .. (k+1)·R` of the logical LUT) lives in its own pLUTo-enabled
//! subarray, every subarray sweeps its segment simultaneously, and each
//! input element matches in exactly one segment. The paper's §5.6 cost
//! semantics: **latency does not increase** (segments sweep in parallel)
//! but **energy multiplies by the segment count** — which is why pLUTo is
//! "not well suited for executing large-bit-width lookup queries".
//!
//! This module is the single implementation of those semantics
//! (`DESIGN.md` §8):
//!
//! * **Segment layout.** Segments are stored at the parent LUT's *true*
//!   `output_bits` with the parent's slot width pinned as a floor
//!   ([`crate::lut::Lut::with_min_slot_bits`]), so every segment element
//!   row is byte-identical to the corresponding row of the unpartitioned
//!   layout and row capacity is uniform across segments. Because of that
//!   identity, loading N segments is **one pass over the parent's packed
//!   rows**: all segments slice the parent's single packed-row-cache
//!   entry ([`crate::store`]) — one cache lookup and one identity check —
//!   with tail padding drawn from one shared zero row, and each segment's
//!   rows enter DRAM as one batched copy-on-write poke
//!   ([`crate::store::LutStore`]'s sliced loader). Tail segments whose
//!   length is not a power of two are padded with masked-out zero
//!   elements (inputs are validated against the *parent* length, so the
//!   pad rows can never match).
//! * **Data path — fused single pass.** Commands and data are split:
//!   each segment's *command stream* is still issued in full (that is
//!   what §5.6 charges), but the *data work* is one gather over the
//!   parent element table — `merged[i] = elements[inputs[i]]` — plus one
//!   input pack and one output pack. The old path re-based the input
//!   vector, re-packed the source row, and re-merged outputs once **per
//!   segment** (O(N × slots) data work); the fused path is O(slots + N).
//!   The invariant: *commands per lane, data in one pass.*
//! * **Cost merge.** Per-segment command streams stay authoritative for
//!   cost, issued as *parallel lanes* on the engine
//!   ([`Engine::rewind_clock`] / [`Engine::advance_clock_to`]): every
//!   lane starts at the region's start time, the clock closes at the
//!   slowest lane's end, and energy/commands accumulate across lanes.
//!   The engine's own clock and energy deltas therefore *equal* the
//!   returned [`PartitionedCost`] — there is no second bookkeeping to
//!   drift out of sync. The fused path issues each lane's spends in the
//!   exact order the per-segment [`QueryExecutor`] did, so the cost is
//!   bit-identical to the retained serial reference
//!   ([`PartitionedLut::query_serial_reference`], locked down by
//!   `tests/partition_fused.rs`).
//! * **Segment farming (opt-in).** For large segment counts the lane
//!   *cost replay* itself dominates; [`FarmPolicy`] shards it across
//!   worker threads using [`pluto_dram::LaneClock`] forks, merged back
//!   deterministically in segment order. Outputs, latency, and command
//!   counters are exact; energy folds as one per-lane subtotal, so it is
//!   deterministic but may differ from the serial fold in the last float
//!   bit — which is why farming is opt-in and excluded from the
//!   bit-identity suite.
//!
//! [`PlutoStore`] wraps the single-subarray and partitioned stores behind
//! one query interface, which is how [`crate::library::PlutoMachine`] and
//! [`crate::controller::Controller`] (and therefore every `Session` and
//! `Cluster` worker) transparently route oversized LUTs.

use std::sync::Arc;

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{pack_slots_into, slots_per_row, unpack_slots_into, Lut};
use crate::plan::{self, PlanKey, PlanShape};
use crate::query::{QueryExecutor, QueryPlacement, QueryScratch};
use crate::store::LutStore;
use pluto_dram::{
    BankId, Engine, LaneOutcome, PicoJoules, Picos, RowId, RowLoc, SubarrayId, SweepStepKind,
};

/// Opt-in policy for farming one partitioned query's per-segment cost
/// lanes across worker threads (see the module docs for the determinism
/// contract: exact latency/stats/outputs, energy deterministic but folded
/// per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FarmPolicy {
    /// Farm only queries with at least this many segments (below the
    /// threshold, thread startup costs more than the lane replay).
    pub min_segments: usize,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
}

impl Default for FarmPolicy {
    fn default() -> Self {
        FarmPolicy {
            min_segments: 32,
            workers: 0,
        }
    }
}

/// How the query's input vector arrives (the one routing layer behind
/// [`PlutoStore::query_with`] / [`PlutoStore::query_resident_with`]).
enum QueryInput<'a> {
    /// Caller-supplied slot values, packed and poked into the source row.
    Slots(&'a [u64]),
    /// This many slots already resident in the source row.
    Resident(usize),
}

/// A LUT partitioned across several pLUTo-enabled subarrays.
#[derive(Debug)]
pub struct PartitionedLut {
    lut: Lut,
    segments: Vec<LutStore>,
    segment_rows: usize,
    farm: Option<FarmPolicy>,
    /// Whether serially issued lanes may use the compiled-plan cache
    /// (`crate::plan`); disabled on differential-oracle partitions.
    use_plans: bool,
    /// Scratch: per-segment rebased input slots (serial reference only).
    local: Vec<u64>,
    /// Scratch: merged output slots across segments.
    merged: Vec<u64>,
    /// Scratch: resident-input slots (controller path).
    resident: Vec<u64>,
    /// Scratch: one packed row.
    row: Vec<u8>,
}

/// Cost of a partitioned query under the §5.6 semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedCost {
    /// Number of segments (subarrays) engaged.
    pub segments: usize,
    /// Wall latency: the slowest segment lane's end-to-end query cost.
    pub latency: Picos,
    /// Total energy: the *sum* over all segments (§5.6: "partitioning the
    /// query … increases energy consumption N-fold").
    pub energy: PicoJoules,
}

impl PartitionedLut {
    /// Loads `lut` across as many subarrays as needed, starting at
    /// `first_subarray` and claiming pairs (segment, master) like the
    /// single-subarray store. Any LUT length ≥ 2 is accepted — including
    /// truncated tables ([`Lut::from_fn_len`]) — because the tail segment
    /// is padded to the next power of two with masked-out elements.
    ///
    /// All segments pack in **one pass**: the parent's packed rows come
    /// from the process-wide cache once, each segment slices its row range
    /// as copy-on-write handles, and pad rows share a single zero row.
    ///
    /// # Errors
    /// Fails if the bank runs out of subarrays.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        first_subarray: SubarrayId,
    ) -> Result<Self, PlutoError> {
        let rows = engine.config().rows_per_subarray as usize;
        let row_bytes = engine.config().row_bytes;
        // Segments must be powers of two (§6.1's `lut_size` constraint
        // holds per sweep), so on a non-power-of-two geometry only the
        // largest power-of-two row prefix is usable per subarray.
        let max_rows = 1usize << rows.ilog2();
        let segment_rows = max_rows.min(lut.len().next_power_of_two());
        let count = lut.len().div_ceil(segment_rows);
        let slot_floor = lut.slot_bits();
        // One cache lookup + identity check for the whole partition: the
        // parent's packed rows ARE the segment rows (segments keep the
        // parent's slot layout), and every pad row packs to zero bytes.
        let parent_rows = crate::store::packed_rows(&lut, row_bytes);
        let zero_row = Arc::new(vec![0u8; row_bytes]);
        let mut seg_rows: Vec<Arc<Vec<u8>>> = Vec::with_capacity(segment_rows);
        let mut segments = Vec::with_capacity(count);
        for k in 0..count {
            let base = k * segment_rows;
            let end = (base + segment_rows).min(lut.len());
            let mut elements = lut.elements()[base..end].to_vec();
            // Pad the (tail) segment to a power of two with masked-out
            // elements: inputs are validated against the parent length,
            // so a pad row can never be the matching row of any query.
            elements.resize((end - base).next_power_of_two(), 0);
            let seg = Lut::from_table(
                format!("{}@seg{k}", lut.name()),
                elements.len().trailing_zeros(),
                lut.output_bits(),
                elements,
            )?
            .with_min_slot_bits(slot_floor);
            debug_assert_eq!(
                seg.slot_bits(),
                lut.slot_bits(),
                "segment layout must match the unpartitioned layout"
            );
            let pluto = SubarrayId(first_subarray.0 + 2 * k as u16);
            let master = SubarrayId(pluto.0 + 1);
            if master.0 >= engine.config().subarrays_per_bank {
                return Err(PlutoError::AllocationFailed {
                    reason: format!("segment {k} exceeds the bank's subarrays"),
                });
            }
            // Full segments poke the parent's cached rows straight from
            // the slice — no handle cloning at all (and on a repeat load
            // the pokes are pointer-equal no-ops). Only a padded tail
            // segment assembles a temporary row vector.
            let store = if end - base == seg.len() {
                LutStore::load_sliced(engine, seg, bank, pluto, master, 0, &parent_rows[base..end])?
            } else {
                seg_rows.clear();
                seg_rows.extend(parent_rows[base..end].iter().map(Arc::clone));
                seg_rows.resize_with(seg.len(), || Arc::clone(&zero_row));
                LutStore::load_sliced(engine, seg, bank, pluto, master, 0, &seg_rows)?
            };
            segments.push(store);
        }
        Ok(PartitionedLut {
            lut,
            segments,
            segment_rows,
            farm: None,
            use_plans: true,
            local: Vec::new(),
            merged: Vec::new(),
            resident: Vec::new(),
            row: Vec::new(),
        })
    }

    /// The logical (parent) LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Logical LUT rows per segment (the tail segment may own fewer).
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The per-segment stores, in segment order.
    pub fn segments(&self) -> &[LutStore] {
        &self.segments
    }

    /// The bank holding every segment.
    pub fn bank(&self) -> BankId {
        self.segments[0].bank()
    }

    /// The active segment-farming policy, if any.
    pub fn farming(&self) -> Option<FarmPolicy> {
        self.farm
    }

    /// Enables (`Some`) or disables (`None`) farming this partition's
    /// per-segment cost lanes across worker threads. See the module docs:
    /// outputs, latency, and command counters stay exact; energy folds
    /// per lane, so it is deterministic but not bit-identical to the
    /// serial fold.
    pub fn set_farming(&mut self, policy: Option<FarmPolicy>) {
        self.farm = policy;
    }

    /// Enables or disables the compiled-plan cache for serially issued
    /// segment lanes. With plans off every lane runs the full issuing
    /// stream — the differential oracle for lane-shaped plans.
    pub fn set_use_plans(&mut self, on: bool) {
        self.use_plans = on;
    }

    /// Executes the partitioned query: every segment sweeps as a parallel
    /// lane; outputs merge by each input's owning segment. Inputs are
    /// packed into `src_row` of the `source` subarray (left holding the
    /// global index vector) and the merged output vector is committed to
    /// `dst_row` of `dest`. Returns the outputs and the §5.6 cost
    /// (max-latency, summed energy), which the engine's own clock and
    /// energy deltas also reflect.
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
    ) -> Result<(Vec<u64>, PartitionedCost), PlutoError> {
        let mut scratch = QueryScratch::new();
        let cost = self.query_with(
            engine,
            design,
            source,
            dest,
            inputs,
            src_row,
            dst_row,
            &mut scratch,
        )?;
        Ok((std::mem::take(scratch.out_mut()), cost))
    }

    /// [`PartitionedLut::query`] with caller-owned scratch buffers: the
    /// merged output vector lands in [`QueryScratch::outputs`]. This is
    /// the hot-path entry point the machine/controller use.
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        self.query_fused(
            engine, design, source, dest, inputs, src_row, dst_row, scratch, true,
        )
    }

    /// Partitioned query whose input vector is already resident in
    /// `src_row` of `source` (the controller's `pluto_op` path):
    /// `num_slots` slots at the parent LUT's slot width are read back as
    /// global indices, queried, and the source row is left holding the
    /// same global index vector it started with.
    ///
    /// When the parent's slot width already bounds every representable
    /// value to a valid index ([`Lut::slot_width_bounds_inputs`]), the
    /// per-query linear range scan is hoisted off this path entirely.
    ///
    /// # Errors
    /// Fails if any resident slot exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query_resident_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        let src_loc = RowLoc {
            bank: self.bank(),
            subarray: source,
            row: src_row,
        };
        let mut resident = std::mem::take(&mut self.resident);
        engine.peek_row_into(src_loc, &mut self.row)?;
        unpack_slots_into(&self.row, self.lut.slot_bits(), num_slots, &mut resident);
        let validate = !self.lut.slot_width_bounds_inputs();
        let result = self.query_fused(
            engine, design, source, dest, &resident, src_row, dst_row, scratch, validate,
        );
        self.resident = resident;
        result
    }

    /// The fused single-pass query behind both entry points: one gather
    /// over the parent element table produces the merged outputs, one
    /// pack each for the source/destination rows, and each segment's
    /// command stream is issued as a parallel lane (serially on the
    /// engine, or farmed across threads under a [`FarmPolicy`]).
    #[allow(clippy::too_many_arguments)]
    fn query_fused(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
        validate: bool,
    ) -> Result<PartitionedCost, PlutoError> {
        if validate {
            let n = self.lut.len() as u64;
            if let Some(&bad) = inputs.iter().find(|&&x| x >= n) {
                return Err(PlutoError::IndexOutOfRange {
                    value: bad,
                    input_bits: self.lut.input_bits(),
                });
            }
        }
        let bank = self.bank();
        let slot_bits = self.lut.slot_bits();
        let row_bytes = engine.config().row_bytes;
        let capacity = slots_per_row(row_bytes, slot_bits);
        if inputs.len() > capacity {
            return Err(PlutoError::LayoutMismatch {
                reason: format!(
                    "{} inputs exceed the {capacity}-slot row capacity",
                    inputs.len()
                ),
            });
        }

        // The fused single pass: data work is one gather over the parent
        // table (plus the two packs below), regardless of segment count.
        let elements = self.lut.elements();
        self.merged.clear();
        self.merged
            .extend(inputs.iter().map(|&x| elements[x as usize]));

        // Real §5.6 hardware broadcasts the *global* index vector to every
        // segment; poke it once (zero-cost backdoor — the per-lane
        // activations below carry the real cost).
        let src_loc = RowLoc {
            bank,
            subarray: source,
            row: src_row,
        };
        pack_slots_into(inputs, slot_bits, row_bytes, &mut self.row)?;
        engine.poke_row(src_loc, &self.row)?;

        // §5.6: all segments sweep simultaneously. Issue each segment's
        // command stream as a parallel lane from one start time; the
        // region closes at the slowest lane's end, so the engine clock
        // advances by the max while energy and command counters sum.
        let clock0 = engine.elapsed();
        let energy0 = engine.command_energy();
        // Every lane commits the *merged* output row (each subarray's
        // copy-out only drives the slots its segment matched; the merged
        // vector is what the destination row holds when the last lane's
        // RBM lands).
        pack_slots_into(&self.merged, slot_bits, row_bytes, &mut self.row)?;
        let farm = self.farm.filter(|p| {
            self.segments.len() >= p.min_segments.max(1)
                && (design.reload_per_query() || self.segments.iter().all(LutStore::is_loaded))
        });
        match farm {
            Some(policy) => {
                self.issue_lanes_farmed(engine, design, source, dest, dst_row, policy)?
            }
            None => self.issue_lanes_serial(engine, design, source, dest, src_loc, dst_row)?,
        }

        let cost = PartitionedCost {
            segments: self.segments.len(),
            latency: engine.elapsed() - clock0,
            energy: engine.command_energy() - energy0,
        };
        std::mem::swap(scratch.out_mut(), &mut self.merged);
        Ok(cost)
    }

    /// Issues every segment's command stream serially on the engine, each
    /// as a parallel lane from the current clock. The per-lane spend
    /// sequence replicates [`QueryExecutor::execute_resident_with`]
    /// exactly (reload → activate → sweep → precharge/destroy → copy-out),
    /// so cost, counters, and the tFAW window evolve bit-identically to
    /// the old per-segment executor loop. `self.row` must hold the packed
    /// merged output row.
    ///
    /// Each lane consults the compiled-plan cache (`crate::plan`): a
    /// warm lane applies its memoized cost tape and skips issuance; the
    /// functional effects the tape stands in for — the destination-row
    /// commit and GSA destruction — are applied directly (same pattern as
    /// the farmed path below).
    fn issue_lanes_serial(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        src_loc: RowLoc,
        dst_row: RowId,
    ) -> Result<(), PlutoError> {
        let bank = src_loc.bank;
        let clock0 = engine.elapsed();
        let out_row = &self.row;
        let mut slowest = clock0;
        let plans_ok = self.use_plans && !engine.trace_enabled();
        let mut any_replayed = false;
        for store in self.segments.iter_mut() {
            engine.rewind_clock(clock0);
            // A stale BSA/GMC segment needs the *functional* reload only
            // the issuing path performs.
            let legal = plans_ok && (design.reload_per_query() || store.is_loaded());
            let mut record: Option<PlanKey> = None;
            if legal {
                let key = PlanKey::new(
                    PlanShape::Lane,
                    engine,
                    design,
                    store,
                    store.subarray().0.abs_diff(dest.0),
                    dest == source,
                    0,
                );
                match plan::lookup(&key) {
                    Some(tape) if tape.replayable_from(engine) => {
                        engine.apply_replayed(&tape);
                        // The sweep the tape stands in for destroyed the
                        // segment (zero-cost functional effect).
                        if design.destructive_reads() {
                            store.mark_destroyed(engine)?;
                        }
                        any_replayed = true;
                        slowest = slowest.max(engine.elapsed());
                        continue;
                    }
                    Some(_) => {
                        // Captured from a different tFAW phase (e.g. a
                        // hop-distance key collision between two lane
                        // positions) — issue in full.
                        plan::note_fallback();
                    }
                    None => {
                        engine.begin_tape();
                        record = Some(key);
                    }
                }
            } else if self.use_plans {
                plan::note_fallback();
            }
            if let Err(e) = issue_lane(
                engine, design, store, source, dest, src_loc, dst_row, out_row,
            ) {
                engine.abort_tape();
                return Err(e);
            }
            if let Some(key) = record {
                if let Some(tape) = engine.end_tape() {
                    plan::insert(key, tape);
                }
            }
            slowest = slowest.max(engine.elapsed());
        }
        engine.advance_clock_to(slowest);
        if any_replayed {
            // Replayed lanes skipped the LISA write-through; commit the
            // merged output row they would have landed (idempotent when
            // issued lanes already wrote the same bytes).
            engine.poke_row(
                RowLoc {
                    bank,
                    subarray: dest,
                    row: dst_row,
                },
                &self.row,
            )?;
        }
        Ok(())
    }

    /// Farms the per-segment cost lanes across worker threads: each lane
    /// replays its command costs on a [`pluto_dram::LaneClock`] fork and
    /// the outcomes fold back in segment order. Callers guarantee every
    /// store is ready (loaded, or the design reloads per query). The
    /// functional effects the lanes skipped — the destination row commit
    /// and GSA's destructive clear — are applied on the engine afterwards.
    fn issue_lanes_farmed(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        dst_row: RowId,
        policy: FarmPolicy,
    ) -> Result<(), PlutoError> {
        let bank = self.bank();
        let step_kind = design.sweep_step_kind();
        let reload = design.reload_per_query();
        struct LaneSpec {
            rows: usize,
            reload_hops: u64,
            out_hops: u64,
        }
        let specs: Vec<LaneSpec> = self
            .segments
            .iter()
            .map(|s| LaneSpec {
                rows: s.lut().len(),
                reload_hops: u64::from(s.master().0.abs_diff(s.subarray().0)),
                out_hops: u64::from(s.subarray().0.abs_diff(dest.0)),
            })
            .collect();
        let workers = if policy.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            policy.workers
        }
        .clamp(1, specs.len());
        let chunk = specs.len().div_ceil(workers);
        let mut outcomes: Vec<Option<LaneOutcome>> = Vec::new();
        outcomes.resize_with(specs.len(), || None);
        let template = engine.fork_lane();
        std::thread::scope(|scope| {
            for (spec_chunk, out_chunk) in specs.chunks(chunk).zip(outcomes.chunks_mut(chunk)) {
                let template = template.clone();
                scope.spawn(move || {
                    for (spec, slot) in spec_chunk.iter().zip(out_chunk.iter_mut()) {
                        let mut lane = template.clone();
                        if reload {
                            lane.lisa_rbm_rows(spec.reload_hops, spec.rows);
                        }
                        lane.activate();
                        lane.sweep_rows(spec.rows, step_kind);
                        if step_kind == SweepStepKind::ChargeShare {
                            lane.precharge();
                        }
                        if dest == source {
                            lane.precharge();
                        }
                        lane.lisa_rbm_rows(spec.out_hops, 1);
                        if dest != source {
                            lane.precharge();
                        }
                        *slot = Some(lane.finish());
                    }
                });
            }
        });
        for outcome in outcomes.iter().flatten() {
            engine.merge_lane(outcome);
        }
        // Functional effects the cost lanes skipped (all zero-cost).
        engine.poke_row(
            RowLoc {
                bank,
                subarray: dest,
                row: dst_row,
            },
            &self.row,
        )?;
        if design.destructive_reads() {
            for store in self.segments.iter_mut() {
                store.mark_destroyed(engine)?;
            }
        }
        Ok(())
    }

    /// The retained pre-fusion data path: one full [`QueryExecutor`] run
    /// per segment with rebased inputs, re-packed source rows, and an
    /// O(N × slots) output merge. Kept verbatim as the differential
    /// oracle — `tests/partition_fused.rs` asserts the fused path matches
    /// it in outputs, [`PartitionedCost`] (to the bit), engine clock,
    /// stats, and committed row bytes. Not a production entry point.
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query_serial_reference(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        let n = self.lut.len() as u64;
        if let Some(&bad) = inputs.iter().find(|&&x| x >= n) {
            return Err(PlutoError::IndexOutOfRange {
                value: bad,
                input_bits: self.lut.input_bits(),
            });
        }
        let bank = self.bank();
        let slot_bits = self.lut.slot_bits();
        let row_bytes = engine.config().row_bytes;
        self.merged.clear();
        self.merged.resize(inputs.len(), 0);

        let clock0 = engine.elapsed();
        let energy0 = engine.command_energy();
        let mut slowest = clock0;
        for (k, store) in self.segments.iter_mut().enumerate() {
            engine.rewind_clock(clock0);
            let base = (k * self.segment_rows) as u64;
            let span = store.lut().len() as u64;
            // Inputs rebased into this segment; out-of-segment slots query
            // index 0 (their captured values are discarded on merge).
            self.local.clear();
            self.local.extend(inputs.iter().map(|&x| {
                if x >= base && x < base + span {
                    x - base
                } else {
                    0
                }
            }));
            let placement = QueryPlacement {
                bank,
                source,
                pluto: store.subarray(),
                dest,
            };
            let mut ex = QueryExecutor::new(engine, design);
            // The reference is the issuing oracle — never serve it from
            // (or populate) the plan cache.
            ex.set_use_plans(false);
            ex.execute_with(store, placement, &self.local, src_row, dst_row, scratch)?;
            for (i, &x) in inputs.iter().enumerate() {
                if x >= base && x < base + span {
                    self.merged[i] = scratch.outputs()[i];
                }
            }
            slowest = slowest.max(engine.elapsed());
        }
        engine.advance_clock_to(slowest);

        // Restore the global index vector and commit the merged outputs
        // (zero-cost backdoors; the per-lane streams carried the cost).
        let src_loc = RowLoc {
            bank,
            subarray: source,
            row: src_row,
        };
        pack_slots_into(inputs, slot_bits, row_bytes, &mut self.row)?;
        engine.poke_row(src_loc, &self.row)?;
        let dst_loc = RowLoc {
            bank,
            subarray: dest,
            row: dst_row,
        };
        pack_slots_into(&self.merged, slot_bits, row_bytes, &mut self.row)?;
        engine.poke_row(dst_loc, &self.row)?;

        let cost = PartitionedCost {
            segments: self.segments.len(),
            latency: engine.elapsed() - clock0,
            energy: engine.command_energy() - energy0,
        };
        std::mem::swap(scratch.out_mut(), &mut self.merged);
        Ok(cost)
    }
}

/// One segment's issuing lane — the spend sequence the per-segment
/// [`QueryExecutor`] produced pre-fusion, and the authoritative oracle a
/// lane-shaped plan tape is recorded from. `out_row` must hold the packed
/// merged output row.
#[allow(clippy::too_many_arguments)]
fn issue_lane(
    engine: &mut Engine,
    design: DesignKind,
    store: &mut LutStore,
    source: SubarrayId,
    dest: SubarrayId,
    src_loc: RowLoc,
    dst_row: RowId,
    out_row: &[u8],
) -> Result<(), PlutoError> {
    let bank = src_loc.bank;
    let step_kind = design.sweep_step_kind();
    // Phase R: GSA reloads the LUT before every query (§5.2.1). The
    // reload is transient — full cost, no functional restore — because
    // this same lane destroys the segment again below, before any caller
    // can observe the restored rows.
    if design.reload_per_query() {
        store.reload_transient(engine)?;
    } else {
        store.ensure_ready(engine, design)?;
    }
    // Phase 1: latch the (global) input vector.
    engine.activate(src_loc)?;
    // Phases 2–4: the pLUTo Row Sweep, one step per segment row.
    let pluto = store.subarray();
    engine.sweep_rows(bank, pluto, RowId(0), store.lut().len(), step_kind)?;
    if step_kind == SweepStepKind::ChargeShare {
        engine.precharge(bank, pluto)?;
    }
    if design.destructive_reads() {
        store.mark_destroyed(engine)?;
    }
    // Phase 5: copy-out. Close the source row first when it shares the
    // destination subarray, after otherwise.
    if dest == source {
        engine.precharge(bank, source)?;
    }
    engine.deposit_buffer(bank, pluto, out_row)?;
    engine.lisa_rbm_to_row(bank, pluto, dest, dst_row)?;
    if dest != source {
        engine.precharge(bank, source)?;
    }
    Ok(())
}

/// A LUT resident in one *or many* pLUTo-enabled subarrays: the unified
/// store the execution stack queries without caring whether the table fit
/// a single subarray or was partitioned per §5.6.
#[derive(Debug)]
pub enum PlutoStore {
    /// The LUT fits one subarray (a plain [`LutStore`]).
    Single(LutStore),
    /// The LUT exceeds `rows_per_subarray` and was partitioned (§5.6).
    Partitioned(PartitionedLut),
}

impl PlutoStore {
    /// Materializes `lut` starting at `first_subarray`, claiming
    /// consecutive (pLUTo, master) subarray pairs: one pair for a LUT
    /// that fits a subarray, one pair per segment otherwise.
    ///
    /// Routing is by *sweep legality*, not just size: a LUT whose length
    /// exceeds `rows_per_subarray` partitions across subarrays, and a
    /// truncated LUT whose length is not a power of two — which §6.1
    /// forbids as a single sweep — takes the partitioned path too, where
    /// it is padded to a power-of-two (possibly single-segment) sweep.
    ///
    /// # Errors
    /// Fails if the bank runs out of subarrays.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        first_subarray: SubarrayId,
    ) -> Result<Self, PlutoError> {
        if lut.len() > engine.config().rows_per_subarray as usize || !lut.len().is_power_of_two() {
            return Ok(PlutoStore::Partitioned(PartitionedLut::load(
                engine,
                lut,
                bank,
                first_subarray,
            )?));
        }
        let master = SubarrayId(first_subarray.0 + 1);
        if master.0 >= engine.config().subarrays_per_bank {
            return Err(PlutoError::AllocationFailed {
                reason: "out of pLUTo-enabled subarrays".into(),
            });
        }
        Ok(PlutoStore::Single(LutStore::load(
            engine,
            lut,
            bank,
            first_subarray,
            master,
            0,
        )?))
    }

    /// The logical LUT this store answers queries for.
    pub fn lut(&self) -> &Lut {
        match self {
            PlutoStore::Single(s) => s.lut(),
            PlutoStore::Partitioned(p) => p.lut(),
        }
    }

    /// Whether the LUT was partitioned across subarrays.
    pub fn is_partitioned(&self) -> bool {
        matches!(self, PlutoStore::Partitioned(_))
    }

    /// Number of pLUTo-enabled subarrays sweeping per query.
    pub fn segment_count(&self) -> usize {
        match self {
            PlutoStore::Single(_) => 1,
            PlutoStore::Partitioned(p) => p.segment_count(),
        }
    }

    /// Subarrays this store occupies (one (pLUTo, master) pair per
    /// segment) — what an allocator must advance its cursor by.
    pub fn subarrays_claimed(&self) -> u16 {
        2 * self.segment_count() as u16
    }

    /// Applies a segment-farming policy ([`PartitionedLut::set_farming`])
    /// when this store is partitioned; a no-op for single-subarray stores.
    pub fn set_farming(&mut self, policy: Option<FarmPolicy>) {
        if let PlutoStore::Partitioned(p) = self {
            p.set_farming(policy);
        }
    }

    /// Executes one bulk LUT query through whichever data path the store
    /// uses, with caller-owned scratch buffers: inputs are packed into
    /// `src_row` of `source`, the output vector is committed to `dst_row`
    /// of `dest` and lands in [`QueryScratch::outputs`]. Returns the
    /// §5.6-merged cost (a single-subarray query is the 1-segment case).
    ///
    /// # Errors
    /// Fails if any input exceeds the LUT's range, the inputs exceed one
    /// row's slot capacity, or on any underlying DRAM error.
    #[allow(clippy::too_many_arguments)]
    pub fn query_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        self.route(
            engine,
            design,
            source,
            dest,
            QueryInput::Slots(inputs),
            src_row,
            dst_row,
            scratch,
        )
    }

    /// [`PlutoStore::query_with`] for an input vector already resident in
    /// `src_row` (the controller's `pluto_op` path).
    ///
    /// # Errors
    /// Same conditions as [`PlutoStore::query_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn query_resident_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        self.route(
            engine,
            design,
            source,
            dest,
            QueryInput::Resident(num_slots),
            src_row,
            dst_row,
            scratch,
        )
    }

    /// The single routing layer behind both query entry points: picks the
    /// single-subarray executor or the partitioned fused path, then
    /// dispatches on how the inputs arrive.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        input: QueryInput<'_>,
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        match self {
            PlutoStore::Single(store) => {
                let placement = QueryPlacement {
                    bank: store.bank(),
                    source,
                    pluto: store.subarray(),
                    dest,
                };
                let mut ex = QueryExecutor::new(engine, design);
                let cost = match input {
                    QueryInput::Slots(inputs) => {
                        ex.execute_with(store, placement, inputs, src_row, dst_row, scratch)?
                    }
                    QueryInput::Resident(n) => {
                        ex.execute_resident_with(store, placement, src_row, dst_row, n, scratch)?
                    }
                };
                Ok(PartitionedCost {
                    segments: 1,
                    latency: cost.total(),
                    energy: cost.energy,
                })
            }
            PlutoStore::Partitioned(p) => match input {
                QueryInput::Slots(inputs) => p.query_with(
                    engine, design, source, dest, inputs, src_row, dst_row, scratch,
                ),
                QueryInput::Resident(n) => p.query_resident_with(
                    engine, design, source, dest, src_row, dst_row, n, scratch,
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::{pack_slots, slots_per_row, unpack_slots};
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 64,
            rows_per_subarray: 64, // force partitioning for 256-entry LUTs
            ..DramConfig::ddr4_2400()
        })
    }

    const SRC: SubarrayId = SubarrayId(0);
    const DST: SubarrayId = SubarrayId(1);

    #[test]
    fn large_lut_partitions_and_answers_correctly() {
        let mut e = engine();
        // 256-entry LUT over 64-row subarrays => 4 segments.
        let lut = Lut::from_fn("sq8", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 4);
        let inputs: Vec<u64> = (0..16u64).map(|i| i * 16 + 3).collect();
        let (out, cost) = part
            .query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &inputs,
                RowId(0),
                RowId(1),
            )
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
        assert_eq!(cost.segments, 4);
    }

    #[test]
    fn partition_cost_semantics_match_section_5_6() {
        // Latency equals a single 64-row query; energy is ~4x.
        let mut e = engine();
        let small = Lut::from_fn("sq6", 6, 16, |x| x * x).unwrap(); // 64 rows, 1 segment
        let mut p1 = PartitionedLut::load(&mut e, small, BankId(0), SubarrayId(2)).unwrap();
        let (_, c1) = p1
            .query(&mut e, DesignKind::Bsa, SRC, DST, &[5], RowId(0), RowId(1))
            .unwrap();
        let big = Lut::from_fn("sq8b", 8, 16, |x| x * x).unwrap(); // 4 segments
        let mut p4 = PartitionedLut::load(&mut e, big, BankId(0), SubarrayId(10)).unwrap();
        let (_, c4) = p4
            .query(&mut e, DesignKind::Bsa, SRC, DST, &[5], RowId(0), RowId(1))
            .unwrap();
        // Same wall latency up to LISA placement distance (each segment
        // sweeps the same 64 rows; the farthest segment's copy-out crosses
        // a few more subarrays).
        let delta = c4.latency.saturating_sub(c1.latency);
        assert!(
            delta.as_ns() < 300.0 && c4.latency.as_ns() / c1.latency.as_ns() < 1.2,
            "partitioned latency {} vs single {}",
            c4.latency,
            c1.latency
        );
        // …roughly segment-count-times the energy.
        let ratio = c4.energy.as_pj() / c1.energy.as_pj();
        assert!((ratio - 4.0).abs() < 0.5, "energy ratio {ratio}");
    }

    #[test]
    fn engine_accounting_agrees_with_partitioned_cost() {
        // The §5.6 merge is implemented *on the engine* (parallel lanes),
        // so the engine's clock/energy deltas must equal the returned
        // cost — the old per-segment serial loop advanced the clock
        // segment-count times instead.
        for design in DesignKind::ALL {
            let mut e = engine();
            let lut = Lut::from_fn("acct8", 8, 16, |x| x * 3).unwrap();
            let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
            let inputs: Vec<u64> = (0..16u64).map(|i| i * 17 % 256).collect();
            let t0 = e.elapsed();
            let e0 = e.command_energy();
            let (_, cost) = part
                .query(&mut e, design, SRC, DST, &inputs, RowId(0), RowId(1))
                .unwrap();
            assert_eq!(e.elapsed() - t0, cost.latency, "{design} clock drift");
            assert!(
                ((e.command_energy() - e0).as_pj() - cost.energy.as_pj()).abs() < 1e-9,
                "{design} energy drift"
            );
        }
    }

    #[test]
    fn odd_length_tail_segment_is_padded() {
        // 650 elements over 64-row subarrays: 10 full segments plus a
        // 10-element tail padded to 16. The old loader rejected any
        // non-power-of-two segment outright.
        let mut e = engine();
        let lut = Lut::from_fn_len("odd650", 650, 16, |x| (x * x) & 0xFFFF).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 11);
        assert_eq!(part.segments()[10].lut().len(), 16, "tail padded to 2^4");
        // Seam and tail indices answer from the logical table.
        let inputs: Vec<u64> = vec![0, 63, 64, 127, 128, 639, 640, 648, 649];
        let (out, _) = part
            .query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &inputs,
                RowId(0),
                RowId(1),
            )
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| (x * x) & 0xFFFF).collect();
        assert_eq!(out, expect);
        // Indices in the padded range are rejected like any out-of-range
        // input.
        assert!(matches!(
            part.query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &[650],
                RowId(0),
                RowId(1)
            ),
            Err(PlutoError::IndexOutOfRange { value: 650, .. })
        ));
    }

    #[test]
    fn segments_keep_parent_output_bits_and_row_layout() {
        // Parent: 8-bit indices, 4-bit elements => slot width 8. The old
        // loader inflated segment output_bits to max(out, in); segments
        // must instead carry the true 4-bit output with the parent's slot
        // width pinned, making each element row byte-identical to the
        // unpartitioned layout.
        let mut e = engine();
        let lut = Lut::from_fn("narrow8to4", 8, 4, |x| x % 13).unwrap();
        let parent = lut.clone();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        let row_bytes = e.config().row_bytes;
        let per_row = slots_per_row(row_bytes, parent.slot_bits());
        for (k, seg) in part.segments().iter().enumerate() {
            assert_eq!(seg.lut().output_bits(), parent.output_bits(), "seg {k}");
            assert_eq!(seg.lut().slot_bits(), parent.slot_bits(), "seg {k}");
            for i in 0..seg.lut().len() {
                let global = k * part.segment_rows() + i;
                let elem = parent.elements()[global];
                let expect =
                    pack_slots(&vec![elem; per_row], parent.slot_bits(), row_bytes).unwrap();
                assert_eq!(
                    e.peek_row(seg.element_row(i)).unwrap(),
                    expect,
                    "seg {k} row {i} differs from the unpartitioned layout"
                );
            }
        }
    }

    #[test]
    fn sliced_segment_load_matches_master_copies_and_pad_rows() {
        // The one-pass loader slices the parent pack: element rows land in
        // both the pLUTo and master subarrays, and tail pad rows are zero.
        let mut e = engine();
        let lut = Lut::from_fn_len("slice650", 650, 16, |x| (x * 7) & 0xFFFF).unwrap();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        let tail = part.segments().last().unwrap();
        for i in 0..tail.lut().len() {
            let pluto_row = e.peek_row(tail.element_row(i)).unwrap();
            let master_row = e
                .peek_row(RowLoc {
                    bank: BankId(0),
                    subarray: tail.master(),
                    row: RowId(i as u16),
                })
                .unwrap();
            assert_eq!(pluto_row, master_row, "row {i}: pluto vs master copy");
        }
        // 650 = 10×64 + 10: tail rows 10.. are shared zero padding.
        for i in 10..tail.lut().len() {
            assert!(
                e.peek_row(tail.element_row(i))
                    .unwrap()
                    .iter()
                    .all(|&b| b == 0),
                "pad row {i} must be zero"
            );
        }
    }

    #[test]
    fn source_and_destination_rows_hold_global_vectors() {
        // After a partitioned query the source row holds the *global*
        // index vector (not the last segment's rebased copy) and the
        // destination row holds the *merged* output vector.
        let mut e = engine();
        let lut = Lut::from_fn("sq8r", 8, 16, |x| x * x).unwrap();
        let slot = lut.slot_bits();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        let inputs: Vec<u64> = vec![7, 200, 70, 135];
        part.query(
            &mut e,
            DesignKind::Bsa,
            SRC,
            DST,
            &inputs,
            RowId(0),
            RowId(3),
        )
        .unwrap();
        let src = e
            .peek_row(RowLoc {
                bank: BankId(0),
                subarray: SRC,
                row: RowId(0),
            })
            .unwrap();
        assert_eq!(unpack_slots(&src, slot, inputs.len()), inputs);
        let dst = e
            .peek_row(RowLoc {
                bank: BankId(0),
                subarray: DST,
                row: RowId(3),
            })
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(unpack_slots(&dst, slot, inputs.len()), expect);
    }

    #[test]
    fn small_luts_stay_single_segment() {
        let mut e = engine();
        let lut = Lut::from_fn("id4", 4, 4, |x| x).unwrap();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 1);
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let mut e = engine();
        let lut = Lut::from_fn("sq8c", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert!(matches!(
            part.query(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[256],
                RowId(0),
                RowId(1)
            ),
            Err(PlutoError::IndexOutOfRange { value: 256, .. })
        ));
    }

    #[test]
    fn exhausting_subarrays_fails_cleanly() {
        let mut e = Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 6, // room for at most 2 segments
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        });
        let lut = Lut::from_fn("sq8d", 8, 16, |x| x * x).unwrap();
        assert!(matches!(
            PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)),
            Err(PlutoError::AllocationFailed { .. })
        ));
    }

    #[test]
    fn farmed_lanes_match_serial_issue_exactly() {
        // Farming replays lane costs on worker threads; outputs, latency,
        // command counters, and committed rows must equal the serial
        // issue exactly, and energy within float-fold tolerance.
        for design in DesignKind::ALL {
            let mut e_serial = engine();
            let mut e_farm = engine();
            let lut = Lut::from_fn("farm8", 8, 16, |x| (x * 29 + 3) & 0xFFFF).unwrap();
            let mut serial =
                PartitionedLut::load(&mut e_serial, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
            let mut farmed =
                PartitionedLut::load(&mut e_farm, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
            farmed.set_farming(Some(FarmPolicy {
                min_segments: 2,
                workers: 3,
            }));
            let inputs: Vec<u64> = vec![0, 63, 64, 128, 255, 17, 200, 99];
            for round in 0..2 {
                let (out_s, cost_s) = serial
                    .query(&mut e_serial, design, SRC, DST, &inputs, RowId(0), RowId(1))
                    .unwrap();
                let (out_f, cost_f) = farmed
                    .query(&mut e_farm, design, SRC, DST, &inputs, RowId(0), RowId(1))
                    .unwrap();
                assert_eq!(out_f, out_s, "{design} round {round}: outputs");
                assert_eq!(
                    cost_f.latency, cost_s.latency,
                    "{design} round {round}: latency"
                );
                assert_eq!(cost_f.segments, cost_s.segments);
                assert!(
                    (cost_f.energy.as_pj() - cost_s.energy.as_pj()).abs()
                        < 1e-9 * cost_s.energy.as_pj().max(1.0),
                    "{design} round {round}: farmed energy {} vs serial {}",
                    cost_f.energy,
                    cost_s.energy
                );
                assert_eq!(
                    e_farm.elapsed(),
                    e_serial.elapsed(),
                    "{design} round {round}: engine clock"
                );
                assert_eq!(
                    e_farm.stats(),
                    e_serial.stats(),
                    "{design} round {round}: command counters"
                );
                let dst = |e: &Engine| {
                    e.peek_row(RowLoc {
                        bank: BankId(0),
                        subarray: DST,
                        row: RowId(1),
                    })
                    .unwrap()
                };
                assert_eq!(dst(&e_farm), dst(&e_serial), "{design}: destination row");
            }
        }
    }

    #[test]
    fn farming_below_threshold_or_stale_stores_falls_back_to_serial() {
        // A 4-segment partition under a min_segments=8 policy must take
        // the serial path (indistinguishable results either way — this
        // guards the gate logic compiles to a fallback, not an error).
        let mut e = engine();
        let lut = Lut::from_fn("gate8", 8, 16, |x| x + 2).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        part.set_farming(Some(FarmPolicy {
            min_segments: 8,
            workers: 2,
        }));
        let (out, cost) = part
            .query(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[1, 100, 255],
                RowId(0),
                RowId(1),
            )
            .unwrap();
        assert_eq!(out, vec![3, 102, 257]);
        assert_eq!(cost.segments, 4);
    }

    #[test]
    fn pluto_store_routes_by_size_and_claims_pairs() {
        let mut e = engine();
        let small = Lut::from_fn("route4", 4, 4, |x| x).unwrap();
        let s = PlutoStore::load(&mut e, small, BankId(0), SubarrayId(2)).unwrap();
        assert!(!s.is_partitioned());
        assert_eq!(s.subarrays_claimed(), 2);
        let big = Lut::from_fn("route8", 8, 16, |x| x + 1).unwrap();
        let p = PlutoStore::load(&mut e, big, BankId(0), SubarrayId(4)).unwrap();
        assert!(p.is_partitioned());
        assert_eq!(p.segment_count(), 4);
        assert_eq!(p.subarrays_claimed(), 8);
    }

    #[test]
    fn non_power_of_two_luts_route_partitioned_even_when_they_fit() {
        // §6.1 forbids a non-power-of-two single sweep, so a truncated
        // 50-entry LUT on a 64-row subarray still takes the partitioned
        // path: one segment, padded to a 64-row sweep.
        let mut e = engine();
        let lut = Lut::from_fn_len("odd50", 50, 16, |x| x * 5).unwrap();
        let mut store = PlutoStore::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert!(store.is_partitioned());
        assert_eq!(store.segment_count(), 1);
        match &store {
            PlutoStore::Partitioned(p) => {
                assert_eq!(p.segments()[0].lut().len(), 64, "padded to 2^6")
            }
            PlutoStore::Single(_) => unreachable!(),
        }
        let mut scratch = QueryScratch::new();
        store
            .query_with(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[0, 7, 49],
                RowId(0),
                RowId(1),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(scratch.outputs(), [0, 35, 245]);
        // Indices in the padded range stay invalid.
        assert!(matches!(
            store.query_with(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[50],
                RowId(0),
                RowId(1),
                &mut scratch,
            ),
            Err(PlutoError::IndexOutOfRange { value: 50, .. })
        ));
    }

    #[test]
    fn pluto_store_query_is_uniform_across_both_paths() {
        // The same `query_with` call answers a small and a large LUT.
        let mut e = engine();
        let mut scratch = QueryScratch::new();
        for (name, bits) in [("uni6", 6u32), ("uni8", 8u32)] {
            let lut = Lut::from_fn(name, bits, 16, |x| x * 2 + 1).unwrap();
            let mut store = PlutoStore::load(&mut e, lut, BankId(0), SubarrayId(20)).unwrap();
            let n = 1u64 << bits;
            let inputs: Vec<u64> = (0..8u64).map(|i| i * (n / 8)).collect();
            let cost = store
                .query_with(
                    &mut e,
                    DesignKind::Gmc,
                    SRC,
                    DST,
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
            let expect: Vec<u64> = inputs.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(scratch.outputs(), expect, "{name}");
            assert_eq!(cost.segments, store.segment_count(), "{name}");
            assert!(cost.latency > Picos::ZERO && cost.energy > PicoJoules::ZERO);
        }
    }
}
