//! Partitioned LUT queries across subarrays (paper §5.6).
//!
//! A single-subarray query supports at most `rows_per_subarray` LUT
//! elements. Larger LUTs are *partitioned*: segment `k` (rows
//! `k·R .. (k+1)·R` of the logical LUT) lives in its own pLUTo-enabled
//! subarray, every subarray sweeps its segment simultaneously, and each
//! input element matches in exactly one segment. The paper's §5.6 cost
//! semantics: **latency does not increase** (segments sweep in parallel)
//! but **energy multiplies by the segment count** — which is why pLUTo is
//! "not well suited for executing large-bit-width lookup queries".

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::Lut;
use crate::query::{QueryCost, QueryExecutor, QueryPlacement};
use crate::store::LutStore;
use pluto_dram::{BankId, Engine, PicoJoules, Picos, RowId, SubarrayId};

/// A LUT partitioned across several pLUTo-enabled subarrays.
#[derive(Debug)]
pub struct PartitionedLut {
    lut: Lut,
    segments: Vec<LutStore>,
    segment_rows: usize,
}

/// Cost of a partitioned query under the §5.6 semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedCost {
    /// Number of segments (subarrays) engaged.
    pub segments: usize,
    /// Wall latency: the slowest (= any) segment's query cost.
    pub latency: Picos,
    /// Total energy: the *sum* over all segments (§5.6: "partitioning the
    /// query … increases energy consumption N-fold").
    pub energy: PicoJoules,
}

impl PartitionedLut {
    /// Loads `lut` across as many subarrays as needed, starting at
    /// `first_subarray` and claiming pairs (segment, master) like the
    /// single-subarray store.
    ///
    /// # Errors
    /// Fails if the bank runs out of subarrays.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        first_subarray: SubarrayId,
    ) -> Result<Self, PlutoError> {
        let rows = engine.config().rows_per_subarray as usize;
        let segment_rows = rows.min(lut.len());
        let count = lut.len().div_ceil(segment_rows);
        let mut segments = Vec::with_capacity(count);
        for k in 0..count {
            let base = k * segment_rows;
            let end = (base + segment_rows).min(lut.len());
            let seg_len = end - base;
            if !seg_len.is_power_of_two() {
                return Err(PlutoError::InvalidLut {
                    reason: format!("segment {k} has {seg_len} elements (not a power of two)"),
                });
            }
            let elements = lut.elements()[base..end].to_vec();
            let seg = Lut::from_table(
                format!("{}@seg{k}", lut.name()),
                seg_len.trailing_zeros(),
                lut.output_bits().max(lut.input_bits()),
                elements,
            )?;
            let pluto = SubarrayId(first_subarray.0 + 2 * k as u16);
            let master = SubarrayId(pluto.0 + 1);
            if master.0 >= engine.config().subarrays_per_bank {
                return Err(PlutoError::AllocationFailed {
                    reason: format!("segment {k} exceeds the bank's subarrays"),
                });
            }
            segments.push(LutStore::load(engine, seg, bank, pluto, master, 0)?);
        }
        Ok(PartitionedLut {
            lut,
            segments,
            segment_rows,
        })
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Executes the partitioned query: every segment sweeps; outputs merge
    /// by each input's owning segment. Returns the outputs and the §5.6
    /// cost (max-latency, summed energy).
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    pub fn query(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
    ) -> Result<(Vec<u64>, PartitionedCost), PlutoError> {
        let n = self.lut.len() as u64;
        if let Some(&bad) = inputs.iter().find(|&&x| x >= n) {
            return Err(PlutoError::IndexOutOfRange {
                value: bad,
                input_bits: self.lut.input_bits(),
            });
        }
        let bank = self.segments[0].bank();
        let mut outputs = vec![0u64; inputs.len()];
        let mut latency = Picos::ZERO;
        let mut energy = PicoJoules::ZERO;
        for (k, store) in self.segments.iter_mut().enumerate() {
            let base = (k * self.segment_rows) as u64;
            let span = store.lut().len() as u64;
            // Inputs rebased into this segment; out-of-segment slots query
            // index 0 (their captured values are discarded on merge).
            let local: Vec<u64> = inputs
                .iter()
                .map(|&x| {
                    if x >= base && x < base + span {
                        x - base
                    } else {
                        0
                    }
                })
                .collect();
            let placement = QueryPlacement {
                bank,
                source,
                pluto: store.subarray(),
                dest,
            };
            let mut ex = QueryExecutor::new(engine, design);
            let (seg_out, cost): (Vec<u64>, QueryCost) =
                ex.execute(store, placement, &local, RowId(0), RowId(1))?;
            for (i, &x) in inputs.iter().enumerate() {
                if x >= base && x < base + span {
                    outputs[i] = seg_out[i];
                }
            }
            // §5.6: segments sweep simultaneously — wall latency is the
            // max; energy accumulates across all engaged subarrays.
            latency = latency.max(cost.total());
            energy += cost.energy;
        }
        Ok((
            outputs,
            PartitionedCost {
                segments: self.segments.len(),
                latency,
                energy,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 64,
            rows_per_subarray: 64, // force partitioning for 256-entry LUTs
            ..DramConfig::ddr4_2400()
        })
    }

    #[test]
    fn large_lut_partitions_and_answers_correctly() {
        let mut e = engine();
        // 256-entry LUT over 64-row subarrays => 4 segments.
        let lut = Lut::from_fn("sq8", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 4);
        let inputs: Vec<u64> = (0..16u64).map(|i| i * 16 + 3).collect();
        let (out, cost) = part
            .query(
                &mut e,
                DesignKind::Gmc,
                SubarrayId(0),
                SubarrayId(1),
                &inputs,
            )
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
        assert_eq!(cost.segments, 4);
    }

    #[test]
    fn partition_cost_semantics_match_section_5_6() {
        // Latency equals a single 64-row query; energy is ~4x.
        let mut e = engine();
        let small = Lut::from_fn("sq6", 6, 16, |x| x * x).unwrap(); // 64 rows, 1 segment
        let mut p1 = PartitionedLut::load(&mut e, small, BankId(0), SubarrayId(2)).unwrap();
        let (_, c1) = p1
            .query(&mut e, DesignKind::Bsa, SubarrayId(0), SubarrayId(1), &[5])
            .unwrap();
        let big = Lut::from_fn("sq8b", 8, 16, |x| x * x).unwrap(); // 4 segments
        let mut p4 = PartitionedLut::load(&mut e, big, BankId(0), SubarrayId(10)).unwrap();
        let (_, c4) = p4
            .query(&mut e, DesignKind::Bsa, SubarrayId(0), SubarrayId(1), &[5])
            .unwrap();
        // Same wall latency up to LISA placement distance (each segment
        // sweeps the same 64 rows; the farthest segment's copy-out crosses
        // a few more subarrays).
        let delta = c4.latency.saturating_sub(c1.latency);
        assert!(
            delta.as_ns() < 300.0 && c4.latency.as_ns() / c1.latency.as_ns() < 1.2,
            "partitioned latency {} vs single {}",
            c4.latency,
            c1.latency
        );
        // …roughly segment-count-times the energy.
        let ratio = c4.energy.as_pj() / c1.energy.as_pj();
        assert!((ratio - 4.0).abs() < 0.5, "energy ratio {ratio}");
    }

    #[test]
    fn small_luts_stay_single_segment() {
        let mut e = engine();
        let lut = Lut::from_fn("id4", 4, 4, |x| x).unwrap();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 1);
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let mut e = engine();
        let lut = Lut::from_fn("sq8c", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert!(matches!(
            part.query(
                &mut e,
                DesignKind::Bsa,
                SubarrayId(0),
                SubarrayId(1),
                &[256]
            ),
            Err(PlutoError::IndexOutOfRange { value: 256, .. })
        ));
    }

    #[test]
    fn exhausting_subarrays_fails_cleanly() {
        let mut e = Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 6, // room for at most 2 segments
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        });
        let lut = Lut::from_fn("sq8d", 8, 16, |x| x * x).unwrap();
        assert!(matches!(
            PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)),
            Err(PlutoError::AllocationFailed { .. })
        ));
    }
}
