//! Partitioned LUT queries across subarrays (paper §5.6).
//!
//! A single-subarray query supports at most `rows_per_subarray` LUT
//! elements. Larger LUTs are *partitioned*: segment `k` (rows
//! `k·R .. (k+1)·R` of the logical LUT) lives in its own pLUTo-enabled
//! subarray, every subarray sweeps its segment simultaneously, and each
//! input element matches in exactly one segment. The paper's §5.6 cost
//! semantics: **latency does not increase** (segments sweep in parallel)
//! but **energy multiplies by the segment count** — which is why pLUTo is
//! "not well suited for executing large-bit-width lookup queries".
//!
//! This module is the single implementation of those semantics
//! (`DESIGN.md` §8):
//!
//! * **Segment layout.** Segments are stored at the parent LUT's *true*
//!   `output_bits` with the parent's slot width pinned as a floor
//!   ([`crate::lut::Lut::with_min_slot_bits`]), so every segment element
//!   row is byte-identical to the corresponding row of the unpartitioned
//!   layout and row capacity is uniform across segments. Tail segments
//!   whose length is not a power of two are padded with masked-out zero
//!   elements (inputs are validated against the *parent* length, so the
//!   pad rows can never match). Each segment is a plain [`LutStore`] with
//!   its own packed-row-cache identity (`name@segK`).
//! * **Data path.** Each segment query runs on the word-parallel
//!   [`QueryExecutor`] — the same gather/pack hot path single-subarray
//!   queries use — with the inputs rebased into the segment and
//!   out-of-segment slots querying index 0 (their captured values are
//!   discarded on merge).
//! * **Cost merge.** Per-segment command streams stay authoritative for
//!   cost, issued as *parallel lanes* on the engine
//!   ([`Engine::rewind_clock`] / [`Engine::advance_clock_to`]): every
//!   lane starts at the region's start time, the clock closes at the
//!   slowest lane's end, and energy/commands accumulate across lanes.
//!   The engine's own clock and energy deltas therefore *equal* the
//!   returned [`PartitionedCost`] — there is no second bookkeeping to
//!   drift out of sync.
//!
//! [`PlutoStore`] wraps the single-subarray and partitioned stores behind
//! one query interface, which is how [`crate::library::PlutoMachine`] and
//! [`crate::controller::Controller`] (and therefore every `Session` and
//! `Cluster` worker) transparently route oversized LUTs.

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{pack_slots_into, unpack_slots_into, Lut};
use crate::query::{QueryExecutor, QueryPlacement, QueryScratch};
use crate::store::LutStore;
use pluto_dram::{BankId, Engine, PicoJoules, Picos, RowId, RowLoc, SubarrayId};

/// A LUT partitioned across several pLUTo-enabled subarrays.
#[derive(Debug)]
pub struct PartitionedLut {
    lut: Lut,
    segments: Vec<LutStore>,
    segment_rows: usize,
    /// Scratch: per-segment rebased input slots.
    local: Vec<u64>,
    /// Scratch: merged output slots across segments.
    merged: Vec<u64>,
    /// Scratch: resident-input slots (controller path).
    resident: Vec<u64>,
    /// Scratch: one packed row.
    row: Vec<u8>,
}

/// Cost of a partitioned query under the §5.6 semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedCost {
    /// Number of segments (subarrays) engaged.
    pub segments: usize,
    /// Wall latency: the slowest segment lane's end-to-end query cost.
    pub latency: Picos,
    /// Total energy: the *sum* over all segments (§5.6: "partitioning the
    /// query … increases energy consumption N-fold").
    pub energy: PicoJoules,
}

impl PartitionedLut {
    /// Loads `lut` across as many subarrays as needed, starting at
    /// `first_subarray` and claiming pairs (segment, master) like the
    /// single-subarray store. Any LUT length ≥ 2 is accepted — including
    /// truncated tables ([`Lut::from_fn_len`]) — because the tail segment
    /// is padded to the next power of two with masked-out elements.
    ///
    /// # Errors
    /// Fails if the bank runs out of subarrays.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        first_subarray: SubarrayId,
    ) -> Result<Self, PlutoError> {
        let rows = engine.config().rows_per_subarray as usize;
        // Segments must be powers of two (§6.1's `lut_size` constraint
        // holds per sweep), so on a non-power-of-two geometry only the
        // largest power-of-two row prefix is usable per subarray.
        let max_rows = 1usize << rows.ilog2();
        let segment_rows = max_rows.min(lut.len().next_power_of_two());
        let count = lut.len().div_ceil(segment_rows);
        let slot_floor = lut.slot_bits();
        let mut segments = Vec::with_capacity(count);
        for k in 0..count {
            let base = k * segment_rows;
            let end = (base + segment_rows).min(lut.len());
            let mut elements = lut.elements()[base..end].to_vec();
            // Pad the (tail) segment to a power of two with masked-out
            // elements: inputs are validated against the parent length,
            // so a pad row can never be the matching row of any query.
            elements.resize((end - base).next_power_of_two(), 0);
            let seg = Lut::from_table(
                format!("{}@seg{k}", lut.name()),
                elements.len().trailing_zeros(),
                lut.output_bits(),
                elements,
            )?
            .with_min_slot_bits(slot_floor);
            debug_assert_eq!(
                seg.slot_bits(),
                lut.slot_bits(),
                "segment layout must match the unpartitioned layout"
            );
            let pluto = SubarrayId(first_subarray.0 + 2 * k as u16);
            let master = SubarrayId(pluto.0 + 1);
            if master.0 >= engine.config().subarrays_per_bank {
                return Err(PlutoError::AllocationFailed {
                    reason: format!("segment {k} exceeds the bank's subarrays"),
                });
            }
            segments.push(LutStore::load(engine, seg, bank, pluto, master, 0)?);
        }
        Ok(PartitionedLut {
            lut,
            segments,
            segment_rows,
            local: Vec::new(),
            merged: Vec::new(),
            resident: Vec::new(),
            row: Vec::new(),
        })
    }

    /// The logical (parent) LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Logical LUT rows per segment (the tail segment may own fewer).
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The per-segment stores, in segment order.
    pub fn segments(&self) -> &[LutStore] {
        &self.segments
    }

    /// The bank holding every segment.
    pub fn bank(&self) -> BankId {
        self.segments[0].bank()
    }

    /// Executes the partitioned query: every segment sweeps as a parallel
    /// lane; outputs merge by each input's owning segment. Inputs are
    /// packed into `src_row` of the `source` subarray (restored to the
    /// global index vector afterwards) and the merged output vector is
    /// committed to `dst_row` of `dest`. Returns the outputs and the §5.6
    /// cost (max-latency, summed energy), which the engine's own clock
    /// and energy deltas also reflect.
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
    ) -> Result<(Vec<u64>, PartitionedCost), PlutoError> {
        let mut scratch = QueryScratch::new();
        let cost = self.query_with(
            engine,
            design,
            source,
            dest,
            inputs,
            src_row,
            dst_row,
            &mut scratch,
        )?;
        Ok((std::mem::take(scratch.out_mut()), cost))
    }

    /// [`PartitionedLut::query`] with caller-owned scratch buffers: the
    /// merged output vector lands in [`QueryScratch::outputs`]. This is
    /// the hot-path entry point the machine/controller use.
    ///
    /// # Errors
    /// Fails if any input exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        let n = self.lut.len() as u64;
        if let Some(&bad) = inputs.iter().find(|&&x| x >= n) {
            return Err(PlutoError::IndexOutOfRange {
                value: bad,
                input_bits: self.lut.input_bits(),
            });
        }
        let bank = self.bank();
        let slot_bits = self.lut.slot_bits();
        let row_bytes = engine.config().row_bytes;
        self.merged.clear();
        self.merged.resize(inputs.len(), 0);

        // §5.6: all segments sweep simultaneously. Issue each segment's
        // command stream as a parallel lane from one start time; the
        // region closes at the slowest lane's end, so the engine clock
        // advances by the max while energy and command counters sum.
        let clock0 = engine.elapsed();
        let energy0 = engine.command_energy();
        let mut slowest = clock0;
        for (k, store) in self.segments.iter_mut().enumerate() {
            engine.rewind_clock(clock0);
            let base = (k * self.segment_rows) as u64;
            let span = store.lut().len() as u64;
            // Inputs rebased into this segment; out-of-segment slots query
            // index 0 (their captured values are discarded on merge).
            self.local.clear();
            self.local.extend(inputs.iter().map(|&x| {
                if x >= base && x < base + span {
                    x - base
                } else {
                    0
                }
            }));
            let placement = QueryPlacement {
                bank,
                source,
                pluto: store.subarray(),
                dest,
            };
            let mut ex = QueryExecutor::new(engine, design);
            ex.execute_with(store, placement, &self.local, src_row, dst_row, scratch)?;
            for (i, &x) in inputs.iter().enumerate() {
                if x >= base && x < base + span {
                    self.merged[i] = scratch.outputs()[i];
                }
            }
            slowest = slowest.max(engine.elapsed());
        }
        engine.advance_clock_to(slowest);

        // The simulator emulated per-segment matching by rebasing the
        // source row; real §5.6 hardware broadcasts the *global* index
        // vector unchanged — restore it (zero-cost backdoor, the per-lane
        // activations above carried the real cost).
        let src_loc = RowLoc {
            bank,
            subarray: source,
            row: src_row,
        };
        pack_slots_into(inputs, slot_bits, row_bytes, &mut self.row)?;
        engine.poke_row(src_loc, &self.row)?;
        // Likewise the destination row holds the *merged* output vector:
        // each subarray's copy-out (already charged per lane) only drives
        // the slots its segment matched.
        let dst_loc = RowLoc {
            bank,
            subarray: dest,
            row: dst_row,
        };
        pack_slots_into(&self.merged, slot_bits, row_bytes, &mut self.row)?;
        engine.poke_row(dst_loc, &self.row)?;

        let cost = PartitionedCost {
            segments: self.segments.len(),
            latency: engine.elapsed() - clock0,
            energy: engine.command_energy() - energy0,
        };
        std::mem::swap(scratch.out_mut(), &mut self.merged);
        Ok(cost)
    }

    /// Partitioned query whose input vector is already resident in
    /// `src_row` of `source` (the controller's `pluto_op` path):
    /// `num_slots` slots at the parent LUT's slot width are read back as
    /// global indices, queried, and the source row is left holding the
    /// same global index vector it started with.
    ///
    /// # Errors
    /// Fails if any resident slot exceeds the logical LUT's range.
    #[allow(clippy::too_many_arguments)]
    pub fn query_resident_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        let src_loc = RowLoc {
            bank: self.bank(),
            subarray: source,
            row: src_row,
        };
        let mut resident = std::mem::take(&mut self.resident);
        engine.peek_row_into(src_loc, &mut self.row)?;
        unpack_slots_into(&self.row, self.lut.slot_bits(), num_slots, &mut resident);
        let result = self.query_with(
            engine, design, source, dest, &resident, src_row, dst_row, scratch,
        );
        self.resident = resident;
        result
    }
}

/// A LUT resident in one *or many* pLUTo-enabled subarrays: the unified
/// store the execution stack queries without caring whether the table fit
/// a single subarray or was partitioned per §5.6.
#[derive(Debug)]
pub enum PlutoStore {
    /// The LUT fits one subarray (a plain [`LutStore`]).
    Single(LutStore),
    /// The LUT exceeds `rows_per_subarray` and was partitioned (§5.6).
    Partitioned(PartitionedLut),
}

impl PlutoStore {
    /// Materializes `lut` starting at `first_subarray`, claiming
    /// consecutive (pLUTo, master) subarray pairs: one pair for a LUT
    /// that fits a subarray, one pair per segment otherwise.
    ///
    /// Routing is by *sweep legality*, not just size: a LUT whose length
    /// exceeds `rows_per_subarray` partitions across subarrays, and a
    /// truncated LUT whose length is not a power of two — which §6.1
    /// forbids as a single sweep — takes the partitioned path too, where
    /// it is padded to a power-of-two (possibly single-segment) sweep.
    ///
    /// # Errors
    /// Fails if the bank runs out of subarrays.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        first_subarray: SubarrayId,
    ) -> Result<Self, PlutoError> {
        if lut.len() > engine.config().rows_per_subarray as usize || !lut.len().is_power_of_two() {
            return Ok(PlutoStore::Partitioned(PartitionedLut::load(
                engine,
                lut,
                bank,
                first_subarray,
            )?));
        }
        let master = SubarrayId(first_subarray.0 + 1);
        if master.0 >= engine.config().subarrays_per_bank {
            return Err(PlutoError::AllocationFailed {
                reason: "out of pLUTo-enabled subarrays".into(),
            });
        }
        Ok(PlutoStore::Single(LutStore::load(
            engine,
            lut,
            bank,
            first_subarray,
            master,
            0,
        )?))
    }

    /// The logical LUT this store answers queries for.
    pub fn lut(&self) -> &Lut {
        match self {
            PlutoStore::Single(s) => s.lut(),
            PlutoStore::Partitioned(p) => p.lut(),
        }
    }

    /// Whether the LUT was partitioned across subarrays.
    pub fn is_partitioned(&self) -> bool {
        matches!(self, PlutoStore::Partitioned(_))
    }

    /// Number of pLUTo-enabled subarrays sweeping per query.
    pub fn segment_count(&self) -> usize {
        match self {
            PlutoStore::Single(_) => 1,
            PlutoStore::Partitioned(p) => p.segment_count(),
        }
    }

    /// Subarrays this store occupies (one (pLUTo, master) pair per
    /// segment) — what an allocator must advance its cursor by.
    pub fn subarrays_claimed(&self) -> u16 {
        2 * self.segment_count() as u16
    }

    /// Executes one bulk LUT query through whichever data path the store
    /// uses, with caller-owned scratch buffers: inputs are packed into
    /// `src_row` of `source`, the output vector is committed to `dst_row`
    /// of `dest` and lands in [`QueryScratch::outputs`]. Returns the
    /// §5.6-merged cost (a single-subarray query is the 1-segment case).
    ///
    /// # Errors
    /// Fails if any input exceeds the LUT's range, the inputs exceed one
    /// row's slot capacity, or on any underlying DRAM error.
    #[allow(clippy::too_many_arguments)]
    pub fn query_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        match self {
            PlutoStore::Single(store) => {
                let placement = QueryPlacement {
                    bank: store.bank(),
                    source,
                    pluto: store.subarray(),
                    dest,
                };
                let mut ex = QueryExecutor::new(engine, design);
                let cost = ex.execute_with(store, placement, inputs, src_row, dst_row, scratch)?;
                Ok(PartitionedCost {
                    segments: 1,
                    latency: cost.total(),
                    energy: cost.energy,
                })
            }
            PlutoStore::Partitioned(p) => p.query_with(
                engine, design, source, dest, inputs, src_row, dst_row, scratch,
            ),
        }
    }

    /// [`PlutoStore::query_with`] for an input vector already resident in
    /// `src_row` (the controller's `pluto_op` path).
    ///
    /// # Errors
    /// Same conditions as [`PlutoStore::query_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn query_resident_with(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
        source: SubarrayId,
        dest: SubarrayId,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
        scratch: &mut QueryScratch,
    ) -> Result<PartitionedCost, PlutoError> {
        match self {
            PlutoStore::Single(store) => {
                let placement = QueryPlacement {
                    bank: store.bank(),
                    source,
                    pluto: store.subarray(),
                    dest,
                };
                let mut ex = QueryExecutor::new(engine, design);
                let cost = ex.execute_resident_with(
                    store, placement, src_row, dst_row, num_slots, scratch,
                )?;
                Ok(PartitionedCost {
                    segments: 1,
                    latency: cost.total(),
                    energy: cost.energy,
                })
            }
            PlutoStore::Partitioned(p) => p.query_resident_with(
                engine, design, source, dest, src_row, dst_row, num_slots, scratch,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::{pack_slots, slots_per_row, unpack_slots};
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 64,
            rows_per_subarray: 64, // force partitioning for 256-entry LUTs
            ..DramConfig::ddr4_2400()
        })
    }

    const SRC: SubarrayId = SubarrayId(0);
    const DST: SubarrayId = SubarrayId(1);

    #[test]
    fn large_lut_partitions_and_answers_correctly() {
        let mut e = engine();
        // 256-entry LUT over 64-row subarrays => 4 segments.
        let lut = Lut::from_fn("sq8", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 4);
        let inputs: Vec<u64> = (0..16u64).map(|i| i * 16 + 3).collect();
        let (out, cost) = part
            .query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &inputs,
                RowId(0),
                RowId(1),
            )
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
        assert_eq!(cost.segments, 4);
    }

    #[test]
    fn partition_cost_semantics_match_section_5_6() {
        // Latency equals a single 64-row query; energy is ~4x.
        let mut e = engine();
        let small = Lut::from_fn("sq6", 6, 16, |x| x * x).unwrap(); // 64 rows, 1 segment
        let mut p1 = PartitionedLut::load(&mut e, small, BankId(0), SubarrayId(2)).unwrap();
        let (_, c1) = p1
            .query(&mut e, DesignKind::Bsa, SRC, DST, &[5], RowId(0), RowId(1))
            .unwrap();
        let big = Lut::from_fn("sq8b", 8, 16, |x| x * x).unwrap(); // 4 segments
        let mut p4 = PartitionedLut::load(&mut e, big, BankId(0), SubarrayId(10)).unwrap();
        let (_, c4) = p4
            .query(&mut e, DesignKind::Bsa, SRC, DST, &[5], RowId(0), RowId(1))
            .unwrap();
        // Same wall latency up to LISA placement distance (each segment
        // sweeps the same 64 rows; the farthest segment's copy-out crosses
        // a few more subarrays).
        let delta = c4.latency.saturating_sub(c1.latency);
        assert!(
            delta.as_ns() < 300.0 && c4.latency.as_ns() / c1.latency.as_ns() < 1.2,
            "partitioned latency {} vs single {}",
            c4.latency,
            c1.latency
        );
        // …roughly segment-count-times the energy.
        let ratio = c4.energy.as_pj() / c1.energy.as_pj();
        assert!((ratio - 4.0).abs() < 0.5, "energy ratio {ratio}");
    }

    #[test]
    fn engine_accounting_agrees_with_partitioned_cost() {
        // The §5.6 merge is implemented *on the engine* (parallel lanes),
        // so the engine's clock/energy deltas must equal the returned
        // cost — the old per-segment serial loop advanced the clock
        // segment-count times instead.
        for design in DesignKind::ALL {
            let mut e = engine();
            let lut = Lut::from_fn("acct8", 8, 16, |x| x * 3).unwrap();
            let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
            let inputs: Vec<u64> = (0..16u64).map(|i| i * 17 % 256).collect();
            let t0 = e.elapsed();
            let e0 = e.command_energy();
            let (_, cost) = part
                .query(&mut e, design, SRC, DST, &inputs, RowId(0), RowId(1))
                .unwrap();
            assert_eq!(e.elapsed() - t0, cost.latency, "{design} clock drift");
            assert!(
                ((e.command_energy() - e0).as_pj() - cost.energy.as_pj()).abs() < 1e-9,
                "{design} energy drift"
            );
        }
    }

    #[test]
    fn odd_length_tail_segment_is_padded() {
        // 650 elements over 64-row subarrays: 10 full segments plus a
        // 10-element tail padded to 16. The old loader rejected any
        // non-power-of-two segment outright.
        let mut e = engine();
        let lut = Lut::from_fn_len("odd650", 650, 16, |x| (x * x) & 0xFFFF).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 11);
        assert_eq!(part.segments()[10].lut().len(), 16, "tail padded to 2^4");
        // Seam and tail indices answer from the logical table.
        let inputs: Vec<u64> = vec![0, 63, 64, 127, 128, 639, 640, 648, 649];
        let (out, _) = part
            .query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &inputs,
                RowId(0),
                RowId(1),
            )
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| (x * x) & 0xFFFF).collect();
        assert_eq!(out, expect);
        // Indices in the padded range are rejected like any out-of-range
        // input.
        assert!(matches!(
            part.query(
                &mut e,
                DesignKind::Gmc,
                SRC,
                DST,
                &[650],
                RowId(0),
                RowId(1)
            ),
            Err(PlutoError::IndexOutOfRange { value: 650, .. })
        ));
    }

    #[test]
    fn segments_keep_parent_output_bits_and_row_layout() {
        // Parent: 8-bit indices, 4-bit elements => slot width 8. The old
        // loader inflated segment output_bits to max(out, in); segments
        // must instead carry the true 4-bit output with the parent's slot
        // width pinned, making each element row byte-identical to the
        // unpartitioned layout.
        let mut e = engine();
        let lut = Lut::from_fn("narrow8to4", 8, 4, |x| x % 13).unwrap();
        let parent = lut.clone();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        let row_bytes = e.config().row_bytes;
        let per_row = slots_per_row(row_bytes, parent.slot_bits());
        for (k, seg) in part.segments().iter().enumerate() {
            assert_eq!(seg.lut().output_bits(), parent.output_bits(), "seg {k}");
            assert_eq!(seg.lut().slot_bits(), parent.slot_bits(), "seg {k}");
            for i in 0..seg.lut().len() {
                let global = k * part.segment_rows() + i;
                let elem = parent.elements()[global];
                let expect =
                    pack_slots(&vec![elem; per_row], parent.slot_bits(), row_bytes).unwrap();
                assert_eq!(
                    e.peek_row(seg.element_row(i)).unwrap(),
                    expect,
                    "seg {k} row {i} differs from the unpartitioned layout"
                );
            }
        }
    }

    #[test]
    fn source_and_destination_rows_hold_global_vectors() {
        // After a partitioned query the source row holds the *global*
        // index vector (not the last segment's rebased copy) and the
        // destination row holds the *merged* output vector.
        let mut e = engine();
        let lut = Lut::from_fn("sq8r", 8, 16, |x| x * x).unwrap();
        let slot = lut.slot_bits();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        let inputs: Vec<u64> = vec![7, 200, 70, 135];
        part.query(
            &mut e,
            DesignKind::Bsa,
            SRC,
            DST,
            &inputs,
            RowId(0),
            RowId(3),
        )
        .unwrap();
        let src = e
            .peek_row(RowLoc {
                bank: BankId(0),
                subarray: SRC,
                row: RowId(0),
            })
            .unwrap();
        assert_eq!(unpack_slots(&src, slot, inputs.len()), inputs);
        let dst = e
            .peek_row(RowLoc {
                bank: BankId(0),
                subarray: DST,
                row: RowId(3),
            })
            .unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(unpack_slots(&dst, slot, inputs.len()), expect);
    }

    #[test]
    fn small_luts_stay_single_segment() {
        let mut e = engine();
        let lut = Lut::from_fn("id4", 4, 4, |x| x).unwrap();
        let part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 1);
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let mut e = engine();
        let lut = Lut::from_fn("sq8c", 8, 16, |x| x * x).unwrap();
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert!(matches!(
            part.query(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[256],
                RowId(0),
                RowId(1)
            ),
            Err(PlutoError::IndexOutOfRange { value: 256, .. })
        ));
    }

    #[test]
    fn exhausting_subarrays_fails_cleanly() {
        let mut e = Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 6, // room for at most 2 segments
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        });
        let lut = Lut::from_fn("sq8d", 8, 16, |x| x * x).unwrap();
        assert!(matches!(
            PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)),
            Err(PlutoError::AllocationFailed { .. })
        ));
    }

    #[test]
    fn pluto_store_routes_by_size_and_claims_pairs() {
        let mut e = engine();
        let small = Lut::from_fn("route4", 4, 4, |x| x).unwrap();
        let s = PlutoStore::load(&mut e, small, BankId(0), SubarrayId(2)).unwrap();
        assert!(!s.is_partitioned());
        assert_eq!(s.subarrays_claimed(), 2);
        let big = Lut::from_fn("route8", 8, 16, |x| x + 1).unwrap();
        let p = PlutoStore::load(&mut e, big, BankId(0), SubarrayId(4)).unwrap();
        assert!(p.is_partitioned());
        assert_eq!(p.segment_count(), 4);
        assert_eq!(p.subarrays_claimed(), 8);
    }

    #[test]
    fn non_power_of_two_luts_route_partitioned_even_when_they_fit() {
        // §6.1 forbids a non-power-of-two single sweep, so a truncated
        // 50-entry LUT on a 64-row subarray still takes the partitioned
        // path: one segment, padded to a 64-row sweep.
        let mut e = engine();
        let lut = Lut::from_fn_len("odd50", 50, 16, |x| x * 5).unwrap();
        let mut store = PlutoStore::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert!(store.is_partitioned());
        assert_eq!(store.segment_count(), 1);
        match &store {
            PlutoStore::Partitioned(p) => {
                assert_eq!(p.segments()[0].lut().len(), 64, "padded to 2^6")
            }
            PlutoStore::Single(_) => unreachable!(),
        }
        let mut scratch = QueryScratch::new();
        store
            .query_with(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[0, 7, 49],
                RowId(0),
                RowId(1),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(scratch.outputs(), [0, 35, 245]);
        // Indices in the padded range stay invalid.
        assert!(matches!(
            store.query_with(
                &mut e,
                DesignKind::Bsa,
                SRC,
                DST,
                &[50],
                RowId(0),
                RowId(1),
                &mut scratch,
            ),
            Err(PlutoError::IndexOutOfRange { value: 50, .. })
        ));
    }

    #[test]
    fn pluto_store_query_is_uniform_across_both_paths() {
        // The same `query_with` call answers a small and a large LUT.
        let mut e = engine();
        let mut scratch = QueryScratch::new();
        for (name, bits) in [("uni6", 6u32), ("uni8", 8u32)] {
            let lut = Lut::from_fn(name, bits, 16, |x| x * 2 + 1).unwrap();
            let mut store = PlutoStore::load(&mut e, lut, BankId(0), SubarrayId(20)).unwrap();
            let n = 1u64 << bits;
            let inputs: Vec<u64> = (0..8u64).map(|i| i * (n / 8)).collect();
            let cost = store
                .query_with(
                    &mut e,
                    DesignKind::Gmc,
                    SRC,
                    DST,
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
            let expect: Vec<u64> = inputs.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(scratch.outputs(), expect, "{name}");
            assert_eq!(cost.segments, store.segment_count(), "{name}");
            assert!(cost.latency > Picos::ZERO && cost.energy > PicoJoules::ZERO);
        }
    }
}
