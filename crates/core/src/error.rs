//! Error type for the pLUTo architecture layer.

use pluto_dram::DramError;
use std::error::Error;
use std::fmt;

/// Errors produced by the pLUTo layer (designs, query engine, ISA,
/// compiler, controller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlutoError {
    /// An underlying DRAM command failed.
    Dram(DramError),
    /// A LUT definition was invalid (size not a power of two, element wider
    /// than the declared output width, …).
    InvalidLut {
        /// Explanation of the violation.
        reason: String,
    },
    /// An input value cannot index the LUT (≥ 2^input_bits).
    IndexOutOfRange {
        /// The offending value.
        value: u64,
        /// Number of index bits the LUT supports.
        input_bits: u32,
    },
    /// Query input length does not fit the row/slot layout.
    LayoutMismatch {
        /// Explanation of the violation.
        reason: String,
    },
    /// An ISA register was used before being allocated.
    UnallocatedRegister {
        /// The register's textual name (e.g. `$prg3`).
        name: String,
    },
    /// The controller could not place an allocation (out of rows or
    /// subarrays).
    AllocationFailed {
        /// Explanation of the failure.
        reason: String,
    },
    /// A program was malformed (type/width mismatch, bad operand, …).
    InvalidProgram {
        /// Explanation of the violation.
        reason: String,
    },
    /// The LUT store was used after its contents were destroyed (GSA
    /// destructive sweep without reload).
    LutDestroyed,
    /// A cluster worker caught a panic while executing a workload (the
    /// job is reported failed; the worker and its pool stay usable).
    WorkerPanic {
        /// The panic payload, stringified.
        reason: String,
    },
    /// A worker thread died (or its result channel closed) with work
    /// outstanding — the batch/query cannot complete. Surfaced instead of
    /// hanging or unwrapping a poisoned lock, so callers degrade
    /// gracefully when the pool is gone.
    WorkerLost {
        /// What was observed (which channel closed, how many results
        /// were still outstanding).
        reason: String,
    },
}

impl fmt::Display for PlutoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlutoError::Dram(e) => write!(f, "dram: {e}"),
            PlutoError::InvalidLut { reason } => write!(f, "invalid LUT: {reason}"),
            PlutoError::IndexOutOfRange { value, input_bits } => {
                write!(
                    f,
                    "value {value} does not fit in a {input_bits}-bit LUT index"
                )
            }
            PlutoError::LayoutMismatch { reason } => write!(f, "layout mismatch: {reason}"),
            PlutoError::UnallocatedRegister { name } => {
                write!(f, "register {name} used before allocation")
            }
            PlutoError::AllocationFailed { reason } => write!(f, "allocation failed: {reason}"),
            PlutoError::InvalidProgram { reason } => write!(f, "invalid program: {reason}"),
            PlutoError::LutDestroyed => {
                write!(
                    f,
                    "LUT contents were destroyed by a GSA sweep and not reloaded"
                )
            }
            PlutoError::WorkerPanic { reason } => {
                write!(f, "a cluster worker panicked while running a job: {reason}")
            }
            PlutoError::WorkerLost { reason } => {
                write!(f, "a worker was lost with work outstanding: {reason}")
            }
        }
    }
}

impl Error for PlutoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlutoError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for PlutoError {
    fn from(e: DramError) -> Self {
        PlutoError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_dram::RowLoc;

    #[test]
    fn displays_and_sources() {
        let e = PlutoError::from(DramError::OutOfBounds {
            loc: RowLoc::new(0, 0, 0),
        });
        assert!(e.to_string().contains("dram"));
        assert!(Error::source(&e).is_some());
        let e = PlutoError::IndexOutOfRange {
            value: 300,
            input_bits: 8,
        };
        assert!(e.to_string().contains("300"));
        assert!(Error::source(&e).is_none());
    }
}
