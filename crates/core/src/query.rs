//! The pLUTo LUT Query (paper §4.1).
//!
//! A query proceeds in five steps:
//!
//! 1. the input vector is loaded into the **source row buffer** (one ACT);
//! 2. a **pLUTo Row Sweep** consecutively activates every LUT-holding row
//!    of the pLUTo-enabled subarray;
//! 3. after each activation the **match logic** compares the active row
//!    index against every element of the input vector;
//! 4. matching elements are captured — into the **FF buffer** (BSA) or by
//!    the gated sense amplifiers (GSA/GMC);
//! 5. the captured output vector is copied to the **destination row buffer**
//!    with a LISA-RBM.
//!
//! The executor issues the real per-design command streams on the
//! [`Engine`], so measured latency/energy match the paper's Table 1 closed
//! forms (asserted by tests), while the data path is simulated bit-exactly.
//!
//! ## Word-parallel data path (DESIGN.md §7)
//!
//! Commands are authoritative for *cost*; words are authoritative for
//! *data*. The executor drives the full per-design command stream on the
//! engine — every sweep step, precharge, and LISA hop, so `QueryCost` and
//! all engine accounting stay bit-identical to the original element-by-
//! element simulation — but computes the output vector in one pass over
//! the input slots (`out[j] = lut[in[j]]`), exploiting the paper's
//! simultaneous-many-element semantics instead of scanning every slot on
//! every sweep step. Slot packing runs on a streaming 64-bit shift/mask
//! accumulator ([`crate::lut::pack_slots`]);
//! [`QueryExecutor::execute_scalar_reference`] retains the original
//! bit-serial sweep-scan path as the differential oracle.

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{
    pack_slots_into, pack_slots_scalar, slots_per_row, unpack_slots_into, unpack_slots_scalar,
};
use crate::match_logic;
use crate::plan::{self, PlanKey, PlanShape};
use crate::store::LutStore;
use pluto_dram::{BankId, Engine, PicoJoules, Picos, RowId, RowLoc, SubarrayId};
use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch backing the owned-output entry points
    /// ([`QueryExecutor::execute`] / [`QueryExecutor::execute_resident`]),
    /// so one-shot callers stop paying fresh buffer allocations per query.
    static LOCAL_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Where the three subarrays participating in a query live (paper Fig. 2:
/// source subarray, pLUTo-enabled subarray, destination subarray).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlacement {
    /// Bank shared by all three subarrays (LISA links are intra-bank).
    pub bank: BankId,
    /// Subarray holding the LUT query input vector.
    pub source: SubarrayId,
    /// The pLUTo-enabled subarray (must match the [`LutStore`]).
    pub pluto: SubarrayId,
    /// Subarray receiving the LUT query output vector.
    pub dest: SubarrayId,
}

impl QueryPlacement {
    /// The canonical adjacent placement: master at `s-2` (managed by the
    /// store), source at `s-1`, pLUTo subarray at `s`, destination at `s+1`.
    pub fn adjacent(bank: BankId, pluto: SubarrayId) -> Self {
        QueryPlacement {
            bank,
            source: SubarrayId(pluto.0 - 1),
            pluto,
            dest: SubarrayId(pluto.0 + 1),
        }
    }
}

/// Per-phase cost breakdown of one pLUTo LUT Query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCost {
    /// Source-row activation (step 1).
    pub setup: Picos,
    /// GSA LUT reload (zero for BSA/GMC).
    pub reload: Picos,
    /// The row sweep itself (steps 2–4).
    pub sweep: Picos,
    /// FF-buffer / row-buffer copy-out to the destination (step 5).
    pub copyout: Picos,
    /// Total dynamic energy across all phases.
    pub energy: PicoJoules,
    /// Energy of the sweep phase alone (for Table 1 parity checks).
    pub sweep_energy: PicoJoules,
    /// Energy of the reload phase alone.
    pub reload_energy: PicoJoules,
}

impl QueryCost {
    /// End-to-end latency of the query.
    pub fn total(&self) -> Picos {
        self.setup + self.reload + self.sweep + self.copyout
    }

    /// The paper's Table 1 "query latency": reload + sweep (setup and
    /// copy-out are shared pipeline stages the closed forms omit).
    pub fn table1_latency(&self) -> Picos {
        self.reload + self.sweep
    }
}

/// Reusable buffers for the query hot path: input slots, output slots,
/// and one packed row. A long-lived holder ([`crate::library::PlutoMachine`],
/// the controller) keeps one `QueryScratch` and threads it through every
/// query, so operation streams of thousands of queries stop paying three
/// heap allocations per query.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Unpacked input slots (also used for the pre-query validation pass).
    live: Vec<u64>,
    /// Gathered output slots.
    out: Vec<u64>,
    /// Packed-row staging buffer.
    row: Vec<u8>,
}

impl QueryScratch {
    /// Creates empty scratch buffers (they grow to row size on first use).
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// The output slots of the most recent query run with this scratch.
    pub fn outputs(&self) -> &[u64] {
        &self.out
    }

    /// Mutable access to the output slots, so the §5.6 partitioned path
    /// ([`crate::partition`]) can surface its *merged* output vector
    /// through the same scratch interface its per-segment sub-queries
    /// wrote into.
    pub(crate) fn out_mut(&mut self) -> &mut Vec<u64> {
        &mut self.out
    }
}

/// Executes pLUTo LUT Queries of one design on an [`Engine`].
#[derive(Debug)]
pub struct QueryExecutor<'e> {
    engine: &'e mut Engine,
    design: DesignKind,
    /// Whether the compiled-plan cache may serve this executor's queries
    /// (`crate::plan`). Disabled on differential-oracle executors so the
    /// issuing path stays observable.
    use_plans: bool,
}

impl<'e> QueryExecutor<'e> {
    /// Creates an executor for `design` driving `engine`.
    pub fn new(engine: &'e mut Engine, design: DesignKind) -> Self {
        QueryExecutor {
            engine,
            design,
            use_plans: true,
        }
    }

    /// Enables or disables the compiled-plan cache for this executor.
    /// With plans off every query runs the full issuing path — the
    /// differential oracle the replay tests compare against.
    pub fn set_use_plans(&mut self, on: bool) {
        self.use_plans = on;
    }

    /// The design this executor models.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// Read access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Executes one bulk LUT query.
    ///
    /// `inputs` are the LUT indices (one per slot, paper Fig. 2's
    /// "LUT query input vector"); they are packed into `src_row` of the
    /// source subarray, swept against `store`, and the output vector is
    /// deposited into `dst_row` of the destination subarray. Returns the
    /// output values and the cost breakdown.
    ///
    /// # Errors
    /// Fails if any input ≥ the LUT's size (the match-exactly-once
    /// invariant of §5.3.3 would be violated), if the inputs exceed one
    /// row's slot capacity, or on any underlying DRAM error.
    pub fn execute(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
    ) -> Result<(Vec<u64>, QueryCost), PlutoError> {
        LOCAL_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let cost =
                self.execute_with(store, placement, inputs, src_row, dst_row, &mut scratch)?;
            // The output vector is returned owned; the packing/unpacking
            // buffers stay in the thread-local scratch for the next call.
            Ok((std::mem::take(&mut scratch.out), cost))
        })
    }

    /// [`QueryExecutor::execute`] with caller-owned scratch buffers: the
    /// output vector lands in [`QueryScratch::outputs`] instead of a fresh
    /// allocation. This is the hot-path entry point operation streams use.
    ///
    /// # Errors
    /// Same conditions as [`QueryExecutor::execute`].
    pub fn execute_with(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<QueryCost, PlutoError> {
        let lut = store.lut().clone();
        let n = lut.len() as u64;
        let slot_bits = lut.slot_bits();
        let cfg = self.engine.config().clone();
        let capacity = slots_per_row(cfg.row_bytes, slot_bits);
        if inputs.len() > capacity {
            return Err(PlutoError::LayoutMismatch {
                reason: format!(
                    "{} inputs exceed the {capacity}-slot row capacity",
                    inputs.len()
                ),
            });
        }
        if !match_logic::each_element_matches_exactly_once(inputs, n) {
            let bad = *inputs
                .iter()
                .find(|&&x| x >= n)
                .expect("some input too large");
            return Err(PlutoError::IndexOutOfRange {
                value: bad,
                input_bits: lut.input_bits(),
            });
        }

        // The input vector is workload data already resident in the source
        // subarray (writing it there is the producer's cost, not the
        // query's).
        let src_loc = RowLoc {
            bank: placement.bank,
            subarray: placement.source,
            row: src_row,
        };
        pack_slots_into(inputs, slot_bits, cfg.row_bytes, &mut scratch.row)?;
        self.engine.poke_row(src_loc, &scratch.row)?;
        self.execute_resident_with(store, placement, src_row, dst_row, inputs.len(), scratch)
    }

    /// Executes a bulk LUT query whose input vector is *already resident*
    /// in `src_row` of the source subarray (e.g. produced by a previous
    /// pLUTo instruction). `num_slots` slots of the LUT's slot width are
    /// interpreted as indices.
    ///
    /// # Errors
    /// Same conditions as [`QueryExecutor::execute`].
    pub fn execute_resident(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
    ) -> Result<(Vec<u64>, QueryCost), PlutoError> {
        LOCAL_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let cost = self.execute_resident_with(
                store,
                placement,
                src_row,
                dst_row,
                num_slots,
                &mut scratch,
            )?;
            Ok((std::mem::take(&mut scratch.out), cost))
        })
    }

    /// [`QueryExecutor::execute_resident`] with caller-owned scratch
    /// buffers (see [`QueryExecutor::execute_with`]).
    ///
    /// # Errors
    /// Same conditions as [`QueryExecutor::execute`].
    pub fn execute_resident_with(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        src_row: RowId,
        dst_row: RowId,
        num_slots: usize,
        scratch: &mut QueryScratch,
    ) -> Result<QueryCost, PlutoError> {
        let lut = store.lut().clone();
        let n = lut.len() as u64;
        let slot_bits = lut.slot_bits();
        let cfg = self.engine.config().clone();
        let capacity = slots_per_row(cfg.row_bytes, slot_bits);
        if num_slots > capacity {
            return Err(PlutoError::LayoutMismatch {
                reason: format!("{num_slots} inputs exceed the {capacity}-slot row capacity"),
            });
        }
        let bank = placement.bank;
        let src_loc = RowLoc {
            bank,
            subarray: placement.source,
            row: src_row,
        };
        {
            self.engine.peek_row_into(src_loc, &mut scratch.row)?;
            unpack_slots_into(&scratch.row, slot_bits, num_slots, &mut scratch.live);
            if !match_logic::each_element_matches_exactly_once(&scratch.live, n) {
                let bad = *scratch
                    .live
                    .iter()
                    .find(|&&x| x >= n)
                    .expect("some input too large");
                return Err(PlutoError::IndexOutOfRange {
                    value: bad,
                    input_bits: lut.input_bits(),
                });
            }
        }

        // Compiled-plan gate (`crate::plan`, DESIGN.md §10): replay is
        // legal only when the cost delta is context-independent — no
        // command trace to populate, and no pending *functional* reload
        // the replay would skip (GSA reloads per query, so its stale
        // stores replay fine). The remaining context — the tFAW window
        // phase — is checked per tape via its recorded signature.
        let replay_legal = self.use_plans
            && !self.engine.trace_enabled()
            && (self.design.reload_per_query() || store.is_loaded());
        if !replay_legal {
            if self.use_plans {
                plan::note_fallback();
            }
            return self.issue_resident(store, placement, src_row, dst_row, scratch);
        }
        let key = PlanKey::new(
            PlanShape::Query,
            self.engine,
            self.design,
            store,
            placement.pluto.0.abs_diff(placement.dest.0),
            placement.dest == placement.source,
            num_slots,
        );
        if let Some(tape) = plan::lookup(&key) {
            if tape.replayable_from(self.engine) {
                return self.replay_resident(store, placement, dst_row, scratch, &tape);
            }
            // Cached under this key, but captured from a different tFAW
            // phase — issue in full rather than apply a delta that would
            // mis-model this context's throttling.
            plan::note_fallback();
            return self.issue_resident(store, placement, src_row, dst_row, scratch);
        }
        // Miss: run the issuing path under a recorder and memoize the tape
        // (unless the capture was voided by a mid-query absolute-time jump
        // or the query failed).
        self.engine.begin_tape();
        let result = self.issue_resident(store, placement, src_row, dst_row, scratch);
        match &result {
            Ok(_) => {
                if let Some(tape) = self.engine.end_tape() {
                    plan::insert(key, tape);
                }
            }
            Err(_) => self.engine.abort_tape(),
        }
        result
    }

    /// The issuing path: drives the full per-design command stream, the
    /// authoritative cost model and the differential oracle for plan
    /// replay. Expects `scratch.live` to hold the validated input slots
    /// (the shared validation pass in
    /// [`QueryExecutor::execute_resident_with`]).
    fn issue_resident(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        src_row: RowId,
        dst_row: RowId,
        scratch: &mut QueryScratch,
    ) -> Result<QueryCost, PlutoError> {
        let lut = store.lut().clone();
        let slot_bits = lut.slot_bits();
        let row_bytes = self.engine.config().row_bytes;
        let num_slots = scratch.live.len();
        let bank = placement.bank;
        let src_loc = RowLoc {
            bank,
            subarray: placement.source,
            row: src_row,
        };
        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();

        // Phase R: GSA reloads the LUT before *every* query (§5.2.1: "a LUT
        // must be loaded into the pLUTo-enabled subarray before every pLUTo
        // LUT Query in pLUTo-GSA"; Table 1 charges LISA_RBM × N per query).
        if self.design.reload_per_query() {
            store.reload(self.engine)?;
        } else {
            store.ensure_ready(self.engine, self.design)?;
        }
        self.engine.mark_tape_phase();
        let clock_r = self.engine.elapsed();
        let energy_r = self.engine.command_energy();

        // Phase 1: load the input vector into the source row buffer. The
        // match logic reads the *row buffer*, so the indices used below are
        // whatever the activation latched — the data path is bit-exact.
        self.engine.activate(src_loc)?;
        {
            let buf = self.engine.row_buffer(bank, placement.source)?;
            unpack_slots_into(&buf.data, slot_bits, num_slots, &mut scratch.live);
        }
        self.engine.mark_tape_phase();
        let clock_s = self.engine.elapsed();
        let energy_s = self.engine.command_energy();

        // Phases 2–4: the pLUTo Row Sweep with match capture. The command
        // stream is the real per-design sweep — one step per LUT row.
        let step_kind = self.design.sweep_step_kind();
        for i in 0..lut.len() {
            let loc = store.element_row(i);
            self.engine.sweep_step(loc, step_kind)?;
        }
        // GSA/GMC sweeps end with a single precharge (§5.2.2, §5.3.3).
        if step_kind == pluto_dram::SweepStepKind::ChargeShare {
            self.engine.precharge(bank, placement.pluto)?;
        }
        // Data path, inverted: rather than scanning every slot on every
        // sweep step (O(lut_len × slots)), gather each slot's element in
        // one pass (O(slots)). Over the whole sweep, slot j matches exactly
        // on step `live[j]` and captures that row's element — so the
        // gather below is bit-identical to the per-step match capture. A
        // (structurally impossible) out-of-range slot would never match
        // and leave the FF buffer's reset value, which the gather mirrors.
        scratch.out.clear();
        let elements = lut.elements();
        scratch.out.extend(
            scratch
                .live
                .iter()
                .map(|&x| elements.get(x as usize).copied().unwrap_or(0)),
        );
        self.engine.mark_tape_phase();
        let clock_w = self.engine.elapsed();
        let energy_w = self.engine.command_energy();

        // GSA: unmatched rows lost their charge — the LUT is gone.
        if self.design.destructive_reads() {
            store.mark_destroyed(self.engine)?;
        }

        // Phase 5: copy the output vector to the destination row buffer
        // (and commit it to the destination row). If the destination shares
        // the source subarray, close the source row *first* so the LISA
        // write-through cannot clobber the still-open input row.
        pack_slots_into(&scratch.out, slot_bits, row_bytes, &mut scratch.row)?;
        if placement.dest == placement.source {
            self.engine.precharge(bank, placement.source)?;
        }
        self.engine
            .deposit_buffer(bank, placement.pluto, &scratch.row)?;
        self.engine
            .lisa_rbm_to_row(bank, placement.pluto, placement.dest, dst_row)?;
        if placement.dest != placement.source {
            // Close the source row.
            self.engine.precharge(bank, placement.source)?;
        }
        let clock_end = self.engine.elapsed();
        let energy_end = self.engine.command_energy();

        let cost = QueryCost {
            setup: clock_s - clock_r,
            reload: clock_r - clock0,
            sweep: clock_w - clock_s,
            copyout: clock_end - clock_w,
            energy: energy_end - energy0,
            sweep_energy: energy_w - energy_s,
            reload_energy: energy_r - energy0,
        };
        Ok(cost)
    }

    /// The warm-plan path: performs the query's *data* effects — the one
    /// gather pass, the packed commit to the destination row, and GSA
    /// destruction — then applies the memoized cost tape. The phase
    /// snapshots land on the same absolute clock/energy values the
    /// issuing path reaches, so the returned [`QueryCost`] is built from
    /// the identical subtractions and is bit-identical to it.
    fn replay_resident(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        dst_row: RowId,
        scratch: &mut QueryScratch,
        tape: &pluto_dram::CostTape,
    ) -> Result<QueryCost, PlutoError> {
        let lut = store.lut().clone();
        let slot_bits = lut.slot_bits();
        let row_bytes = self.engine.config().row_bytes;
        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();

        // Data path: `scratch.live` holds the validated input slots, which
        // are bit-identical to what the issuing path's source activation
        // would latch (the resident row was peeked by the same unpack).
        scratch.out.clear();
        let elements = lut.elements();
        scratch.out.extend(
            scratch
                .live
                .iter()
                .map(|&x| elements.get(x as usize).copied().unwrap_or(0)),
        );
        // Commit the output vector to the destination row — same bytes the
        // issuing path's deposit + LISA write-through commits.
        pack_slots_into(&scratch.out, slot_bits, row_bytes, &mut scratch.row)?;
        let dst_loc = RowLoc {
            bank: placement.bank,
            subarray: placement.dest,
            row: dst_row,
        };
        self.engine.poke_row(dst_loc, &scratch.row)?;
        // GSA: the sweep the tape stands in for destroyed the LUT.
        if self.design.destructive_reads() {
            store.mark_destroyed(self.engine)?;
        }

        let snaps = self.engine.apply_replayed(tape);
        let clock_end = self.engine.elapsed();
        let energy_end = self.engine.command_energy();
        let [(clock_r, energy_r), (clock_s, energy_s), (clock_w, energy_w)] = snaps[..] else {
            // Structurally impossible: query-shaped tapes record exactly
            // three phase marks. Treated as corruption, not fallback.
            return Err(PlutoError::LayoutMismatch {
                reason: format!("query plan tape carried {} phase marks", snaps.len()),
            });
        };
        Ok(QueryCost {
            setup: clock_s - clock_r,
            reload: clock_r - clock0,
            sweep: clock_w - clock_s,
            copyout: clock_end - clock_w,
            energy: energy_end - energy0,
            sweep_energy: energy_w - energy_s,
            reload_energy: energy_r - energy0,
        })
    }

    /// The retained pre-refactor scalar path: bit-serial slot packing and
    /// the element-by-element sweep scan with per-step matchline
    /// allocations. Drives the *same* command stream as the word-parallel
    /// path, so outputs, costs, engine stats, and DRAM contents must all
    /// be bit-identical — `tests/query_differential.rs` asserts exactly
    /// that, and `benches/query.rs` measures the throughput gap.
    ///
    /// # Errors
    /// Same conditions as [`QueryExecutor::execute`].
    pub fn execute_scalar_reference(
        &mut self,
        store: &mut LutStore,
        placement: QueryPlacement,
        inputs: &[u64],
        src_row: RowId,
        dst_row: RowId,
    ) -> Result<(Vec<u64>, QueryCost), PlutoError> {
        let lut = store.lut().clone();
        let n = lut.len() as u64;
        let slot_bits = lut.slot_bits();
        let cfg = self.engine.config().clone();
        let capacity = slots_per_row(cfg.row_bytes, slot_bits);
        if inputs.len() > capacity {
            return Err(PlutoError::LayoutMismatch {
                reason: format!(
                    "{} inputs exceed the {capacity}-slot row capacity",
                    inputs.len()
                ),
            });
        }
        if !match_logic::each_element_matches_exactly_once(inputs, n) {
            let bad = *inputs
                .iter()
                .find(|&&x| x >= n)
                .expect("some input too large");
            return Err(PlutoError::IndexOutOfRange {
                value: bad,
                input_bits: lut.input_bits(),
            });
        }
        let bank = placement.bank;
        let src_loc = RowLoc {
            bank,
            subarray: placement.source,
            row: src_row,
        };
        let packed = pack_slots_scalar(inputs, slot_bits, cfg.row_bytes)?;
        self.engine.poke_row(src_loc, &packed)?;

        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();
        if self.design.reload_per_query() {
            store.reload(self.engine)?;
        } else {
            store.ensure_ready(self.engine, self.design)?;
        }
        let clock_r = self.engine.elapsed();
        let energy_r = self.engine.command_energy();

        self.engine.activate(src_loc)?;
        let live_inputs = {
            let buf = self.engine.row_buffer(bank, placement.source)?;
            unpack_slots_scalar(&buf.data, slot_bits, inputs.len())
        };
        let clock_s = self.engine.elapsed();
        let energy_s = self.engine.command_energy();

        // The original per-step match capture, allocation profile intact.
        let mut out_slots: Vec<u64> = vec![0; inputs.len()];
        let step_kind = self.design.sweep_step_kind();
        for i in 0..lut.len() {
            let loc = store.element_row(i);
            self.engine.sweep_step(loc, step_kind)?;
            let element = lut.element(i as u64)?;
            let matched: Vec<usize> =
                match_logic::matched_positions(&live_inputs, i as u64).collect();
            for j in matched {
                out_slots[j] = element;
            }
        }
        if step_kind == pluto_dram::SweepStepKind::ChargeShare {
            self.engine.precharge(bank, placement.pluto)?;
        }
        let clock_w = self.engine.elapsed();
        let energy_w = self.engine.command_energy();

        if self.design.destructive_reads() {
            store.mark_destroyed(self.engine)?;
        }

        let out_packed = pack_slots_scalar(&out_slots, slot_bits, cfg.row_bytes)?;
        if placement.dest == placement.source {
            self.engine.precharge(bank, placement.source)?;
        }
        self.engine
            .deposit_buffer(bank, placement.pluto, &out_packed)?;
        self.engine
            .lisa_rbm_to_row(bank, placement.pluto, placement.dest, dst_row)?;
        if placement.dest != placement.source {
            self.engine.precharge(bank, placement.source)?;
        }
        let clock_end = self.engine.elapsed();
        let energy_end = self.engine.command_energy();

        let cost = QueryCost {
            setup: clock_s - clock_r,
            reload: clock_r - clock0,
            sweep: clock_w - clock_s,
            copyout: clock_end - clock_w,
            energy: energy_end - energy0,
            sweep_energy: energy_w - energy_s,
            reload_energy: energy_r - energy0,
        };
        Ok((out_slots, cost))
    }
}

/// Convenience: slot capacity of one row for a LUT of the given widths.
pub fn query_capacity(row_bytes: usize, input_bits: u32, output_bits: u32) -> usize {
    slots_per_row(row_bytes, input_bits.max(output_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignModel;
    use crate::lut::{catalog, unpack_slots, Lut};
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        })
    }

    fn setup(e: &mut Engine, lut: Lut) -> (LutStore, QueryPlacement) {
        let bank = BankId(0);
        let pluto = SubarrayId(2);
        // Master copy co-located with the source subarray (pluto - 1), in
        // its upper rows, so GSA reloads cost exactly one LISA hop per row.
        let n = lut.len() as u16;
        let base = e.config().rows_per_subarray - n;
        let store = LutStore::load(e, lut, bank, pluto, SubarrayId(1), base).unwrap();
        (store, QueryPlacement::adjacent(bank, pluto))
    }

    #[test]
    fn paper_figure3_example_all_designs() {
        // LUT = first four primes; query [1,0,1,3] -> [3,2,3,7].
        for design in DesignKind::ALL {
            let mut e = engine();
            let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
            let (mut store, placement) = setup(&mut e, lut);
            let mut ex = QueryExecutor::new(&mut e, design);
            let (out, _) = ex
                .execute(&mut store, placement, &[1, 0, 1, 3], RowId(0), RowId(0))
                .unwrap();
            assert_eq!(out, vec![3, 2, 3, 7], "{design}");
        }
    }

    #[test]
    fn output_committed_to_destination_row() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Bsa);
        ex.execute(&mut store, placement, &[3, 3, 0, 2], RowId(0), RowId(9))
            .unwrap();
        let dest = e
            .peek_row(RowLoc {
                bank: placement.bank,
                subarray: placement.dest,
                row: RowId(9),
            })
            .unwrap();
        let out = unpack_slots(&dest, 4, 4);
        assert_eq!(out, vec![7, 7, 2, 5]);
    }

    #[test]
    fn sweep_cost_matches_table1_closed_forms() {
        for design in DesignKind::ALL {
            let mut e = engine();
            let lut = catalog::popcount(4).unwrap(); // 16 elements
            let (mut store, placement) = setup(&mut e, lut);
            if design.reload_per_query() {
                // Stale store forces the pre-query reload that Table 1 charges.
                store.mark_destroyed(&mut e).unwrap();
            }
            let model = DesignModel::new(design, e.timing().clone(), e.energy_model().clone());
            let mut ex = QueryExecutor::new(&mut e, design);
            let inputs: Vec<u64> = (0..16u64).collect();
            let (_, cost) = ex
                .execute(&mut store, placement, &inputs, RowId(0), RowId(0))
                .unwrap();
            assert_eq!(
                cost.table1_latency(),
                model.query_latency(16),
                "{design} latency mismatch"
            );
            let model_e = model.query_energy(16).as_pj();
            let measured = (cost.sweep_energy + cost.reload_energy).as_pj();
            assert!(
                (measured - model_e).abs() < 1e-6,
                "{design} energy: measured {measured} vs model {model_e}"
            );
        }
    }

    #[test]
    fn gsa_destroys_lut_and_reloads_next_query() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Gsa);
        let (_, first) = ex
            .execute(&mut store, placement, &[0, 1], RowId(0), RowId(0))
            .unwrap();
        // GSA charges the reload before every query, including the first
        // (§5.2.1 / Table 1).
        assert!(first.reload > Picos::ZERO);
        assert!(!store.is_loaded(), "sweep destroyed the LUT");
        let (out, second) = ex
            .execute(&mut store, placement, &[2, 3], RowId(1), RowId(1))
            .unwrap();
        assert_eq!(out, vec![5, 7], "reloaded LUT answers correctly");
        assert!(second.reload > Picos::ZERO, "second query paid the reload");
    }

    #[test]
    fn bsa_and_gmc_keep_lut_across_queries() {
        for design in [DesignKind::Bsa, DesignKind::Gmc] {
            let mut e = engine();
            let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
            let (mut store, placement) = setup(&mut e, lut);
            let mut ex = QueryExecutor::new(&mut e, design);
            for q in 0..3 {
                let (out, cost) = ex
                    .execute(&mut store, placement, &[3, 1], RowId(0), RowId(0))
                    .unwrap();
                assert_eq!(out, vec![7, 3], "{design} query {q}");
                assert_eq!(cost.reload, Picos::ZERO, "{design} never reloads");
            }
            assert!(store.is_loaded());
        }
    }

    #[test]
    fn word_parallel_path_matches_scalar_reference() {
        // Same query on two identical engines: the word-parallel path and
        // the retained scalar path must agree on outputs, cost, stats, and
        // the committed destination row (the full differential suite lives
        // in tests/query_differential.rs).
        for design in DesignKind::ALL {
            let lut = catalog::popcount(4).unwrap();
            let inputs: Vec<u64> = (0..40u64).map(|i| (i * 7) % 16).collect();

            let mut e_word = engine();
            let (mut store_w, placement) = setup(&mut e_word, lut.clone());
            let mut ex = QueryExecutor::new(&mut e_word, design);
            let (out_w, cost_w) = ex
                .execute(&mut store_w, placement, &inputs, RowId(0), RowId(3))
                .unwrap();

            let mut e_scalar = engine();
            let (mut store_s, placement) = setup(&mut e_scalar, lut);
            let mut ex = QueryExecutor::new(&mut e_scalar, design);
            let (out_s, cost_s) = ex
                .execute_scalar_reference(&mut store_s, placement, &inputs, RowId(0), RowId(3))
                .unwrap();

            assert_eq!(out_w, out_s, "{design}");
            assert_eq!(cost_w, cost_s, "{design}");
            assert_eq!(e_word.elapsed(), e_scalar.elapsed(), "{design}");
            assert_eq!(e_word.stats(), e_scalar.stats(), "{design}");
            let dst = RowLoc {
                bank: placement.bank,
                subarray: placement.dest,
                row: RowId(3),
            };
            assert_eq!(
                e_word.peek_row(dst).unwrap(),
                e_scalar.peek_row(dst).unwrap(),
                "{design}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_queries() {
        let mut e = engine();
        let lut = catalog::popcount(4).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Gmc);
        let mut scratch = QueryScratch::new();
        for round in 0..3u64 {
            let inputs: Vec<u64> = (0..32u64).map(|i| (i + round) % 16).collect();
            ex.execute_with(
                &mut store,
                placement,
                &inputs,
                RowId(0),
                RowId(1),
                &mut scratch,
            )
            .unwrap();
            let expect: Vec<u64> = inputs.iter().map(|x| x.count_ones() as u64).collect();
            assert_eq!(scratch.outputs(), expect, "round {round}");
        }
    }

    #[test]
    fn rejects_out_of_range_inputs() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Bsa);
        assert!(matches!(
            ex.execute(&mut store, placement, &[4], RowId(0), RowId(0)),
            Err(PlutoError::IndexOutOfRange { value: 4, .. })
        ));
    }

    #[test]
    fn rejects_over_capacity_inputs() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Bsa);
        let too_many = vec![0u64; 65]; // 32 B row / 4-bit slots = 64 slots
        assert!(ex
            .execute(&mut store, placement, &too_many, RowId(0), RowId(0))
            .is_err());
    }

    #[test]
    fn full_row_of_queries_in_one_sweep() {
        // One query performs row-width lookups simultaneously (the paper's
        // central throughput claim).
        let mut e = engine();
        let lut = catalog::binarize(128).unwrap(); // 256-entry, 8-bit slots
        let bank = BankId(0);
        let store = LutStore::load(&mut e, lut, bank, SubarrayId(2), SubarrayId(0), 0);
        // 256 elements need 256 rows; our tiny test subarray has 64, so use
        // a 4-bit LUT at full width instead.
        assert!(store.is_err() || store.is_ok());
        let lut = catalog::popcount(4).unwrap();
        let (mut store, placement) = setup(&mut e, lut);
        let inputs: Vec<u64> = (0..64u64).map(|i| i % 16).collect();
        let mut ex = QueryExecutor::new(&mut e, DesignKind::Gmc);
        let (out, cost) = ex
            .execute(&mut store, placement, &inputs, RowId(0), RowId(0))
            .unwrap();
        assert_eq!(out.len(), 64);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, inputs[i].count_ones() as u64);
        }
        // Sweep cost is independent of how many slots were queried.
        let model = DesignModel::new(
            DesignKind::Gmc,
            e.timing().clone(),
            e.energy_model().clone(),
        );
        assert_eq!(cost.sweep, model.sweep_latency(16));
    }

    #[test]
    fn query_capacity_helper() {
        assert_eq!(query_capacity(8192, 8, 8), 8192);
        assert_eq!(query_capacity(8192, 4, 8), 8192);
        assert_eq!(query_capacity(8192, 4, 4), 16384);
    }
}
