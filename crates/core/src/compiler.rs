//! The pLUTo Compiler (paper §6.3).
//!
//! The compiler's role is to analyze the data dependences between operands
//! of pLUTo Library routines and to guarantee correct *allocation* and
//! *alignment*: binary LUT operations consume the concatenation of their
//! operands, so the left operand must be shifted into the high bits of each
//! slot and merged with the right operand using a bitwise OR before the
//! `pluto_op` executes (the paper's Fig. 5 d: shift-A-left → OR → LUT).
//!
//! Programs are expressed as expression [`Graph`]s and lowered to pLUTo ISA
//! [`Program`]s for the [`crate::controller::Controller`].

use crate::error::PlutoError;
use crate::isa::{Instruction, Program, RowReg, ShiftDir, SubarrayReg};
use crate::lut::Lut;
use std::collections::HashMap;

/// Identifies a node in an expression graph.
pub type NodeId = usize;

/// One operation in the data-dependency graph (paper Fig. 5 d).
#[derive(Debug, Clone)]
enum Node {
    /// External input vector of `bits`-wide elements.
    Input { bits: u32 },
    /// Unary LUT application: `out = lut[a]`.
    Map { lut: Lut, a: NodeId },
    /// Binary LUT application over concatenated operands:
    /// `out = lut[(a << bits(b)) | b]`.
    Combine { lut: Lut, a: NodeId, b: NodeId },
    /// Ambit bitwise AND.
    And { a: NodeId, b: NodeId },
    /// Ambit bitwise OR.
    Or { a: NodeId, b: NodeId },
    /// Ambit bitwise NOT.
    Not { a: NodeId },
}

/// An expression graph describing a pLUTo computation.
///
/// Nodes must be created before use, so node ids are already a topological
/// order.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Declares an external input of `bits`-wide elements.
    pub fn input(&mut self, bits: u32) -> NodeId {
        self.push(Node::Input { bits })
    }

    /// Applies a unary LUT to `a`.
    pub fn map(&mut self, lut: Lut, a: NodeId) -> NodeId {
        self.push(Node::Map { lut, a })
    }

    /// Applies a binary LUT to the concatenation `(a << bits(b)) | b`.
    pub fn combine(&mut self, lut: Lut, a: NodeId, b: NodeId) -> NodeId {
        self.push(Node::Combine { lut, a, b })
    }

    /// Bitwise AND of two nodes (lowered to Ambit).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Node::And { a, b })
    }

    /// Bitwise OR of two nodes (lowered to Ambit).
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Node::Or { a, b })
    }

    /// Bitwise NOT of a node (lowered to Ambit).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Node::Not { a })
    }

    fn push(&mut self, n: Node) -> NodeId {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Value width (bits) of a node's elements.
    fn bits(&self, id: NodeId) -> u32 {
        match &self.nodes[id] {
            Node::Input { bits } => *bits,
            Node::Map { lut, .. } | Node::Combine { lut, .. } => lut.output_bits(),
            Node::And { a, b } | Node::Or { a, b } => self.bits(*a).max(self.bits(*b)),
            Node::Not { a } => self.bits(*a),
        }
    }

    /// Compiles the graph into a pLUTo ISA program computing `output` over
    /// vectors of `num_elems` elements.
    ///
    /// # Errors
    /// Fails if a `Combine`'s LUT width does not equal the sum of its
    /// operand widths, or if any value exceeds the program's slot width.
    pub fn compile(&self, output: NodeId, num_elems: u32) -> Result<Compiled, PlutoError> {
        if output >= self.nodes.len() {
            return Err(PlutoError::InvalidProgram {
                reason: format!("output node {output} does not exist"),
            });
        }
        // The global slot width: every row of the program shares it
        // (§6.3's alignment guarantee). It must fit each LUT's slots and
        // every intermediate value.
        let mut slot_bits = 1u32;
        for (id, node) in self.nodes.iter().enumerate() {
            slot_bits = slot_bits.max(self.bits(id));
            match node {
                Node::Map { lut, a } => {
                    if lut.input_bits() != self.bits(*a) {
                        return Err(PlutoError::InvalidProgram {
                            reason: format!(
                                "node {id}: LUT `{}` expects {} input bits, operand has {}",
                                lut.name(),
                                lut.input_bits(),
                                self.bits(*a)
                            ),
                        });
                    }
                    slot_bits = slot_bits.max(lut.slot_bits());
                }
                Node::Combine { lut, a, b } => {
                    let need = self.bits(*a) + self.bits(*b);
                    if lut.input_bits() != need {
                        return Err(PlutoError::InvalidProgram {
                            reason: format!(
                                "node {id}: LUT `{}` expects {} input bits, concatenated operands have {}",
                                lut.name(),
                                lut.input_bits(),
                                need
                            ),
                        });
                    }
                    slot_bits = slot_bits.max(lut.slot_bits());
                }
                _ => {}
            }
        }

        let mut instructions = Vec::new();
        let mut luts: Vec<Lut> = Vec::new();
        let mut lut_regs: HashMap<String, SubarrayReg> = HashMap::new();
        let mut next_row_reg: u16 = 0;
        let mut alloc = |instructions: &mut Vec<Instruction>, bits: u32| {
            let reg = RowReg(next_row_reg);
            next_row_reg += 1;
            instructions.push(Instruction::RowAlloc {
                dst: reg,
                size: num_elems,
                bitwidth: bits,
            });
            reg
        };

        // Registers for graph nodes, in topological (= id) order.
        let mut node_reg: Vec<RowReg> = Vec::with_capacity(self.nodes.len());
        let mut inputs = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let reg = alloc(&mut instructions, self.bits(id));
            node_reg.push(reg);
            if let Node::Input { bits } = node {
                inputs.push((reg, *bits));
            }
        }

        // LUT subarray allocations (deduplicated by name).
        let mut ensure_lut = |instructions: &mut Vec<Instruction>, lut: &Lut| -> SubarrayReg {
            if let Some(&r) = lut_regs.get(lut.name()) {
                return r;
            }
            let r = SubarrayReg(lut_regs.len() as u16);
            lut_regs.insert(lut.name().to_string(), r);
            luts.push(lut.clone());
            instructions.push(Instruction::SubarrayAlloc {
                dst: r,
                num_rows: lut.len() as u32,
                lut_name: lut.name().to_string(),
            });
            r
        };

        for (id, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Input { .. } => {}
                Node::Map { lut, a } => {
                    let lr = ensure_lut(&mut instructions, lut);
                    // Zero-padded inputs already sit slot-aligned; the LUT
                    // consumes them directly. Note: lut.slot_bits() may be
                    // below the global slot width; re-tabulate such LUTs at
                    // the global width so one packing works everywhere.
                    instructions.push(Instruction::Op {
                        dst: node_reg[id],
                        src: node_reg[*a],
                        lut: lr,
                        lut_size: lut.len() as u32,
                        lut_bitw: lut.slot_bits(),
                    });
                }
                Node::Combine { lut, a, b } => {
                    let lr = ensure_lut(&mut instructions, lut);
                    // §6.3 alignment: copy A, shift it left by bits(B),
                    // merge with B via OR, then query.
                    let shifted = alloc(&mut instructions, self.bits(*a) + self.bits(*b));
                    let merged = alloc(&mut instructions, self.bits(*a) + self.bits(*b));
                    instructions.push(Instruction::Move {
                        dst: shifted,
                        src: node_reg[*a],
                    });
                    instructions.push(Instruction::BitShift {
                        dir: ShiftDir::Left,
                        reg: shifted,
                        amount: self.bits(*b),
                    });
                    instructions.push(Instruction::Or {
                        dst: merged,
                        src1: shifted,
                        src2: node_reg[*b],
                    });
                    instructions.push(Instruction::Op {
                        dst: node_reg[id],
                        src: merged,
                        lut: lr,
                        lut_size: lut.len() as u32,
                        lut_bitw: lut.slot_bits(),
                    });
                }
                Node::And { a, b } => instructions.push(Instruction::And {
                    dst: node_reg[id],
                    src1: node_reg[*a],
                    src2: node_reg[*b],
                }),
                Node::Or { a, b } => instructions.push(Instruction::Or {
                    dst: node_reg[id],
                    src1: node_reg[*a],
                    src2: node_reg[*b],
                }),
                Node::Not { a } => instructions.push(Instruction::Not {
                    dst: node_reg[id],
                    src: node_reg[*a],
                }),
            }
        }

        // Harmonize every LUT to the global slot width: a LUT whose
        // intrinsic slot is narrower is re-tabulated with padded output so
        // its rows pack identically to the data rows.
        let (luts, instructions) = harmonize_slots(luts, instructions, slot_bits)?;

        Ok(Compiled {
            program: Program {
                instructions,
                inputs,
                output: Some((node_reg[output], self.bits(output))),
                slot_bits,
            },
            luts,
        })
    }
}

/// Re-tabulates LUTs whose slot width is below the program's global slot
/// width, rewriting the matching instructions' `lut_bitw`.
fn harmonize_slots(
    luts: Vec<Lut>,
    mut instructions: Vec<Instruction>,
    slot_bits: u32,
) -> Result<(Vec<Lut>, Vec<Instruction>), PlutoError> {
    let mut out_luts = Vec::with_capacity(luts.len());
    let mut renamed: HashMap<String, String> = HashMap::new();
    for lut in luts {
        if lut.slot_bits() == slot_bits {
            out_luts.push(lut);
            continue;
        }
        // Pad by re-declaring the output width at the slot width; element
        // values are unchanged (zero-padded in the high bits).
        let padded = Lut::from_table(
            format!("{}@{}", lut.name(), slot_bits),
            lut.input_bits(),
            slot_bits,
            lut.elements().to_vec(),
        )?;
        renamed.insert(lut.name().to_string(), padded.name().to_string());
        out_luts.push(padded);
    }
    if !renamed.is_empty() {
        for inst in &mut instructions {
            match inst {
                Instruction::SubarrayAlloc { lut_name, .. } => {
                    if let Some(n) = renamed.get(lut_name) {
                        *lut_name = n.clone();
                    }
                }
                Instruction::Op { lut_bitw, .. } => {
                    *lut_bitw = slot_bits;
                }
                _ => {}
            }
        }
    }
    Ok((out_luts, instructions))
}

/// A compiled program and the LUTs it references (to be registered with a
/// [`crate::controller::Controller`]).
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lowered ISA program.
    pub program: Program,
    /// Every LUT the program allocates, deduplicated.
    pub luts: Vec<Lut>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Controller;
    use crate::design::DesignKind;
    use crate::lut::catalog;
    use pluto_dram::DramConfig;

    fn cfg() -> DramConfig {
        DramConfig {
            row_bytes: 64,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 16,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        }
    }

    fn run(compiled: &Compiled, design: DesignKind, inputs: &[Vec<u64>]) -> Vec<u64> {
        let mut c = Controller::new(cfg(), design).unwrap();
        for lut in &compiled.luts {
            c.register_lut(lut.clone());
        }
        c.run(&compiled.program, inputs).unwrap().outputs
    }

    #[test]
    fn compiles_unary_map() {
        let mut g = Graph::new();
        let x = g.input(4);
        let y = g.map(catalog::popcount(4).unwrap(), x);
        let compiled = g.compile(y, 20).unwrap();
        let inputs: Vec<u64> = (0..20u64).map(|i| i % 16).collect();
        let out = run(&compiled, DesignKind::Bsa, std::slice::from_ref(&inputs));
        let expect: Vec<u64> = inputs.iter().map(|x| x.count_ones() as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn combine_emits_move_shift_or_op() {
        // The paper's Fig. 5 c instruction pattern.
        let mut g = Graph::new();
        let a = g.input(2);
        let b = g.input(2);
        let p = g.combine(catalog::mul(2).unwrap(), a, b);
        let compiled = g.compile(p, 16).unwrap();
        let asm = compiled.program.to_assembly();
        assert!(asm.contains("pluto_move"), "{asm}");
        assert!(asm.contains("pluto_bit_shift_l"), "{asm}");
        assert!(asm.contains("pluto_or"), "{asm}");
        assert!(asm.contains("pluto_op"), "{asm}");
        // Shift amount equals bits(B).
        assert!(asm.contains("pluto_bit_shift_l $prg3, 2"), "{asm}");
    }

    #[test]
    fn combine_computes_multiplication() {
        let mut g = Graph::new();
        let a = g.input(4);
        let b = g.input(4);
        let p = g.combine(catalog::mul(4).unwrap(), a, b);
        let compiled = g.compile(p, 30).unwrap();
        let av: Vec<u64> = (0..30u64).map(|i| i % 16).collect();
        let bv: Vec<u64> = (0..30u64).map(|i| (i * 3) % 16).collect();
        for design in DesignKind::ALL {
            let out = run(&compiled, design, &[av.clone(), bv.clone()]);
            let expect: Vec<u64> = av.iter().zip(&bv).map(|(&x, &y)| x * y).collect();
            assert_eq!(out, expect, "{design}");
        }
    }

    #[test]
    fn chained_combines_multiply_add() {
        // out = a*b + c — the paper's running multiply-and-add example
        // (Fig. 5 a), with 2-bit a,b and 4-bit c.
        let mut g = Graph::new();
        let a = g.input(2);
        let b = g.input(2);
        let c = g.input(4);
        let prod = g.combine(catalog::mul(2).unwrap(), a, b); // 4-bit out
        let sum = g.combine(catalog::add(4).unwrap(), prod, c); // 5-bit out
        let compiled = g.compile(sum, 25).unwrap();
        let av: Vec<u64> = (0..25u64).map(|i| i % 4).collect();
        let bv: Vec<u64> = (0..25u64).map(|i| (i / 4) % 4).collect();
        let cv: Vec<u64> = (0..25u64).map(|i| (i * 5) % 16).collect();
        let out = run(
            &compiled,
            DesignKind::Gmc,
            &[av.clone(), bv.clone(), cv.clone()],
        );
        let expect: Vec<u64> = (0..25).map(|i| av[i] * bv[i] + cv[i]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn bitwise_nodes_lower_to_ambit() {
        let mut g = Graph::new();
        let a = g.input(8);
        let b = g.input(8);
        let x = g.and(a, b);
        let y = g.or(x, b);
        let z = g.not(y);
        let compiled = g.compile(z, 10).unwrap();
        let asm = compiled.program.to_assembly();
        assert!(asm.contains("pluto_and"));
        assert!(asm.contains("pluto_or"));
        assert!(asm.contains("pluto_not"));
        let av: Vec<u64> = (0..10u64).map(|i| i * 11).collect();
        let bv: Vec<u64> = (0..10u64).map(|i| 255 - i * 7).collect();
        let out = run(&compiled, DesignKind::Bsa, &[av.clone(), bv.clone()]);
        let expect: Vec<u64> = av
            .iter()
            .zip(&bv)
            .map(|(&x, &y)| !((x & y) | y) & 0xFF)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn lut_dedup_allocates_one_subarray() {
        let mut g = Graph::new();
        let a = g.input(8);
        let m1 = g.map(catalog::binarize(50).unwrap(), a);
        let m2 = g.map(catalog::binarize(50).unwrap(), m1);
        let compiled = g.compile(m2, 8).unwrap();
        let allocs = compiled
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::SubarrayAlloc { .. }))
            .count();
        assert_eq!(allocs, 1, "identical LUTs share one subarray");
        assert_eq!(compiled.luts.len(), 1);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut g = Graph::new();
        let a = g.input(8); // 8-bit operand
        let m = g.map(catalog::popcount(4).unwrap(), a); // LUT wants 4 bits
        assert!(matches!(
            g.compile(m, 8),
            Err(PlutoError::InvalidProgram { .. })
        ));
    }

    #[test]
    fn combine_width_mismatch_rejected() {
        let mut g = Graph::new();
        let a = g.input(4);
        let b = g.input(4);
        let m = g.combine(catalog::mul(2).unwrap(), a, b); // LUT wants 4 = 2+2
        assert!(g.compile(m, 8).is_err());
    }

    #[test]
    fn slot_harmonization_pads_narrow_luts() {
        // popcount(8): input 8, output 4 -> intrinsic slot 8. Mixing with a
        // 16-bit-output LUT forces a 16-bit global slot; the narrow LUT is
        // re-tabulated.
        let wide = Lut::from_fn("sq8", 8, 16, |x| x * x).unwrap();
        let mut g = Graph::new();
        let a = g.input(8);
        let s = g.map(wide, a); // 16-bit values
        let _ = s;
        let b = g.map(catalog::binarize(10).unwrap(), a);
        let compiled = g.compile(b, 8).unwrap();
        assert_eq!(compiled.program.slot_bits, 16);
        assert!(compiled.luts.iter().any(|l| l.name().contains("@16")));
        let inputs: Vec<u64> = (0..8).collect();
        let out = run(&compiled, DesignKind::Bsa, std::slice::from_ref(&inputs));
        let expect: Vec<u64> = inputs
            .iter()
            .map(|&x| if x >= 10 { 255 } else { 0 })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn invalid_output_node_rejected() {
        let g = Graph::new();
        assert!(g.compile(0, 4).is_err());
    }
}
