//! The three pLUTo hardware designs and their analytic cost models.
//!
//! Paper §5 proposes three designs with different trade-offs (Table 1):
//!
//! | | pLUTo-BSA | pLUTo-GSA | pLUTo-GMC |
//! |---|---|---|---|
//! | Area efficiency | Medium | **High** | Low |
//! | Throughput | Medium | Low | **High** |
//! | Energy efficiency | Medium | Low | **High** |
//! | Destructive reads | No | Yes | No |
//! | LUT data loading | Once | After every use | Once |
//! | Query latency | (tRCD+tRP)·N | LISA·N + tRCD·N + tRP | tRCD·N + tRP |
//! | Query energy | (E_RCD+E_RP)·N | E_LISA·N + E_RCD·N + E_RP | E_RCD·N + E_RP |
//!
//! The closed forms below are *also* validated against the command-level
//! engine: `crate::query` issues the per-design command streams and unit
//! tests assert the measured latency/energy equals these expressions.

use pluto_dram::{EnergyModel, PicoJoules, Picos, SweepStepKind, TimingParams};
use std::fmt;

/// Which pLUTo design a query executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Buffered Sense Amplifier (§5.1): secondary FF buffer captures
    /// matching elements; full ACT+PRE cycle per swept row.
    Bsa,
    /// Gated Sense Amplifier (§5.2): matchline-controlled switch between
    /// bitline and SA; destructive reads, LUT reload before every query.
    Gsa,
    /// Gated Memory Cell (§5.3): 2T1C cell; back-to-back activations without
    /// precharge, non-destructive.
    Gmc,
}

impl DesignKind {
    /// All three designs in the paper's order.
    pub const ALL: [DesignKind; 3] = [DesignKind::Bsa, DesignKind::Gsa, DesignKind::Gmc];

    /// Whether a row sweep destroys the LUT contents (GSA only, §5.2.1).
    pub fn destructive_reads(self) -> bool {
        matches!(self, DesignKind::Gsa)
    }

    /// Whether the LUT must be reloaded before every query.
    pub fn reload_per_query(self) -> bool {
        self.destructive_reads()
    }

    /// The engine-level sweep step class this design issues.
    pub fn sweep_step_kind(self) -> SweepStepKind {
        match self {
            DesignKind::Bsa => SweepStepKind::FullCycle,
            DesignKind::Gsa | DesignKind::Gmc => SweepStepKind::ChargeShare,
        }
    }

    /// DRAM chip area overhead of the design (paper Table 5 / §8.4):
    /// GSA +10.2 %, BSA +16.7 %, GMC +23.1 %.
    pub fn area_overhead_fraction(self) -> f64 {
        match self {
            DesignKind::Bsa => 0.167,
            DesignKind::Gsa => 0.102,
            DesignKind::Gmc => 0.231,
        }
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignKind::Bsa => write!(f, "pLUTo-BSA"),
            DesignKind::Gsa => write!(f, "pLUTo-GSA"),
            DesignKind::Gmc => write!(f, "pLUTo-GMC"),
        }
    }
}

/// Closed-form cost model of one design instantiated over a timing/energy
/// parameter set (paper Table 1 and §§5.1.4, 5.2.3, 5.3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignModel {
    /// Which design.
    pub kind: DesignKind,
    timing: TimingParams,
    energy: EnergyModel,
}

impl DesignModel {
    /// Instantiates the model.
    pub fn new(kind: DesignKind, timing: TimingParams, energy: EnergyModel) -> Self {
        DesignModel {
            kind,
            timing,
            energy,
        }
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Latency of the pLUTo Row Sweep over `n` LUT elements.
    ///
    /// * BSA: `(tRCD + tRP) · n` (§5.1.1)
    /// * GSA/GMC: `tRCD · n + tRP` (§5.2.2, §5.3.3)
    pub fn sweep_latency(&self, n: u64) -> Picos {
        match self.kind {
            DesignKind::Bsa => (self.timing.t_rcd + self.timing.t_rp).times(n),
            DesignKind::Gsa | DesignKind::Gmc => self.timing.t_rcd.times(n) + self.timing.t_rp,
        }
    }

    /// Latency of loading the LUT into the pLUTo-enabled subarray, charged
    /// before every query for GSA (`LISA_RBM · n`, §5.2.2) and zero for the
    /// non-destructive designs (loading happens once, off the critical
    /// path).
    pub fn reload_latency(&self, n: u64) -> Picos {
        if self.kind.reload_per_query() {
            self.timing.t_lisa_hop.times(n)
        } else {
            Picos::ZERO
        }
    }

    /// Total per-query latency (Table 1 "Query Latency" row).
    pub fn query_latency(&self, n: u64) -> Picos {
        self.reload_latency(n) + self.sweep_latency(n)
    }

    /// Per-query energy (Table 1 "Query Energy" row).
    ///
    /// * BSA: `(E_RCD + E_RP) · n`
    /// * GSA: `E_LISA · n + E_RCD · n + E_RP`
    /// * GMC: `E_RCD · n + E_RP`
    ///
    /// For GMC, only matched bitlines move charge (§5.3.1), which the
    /// engine's charge-share energy also reflects; the Table 1 closed form
    /// charges the full `E_RCD` per step, and we keep that (conservative)
    /// convention here.
    pub fn query_energy(&self, n: u64) -> PicoJoules {
        let act = self.energy.e_charge_share;
        match self.kind {
            DesignKind::Bsa => (self.energy.e_act + self.energy.e_pre).times(n),
            DesignKind::Gsa => self.energy.e_lisa_hop.times(n) + act.times(n) + self.energy.e_pre,
            DesignKind::Gmc => act.times(n) + self.energy.e_pre,
        }
    }

    /// Maximum LUT-query throughput of a single pLUTo-enabled subarray, in
    /// queries per second (§§5.1.4, 5.2.3, 5.3.4):
    /// `(row_bits / input_bits) / query_latency(n)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `input_bits == 0`.
    pub fn throughput_per_subarray(&self, row_bits: u64, input_bits: u32, n: u64) -> f64 {
        assert!(n > 0 && input_bits > 0);
        let queries = row_bits as f64 / input_bits as f64;
        queries / self.query_latency(n).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (DesignModel, DesignModel, DesignModel) {
        let t = TimingParams::ddr4_2400();
        let e = EnergyModel::ddr4();
        (
            DesignModel::new(DesignKind::Bsa, t.clone(), e.clone()),
            DesignModel::new(DesignKind::Gsa, t.clone(), e.clone()),
            DesignModel::new(DesignKind::Gmc, t, e),
        )
    }

    #[test]
    fn table1_latency_formulas() {
        let (bsa, gsa, gmc) = models();
        let n = 256;
        let t = TimingParams::ddr4_2400();
        assert_eq!(bsa.query_latency(n), (t.t_rcd + t.t_rp).times(n));
        assert_eq!(
            gsa.query_latency(n),
            t.t_lisa_hop.times(n) + t.t_rcd.times(n) + t.t_rp
        );
        assert_eq!(gmc.query_latency(n), t.t_rcd.times(n) + t.t_rp);
    }

    #[test]
    fn throughput_ordering_gmc_gt_bsa_gt_gsa() {
        // Paper §5.4 observation 1: GMC > BSA > GSA throughput.
        let (bsa, gsa, gmc) = models();
        for n in [16u64, 64, 256, 1024] {
            let tb = bsa.throughput_per_subarray(65536, 8, n);
            let tg = gsa.throughput_per_subarray(65536, 8, n);
            let tm = gmc.throughput_per_subarray(65536, 8, n);
            assert!(tm > tb && tb > tg, "n={n}: gmc={tm}, bsa={tb}, gsa={tg}");
        }
    }

    #[test]
    fn energy_ordering_gmc_lt_bsa_lt_gsa() {
        // Paper §5.4 observation 2: GMC < BSA < GSA energy.
        let (bsa, gsa, gmc) = models();
        for n in [16u64, 64, 256, 1024] {
            let eb = bsa.query_energy(n).as_pj();
            let eg = gsa.query_energy(n).as_pj();
            let em = gmc.query_energy(n).as_pj();
            assert!(em < eb && eb < eg, "n={n}: gmc={em}, bsa={eb}, gsa={eg}");
        }
    }

    #[test]
    fn area_ordering_gsa_lt_bsa_lt_gmc() {
        // Paper §5.4 observation 3: GSA < BSA < GMC area overhead.
        assert!(
            DesignKind::Gsa.area_overhead_fraction() < DesignKind::Bsa.area_overhead_fraction()
        );
        assert!(
            DesignKind::Bsa.area_overhead_fraction() < DesignKind::Gmc.area_overhead_fraction()
        );
    }

    #[test]
    fn sweep_ratio_approaches_two_for_large_n() {
        // Footnote 3: (tRCD+tRP)·N / (tRCD·N + tRP) → 2 for large N when
        // tRCD ≈ tRP.
        let (bsa, _, gmc) = models();
        let n = 1024;
        let ratio = bsa.sweep_latency(n).as_ns() / gmc.sweep_latency(n).as_ns();
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
        // And is visibly below 2 for tiny N.
        let r2 = bsa.sweep_latency(2).as_ns() / gmc.sweep_latency(2).as_ns();
        assert!(r2 < 1.9);
    }

    #[test]
    fn destructive_read_flags() {
        assert!(!DesignKind::Bsa.destructive_reads());
        assert!(DesignKind::Gsa.destructive_reads());
        assert!(!DesignKind::Gmc.destructive_reads());
        assert!(DesignKind::Gsa.reload_per_query());
    }

    #[test]
    fn reload_only_charged_for_gsa() {
        let (bsa, gsa, gmc) = models();
        assert_eq!(bsa.reload_latency(64), Picos::ZERO);
        assert_eq!(gmc.reload_latency(64), Picos::ZERO);
        assert!(gsa.reload_latency(64) > Picos::ZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(DesignKind::Bsa.to_string(), "pLUTo-BSA");
        assert_eq!(DesignKind::ALL.len(), 3);
    }
}
