//! Lookup-table definitions and the bit-level row packing used by pLUTo.
//!
//! A [`Lut`] maps every possible `input_bits`-wide index to an
//! `output_bits`-wide element (paper §4: "a LUT query is a memory read
//! operation that, for a given input value x, returns f(x)"). LUT size is
//! always `2^input_bits` (paper §6.1: "`lut_size` must be a power of two").
//!
//! pLUTo stores data *bit-parallel*: the bits of each element sit in
//! adjacent bitlines, and one DRAM row holds many elements side by side
//! (paper Fig. 2). [`pack_slots`]/[`unpack_slots`] implement that layout:
//! slot *j* of width `slot_bits` occupies bits `[j·slot, (j+1)·slot)` of the
//! row, counted from the most-significant bit of byte 0 — consistent with
//! the whole-row shift semantics of `pluto_dram::array`.

use crate::error::PlutoError;
use std::fmt;
use std::sync::Arc;

/// A lookup table: up to `2^input_bits` elements of `output_bits` bits
/// each. The canonical constructors ([`Lut::from_fn`]/[`Lut::from_table`])
/// tabulate the full `2^input_bits` range (paper §6.1: "`lut_size` must be
/// a power of two"); the `*_len` variants admit truncated tables of
/// arbitrary length for the §5.6 partitioned path, which pads each
/// per-subarray segment back to a power of two.
#[derive(Clone)]
pub struct Lut {
    name: String,
    input_bits: u32,
    output_bits: u32,
    /// Slot-width floor (see [`Lut::with_min_slot_bits`]); 0 = derived.
    min_slot_bits: u32,
    elements: Arc<Vec<u64>>,
}

impl fmt::Debug for Lut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lut")
            .field("name", &self.name)
            .field("input_bits", &self.input_bits)
            .field("output_bits", &self.output_bits)
            .field("slot_bits", &self.slot_bits())
            .field("len", &self.elements.len())
            .finish()
    }
}

impl PartialEq for Lut {
    fn eq(&self, other: &Self) -> bool {
        self.input_bits == other.input_bits
            && self.output_bits == other.output_bits
            && self.min_slot_bits == other.min_slot_bits
            // Pointer fast path: clones share one table, so the common
            // same-LUT comparison (store-cache witness checks) skips the
            // element scan.
            && (Arc::ptr_eq(&self.elements, &other.elements) || self.elements == other.elements)
    }
}

impl Eq for Lut {}

impl Lut {
    /// Builds a LUT by tabulating `f` over all `2^input_bits` indices.
    ///
    /// # Errors
    /// Fails if widths are zero, exceed 32 bits (paper §5.6: pLUTo is not
    /// suited to large-bit-width queries), or if `f` produces a value wider
    /// than `output_bits`.
    pub fn from_fn<F>(
        name: impl Into<String>,
        input_bits: u32,
        output_bits: u32,
        f: F,
    ) -> Result<Self, PlutoError>
    where
        F: FnMut(u64) -> u64,
    {
        validate_widths(input_bits, output_bits)?;
        Lut::from_fn_len(name, 1usize << input_bits, output_bits, f)
    }

    /// Builds a *truncated* LUT of arbitrary length by tabulating `f` over
    /// `0..len`. `input_bits` is the smallest index width covering `len`
    /// (`ceil(log2 len)`); indices in `len..2^input_bits` are simply
    /// invalid. Truncated LUTs cannot occupy a single pLUTo sweep (§6.1
    /// requires a power-of-two `lut_size`) but partition across subarrays
    /// (§5.6), where the tail segment is padded back to a power of two.
    ///
    /// # Errors
    /// Fails if `len < 2`, the derived index width exceeds the supported
    /// 20 bits, or `f` produces a value wider than `output_bits`.
    pub fn from_fn_len<F>(
        name: impl Into<String>,
        len: usize,
        output_bits: u32,
        mut f: F,
    ) -> Result<Self, PlutoError>
    where
        F: FnMut(u64) -> u64,
    {
        let input_bits = index_bits_for_len(len)?;
        validate_widths(input_bits, output_bits)?;
        let name = name.into();
        let mask = width_mask(output_bits);
        let mut elements = Vec::with_capacity(len);
        for x in 0..len as u64 {
            let y = f(x);
            if y & !mask != 0 {
                return Err(PlutoError::InvalidLut {
                    reason: format!("{name}: f({x}) = {y} exceeds {output_bits} output bits"),
                });
            }
            elements.push(y);
        }
        Ok(Lut {
            name,
            input_bits,
            output_bits,
            min_slot_bits: 0,
            elements: Arc::new(elements),
        })
    }

    /// Builds a *truncated* LUT of arbitrary length from an explicit
    /// element table (see [`Lut::from_fn_len`]).
    ///
    /// # Errors
    /// Fails if the table has fewer than 2 elements, the derived index
    /// width exceeds the supported 20 bits, or any element exceeds
    /// `output_bits`.
    pub fn from_table_len(
        name: impl Into<String>,
        output_bits: u32,
        elements: Vec<u64>,
    ) -> Result<Self, PlutoError> {
        let input_bits = index_bits_for_len(elements.len())?;
        validate_widths(input_bits, output_bits)?;
        let name = name.into();
        let mask = width_mask(output_bits);
        if let Some(bad) = elements.iter().find(|&&e| e & !mask != 0) {
            return Err(PlutoError::InvalidLut {
                reason: format!("{name}: element {bad} exceeds {output_bits} output bits"),
            });
        }
        Ok(Lut {
            name,
            input_bits,
            output_bits,
            min_slot_bits: 0,
            elements: Arc::new(elements),
        })
    }

    /// Pins a *slot-width floor*: [`Lut::slot_bits`] becomes at least
    /// `bits`, so this LUT's rows pack in the layout of a wider table.
    /// The §5.6 partitioned path uses it to store each segment at the
    /// parent LUT's slot width — segment element rows are then
    /// byte-identical to the corresponding rows of the unpartitioned
    /// layout, and row capacity is uniform across segments.
    #[must_use]
    pub fn with_min_slot_bits(mut self, bits: u32) -> Self {
        self.min_slot_bits = bits;
        self
    }

    /// Builds a LUT from an explicit element table.
    ///
    /// # Errors
    /// Fails if `elements.len() != 2^input_bits` or any element exceeds
    /// `output_bits`.
    pub fn from_table(
        name: impl Into<String>,
        input_bits: u32,
        output_bits: u32,
        elements: Vec<u64>,
    ) -> Result<Self, PlutoError> {
        validate_widths(input_bits, output_bits)?;
        let name = name.into();
        if elements.len() != (1usize << input_bits) {
            return Err(PlutoError::InvalidLut {
                reason: format!(
                    "{name}: {} elements provided, expected {}",
                    elements.len(),
                    1usize << input_bits
                ),
            });
        }
        Lut::from_table_len(name, output_bits, elements)
    }

    /// Name used for deduplication and traces.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index width in bits (`N` in the paper).
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Element width in bits (`M` in the paper).
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// Number of elements (`LUT#Elems = 2^N`).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// A LUT is never empty, but the method is provided for API convention.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Element at `index`.
    ///
    /// # Errors
    /// Fails if `index ≥ 2^input_bits`.
    pub fn element(&self, index: u64) -> Result<u64, PlutoError> {
        self.elements
            .get(index as usize)
            .copied()
            .ok_or(PlutoError::IndexOutOfRange {
                value: index,
                input_bits: self.input_bits,
            })
    }

    /// All elements, in index order.
    pub fn elements(&self) -> &[u64] {
        &self.elements
    }

    /// The shared element table (cheap to clone; used as the identity
    /// witness by the packed-row cache in [`crate::store`]).
    pub(crate) fn elements_shared(&self) -> &Arc<Vec<u64>> {
        &self.elements
    }

    /// Slot width used when this LUT's indices and elements share one row
    /// layout: `max(N, M)` (inputs are zero-padded to `lut_bitw ≥ N`,
    /// paper §6.1 footnote), raised to any floor pinned by
    /// [`Lut::with_min_slot_bits`].
    pub fn slot_bits(&self) -> u32 {
        self.input_bits
            .max(self.output_bits)
            .max(self.min_slot_bits)
    }

    /// Whether the slot width itself bounds every representable value to
    /// a valid index: the table is full (`len == 2^input_bits`) and slots
    /// carry no spare bits (`slot_bits == input_bits`). When this holds,
    /// unpacking a resident input row at the slot width *cannot* produce
    /// an out-of-range index, so resident-path queries skip the per-query
    /// linear range scan entirely.
    pub fn slot_width_bounds_inputs(&self) -> bool {
        self.slot_bits() == self.input_bits && self.len() == 1usize << self.input_bits
    }

    /// Applies the LUT in software (reference semantics for validation).
    ///
    /// # Errors
    /// Fails if any input is out of range.
    pub fn apply_all(&self, inputs: &[u64]) -> Result<Vec<u64>, PlutoError> {
        inputs.iter().map(|&x| self.element(x)).collect()
    }
}

/// The smallest index width covering a table of `len` elements.
fn index_bits_for_len(len: usize) -> Result<u32, PlutoError> {
    if len < 2 {
        return Err(PlutoError::InvalidLut {
            reason: format!("a LUT needs at least 2 elements, got {len}"),
        });
    }
    Ok((len - 1).ilog2() + 1)
}

fn validate_widths(input_bits: u32, output_bits: u32) -> Result<(), PlutoError> {
    if input_bits == 0 || input_bits > 20 {
        return Err(PlutoError::InvalidLut {
            reason: format!("input width {input_bits} out of supported range 1..=20"),
        });
    }
    if output_bits == 0 || output_bits > 32 {
        return Err(PlutoError::InvalidLut {
            reason: format!("output width {output_bits} out of supported range 1..=32"),
        });
    }
    Ok(())
}

/// All-ones mask of the lowest `bits` bits.
pub fn width_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Packs `values` into a row of `row_bytes` bytes, `slot_bits` per slot,
/// MSB-first (slot 0 in the high bits of byte 0).
///
/// This is the word-parallel implementation: a streaming 64-bit
/// shift/mask accumulator appends each slot in O(1) amortized word
/// operations and emits every output byte exactly once — no per-bit loop
/// and no read-modify-write. [`pack_slots_scalar`] is the retained
/// bit-serial reference; the two are asserted bit-identical by the
/// differential test suite, and `benches/query.rs` gates the word path at
/// ≥ 2× the scalar throughput.
///
/// # Errors
/// Fails if the values do not fit in the row or any value exceeds the slot
/// width.
pub fn pack_slots(values: &[u64], slot_bits: u32, row_bytes: usize) -> Result<Vec<u8>, PlutoError> {
    let mut row = Vec::new();
    pack_slots_into(values, slot_bits, row_bytes, &mut row)?;
    Ok(row)
}

/// [`pack_slots`] into a caller-owned buffer (cleared and refilled), so
/// query streams can reuse one scratch row instead of reallocating.
///
/// # Errors
/// Same conditions as [`pack_slots`].
pub fn pack_slots_into(
    values: &[u64],
    slot_bits: u32,
    row_bytes: usize,
    row: &mut Vec<u8>,
) -> Result<(), PlutoError> {
    let capacity = (row_bytes * 8) / slot_bits as usize;
    if values.len() > capacity {
        return Err(PlutoError::LayoutMismatch {
            reason: format!(
                "{} values of {} bits exceed row capacity {}",
                values.len(),
                slot_bits,
                capacity
            ),
        });
    }
    if slot_bits > ACCUMULATOR_MAX_BITS {
        // Slots wider than the 64-bit accumulator can hold alongside its
        // carry bits (LUT widths are capped far below this; only hand-built
        // programs can reach it) take the bit-serial path.
        *row = pack_slots_scalar(values, slot_bits, row_bytes)?;
        return Ok(());
    }
    let mask = width_mask(slot_bits);
    row.clear();
    row.resize(row_bytes, 0);
    // Streaming big-endian bit accumulator: `acc` holds `pending` not-yet-
    // emitted bits in its low end. With at most 7 bits pending before each
    // append, `pending + slot_bits` stays within 64 for every slot width up
    // to `ACCUMULATOR_MAX_BITS`.
    let mut acc: u64 = 0;
    let mut pending: u32 = 0;
    let mut at = 0usize;
    for &v in values {
        if v & !mask != 0 {
            return Err(PlutoError::LayoutMismatch {
                reason: format!("value {v} exceeds {slot_bits}-bit slot"),
            });
        }
        acc = (acc << slot_bits) | v;
        pending += slot_bits;
        while pending >= 8 {
            pending -= 8;
            row[at] = (acc >> pending) as u8;
            at += 1;
        }
    }
    if pending > 0 {
        // Left-align the final partial byte (the rest of the row is zero).
        row[at] = ((acc << (8 - pending)) & 0xFF) as u8;
    }
    Ok(())
}

/// Unpacks `count` slots of `slot_bits` bits from a row (inverse of
/// [`pack_slots`]). Word-parallel: the same streaming 64-bit shift/mask
/// accumulator as [`pack_slots`], reading each row byte exactly once;
/// [`unpack_slots_scalar`] is the retained bit-serial reference.
pub fn unpack_slots(row: &[u8], slot_bits: u32, count: usize) -> Vec<u64> {
    let mut out = Vec::new();
    unpack_slots_into(row, slot_bits, count, &mut out);
    out
}

/// Widest slot the streaming accumulator supports: the same 57-bit bound
/// as [`pluto_dram::MAX_FIELD_BITS`] — a field plus the up to 7 carry
/// bits of a byte-aligned stream fill a 64-bit word exactly.
const ACCUMULATOR_MAX_BITS: u32 = pluto_dram::MAX_FIELD_BITS;

/// [`unpack_slots`] into a caller-owned buffer (cleared and refilled).
pub fn unpack_slots_into(row: &[u8], slot_bits: u32, count: usize, out: &mut Vec<u64>) {
    if slot_bits > ACCUMULATOR_MAX_BITS {
        *out = unpack_slots_scalar(row, slot_bits, count);
        return;
    }
    out.clear();
    out.reserve(count);
    let mask = width_mask(slot_bits);
    let mut acc: u64 = 0;
    let mut pending: u32 = 0;
    let mut at = 0usize;
    for _ in 0..count {
        while pending < slot_bits {
            acc = (acc << 8) | u64::from(row[at]);
            at += 1;
            pending += 8;
        }
        pending -= slot_bits;
        out.push((acc >> pending) & mask);
    }
}

/// Bit-serial reference implementation of [`pack_slots`], retained so the
/// differential suite (and the packing microbench guard) can compare the
/// word-parallel path against the original slot semantics.
///
/// # Errors
/// Same conditions as [`pack_slots`].
pub fn pack_slots_scalar(
    values: &[u64],
    slot_bits: u32,
    row_bytes: usize,
) -> Result<Vec<u8>, PlutoError> {
    let capacity = (row_bytes * 8) / slot_bits as usize;
    if values.len() > capacity {
        return Err(PlutoError::LayoutMismatch {
            reason: format!(
                "{} values of {} bits exceed row capacity {}",
                values.len(),
                slot_bits,
                capacity
            ),
        });
    }
    let mask = width_mask(slot_bits);
    let mut row = vec![0u8; row_bytes];
    for (j, &v) in values.iter().enumerate() {
        if v & !mask != 0 {
            return Err(PlutoError::LayoutMismatch {
                reason: format!("value {v} exceeds {slot_bits}-bit slot"),
            });
        }
        let base = j * slot_bits as usize;
        for b in 0..slot_bits as usize {
            let bit = (v >> (slot_bits as usize - 1 - b)) & 1;
            if bit != 0 {
                let pos = base + b;
                row[pos / 8] |= 1 << (7 - (pos % 8));
            }
        }
    }
    Ok(row)
}

/// Bit-serial reference implementation of [`unpack_slots`] (see
/// [`pack_slots_scalar`]).
pub fn unpack_slots_scalar(row: &[u8], slot_bits: u32, count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    for j in 0..count {
        let base = j * slot_bits as usize;
        let mut v = 0u64;
        for b in 0..slot_bits as usize {
            let pos = base + b;
            let bit = (row[pos / 8] >> (7 - (pos % 8))) & 1;
            v = (v << 1) | bit as u64;
        }
        out.push(v);
    }
    out
}

/// Number of slots of `slot_bits` bits that fit in a row of `row_bytes`.
pub fn slots_per_row(row_bytes: usize, slot_bits: u32) -> usize {
    (row_bytes * 8) / slot_bits as usize
}

/// Commonly used LUTs from the paper's workloads.
pub mod catalog {
    use super::Lut;
    use crate::error::PlutoError;

    /// `n`-bit + `n`-bit addition LUT: index is the concatenation
    /// `(a << n) | b`, element is the `(n+1)`-bit sum (paper §6.2's
    /// `add4_lut` pattern).
    pub fn add(n: u32) -> Result<Lut, PlutoError> {
        Lut::from_fn(format!("add{n}"), 2 * n, n + 1, move |x| {
            let a = x >> n;
            let b = x & ((1 << n) - 1);
            a + b
        })
    }

    /// `n`-bit × `n`-bit multiplication LUT producing `2n` bits.
    pub fn mul(n: u32) -> Result<Lut, PlutoError> {
        Lut::from_fn(format!("mul{n}"), 2 * n, 2 * n, move |x| {
            let a = x >> n;
            let b = x & ((1 << n) - 1);
            a * b
        })
    }

    /// Population count of an `n`-bit value (paper's BC-4 / BC-8).
    pub fn popcount(n: u32) -> Result<Lut, PlutoError> {
        let out_bits = 32 - n.leading_zeros().min(31);
        Lut::from_fn(format!("bc{n}"), n, out_bits.max(1) + 1, move |x| {
            x.count_ones() as u64
        })
    }

    /// Bitwise NOT of an `n`-bit value.
    pub fn not(n: u32) -> Result<Lut, PlutoError> {
        let mask = (1u64 << n) - 1;
        Lut::from_fn(format!("not{n}"), n, n, move |x| !x & mask)
    }

    /// Paired-operand bitwise op: index is `(a << n) | b`.
    fn paired(
        name: &str,
        n: u32,
        f: impl Fn(u64, u64) -> u64 + 'static,
    ) -> Result<Lut, PlutoError> {
        let mask = (1u64 << n) - 1;
        Lut::from_fn(format!("{name}{n}"), 2 * n, n, move |x| {
            f(x >> n, x & mask) & mask
        })
    }

    /// Bitwise AND over paired `n`-bit operands.
    pub fn and(n: u32) -> Result<Lut, PlutoError> {
        paired("and", n, |a, b| a & b)
    }

    /// Bitwise OR over paired `n`-bit operands.
    pub fn or(n: u32) -> Result<Lut, PlutoError> {
        paired("or", n, |a, b| a | b)
    }

    /// Bitwise XOR over paired `n`-bit operands.
    pub fn xor(n: u32) -> Result<Lut, PlutoError> {
        paired("xor", n, |a, b| a ^ b)
    }

    /// Bitwise XNOR over paired `n`-bit operands.
    pub fn xnor(n: u32) -> Result<Lut, PlutoError> {
        paired("xnor", n, |a, b| !(a ^ b))
    }

    /// 8-bit threshold binarization: 255 if `x ≥ threshold` else 0
    /// (paper's ImgBin workload).
    pub fn binarize(threshold: u8) -> Result<Lut, PlutoError> {
        Lut::from_fn(format!("imgbin{threshold}"), 8, 8, move |x| {
            if x >= threshold as u64 {
                255
            } else {
                0
            }
        })
    }

    /// 8-bit exponentiation LUT `x ↦ min(x², 255)`-style saturating square,
    /// standing in for the paper's "8-bit exponentiation" Table 6 row.
    pub fn exp8() -> Result<Lut, PlutoError> {
        Lut::from_fn("exp8", 8, 8, |x| {
            // e^(x/32) scaled into 8 bits, saturating — a deterministic
            // transcendental map of the kind prior PuM cannot execute.
            let v = ((x as f64 / 32.0).exp()).round() as u64;
            v.min(255)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_lut_matches_paper_example() {
        // Paper Fig. 3: LUT of the first four primes; query [1,0,1,3]
        // returns [3,2,3,7].
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let out = lut.apply_all(&[1, 0, 1, 3]).unwrap();
        assert_eq!(out, vec![3, 2, 3, 7]);
    }

    #[test]
    fn from_fn_tabulates_every_index() {
        let lut = Lut::from_fn("sq", 4, 8, |x| x * x).unwrap();
        assert_eq!(lut.len(), 16);
        assert_eq!(lut.element(15).unwrap(), 225);
    }

    #[test]
    fn from_fn_rejects_wide_outputs() {
        assert!(matches!(
            Lut::from_fn("bad", 4, 4, |x| x * x),
            Err(PlutoError::InvalidLut { .. })
        ));
    }

    #[test]
    fn from_table_validates_length_and_widths() {
        assert!(Lut::from_table("bad", 2, 4, vec![1, 2, 3]).is_err());
        assert!(Lut::from_table("bad", 2, 2, vec![1, 2, 3, 9]).is_err());
        assert!(Lut::from_table("bad", 0, 2, vec![]).is_err());
        assert!(Lut::from_table("bad", 2, 0, vec![0, 0, 0, 0]).is_err());
        assert!(Lut::from_table("bad", 21, 2, vec![]).is_err());
    }

    #[test]
    fn element_out_of_range() {
        let lut = Lut::from_table("t", 2, 4, vec![1, 2, 3, 4]).unwrap();
        assert!(matches!(
            lut.element(4),
            Err(PlutoError::IndexOutOfRange { value: 4, .. })
        ));
    }

    #[test]
    fn slot_bits_is_max_of_widths() {
        let lut = Lut::from_table("t", 2, 4, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(lut.slot_bits(), 4);
        let lut = Lut::from_fn("wide-in", 8, 4, |_| 0).unwrap();
        assert_eq!(lut.slot_bits(), 8);
    }

    #[test]
    fn pack_unpack_roundtrip_8bit() {
        let vals = vec![0xAB, 0x00, 0xFF, 0x12];
        let row = pack_slots(&vals, 8, 8).unwrap();
        assert_eq!(&row[..4], &[0xAB, 0x00, 0xFF, 0x12]);
        assert_eq!(unpack_slots(&row, 8, 4), vals);
    }

    #[test]
    fn pack_unpack_roundtrip_odd_widths() {
        for slot_bits in [1u32, 2, 3, 4, 5, 7, 11, 16] {
            let mask = width_mask(slot_bits);
            let vals: Vec<u64> = (0..10u64).map(|i| (i * 0x9E37) & mask).collect();
            let row = pack_slots(&vals, slot_bits, 32).unwrap();
            assert_eq!(
                unpack_slots(&row, slot_bits, vals.len()),
                vals,
                "w={slot_bits}"
            );
        }
    }

    #[test]
    fn pack_4bit_nibble_order_is_msb_first() {
        let row = pack_slots(&[0xA, 0xB], 4, 2).unwrap();
        assert_eq!(row[0], 0xAB);
    }

    #[test]
    fn pack_rejects_overflow_and_capacity() {
        assert!(pack_slots(&[16], 4, 4).is_err());
        assert!(pack_slots(&vec![1u64; 100], 8, 8).is_err());
        assert!(pack_slots_scalar(&[16], 4, 4).is_err());
        assert!(pack_slots_scalar(&vec![1u64; 100], 8, 8).is_err());
    }

    #[test]
    fn word_parallel_pack_unpack_match_scalar_reference() {
        for slot_bits in [1u32, 2, 3, 5, 7, 8, 11, 12, 13, 16, 20, 32] {
            let mask = width_mask(slot_bits);
            let row_bytes = 64;
            let capacity = slots_per_row(row_bytes, slot_bits);
            let vals: Vec<u64> = (0..capacity as u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let word = pack_slots(&vals, slot_bits, row_bytes).unwrap();
            let scalar = pack_slots_scalar(&vals, slot_bits, row_bytes).unwrap();
            assert_eq!(word, scalar, "pack w={slot_bits}");
            assert_eq!(
                unpack_slots(&word, slot_bits, capacity),
                unpack_slots_scalar(&word, slot_bits, capacity),
                "unpack w={slot_bits}"
            );
        }
    }

    #[test]
    fn pack_unpack_into_reuse_buffers() {
        let mut row = vec![0xEEu8; 3];
        pack_slots_into(&[0xA, 0xB], 4, 1, &mut row).unwrap();
        assert_eq!(row, vec![0xAB]);
        let mut out = vec![99u64; 5];
        unpack_slots_into(&row, 4, 2, &mut out);
        assert_eq!(out, vec![0xA, 0xB]);
    }

    #[test]
    fn slots_per_row_math() {
        assert_eq!(slots_per_row(8192, 8), 8192);
        assert_eq!(slots_per_row(8192, 4), 16384);
        assert_eq!(slots_per_row(8192, 16), 4096);
        assert_eq!(slots_per_row(8192, 12), 5461);
    }

    #[test]
    fn catalog_add_and_mul() {
        let add = catalog::add(4).unwrap();
        assert_eq!(add.element((9 << 4) | 7).unwrap(), 16);
        assert_eq!(add.len(), 256);
        let mul = catalog::mul(4).unwrap();
        assert_eq!(mul.element((9 << 4) | 7).unwrap(), 63);
    }

    #[test]
    fn catalog_popcount() {
        let bc4 = catalog::popcount(4).unwrap();
        assert_eq!(bc4.len(), 16);
        assert_eq!(bc4.element(0b1111).unwrap(), 4);
        let bc8 = catalog::popcount(8).unwrap();
        assert_eq!(bc8.len(), 256);
        assert_eq!(bc8.element(0xFF).unwrap(), 8);
    }

    #[test]
    fn catalog_bitwise() {
        let and = catalog::and(4).unwrap();
        assert_eq!(and.element((0b1100 << 4) | 0b1010).unwrap(), 0b1000);
        let or = catalog::or(4).unwrap();
        assert_eq!(or.element((0b1100 << 4) | 0b1010).unwrap(), 0b1110);
        let xor = catalog::xor(4).unwrap();
        assert_eq!(xor.element((0b1100 << 4) | 0b1010).unwrap(), 0b0110);
        let xnor = catalog::xnor(4).unwrap();
        assert_eq!(xnor.element((0b1100 << 4) | 0b1010).unwrap(), 0b1001);
        let not = catalog::not(8).unwrap();
        assert_eq!(not.element(0xF0).unwrap(), 0x0F);
    }

    #[test]
    fn catalog_binarize() {
        let lut = catalog::binarize(128).unwrap();
        assert_eq!(lut.element(127).unwrap(), 0);
        assert_eq!(lut.element(128).unwrap(), 255);
        assert_eq!(lut.element(255).unwrap(), 255);
    }

    #[test]
    fn catalog_exp8_is_saturating_and_monotone() {
        let lut = catalog::exp8().unwrap();
        let e = lut.elements();
        assert!(e.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*e.last().unwrap(), 255);
    }

    #[test]
    fn truncated_luts_cover_arbitrary_lengths() {
        let lut = Lut::from_fn_len("sq640", 640, 32, |x| x * x).unwrap();
        assert_eq!(lut.len(), 640);
        assert_eq!(lut.input_bits(), 10, "ceil(log2 640)");
        assert_eq!(lut.element(639).unwrap(), 639 * 639);
        assert!(matches!(
            lut.element(640),
            Err(PlutoError::IndexOutOfRange { value: 640, .. })
        ));
        let t = Lut::from_table_len("t", 4, vec![1, 2, 3]).unwrap();
        assert_eq!(t.input_bits(), 2);
        assert_eq!(t.len(), 3);
        // Exact powers of two derive the same width as the strict form.
        let p = Lut::from_fn_len("p", 16, 5, |x| x).unwrap();
        assert_eq!(p.input_bits(), 4);
        // Degenerate and invalid shapes rejected.
        assert!(Lut::from_table_len("bad", 4, vec![7]).is_err());
        assert!(Lut::from_table_len("bad", 2, vec![1, 9]).is_err());
        assert!(Lut::from_fn_len("bad", 3, 1, |x| x).is_err());
    }

    #[test]
    fn min_slot_bits_floors_the_layout_width() {
        let lut = Lut::from_table("t", 2, 4, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(lut.slot_bits(), 4);
        let wide = lut.clone().with_min_slot_bits(12);
        assert_eq!(wide.slot_bits(), 12);
        assert_eq!(wide.output_bits(), 4, "logical width unchanged");
        // A floor below the derived width is inert.
        assert_eq!(lut.clone().with_min_slot_bits(2).slot_bits(), 4);
        // The floor is part of layout identity.
        assert_ne!(lut, wide);
        // Packed rows follow the floored width: 12-bit slots, MSB-first.
        let row = pack_slots(&[1, 2], wide.slot_bits(), 3).unwrap();
        assert_eq!(row, vec![0x00, 0x10, 0x02]);
    }

    #[test]
    fn slot_width_bounds_inputs_requires_full_table_and_tight_slots() {
        // 12→8: slots are 12-bit, table is full — every slot value is a
        // valid index.
        let gamma = Lut::from_fn("g12", 12, 8, |x| x & 0xFF).unwrap();
        assert!(gamma.slot_width_bounds_inputs());
        // 8→16: 16-bit slots can hold indices ≥ 256.
        let wide = Lut::from_fn("w8", 8, 16, |x| x).unwrap();
        assert!(!wide.slot_width_bounds_inputs());
        // Truncated table: slot values in the hole are invalid.
        let odd = Lut::from_fn_len("odd", 650, 8, |x| x & 0xFF).unwrap();
        assert!(!odd.slot_width_bounds_inputs());
        // A raised slot floor reopens the range.
        let floored = gamma.clone().with_min_slot_bits(14);
        assert!(!floored.slot_width_bounds_inputs());
    }

    #[test]
    fn luts_with_same_contents_compare_equal() {
        let a = catalog::add(4).unwrap();
        let b = catalog::add(4).unwrap();
        assert_eq!(a, b);
        let c = catalog::mul(4).unwrap();
        assert_ne!(a, c);
    }
}
