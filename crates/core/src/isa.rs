//! The pLUTo ISA (paper §6.1, Table 2).
//!
//! Instructions operate on special-purpose *pLUTo registers*: row registers
//! (`$prgN`) identify contiguously allocated DRAM rows used as query inputs
//! and outputs; subarray registers (`$lut_rgN`) identify LUT-holding
//! pLUTo-enabled subarrays. The module provides the instruction set, a
//! paper-style textual assembly [`fmt::Display`], and a parser for
//! round-trip/golden tests.

use crate::error::PlutoError;
use std::fmt;

/// A pLUTo Row Register (`$prgN`): names a run of allocated DRAM rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowReg(pub u16);

/// A pLUTo Subarray Register (`$lut_rgN`): names a LUT-holding subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubarrayReg(pub u16);

impl fmt::Display for RowReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$prg{}", self.0)
    }
}

impl fmt::Display for SubarrayReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$lut_rg{}", self.0)
    }
}

/// Shift direction for the DRISA-backed shift instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// Toward the most-significant end (row bit 0).
    Left,
    /// Toward the least-significant end.
    Right,
}

/// One pLUTo ISA instruction (paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// `pluto_row_alloc dst, size, bitwidth` — allocate `size` elements of
    /// `bitwidth` bits as whole DRAM rows, bound to `dst`.
    RowAlloc {
        /// Destination row register.
        dst: RowReg,
        /// Number of elements.
        size: u32,
        /// Element bit width (`log2(lut_size)` for query inputs).
        bitwidth: u32,
    },
    /// `pluto_subarray_alloc dst, num_rows, lut` — allocate a pLUTo-enabled
    /// subarray holding the named LUT.
    SubarrayAlloc {
        /// Destination subarray register.
        dst: SubarrayReg,
        /// Number of rows (= LUT elements) reserved.
        num_rows: u32,
        /// Name of the LUT in the controller's registry (the paper's
        /// `lut_file` memory location).
        lut_name: String,
    },
    /// `pluto_op dst, src, lut_subarr, lut_size, lut_bitw` — the pLUTo Row
    /// Sweep / bulk LUT query.
    Op {
        /// Output row register.
        dst: RowReg,
        /// Input row register.
        src: RowReg,
        /// LUT-holding subarray register.
        lut: SubarrayReg,
        /// Number of LUT elements (rows swept); must be a power of two.
        lut_size: u32,
        /// Slot width of the query (≥ log2(lut_size); inputs zero-padded).
        lut_bitw: u32,
    },
    /// `pluto_not dst, src` — in-DRAM bitwise NOT (Ambit \[84\]).
    Not {
        /// Output row register.
        dst: RowReg,
        /// Input row register.
        src: RowReg,
    },
    /// `pluto_and dst, src1, src2` — in-DRAM bitwise AND (Ambit \[84\]).
    And {
        /// Output row register.
        dst: RowReg,
        /// First input.
        src1: RowReg,
        /// Second input.
        src2: RowReg,
    },
    /// `pluto_or dst, src1, src2` — in-DRAM bitwise OR (Ambit \[84\]).
    Or {
        /// Output row register.
        dst: RowReg,
        /// First input.
        src1: RowReg,
        /// Second input.
        src2: RowReg,
    },
    /// `pluto_bit_shift_{l,r} src, #N` — DRISA bit shift in place \[79\].
    BitShift {
        /// Shift direction.
        dir: ShiftDir,
        /// Register shifted in place.
        reg: RowReg,
        /// Shift amount in bits.
        amount: u32,
    },
    /// `pluto_byte_shift_{l,r} src, #N` — DRISA byte shift in place \[79\].
    ByteShift {
        /// Shift direction.
        dir: ShiftDir,
        /// Register shifted in place.
        reg: RowReg,
        /// Shift amount in bytes.
        amount: u32,
    },
    /// `pluto_move dst, src` — in-DRAM row copy (RowClone / LISA \[108\]).
    Move {
        /// Destination row register.
        dst: RowReg,
        /// Source row register.
        src: RowReg,
    },
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::RowAlloc {
                dst,
                size,
                bitwidth,
            } => {
                write!(f, "pluto_row_alloc {dst}, {size}, {bitwidth}")
            }
            Instruction::SubarrayAlloc {
                dst,
                num_rows,
                lut_name,
            } => write!(f, "pluto_subarray_alloc {dst}, {num_rows}, \"{lut_name}\""),
            Instruction::Op {
                dst,
                src,
                lut,
                lut_size,
                lut_bitw,
            } => write!(f, "pluto_op {dst}, {src}, {lut}, {lut_size}, {lut_bitw}"),
            Instruction::Not { dst, src } => write!(f, "pluto_not {dst}, {src}"),
            Instruction::And { dst, src1, src2 } => write!(f, "pluto_and {dst}, {src1}, {src2}"),
            Instruction::Or { dst, src1, src2 } => write!(f, "pluto_or {dst}, {src1}, {src2}"),
            Instruction::BitShift { dir, reg, amount } => match dir {
                ShiftDir::Left => write!(f, "pluto_bit_shift_l {reg}, {amount}"),
                ShiftDir::Right => write!(f, "pluto_bit_shift_r {reg}, {amount}"),
            },
            Instruction::ByteShift { dir, reg, amount } => match dir {
                ShiftDir::Left => write!(f, "pluto_byte_shift_l {reg}, {amount}"),
                ShiftDir::Right => write!(f, "pluto_byte_shift_r {reg}, {amount}"),
            },
            Instruction::Move { dst, src } => write!(f, "pluto_move {dst}, {src}"),
        }
    }
}

/// A pLUTo ISA program plus its I/O binding metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The instruction sequence.
    pub instructions: Vec<Instruction>,
    /// Row registers the caller must fill with input data, in call order,
    /// with their element bit widths.
    pub inputs: Vec<(RowReg, u32)>,
    /// Row register holding the result, with its element bit width.
    pub output: Option<(RowReg, u32)>,
    /// Slot width shared by all rows of this program (the compiler's
    /// global alignment choice, §6.3).
    pub slot_bits: u32,
}

impl Program {
    /// Renders the program as paper-style assembly text.
    pub fn to_assembly(&self) -> String {
        let mut s = String::new();
        for inst in &self.instructions {
            s.push_str(&inst.to_string());
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_assembly())
    }
}

/// Parses one assembly line into an [`Instruction`].
///
/// # Errors
/// Fails with [`PlutoError::InvalidProgram`] on unknown mnemonics or
/// malformed operands.
pub fn parse_instruction(line: &str) -> Result<Instruction, PlutoError> {
    let line = line.trim();
    let (mnemonic, rest) = line
        .split_once(char::is_whitespace)
        .ok_or_else(|| bad(line, "missing operands"))?;
    let ops: Vec<&str> = rest.split(',').map(str::trim).collect();
    let row = |s: &str| -> Result<RowReg, PlutoError> {
        s.strip_prefix("$prg")
            .and_then(|n| n.parse().ok())
            .map(RowReg)
            .ok_or_else(|| bad(line, "expected a $prgN register"))
    };
    let sub = |s: &str| -> Result<SubarrayReg, PlutoError> {
        s.strip_prefix("$lut_rg")
            .and_then(|n| n.parse().ok())
            .map(SubarrayReg)
            .ok_or_else(|| bad(line, "expected a $lut_rgN register"))
    };
    let num = |s: &str| -> Result<u32, PlutoError> {
        s.parse().map_err(|_| bad(line, "expected a number"))
    };
    let arity = |n: usize| -> Result<(), PlutoError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(bad(line, "wrong operand count"))
        }
    };
    match mnemonic {
        "pluto_row_alloc" => {
            arity(3)?;
            Ok(Instruction::RowAlloc {
                dst: row(ops[0])?,
                size: num(ops[1])?,
                bitwidth: num(ops[2])?,
            })
        }
        "pluto_subarray_alloc" => {
            arity(3)?;
            Ok(Instruction::SubarrayAlloc {
                dst: sub(ops[0])?,
                num_rows: num(ops[1])?,
                lut_name: ops[2].trim_matches('"').to_string(),
            })
        }
        "pluto_op" => {
            arity(5)?;
            Ok(Instruction::Op {
                dst: row(ops[0])?,
                src: row(ops[1])?,
                lut: sub(ops[2])?,
                lut_size: num(ops[3])?,
                lut_bitw: num(ops[4])?,
            })
        }
        "pluto_not" => {
            arity(2)?;
            Ok(Instruction::Not {
                dst: row(ops[0])?,
                src: row(ops[1])?,
            })
        }
        "pluto_and" | "pluto_or" => {
            arity(3)?;
            let (dst, src1, src2) = (row(ops[0])?, row(ops[1])?, row(ops[2])?);
            Ok(if mnemonic == "pluto_and" {
                Instruction::And { dst, src1, src2 }
            } else {
                Instruction::Or { dst, src1, src2 }
            })
        }
        "pluto_bit_shift_l" | "pluto_bit_shift_r" => {
            arity(2)?;
            Ok(Instruction::BitShift {
                dir: if mnemonic.ends_with('l') {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                },
                reg: row(ops[0])?,
                amount: num(ops[1])?,
            })
        }
        "pluto_byte_shift_l" | "pluto_byte_shift_r" => {
            arity(2)?;
            Ok(Instruction::ByteShift {
                dir: if mnemonic.ends_with('l') {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                },
                reg: row(ops[0])?,
                amount: num(ops[1])?,
            })
        }
        "pluto_move" => {
            arity(2)?;
            Ok(Instruction::Move {
                dst: row(ops[0])?,
                src: row(ops[1])?,
            })
        }
        other => Err(bad(line, &format!("unknown mnemonic `{other}`"))),
    }
}

/// Parses a whole assembly listing (one instruction per line; `#` comments
/// and blank lines are skipped).
///
/// # Errors
/// Fails on the first malformed line.
pub fn parse_program(text: &str) -> Result<Vec<Instruction>, PlutoError> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(parse_instruction)
        .collect()
}

fn bad(line: &str, why: &str) -> PlutoError {
    PlutoError::InvalidProgram {
        reason: format!("{why}: `{line}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<Instruction> {
        vec![
            Instruction::RowAlloc {
                dst: RowReg(0),
                size: 4096,
                bitwidth: 2,
            },
            Instruction::SubarrayAlloc {
                dst: SubarrayReg(0),
                num_rows: 256,
                lut_name: "mul2_lut_file.dat".into(),
            },
            Instruction::Op {
                dst: RowReg(3),
                src: RowReg(5),
                lut: SubarrayReg(0),
                lut_size: 256,
                lut_bitw: 4,
            },
            Instruction::Not {
                dst: RowReg(1),
                src: RowReg(0),
            },
            Instruction::And {
                dst: RowReg(5),
                src1: RowReg(0),
                src2: RowReg(1),
            },
            Instruction::Or {
                dst: RowReg(5),
                src1: RowReg(3),
                src2: RowReg(2),
            },
            Instruction::BitShift {
                dir: ShiftDir::Left,
                reg: RowReg(0),
                amount: 4,
            },
            Instruction::BitShift {
                dir: ShiftDir::Right,
                reg: RowReg(0),
                amount: 1,
            },
            Instruction::ByteShift {
                dir: ShiftDir::Left,
                reg: RowReg(2),
                amount: 8,
            },
            Instruction::Move {
                dst: RowReg(9),
                src: RowReg(8),
            },
        ]
    }

    #[test]
    fn assembly_roundtrip_every_instruction() {
        for inst in all_instructions() {
            let text = inst.to_string();
            let parsed = parse_instruction(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, inst, "{text}");
        }
    }

    #[test]
    fn renders_paper_style_assembly() {
        let i = Instruction::Op {
            dst: RowReg(3),
            src: RowReg(5),
            lut: SubarrayReg(0),
            lut_size: 256,
            lut_bitw: 4,
        };
        assert_eq!(i.to_string(), "pluto_op $prg3, $prg5, $lut_rg0, 256, 4");
    }

    #[test]
    fn parses_figure5_listing() {
        // Condensed from the paper's Figure 5c.
        let text = r#"
            pluto_row_alloc $prg0, 4096, 2   # Allocate A
            pluto_row_alloc $prg1, 4096, 2   # Allocate B
            pluto_subarray_alloc $lut_rg0, 16, "mul2_lut_file.dat"
            pluto_row_alloc $prg5, 4096, 8
            pluto_bit_shift_l $prg0, 4       # Shift A 4 bits to the left
            pluto_or $prg5, $prg0, $prg1     # $prg5 <- A | B
            pluto_op $prg3, $prg5, $lut_rg0, 16, 4
        "#;
        let prog = parse_program(text).unwrap();
        assert_eq!(prog.len(), 7);
        assert!(matches!(prog[4], Instruction::BitShift { amount: 4, .. }));
        assert!(matches!(
            prog.last(),
            Some(Instruction::Op { lut_size: 16, .. })
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_instruction("pluto_frobnicate $prg0, 1").is_err());
        assert!(parse_instruction("pluto_move $prg0").is_err());
        assert!(parse_instruction("pluto_move $lut_rg0, $prg1").is_err());
        assert!(parse_instruction("pluto_op $prg0, $prg1, $lut_rg0, x, 4").is_err());
        assert!(parse_instruction("pluto_move").is_err());
    }

    #[test]
    fn program_display_joins_lines() {
        let p = Program {
            instructions: all_instructions(),
            ..Program::default()
        };
        let text = p.to_string();
        assert_eq!(text.lines().count(), all_instructions().len());
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(reparsed, all_instructions());
    }

    #[test]
    fn registers_display() {
        assert_eq!(RowReg(7).to_string(), "$prg7");
        assert_eq!(SubarrayReg(1).to_string(), "$lut_rg1");
    }
}
