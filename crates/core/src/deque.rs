//! Per-worker work-stealing deques — the scheduling substrate shared by
//! the batch [`crate::cluster::Cluster`] and the streaming
//! [`crate::serve::Server`] (`DESIGN.md` §9).
//!
//! The PR 3 executor used one shared `Mutex<VecDeque>` job queue: fine
//! for a figure sweep's handful of coarse jobs, but a serving front-end
//! coalesces traffic into *affinity batches* that should land on the
//! worker whose session/LUT pools are already hot — and a single FIFO
//! cannot express "home worker first, help elsewhere when idle". This
//! module replaces it with the classic work-stealing shape:
//!
//! * one deque (*lane*) per worker; producers [`StealDeques::push`] onto
//!   a chosen home lane,
//! * the owner consumes its own lane front-first (arrival order),
//! * an idle worker *steals* from the **back** of another lane — the item
//!   that would otherwise wait longest behind the victim's in-flight
//!   work, which is exactly the small latency-sensitive query stuck
//!   behind a large sweep.
//!
//! The implementation is deliberately lock-per-lane rather than a
//! lock-free Chase–Lev deque: the workspace forbids `unsafe`, items are
//! coarse (whole shard jobs / serve batches, milliseconds of work), and
//! the contract that matters here is *scheduling behavior* (steal
//! accounting, wakeups, graceful shutdown), not nanosecond pop latency.
//! Locks recover from poisoning — a panicking worker must degrade the
//! pool gracefully, never wedge it (see `PlutoError::WorkerLost`).
//!
//! Scheduling never affects results: every consumer of this module
//! executes items on per-run-reset machines, so outputs and
//! `CostReport`s are bit-identical regardless of which lane ran what
//! (asserted by `tests/serve.rs` and `tests/cluster.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks tolerating poison: a worker that panicked while holding a lane
/// briefly leaves the deque in a consistent state (`VecDeque` ops don't
/// tear), so recovering the guard is always safe and keeps the rest of
/// the pool serving.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Outcome of one blocking pop.
#[derive(Debug)]
pub(crate) enum Pop<T> {
    /// An item was obtained; `stolen` is true when it came from another
    /// worker's lane.
    Item {
        /// The dequeued work item.
        item: T,
        /// Whether the item was stolen from a non-home lane (consumed by
        /// the scheduling tests; production callers read the aggregate
        /// [`StealDeques::steal_count`] instead).
        #[allow(dead_code)]
        stolen: bool,
    },
    /// The deque set was closed; the worker should exit.
    Closed,
}

/// Wakeup/shutdown state shared by all lanes. `queued` counts items
/// published-or-about-to-be-published: producers increment *before*
/// pushing and consumers decrement *after* popping, so a positive count
/// with empty lanes only ever lasts for the instant between a producer's
/// increment and its push — a waiter re-scans instead of sleeping through
/// it, and can never spin forever on a phantom item.
#[derive(Debug)]
struct Gate {
    queued: usize,
    open: bool,
}

/// A set of per-worker deques with steal semantics, blocking consumers,
/// and abortable shutdown. See the [module docs](self).
#[derive(Debug)]
pub(crate) struct StealDeques<T> {
    lanes: Vec<Mutex<VecDeque<T>>>,
    gate: Mutex<Gate>,
    available: Condvar,
    steals: AtomicU64,
}

impl<T> StealDeques<T> {
    /// A deque set with `lanes` lanes (clamped to at least one).
    pub(crate) fn new(lanes: usize) -> Self {
        StealDeques {
            lanes: (0..lanes.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            gate: Mutex::new(Gate {
                queued: 0,
                open: true,
            }),
            available: Condvar::new(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of lanes (== workers).
    pub(crate) fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Items stolen across lanes since construction.
    pub(crate) fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Items currently queued across all lanes.
    #[cfg(test)]
    pub(crate) fn queued(&self) -> usize {
        lock_recover(&self.gate).queued
    }

    /// Publishes `item` onto `lane`'s deque (wrapping out-of-range lanes)
    /// and wakes waiting workers. Non-blocking.
    pub(crate) fn push(&self, lane: usize, item: T) {
        lock_recover(&self.gate).queued += 1;
        lock_recover(&self.lanes[lane % self.lanes.len()]).push_back(item);
        self.available.notify_all();
    }

    /// Blocking pop for worker `lane`: its own lane front-first, then a
    /// steal sweep over the other lanes (back-first, round-robin from
    /// `lane + 1`), then sleep until work arrives or the set is closed.
    pub(crate) fn pop(&self, lane: usize) -> Pop<T> {
        loop {
            if let Some(item) = lock_recover(&self.lanes[lane]).pop_front() {
                self.finish_take();
                return Pop::Item {
                    item,
                    stolen: false,
                };
            }
            for offset in 1..self.lanes.len() {
                let victim = (lane + offset) % self.lanes.len();
                if let Some(item) = lock_recover(&self.lanes[victim]).pop_back() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    self.finish_take();
                    return Pop::Item { item, stolen: true };
                }
            }
            let gate = lock_recover(&self.gate);
            if !gate.open {
                return Pop::Closed;
            }
            if gate.queued > 0 {
                // A producer won the race between our scan and this
                // lock (or is between its increment and its push) —
                // re-scan rather than sleep through the wakeup.
                continue;
            }
            let _unused = self
                .available
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish_take(&self) {
        let mut gate = lock_recover(&self.gate);
        gate.queued = gate.queued.saturating_sub(1);
    }

    /// Closes the set: queued items are discarded and every current or
    /// future [`StealDeques::pop`] returns [`Pop::Closed`]. Callers that
    /// need graceful draining wait for completions *before* closing (the
    /// serve path's `drain`).
    pub(crate) fn close(&self) {
        let discarded: usize = self
            .lanes
            .iter()
            .map(|lane| {
                let mut q = lock_recover(lane);
                let n = q.len();
                q.clear();
                n
            })
            .sum();
        let mut gate = lock_recover(&self.gate);
        gate.open = false;
        gate.queued = gate.queued.saturating_sub(discarded);
        drop(gate);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn own_lane_is_fifo_and_steals_come_from_the_back() {
        let d: StealDeques<u32> = StealDeques::new(2);
        d.push(0, 1);
        d.push(0, 2);
        d.push(0, 3);
        // Owner consumes arrival order.
        match d.pop(0) {
            Pop::Item { item, stolen } => {
                assert_eq!(item, 1);
                assert!(!stolen);
            }
            Pop::Closed => panic!("closed"),
        }
        // A thief takes the newest item — the one that would wait longest.
        match d.pop(1) {
            Pop::Item { item, stolen } => {
                assert_eq!(item, 3);
                assert!(stolen);
            }
            Pop::Closed => panic!("closed"),
        }
        assert_eq!(d.steal_count(), 1);
        assert_eq!(d.queued(), 1);
    }

    #[test]
    fn close_discards_queued_items_and_wakes_sleepers() {
        let d: Arc<StealDeques<u32>> = Arc::new(StealDeques::new(1));
        let sleeper = {
            let d = Arc::clone(&d);
            thread::spawn(move || matches!(d.pop(0), Pop::Closed))
        };
        // Give the sleeper a moment to block, then close underneath it.
        thread::sleep(std::time::Duration::from_millis(10));
        d.push(0, 7);
        d.push(0, 8);
        d.close();
        // The items pushed before close may or may not have been taken;
        // after close, pops always report Closed and the discarded items
        // no longer count as queued.
        assert!(matches!(d.pop(0), Pop::Closed));
        let _ = sleeper.join().unwrap();
        assert!(d.queued() <= 1);
    }

    #[test]
    fn concurrent_producers_and_stealing_consumers_drain_exactly() {
        let d: Arc<StealDeques<u64>> = Arc::new(StealDeques::new(4));
        const N: u64 = 400;
        let consumers: Vec<_> = (0..4)
            .map(|lane| {
                let d = Arc::clone(&d);
                thread::spawn(move || {
                    let mut sum = 0u64;
                    loop {
                        match d.pop(lane) {
                            Pop::Item { item, .. } => sum += item,
                            Pop::Closed => return sum,
                        }
                    }
                })
            })
            .collect();
        for i in 0..N {
            d.push((i % 4) as usize, i);
        }
        // Wait for the queue to drain, then close.
        while d.queued() > 0 {
            thread::yield_now();
        }
        d.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, N * (N - 1) / 2, "every item consumed exactly once");
    }
}
