//! Compiled query plans (`DESIGN.md` §10): a process-wide cache of
//! [`CostTape`]s memoizing the command-stream cost of a query.
//!
//! The PR 4 word-parallel split made commands authoritative for *cost* and
//! words authoritative for *data*. A query's command stream — and therefore
//! its cost delta — is a pure function of the effective configuration,
//! design, LUT geometry, placement distances, and residency state; the data
//! path is a single gather. So the cost side can be *compiled*: the first
//! execution under a `PlanKey` records a [`CostTape`] while running the
//! ordinary issuing path, and every later execution under the same key
//! performs only the gather + pack and applies the tape via
//! [`Engine::apply_replayed`], skipping per-command simulation entirely.
//!
//! ## Legality
//!
//! A tape is context-independent only when nothing outside the key can
//! shift the delta. The executors therefore gate replay (and capture) on:
//!
//! - the live tFAW-window *signature* at replay matching the one recorded
//!   at capture ([`CostTape::replayable_from`]) — a warm window throttles
//!   ACTs by an amount that depends on the ages of its entries;
//! - command tracing being off ([`Engine::trace_enabled`]) — a replayed
//!   delta has no per-command stream to append to the trace;
//! - the store being resident, or the design reloading per query — a
//!   stale BSA/GMC store needs a *functional* reload the replay would skip.
//!
//! Any failed gate falls back to full issuance (counted in
//! [`PlanStats::fallbacks`]) and the issuing path stays available as the
//! differential oracle (`QueryExecutor::set_use_plans(false)`), mirroring
//! `execute_scalar_reference` / `query_serial_reference`.
//!
//! The cache mirrors the packed-row cache in [`crate::store`]: one
//! process-wide map under a mutex, cleared wholesale past a deterministic
//! cap. Unlike packed rows, tapes need no identity witness — the cost of a
//! sweep is independent of the element *values*, so two same-shaped LUTs
//! sharing a key is correct, not a collision.

use crate::design::DesignKind;
use crate::store::LutStore;
use pluto_dram::{CostTape, DramConfig, Engine};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Counters of the process-wide plan cache (see [`plan_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Queries whose cost was applied from a memoized tape.
    pub hits: u64,
    /// Queries that recorded a new tape while issuing.
    pub misses: u64,
    /// Queries that ran the issuing path because a legality gate failed
    /// (trace on, warm tFAW window, stale store, or plans disabled on a
    /// differential-oracle executor).
    pub fallbacks: u64,
    /// Tapes currently cached.
    pub entries: usize,
}

/// Which executor shape a tape belongs to. A whole-query tape carries
/// three phase marks (reload/setup/sweep boundaries, for the
/// `QueryCost` breakdown); a partitioned per-lane tape carries none —
/// the shapes must never alias even when every other key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PlanShape {
    /// One full [`crate::query::QueryExecutor`] query.
    Query,
    /// One segment lane of a partitioned query (`crate::partition`).
    Lane,
}

/// Everything that can shift a query's command-stream cost delta. Two
/// executions with equal keys issue identical command streams from any
/// inert start state, so one recorded tape serves both.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    shape: PlanShape,
    /// Effective DRAM geometry (row width bounds slot capacity; kind
    /// selects the default models).
    cfg: DramConfig,
    /// Timing fingerprint: the eight `Picos` parameters plus the applied
    /// tFAW scale's bits, so `with_models` engines (SALP/tFAW sweeps)
    /// never share tapes with the defaults.
    timing: [u64; 9],
    /// Energy fingerprint: the seven model parameters' `f64` bits.
    energy: [u64; 7],
    /// Timing backend the tape was recorded under — a tape is never
    /// replayed across backends (`DESIGN.md` §11), so the key must
    /// separate them even though serial single-bank streams agree.
    backend: pluto_dram::TimingBackend,
    design: DesignKind,
    /// LUT identity by *shape*, not contents — cost never reads element
    /// values.
    lut_name: String,
    input_bits: u32,
    output_bits: u32,
    slot_bits: u32,
    lut_len: usize,
    /// Queried slot count (cost-neutral today, but part of the declared
    /// plan identity so future slot-dependent commands stay sound).
    num_slots: usize,
    /// LISA distance master ↔ pLUTo subarray (reload cost per row).
    reload_hops: u16,
    /// LISA distance pLUTo subarray ↔ destination (copy-out cost).
    out_hops: u16,
    /// Destination sharing the source subarray reorders the closing
    /// precharge, which reorders the f64 energy additions.
    dest_is_source: bool,
    /// Residency at query entry (a stale store reloads before sweeping).
    loaded: bool,
}

impl PlanKey {
    /// Builds the key for a query about to run on `engine` against
    /// `store`. `out_hops` and `dest_is_source` come from the caller's
    /// placement; `num_slots` is 0 for lane-shaped plans (a lane's cost
    /// is slot-independent by construction).
    pub(crate) fn new(
        shape: PlanShape,
        engine: &Engine,
        design: DesignKind,
        store: &LutStore,
        out_hops: u16,
        dest_is_source: bool,
        num_slots: usize,
    ) -> PlanKey {
        let t = engine.timing();
        let e = engine.energy_model();
        let lut = store.lut();
        PlanKey {
            shape,
            cfg: engine.config().clone(),
            timing: [
                t.t_rcd.as_ps(),
                t.t_rp.as_ps(),
                t.t_ras.as_ps(),
                t.t_faw.as_ps(),
                t.t_cl.as_ps(),
                t.t_ccd.as_ps(),
                t.t_burst.as_ps(),
                t.t_lisa_hop.as_ps(),
                t.t_faw_scale_applied.to_bits(),
            ],
            energy: [
                e.e_act.as_pj().to_bits(),
                e.e_pre.as_pj().to_bits(),
                e.e_rd_burst.as_pj().to_bits(),
                e.e_wr_burst.as_pj().to_bits(),
                e.e_lisa_hop.as_pj().to_bits(),
                e.e_charge_share.as_pj().to_bits(),
                e.background_watts.to_bits(),
            ],
            backend: engine.timing_backend(),
            design,
            lut_name: lut.name().to_string(),
            input_bits: lut.input_bits(),
            output_bits: lut.output_bits(),
            slot_bits: lut.slot_bits(),
            lut_len: lut.len(),
            num_slots,
            reload_hops: store.master().0.abs_diff(store.subarray().0),
            out_hops,
            dest_is_source,
            loaded: store.is_loaded(),
        }
    }
}

#[derive(Debug, Default)]
struct PlanCache {
    entries: HashMap<PlanKey, Arc<CostTape>>,
    hits: u64,
    misses: u64,
    fallbacks: u64,
}

/// Entry count beyond which the cache resets (same deterministic
/// anti-churn guard as the packed-row cache; real traffic uses a handful
/// of plan shapes).
const PLAN_CACHE_CAP: usize = 512;

fn plan_cache() -> &'static Mutex<PlanCache> {
    static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(PlanCache::default()))
}

/// Looks up a tape, bumping the hit/miss counters.
pub(crate) fn lookup(key: &PlanKey) -> Option<Arc<CostTape>> {
    let mut cache = plan_cache().lock().expect("plan cache poisoned");
    let hit = cache.entries.get(key).map(Arc::clone);
    match hit {
        Some(_) => cache.hits += 1,
        None => cache.misses += 1,
    }
    hit
}

/// Stores a freshly recorded tape.
pub(crate) fn insert(key: PlanKey, tape: CostTape) {
    let mut cache = plan_cache().lock().expect("plan cache poisoned");
    if cache.entries.len() >= PLAN_CACHE_CAP {
        cache.entries.clear();
    }
    cache.entries.insert(key, Arc::new(tape));
}

/// Counts a query that ran the issuing path because a legality gate
/// failed.
pub(crate) fn note_fallback() {
    plan_cache().lock().expect("plan cache poisoned").fallbacks += 1;
}

/// Hit/miss/fallback counters of the plan cache (process-wide and
/// monotonic, like [`crate::store::packed_cache_stats`]).
pub fn plan_stats() -> PlanStats {
    let cache = plan_cache().lock().expect("plan cache poisoned");
    PlanStats {
        hits: cache.hits,
        misses: cache.misses,
        fallbacks: cache.fallbacks,
        entries: cache.entries.len(),
    }
}
