//! The pLUTo Controller (paper §6.4).
//!
//! A modified memory controller that executes pLUTo ISA instructions: it
//! holds 1) an internal ROM mapping each instruction to DRAM command
//! sequences (realized here as the per-instruction `exec_*` methods driving
//! the [`Engine`]), 2) a register file of pLUTo row/subarray registers, and
//! 3) an in-memory allocation table translating registers to physical rows.
//!
//! ## Physical layout
//!
//! All row registers of a program are allocated in one *data subarray*
//! (SA 0 of bank 0) so that Ambit bitwise operations — which require their
//! operands in the same subarray — work directly. The top rows of the data
//! subarray are reserved for the Ambit compute region (T0–T2 scratch rows,
//! the all-zeros row C0 and all-ones row C1) and for GSA master LUT copies.
//! Each `pluto_subarray_alloc` claims the next pLUTo-enabled subarray
//! (SA 1, SA 2, …).

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::isa::{Instruction, Program, RowReg, ShiftDir, SubarrayReg};
use crate::lut::{pack_slots, slots_per_row, unpack_slots, Lut};
use crate::partition::PlutoStore;
use crate::query::QueryScratch;
use pluto_dram::{BankId, DramConfig, Engine, PicoJoules, Picos, RowId, RowLoc, SubarrayId};
use std::collections::HashMap;

/// Rows reserved at the top of the data subarray for Ambit operations.
#[derive(Debug, Clone, Copy)]
struct ComputeRows {
    t0: RowId,
    t1: RowId,
    t2: RowId,
    c0: RowId,
    c1: RowId,
}

/// Physical binding of one row register.
#[derive(Debug, Clone)]
struct RowBinding {
    rows: Vec<RowId>,
    /// Number of elements the register holds.
    size: u32,
    /// Declared element bit width (`bitwidth` operand of the alloc).
    bitwidth: u32,
}

/// Result of running a program: output values and resource usage.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The output register's element values.
    pub outputs: Vec<u64>,
    /// Simulated time the program took.
    pub elapsed: Picos,
    /// Dynamic DRAM energy the program consumed.
    pub energy: PicoJoules,
}

/// The pLUTo Controller: executes ISA programs on a simulated module.
#[derive(Debug)]
pub struct Controller {
    engine: Engine,
    design: DesignKind,
    lut_registry: HashMap<String, Lut>,
    row_regs: HashMap<RowReg, RowBinding>,
    sa_regs: HashMap<SubarrayReg, PlutoStore>,
    bank: BankId,
    data_subarray: SubarrayId,
    compute: ComputeRows,
    next_data_row: u16,
    /// Master copies are carved from just below the compute region,
    /// growing downward.
    high_cursor: u16,
    next_pluto_subarray: u16,
    slot_bits: u32,
    /// Segment-farming policy applied to partitioned stores as they are
    /// allocated (see [`crate::partition::FarmPolicy`]).
    farm: Option<crate::partition::FarmPolicy>,
    /// Query scratch buffers reused across `pluto_op` chunks (the op's
    /// output lives in DRAM; the unpacked output vector is never needed).
    scratch: QueryScratch,
}

impl Controller {
    /// Creates a controller for `design` over a fresh module of `cfg`.
    ///
    /// # Errors
    /// Fails if the geometry is too small for the compute region.
    pub fn new(cfg: DramConfig, design: DesignKind) -> Result<Self, PlutoError> {
        let rows = cfg.rows_per_subarray;
        if rows < 16 || cfg.subarrays_per_bank < 3 {
            return Err(PlutoError::AllocationFailed {
                reason: "geometry too small for controller layout".into(),
            });
        }
        let mut engine = Engine::new(cfg.clone());
        let compute = ComputeRows {
            t0: RowId(rows - 1),
            t1: RowId(rows - 2),
            t2: RowId(rows - 3),
            c0: RowId(rows - 4),
            c1: RowId(rows - 5),
        };
        let bank = BankId(0);
        let data_subarray = SubarrayId(0);
        // Initialize the Ambit control rows: C0 = zeros (default), C1 = ones.
        engine
            .poke_row(
                RowLoc {
                    bank,
                    subarray: data_subarray,
                    row: compute.c1,
                },
                &vec![0xFF; cfg.row_bytes],
            )
            .map_err(PlutoError::from)?;
        Ok(Controller {
            engine,
            design,
            lut_registry: HashMap::new(),
            row_regs: HashMap::new(),
            sa_regs: HashMap::new(),
            bank,
            data_subarray,
            compute,
            next_data_row: 0,
            high_cursor: rows - 5,
            next_pluto_subarray: 1,
            slot_bits: 8,
            farm: None,
            scratch: QueryScratch::new(),
        })
    }

    /// Registers a LUT under a name so `pluto_subarray_alloc` can find it
    /// (the paper's `lut_file` indirection).
    pub fn register_lut(&mut self, lut: Lut) {
        self.lut_registry.insert(lut.name().to_string(), lut);
    }

    /// The design the controller drives.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// Applies a segment-farming policy to every partitioned store this
    /// controller allocates from now on (and to those already allocated).
    /// See [`crate::partition::FarmPolicy`] for the determinism contract.
    pub fn set_segment_farming(&mut self, policy: Option<crate::partition::FarmPolicy>) {
        self.farm = policy;
        for store in self.sa_regs.values_mut() {
            store.set_farming(policy);
        }
    }

    /// Read access to the underlying engine (for cost/stats inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn binding(&self, reg: RowReg) -> Result<&RowBinding, PlutoError> {
        self.row_regs
            .get(&reg)
            .ok_or(PlutoError::UnallocatedRegister {
                name: reg.to_string(),
            })
    }

    fn data_loc(&self, row: RowId) -> RowLoc {
        RowLoc {
            bank: self.bank,
            subarray: self.data_subarray,
            row,
        }
    }

    /// Runs `program`, binding `inputs` to the program's declared input
    /// registers in order, and returns the declared output register's
    /// contents.
    ///
    /// # Errors
    /// Fails on malformed programs, unallocated registers, unknown LUTs, or
    /// any underlying DRAM error.
    pub fn run(&mut self, program: &Program, inputs: &[Vec<u64>]) -> Result<RunResult, PlutoError> {
        if inputs.len() != program.inputs.len() {
            return Err(PlutoError::InvalidProgram {
                reason: format!(
                    "{} input vectors supplied, program declares {}",
                    inputs.len(),
                    program.inputs.len()
                ),
            });
        }
        self.slot_bits = program.slot_bits.max(1);
        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();
        let mut pending: HashMap<RowReg, &Vec<u64>> = program
            .inputs
            .iter()
            .zip(inputs)
            .map(|((reg, _), data)| (*reg, data))
            .collect();

        for inst in &program.instructions {
            self.exec(inst)?;
            // Fill freshly allocated input registers with caller data.
            if let Instruction::RowAlloc { dst, .. } = inst {
                if let Some(data) = pending.remove(dst) {
                    self.fill_register(*dst, data)?;
                }
            }
        }
        if !pending.is_empty() {
            return Err(PlutoError::InvalidProgram {
                reason: "program never allocated one of its declared inputs".into(),
            });
        }

        let outputs = match program.output {
            Some((reg, _)) => self.read_register(reg)?,
            None => Vec::new(),
        };
        Ok(RunResult {
            outputs,
            elapsed: self.engine.elapsed() - clock0,
            energy: self.engine.command_energy() - energy0,
        })
    }

    /// Writes element values into an allocated register (zero-cost: models
    /// input data already resident in DRAM).
    ///
    /// # Errors
    /// Fails if the register is unallocated, the data overflows it, or a
    /// value exceeds the register's declared bit width.
    pub fn fill_register(&mut self, reg: RowReg, data: &[u64]) -> Result<(), PlutoError> {
        let binding = self.binding(reg)?.clone();
        if data.len() > binding.size as usize {
            return Err(PlutoError::LayoutMismatch {
                reason: format!(
                    "{} values exceed register capacity {}",
                    data.len(),
                    binding.size
                ),
            });
        }
        let mask = crate::lut::width_mask(binding.bitwidth);
        if let Some(&bad) = data.iter().find(|&&v| v & !mask != 0) {
            return Err(PlutoError::LayoutMismatch {
                reason: format!("value {bad} exceeds {reg}'s {}-bit width", binding.bitwidth),
            });
        }
        let per_row = slots_per_row(self.engine.config().row_bytes, self.slot_bits);
        for (chunk, &row) in data.chunks(per_row).zip(&binding.rows) {
            let packed = pack_slots(chunk, self.slot_bits, self.engine.config().row_bytes)?;
            self.engine.poke_row(self.data_loc(row), &packed)?;
        }
        Ok(())
    }

    /// Reads an allocated register's element values.
    ///
    /// # Errors
    /// Fails if the register is unallocated.
    pub fn read_register(&self, reg: RowReg) -> Result<Vec<u64>, PlutoError> {
        let binding = self.binding(reg)?;
        let per_row = slots_per_row(self.engine.config().row_bytes, self.slot_bits);
        let mut out = Vec::with_capacity(binding.size as usize);
        let mut remaining = binding.size as usize;
        for &row in &binding.rows {
            let take = remaining.min(per_row);
            let data = self.engine.peek_row(self.data_loc(row))?;
            out.extend(unpack_slots(&data, self.slot_bits, take));
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        Ok(out)
    }

    fn exec(&mut self, inst: &Instruction) -> Result<(), PlutoError> {
        match inst.clone() {
            Instruction::RowAlloc {
                dst,
                size,
                bitwidth,
            } => self.exec_row_alloc(dst, size, bitwidth),
            Instruction::SubarrayAlloc {
                dst,
                num_rows,
                lut_name,
            } => self.exec_subarray_alloc(dst, num_rows, &lut_name),
            Instruction::Op {
                dst,
                src,
                lut,
                lut_size,
                lut_bitw,
            } => self.exec_op(dst, src, lut, lut_size, lut_bitw),
            Instruction::Not { dst, src } => self.exec_not(dst, src),
            Instruction::And { dst, src1, src2 } => self.exec_tra(dst, src1, src2, false),
            Instruction::Or { dst, src1, src2 } => self.exec_tra(dst, src1, src2, true),
            Instruction::BitShift { dir, reg, amount } => self.exec_shift(reg, dir, amount),
            Instruction::ByteShift { dir, reg, amount } => self.exec_shift(reg, dir, amount * 8),
            Instruction::Move { dst, src } => self.exec_move(dst, src),
        }
    }

    fn exec_row_alloc(&mut self, dst: RowReg, size: u32, bitwidth: u32) -> Result<(), PlutoError> {
        let per_row = slots_per_row(self.engine.config().row_bytes, self.slot_bits);
        let rows_needed = (size as usize).div_ceil(per_row) as u16;
        if self.next_data_row + rows_needed > self.high_cursor {
            return Err(PlutoError::AllocationFailed {
                reason: format!("data subarray exhausted allocating {dst}"),
            });
        }
        let rows = (self.next_data_row..self.next_data_row + rows_needed)
            .map(RowId)
            .collect();
        self.next_data_row += rows_needed;
        self.row_regs.insert(
            dst,
            RowBinding {
                rows,
                size,
                bitwidth,
            },
        );
        Ok(())
    }

    fn exec_subarray_alloc(
        &mut self,
        dst: SubarrayReg,
        num_rows: u32,
        lut_name: &str,
    ) -> Result<(), PlutoError> {
        let lut =
            self.lut_registry
                .get(lut_name)
                .cloned()
                .ok_or_else(|| PlutoError::InvalidProgram {
                    reason: format!("LUT `{lut_name}` not registered with the controller"),
                })?;
        if lut.len() != num_rows as usize {
            return Err(PlutoError::InvalidProgram {
                reason: format!(
                    "`{lut_name}` has {} elements, instruction reserves {num_rows} rows",
                    lut.len()
                ),
            });
        }
        // Each allocation claims (pLUTo, master) subarray pairs — one
        // pair for a LUT that fits a subarray, one pair per §5.6 segment
        // for a LUT that exceeds `rows_per_subarray` (masters stay
        // adjacent for 1-hop GSA reloads either way).
        let mut store = PlutoStore::load(
            &mut self.engine,
            lut,
            self.bank,
            SubarrayId(self.next_pluto_subarray),
        )?;
        store.set_farming(self.farm);
        self.next_pluto_subarray += store.subarrays_claimed();
        self.sa_regs.insert(dst, store);
        Ok(())
    }

    fn exec_op(
        &mut self,
        dst: RowReg,
        src: RowReg,
        lut_reg: SubarrayReg,
        lut_size: u32,
        lut_bitw: u32,
    ) -> Result<(), PlutoError> {
        let src_b = self.binding(src)?.clone();
        let dst_b = self.binding(dst)?.clone();
        let mut store = self
            .sa_regs
            .remove(&lut_reg)
            .ok_or(PlutoError::UnallocatedRegister {
                name: lut_reg.to_string(),
            })?;
        let check = (|| {
            if store.lut().len() != lut_size as usize {
                return Err(PlutoError::InvalidProgram {
                    reason: format!(
                        "pluto_op lut_size {lut_size} != LUT length {}",
                        store.lut().len()
                    ),
                });
            }
            if store.lut().slot_bits() != lut_bitw {
                return Err(PlutoError::InvalidProgram {
                    reason: format!(
                        "pluto_op lut_bitw {lut_bitw} incompatible with LUT slot width {}",
                        store.lut().slot_bits()
                    ),
                });
            }
            if lut_bitw != self.slot_bits {
                return Err(PlutoError::InvalidProgram {
                    reason: format!(
                        "pluto_op lut_bitw {lut_bitw} differs from the program slot width {} — \
                         the compiler must align all rows to one slot width",
                        self.slot_bits
                    ),
                });
            }
            // §6.1 requires a power-of-two `lut_size` for a single-sweep
            // LUT; a partitioned LUT may have any logical length (each
            // per-subarray segment is padded to a power of two, §5.6).
            if !lut_size.is_power_of_two() && !store.is_partitioned() {
                return Err(PlutoError::InvalidProgram {
                    reason: format!("lut_size {lut_size} must be a power of two"),
                });
            }
            Ok(())
        })();
        if let Err(e) = check {
            self.sa_regs.insert(lut_reg, store);
            return Err(e);
        }

        let per_row = slots_per_row(self.engine.config().row_bytes, self.slot_bits);
        let mut remaining = src_b.size as usize;
        let result: Result<(), PlutoError> = (|| {
            for (i, &src_row) in src_b.rows.iter().enumerate() {
                let slots = remaining.min(per_row);
                let dst_row = *dst_b.rows.get(i).ok_or(PlutoError::LayoutMismatch {
                    reason: format!("{dst} too small for {src}'s rows"),
                })?;
                store.query_resident_with(
                    &mut self.engine,
                    self.design,
                    self.data_subarray,
                    self.data_subarray,
                    src_row,
                    dst_row,
                    slots,
                    &mut self.scratch,
                )?;
                remaining -= slots;
                if remaining == 0 {
                    break;
                }
            }
            Ok(())
        })();
        self.sa_regs.insert(lut_reg, store);
        result
    }

    fn exec_not(&mut self, dst: RowReg, src: RowReg) -> Result<(), PlutoError> {
        let src_b = self.binding(src)?.clone();
        let dst_b = self.binding(dst)?.clone();
        for (i, &s) in src_b.rows.iter().enumerate() {
            let d = *dst_b.rows.get(i).ok_or(PlutoError::LayoutMismatch {
                reason: format!("{dst} too small for {src}"),
            })?;
            self.engine.row_clone_dcc(self.data_loc(s), d)?;
        }
        Ok(())
    }

    /// Ambit AND/OR via triple-row activation with a control row:
    /// `MAJ(a, b, 0) = a AND b`, `MAJ(a, b, 1) = a OR b`.
    fn exec_tra(&mut self, dst: RowReg, a: RowReg, b: RowReg, or: bool) -> Result<(), PlutoError> {
        let a_b = self.binding(a)?.clone();
        let b_b = self.binding(b)?.clone();
        let dst_b = self.binding(dst)?.clone();
        let control = if or { self.compute.c1 } else { self.compute.c0 };
        for i in 0..a_b.rows.len() {
            let (ra, rb) = (
                a_b.rows[i],
                *b_b.rows.get(i).ok_or(PlutoError::LayoutMismatch {
                    reason: format!("{b} shorter than {a}"),
                })?,
            );
            let rd = *dst_b.rows.get(i).ok_or(PlutoError::LayoutMismatch {
                reason: format!("{dst} too small for {a}"),
            })?;
            // AAP(a, T0); AAP(b, T1); AAP(Ck, T2); TRA; AAP(T0, dst).
            self.engine
                .row_clone_fpm(self.data_loc(ra), self.compute.t0)?;
            self.engine
                .row_clone_fpm(self.data_loc(rb), self.compute.t1)?;
            self.engine
                .row_clone_fpm(self.data_loc(control), self.compute.t2)?;
            self.engine.triple_row_activate(
                self.bank,
                self.data_subarray,
                [self.compute.t0, self.compute.t1, self.compute.t2],
            )?;
            self.engine
                .row_clone_fpm(self.data_loc(self.compute.t0), rd)?;
        }
        Ok(())
    }

    fn exec_shift(&mut self, reg: RowReg, dir: ShiftDir, bits: u32) -> Result<(), PlutoError> {
        let binding = self.binding(reg)?.clone();
        for &r in &binding.rows {
            self.engine
                .shift_row(self.data_loc(r), dir == ShiftDir::Left, bits)?;
        }
        Ok(())
    }

    fn exec_move(&mut self, dst: RowReg, src: RowReg) -> Result<(), PlutoError> {
        let src_b = self.binding(src)?.clone();
        let dst_b = self.binding(dst)?.clone();
        for (i, &s) in src_b.rows.iter().enumerate() {
            let d = *dst_b.rows.get(i).ok_or(PlutoError::LayoutMismatch {
                reason: format!("{dst} too small for {src}"),
            })?;
            self.engine.row_clone_fpm(self.data_loc(s), d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::parse_program;
    use crate::lut::catalog;

    fn cfg() -> DramConfig {
        DramConfig {
            row_bytes: 64,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        }
    }

    fn simple_map_program(lut: &Lut, n: u32) -> Program {
        Program {
            instructions: vec![
                Instruction::RowAlloc {
                    dst: RowReg(0),
                    size: n,
                    bitwidth: lut.input_bits(),
                },
                Instruction::RowAlloc {
                    dst: RowReg(1),
                    size: n,
                    bitwidth: lut.output_bits(),
                },
                Instruction::SubarrayAlloc {
                    dst: SubarrayReg(0),
                    num_rows: lut.len() as u32,
                    lut_name: lut.name().to_string(),
                },
                Instruction::Op {
                    dst: RowReg(1),
                    src: RowReg(0),
                    lut: SubarrayReg(0),
                    lut_size: lut.len() as u32,
                    lut_bitw: lut.slot_bits(),
                },
            ],
            inputs: vec![(RowReg(0), lut.input_bits())],
            output: Some((RowReg(1), lut.output_bits())),
            slot_bits: lut.slot_bits(),
        }
    }

    #[test]
    fn runs_a_map_program_end_to_end() {
        for design in DesignKind::ALL {
            let mut c = Controller::new(cfg(), design).unwrap();
            let lut = catalog::popcount(4).unwrap();
            c.register_lut(lut.clone());
            let prog = simple_map_program(&lut, 40);
            let inputs: Vec<u64> = (0..40u64).map(|i| i % 16).collect();
            let result = c.run(&prog, std::slice::from_ref(&inputs)).unwrap();
            let expect: Vec<u64> = inputs.iter().map(|x| x.count_ones() as u64).collect();
            assert_eq!(result.outputs, expect, "{design}");
            assert!(result.elapsed > Picos::ZERO);
            assert!(result.energy > PicoJoules::ZERO);
        }
    }

    #[test]
    fn runs_a_partitioned_map_program_end_to_end() {
        // A 1024-entry LUT over 512-row subarrays: the ISA path routes
        // `pluto_op` through two §5.6 segments transparently.
        for design in DesignKind::ALL {
            let mut c = Controller::new(cfg(), design).unwrap();
            let lut = Lut::from_fn("wide10", 10, 16, |x| (x * x) & 0xFFFF).unwrap();
            c.register_lut(lut.clone());
            let prog = simple_map_program(&lut, 40);
            let inputs: Vec<u64> = (0..40u64).map(|i| (i * 31) % 1024).collect();
            let before = c.engine().stats().sweep_steps;
            let result = c.run(&prog, std::slice::from_ref(&inputs)).unwrap();
            let sweeps = c.engine().stats().sweep_steps - before;
            let expect: Vec<u64> = inputs.iter().map(|&x| (x * x) & 0xFFFF).collect();
            assert_eq!(result.outputs, expect, "{design}");
            // 40 elements in 32-slot rows (64 B / 16-bit slots) => two
            // queries, both segments swept each time: 2 x 2 x 512 steps.
            assert_eq!(sweeps, 2 * 2 * 512, "{design}");
        }
    }

    #[test]
    fn multi_row_registers_chunk_queries() {
        // 64-byte rows, 8-bit slots => 64 elements per row; 150 elements
        // need 3 rows and 3 LUT queries.
        let mut c = Controller::new(cfg(), DesignKind::Gmc).unwrap();
        let lut = catalog::binarize(100).unwrap();
        c.register_lut(lut.clone());
        let prog = simple_map_program(&lut, 150);
        let inputs: Vec<u64> = (0..150u64).map(|i| (i * 7) % 256).collect();
        let before = c.engine().stats().sweep_steps;
        let result = c.run(&prog, std::slice::from_ref(&inputs)).unwrap();
        let sweeps = c.engine().stats().sweep_steps - before;
        assert_eq!(sweeps, 3 * 256, "3 queries x 256 rows");
        let expect: Vec<u64> = inputs
            .iter()
            .map(|&x| if x >= 100 { 255 } else { 0 })
            .collect();
        assert_eq!(result.outputs, expect);
    }

    #[test]
    fn figure5_shift_or_op_sequence_computes_mul() {
        // The paper's Fig. 5 pattern: shift A left, OR with B, LUT the
        // merged operands. 2-bit a,b in 4-bit slots; mul2 LUT.
        let lut = catalog::mul(2).unwrap(); // input 4 bits, output 4 bits
        let mut c = Controller::new(cfg(), DesignKind::Bsa).unwrap();
        c.register_lut(lut.clone());
        let text = format!(
            "pluto_row_alloc $prg0, 32, 2\n\
             pluto_row_alloc $prg1, 32, 2\n\
             pluto_row_alloc $prg5, 32, 4\n\
             pluto_row_alloc $prg3, 32, 4\n\
             pluto_subarray_alloc $lut_rg0, {}, \"{}\"\n\
             pluto_bit_shift_l $prg0, 2\n\
             pluto_or $prg5, $prg0, $prg1\n\
             pluto_op $prg3, $prg5, $lut_rg0, {}, 4\n",
            lut.len(),
            lut.name(),
            lut.len()
        );
        let prog = Program {
            instructions: parse_program(&text).unwrap(),
            inputs: vec![(RowReg(0), 2), (RowReg(1), 2)],
            output: Some((RowReg(3), 4)),
            slot_bits: 4,
        };
        let a: Vec<u64> = (0..32u64).map(|i| i % 4).collect();
        let b: Vec<u64> = (0..32u64).map(|i| (i / 4) % 4).collect();
        let result = c.run(&prog, &[a.clone(), b.clone()]).unwrap();
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(result.outputs, expect);
    }

    #[test]
    fn ambit_and_or_not_row_ops() {
        let mut c = Controller::new(cfg(), DesignKind::Bsa).unwrap();
        let prog = Program {
            instructions: vec![
                Instruction::RowAlloc {
                    dst: RowReg(0),
                    size: 64,
                    bitwidth: 8,
                },
                Instruction::RowAlloc {
                    dst: RowReg(1),
                    size: 64,
                    bitwidth: 8,
                },
                Instruction::RowAlloc {
                    dst: RowReg(2),
                    size: 64,
                    bitwidth: 8,
                },
                Instruction::RowAlloc {
                    dst: RowReg(3),
                    size: 64,
                    bitwidth: 8,
                },
                Instruction::RowAlloc {
                    dst: RowReg(4),
                    size: 64,
                    bitwidth: 8,
                },
                Instruction::And {
                    dst: RowReg(2),
                    src1: RowReg(0),
                    src2: RowReg(1),
                },
                Instruction::Or {
                    dst: RowReg(3),
                    src1: RowReg(0),
                    src2: RowReg(1),
                },
                Instruction::Not {
                    dst: RowReg(4),
                    src: RowReg(0),
                },
            ],
            inputs: vec![(RowReg(0), 8), (RowReg(1), 8)],
            output: Some((RowReg(2), 8)),
            slot_bits: 8,
        };
        let a: Vec<u64> = (0..64u64).map(|i| (i * 37) % 256).collect();
        let b: Vec<u64> = (0..64u64).map(|i| (i * 91 + 13) % 256).collect();
        let result = c.run(&prog, &[a.clone(), b.clone()]).unwrap();
        let expect_and: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
        assert_eq!(result.outputs, expect_and);
        let ors = c.read_register(RowReg(3)).unwrap();
        let expect_or: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
        assert_eq!(ors, expect_or);
        let nots = c.read_register(RowReg(4)).unwrap();
        let expect_not: Vec<u64> = a.iter().map(|&x| (!x) & 0xFF).collect();
        assert_eq!(nots, expect_not);
    }

    #[test]
    fn move_copies_registers() {
        let mut c = Controller::new(cfg(), DesignKind::Gmc).unwrap();
        let prog = Program {
            instructions: vec![
                Instruction::RowAlloc {
                    dst: RowReg(0),
                    size: 10,
                    bitwidth: 8,
                },
                Instruction::RowAlloc {
                    dst: RowReg(1),
                    size: 10,
                    bitwidth: 8,
                },
                Instruction::Move {
                    dst: RowReg(1),
                    src: RowReg(0),
                },
            ],
            inputs: vec![(RowReg(0), 8)],
            output: Some((RowReg(1), 8)),
            slot_bits: 8,
        };
        let data: Vec<u64> = (100..110).collect();
        let r = c.run(&prog, std::slice::from_ref(&data)).unwrap();
        assert_eq!(r.outputs, data);
    }

    #[test]
    fn errors_on_unregistered_lut_and_unallocated_register() {
        let mut c = Controller::new(cfg(), DesignKind::Bsa).unwrap();
        let prog = Program {
            instructions: vec![Instruction::SubarrayAlloc {
                dst: SubarrayReg(0),
                num_rows: 16,
                lut_name: "nope".into(),
            }],
            ..Program::default()
        };
        assert!(matches!(
            c.run(&prog, &[]),
            Err(PlutoError::InvalidProgram { .. })
        ));
        let prog = Program {
            instructions: vec![Instruction::Move {
                dst: RowReg(1),
                src: RowReg(0),
            }],
            ..Program::default()
        };
        assert!(matches!(
            c.run(&prog, &[]),
            Err(PlutoError::UnallocatedRegister { .. })
        ));
    }

    #[test]
    fn wrong_input_count_rejected() {
        let mut c = Controller::new(cfg(), DesignKind::Bsa).unwrap();
        let lut = catalog::popcount(4).unwrap();
        c.register_lut(lut.clone());
        let prog = simple_map_program(&lut, 8);
        assert!(matches!(
            c.run(&prog, &[]),
            Err(PlutoError::InvalidProgram { .. })
        ));
    }

    #[test]
    fn gsa_program_reloads_between_chunked_queries() {
        let mut c = Controller::new(cfg(), DesignKind::Gsa).unwrap();
        let lut = catalog::popcount(4).unwrap();
        c.register_lut(lut.clone());
        // 200 4-bit-slot elements in 64-byte rows: 128 per row => 2 queries.
        let mut prog = simple_map_program(&lut, 200);
        prog.slot_bits = 4;
        let inputs: Vec<u64> = (0..200u64).map(|i| i % 16).collect();
        let before = c.engine().stats().lisa_hops;
        let result = c.run(&prog, std::slice::from_ref(&inputs)).unwrap();
        let hops = c.engine().stats().lisa_hops - before;
        // Second query must reload all 16 rows (master is adjacent: 1 hop
        // each) plus 2 copy-out hops; ≥ 16.
        assert!(hops >= 16 + 2, "hops = {hops}");
        let expect: Vec<u64> = inputs.iter().map(|x| x.count_ones() as u64).collect();
        assert_eq!(result.outputs, expect);
    }
}
