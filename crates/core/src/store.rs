//! LUT storage in a pLUTo-enabled subarray.
//!
//! Paper §4 / Fig. 2: the pLUTo-enabled subarray stores *multiple vertical
//! copies* of a LUT — row *i* contains the element at index *i*, replicated
//! across the full row width so that every comparator position can read it.
//!
//! For GSA (destructive reads, §5.2.1) a pristine *master copy* lives in a
//! neighbouring subarray and is re-loaded into the pLUTo-enabled subarray
//! before every query at a cost of `LISA_RBM × N` (Table 1).

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{pack_slots, slots_per_row, Lut};
use pluto_dram::{BankId, Engine, RowId, RowLoc, SubarrayId};

/// A LUT resident in a pLUTo-enabled subarray.
#[derive(Debug, Clone)]
pub struct LutStore {
    lut: Lut,
    bank: BankId,
    subarray: SubarrayId,
    /// Subarray holding the pristine master copy (used by GSA reloads).
    /// Must be LISA-adjacent to `subarray` for the Table 1 reload cost
    /// (`LISA_RBM × N`) to hold; the canonical placement co-locates it with
    /// the source subarray, in rows above the input data (§6.5 requires
    /// "close physical proximity").
    master: SubarrayId,
    /// First master-copy row (element `i` lives at `master_row_base + i`).
    master_row_base: u16,
    loaded: bool,
}

impl LutStore {
    /// Materializes `lut` into `subarray` of `bank`, with a master copy at
    /// rows `master_row_base..` of `master`. Uses the zero-cost backdoor:
    /// the LUT is modeled as already resident in DRAM; the *loading cost*
    /// trade-off is a separate study (paper §8.5 / Fig. 11, reproduced in
    /// [`crate::loading`]).
    ///
    /// # Errors
    /// Fails if the LUT has more elements than the subarray has rows, the
    /// master range overflows its subarray, `master == subarray`, or an
    /// element row cannot be packed.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        subarray: SubarrayId,
        master: SubarrayId,
        master_row_base: u16,
    ) -> Result<Self, PlutoError> {
        let cfg = engine.config().clone();
        if lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::InvalidLut {
                reason: format!(
                    "{} elements exceed the {}-row subarray (partition across subarrays instead, §5.6)",
                    lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        if master == subarray {
            return Err(PlutoError::AllocationFailed {
                reason: "master copy must live in a different subarray".into(),
            });
        }
        if master_row_base as usize + lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::AllocationFailed {
                reason: format!(
                    "master rows {}..{} overflow the {}-row subarray",
                    master_row_base,
                    master_row_base as usize + lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        let slot_bits = lut.slot_bits();
        let per_row = slots_per_row(cfg.row_bytes, slot_bits);
        for (i, &elem) in lut.elements().iter().enumerate() {
            let values = vec![elem; per_row];
            let row = pack_slots(&values, slot_bits, cfg.row_bytes)?;
            engine.poke_row(
                RowLoc {
                    bank,
                    subarray,
                    row: RowId(i as u16),
                },
                &row,
            )?;
            engine.poke_row(
                RowLoc {
                    bank,
                    subarray: master,
                    row: RowId(master_row_base + i as u16),
                },
                &row,
            )?;
        }
        Ok(LutStore {
            lut,
            bank,
            subarray,
            master,
            master_row_base,
            loaded: true,
        })
    }

    /// The stored LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// The bank holding the store.
    pub fn bank(&self) -> BankId {
        self.bank
    }

    /// The pLUTo-enabled subarray.
    pub fn subarray(&self) -> SubarrayId {
        self.subarray
    }

    /// The master-copy subarray.
    pub fn master(&self) -> SubarrayId {
        self.master
    }

    /// Whether the subarray currently holds valid LUT contents.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Location of the row holding element `i`.
    pub fn element_row(&self, i: usize) -> RowLoc {
        RowLoc {
            bank: self.bank,
            subarray: self.subarray,
            row: RowId(i as u16),
        }
    }

    /// Marks the contents destroyed (after a GSA sweep) and functionally
    /// clears the rows: unmatched cells lost their charge, so subsequent
    /// reads return garbage — modeled as zeros.
    ///
    /// # Errors
    /// Propagates out-of-bounds errors (cannot occur for a valid store).
    pub fn mark_destroyed(&mut self, engine: &mut Engine) -> Result<(), PlutoError> {
        let zero = vec![0u8; engine.config().row_bytes];
        for i in 0..self.lut.len() {
            engine.poke_row(self.element_row(i), &zero)?;
        }
        self.loaded = false;
        Ok(())
    }

    /// Reloads the LUT from the master copy via one LISA-RBM per element
    /// row (cost `LISA_RBM × N`, Table 1 / §5.2.2).
    ///
    /// # Errors
    /// Propagates DRAM errors.
    pub fn reload(&mut self, engine: &mut Engine) -> Result<(), PlutoError> {
        for i in 0..self.lut.len() {
            let master_loc = RowLoc {
                bank: self.bank,
                subarray: self.master,
                row: RowId(self.master_row_base + i as u16),
            };
            let data = engine.peek_row(master_loc)?;
            engine.deposit_buffer(self.bank, self.master, &data)?;
            engine.lisa_rbm_to_row(self.bank, self.master, self.subarray, RowId(i as u16))?;
        }
        self.loaded = true;
        Ok(())
    }

    /// Ensures the store is ready for a query on `design`: reloads first if
    /// the design destroys LUT data and the store is stale.
    ///
    /// # Errors
    /// Propagates DRAM errors.
    pub fn ensure_ready(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
    ) -> Result<(), PlutoError> {
        if !self.loaded {
            if design.reload_per_query() || !design.destructive_reads() {
                self.reload(engine)?;
            } else {
                return Err(PlutoError::LutDestroyed);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::catalog;
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        })
    }

    #[test]
    fn load_replicates_elements_across_rows() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(2), SubarrayId(0), 0).unwrap();
        // Row 2 holds repeated copies of element 5 = 0b0101 packed in 4-bit
        // slots => bytes of 0x55.
        let row = e.peek_row(store.element_row(2)).unwrap();
        assert!(row.iter().all(|&b| b == 0x55));
        // Master copy identical.
        let m = e.peek_row(store.element_row(2).with_subarray(0)).unwrap();
        assert_eq!(m, row);
    }

    #[test]
    fn load_rejects_oversized_luts() {
        let mut e = engine();
        let lut = catalog::add(4).unwrap(); // 256 elements > 64 rows
        assert!(matches!(
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(2), SubarrayId(0), 0),
            Err(PlutoError::InvalidLut { .. })
        ));
    }

    #[test]
    fn destroy_then_reload_restores_contents() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let mut store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(1), SubarrayId(0), 60).unwrap();
        let before = e.peek_row(store.element_row(3)).unwrap();
        store.mark_destroyed(&mut e).unwrap();
        assert!(!store.is_loaded());
        assert!(e
            .peek_row(store.element_row(3))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
        let t0 = e.elapsed();
        store.reload(&mut e).unwrap();
        assert!(store.is_loaded());
        assert_eq!(e.peek_row(store.element_row(3)).unwrap(), before);
        // Cost: one LISA hop per element (adjacent master).
        let dt = e.elapsed() - t0;
        assert_eq!(dt, e.timing().t_lisa_hop.times(4));
    }

    #[test]
    fn ensure_ready_reloads_when_stale() {
        let mut e = engine();
        let lut = Lut::from_table("t", 1, 1, vec![0, 1]).unwrap();
        let mut store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(1), SubarrayId(0), 60).unwrap();
        store.mark_destroyed(&mut e).unwrap();
        store.ensure_ready(&mut e, DesignKind::Gsa).unwrap();
        assert!(store.is_loaded());
    }
}
