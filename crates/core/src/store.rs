//! LUT storage in a pLUTo-enabled subarray.
//!
//! Paper §4 / Fig. 2: the pLUTo-enabled subarray stores *multiple vertical
//! copies* of a LUT — row *i* contains the element at index *i*, replicated
//! across the full row width so that every comparator position can read it.
//!
//! For GSA (destructive reads, §5.2.1) a pristine *master copy* lives in a
//! neighbouring subarray and is re-loaded into the pLUTo-enabled subarray
//! before every query at a cost of `LISA_RBM × N` (Table 1).

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{pack_slots_into, slots_per_row, Lut};
use pluto_dram::{BankId, Engine, RowId, RowLoc, SubarrayId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Counters of the process-wide packed-row cache (see [`packed_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedCacheStats {
    /// Loads served from the cache.
    pub hits: u64,
    /// Loads that had to pack their element rows.
    pub misses: u64,
    /// LUT variants currently cached.
    pub entries: usize,
}

/// Identity of one packed layout: which LUT (by name and shape) on which
/// row geometry. Equal keys still verify element equality on hit, so two
/// different LUTs reusing a name can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PackedKey {
    name: String,
    input_bits: u32,
    output_bits: u32,
    /// Effective slot width — distinct from `max(input, output)` when a
    /// slot-width floor is pinned (partitioned segments stored at their
    /// parent's layout, [`crate::lut::Lut::with_min_slot_bits`]).
    slot_bits: u32,
    row_bytes: usize,
}

#[derive(Debug)]
struct PackedEntry {
    /// The element table the rows were packed from (the identity witness).
    elements: Arc<Vec<u64>>,
    rows: Arc<Vec<Arc<Vec<u8>>>>,
}

#[derive(Debug, Default)]
struct PackedCache {
    entries: HashMap<PackedKey, Vec<PackedEntry>>,
    hits: u64,
    misses: u64,
}

/// Variant count beyond which the cache resets (a deterministic guard
/// against unbounded growth under adversarial LUT churn; real workloads
/// use a handful of LUTs).
const PACKED_CACHE_CAP: usize = 512;

fn packed_cache() -> &'static Mutex<PackedCache> {
    static CACHE: OnceLock<Mutex<PackedCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(PackedCache::default()))
}

/// Returns the fully packed element rows for `lut` on a `row_bytes`
/// geometry — row *i* holds element *i* replicated across every slot —
/// serving repeated loads of the same LUT (re-runs, pooled cluster
/// machines, GSA workload streams) from a process-wide cache of shared
/// rows instead of re-packing.
///
/// Purely a *load-time* optimization: the cached rows enter the engine as
/// copy-on-write handles ([`Engine::poke_rows_shared`]), so later in-DRAM
/// mutation (GSA destruction, row writes) replaces the DRAM-side handle
/// and can never leak back into the cache. Cache identity is the full
/// element table, compared on every hit — stale or aliased rows are
/// structurally impossible.
///
/// A partitioned LUT's segments slice this same parent-keyed entry
/// (`pluto_core::partition`), so an N-segment load is one cache lookup
/// and one identity check, not N `name@segK` entries.
pub(crate) fn packed_rows(lut: &Lut, row_bytes: usize) -> Arc<Vec<Arc<Vec<u8>>>> {
    let key = PackedKey {
        name: lut.name().to_string(),
        input_bits: lut.input_bits(),
        output_bits: lut.output_bits(),
        slot_bits: lut.slot_bits(),
        row_bytes,
    };
    // Lookup holds the lock only briefly; the O(lut_len × row_bytes)
    // packing below runs *unlocked* so one worker's miss on a large LUT
    // never stalls other cluster workers' loads.
    if let Some(rows) = lookup_packed(&key, lut) {
        return rows;
    }
    let rows = Arc::new(pack_element_rows(lut, row_bytes));
    let mut cache = packed_cache().lock().expect("packed-row cache poisoned");
    // Another worker may have packed the same LUT while we were
    // unlocked — prefer its entry so all loads share one allocation.
    if let Some(variants) = cache.entries.get(&key) {
        if let Some(entry) = variants.iter().find(|e| entry_matches(e, lut)) {
            return Arc::clone(&entry.rows);
        }
    }
    if cache.entries.values().map(Vec::len).sum::<usize>() >= PACKED_CACHE_CAP {
        cache.entries.clear();
    }
    cache.entries.entry(key).or_default().push(PackedEntry {
        elements: Arc::clone(lut.elements_shared()),
        rows: Arc::clone(&rows),
    });
    rows
}

fn entry_matches(entry: &PackedEntry, lut: &Lut) -> bool {
    Arc::ptr_eq(&entry.elements, lut.elements_shared())
        || *entry.elements == **lut.elements_shared()
}

/// Cache lookup under a short-lived lock, bumping the hit/miss counters.
fn lookup_packed(key: &PackedKey, lut: &Lut) -> Option<Arc<Vec<Arc<Vec<u8>>>>> {
    let mut cache = packed_cache().lock().expect("packed-row cache poisoned");
    let hit = cache
        .entries
        .get(key)
        .and_then(|variants| variants.iter().find(|e| entry_matches(e, lut)))
        .map(|entry| Arc::clone(&entry.rows));
    match hit {
        Some(_) => cache.hits += 1,
        None => cache.misses += 1,
    }
    hit
}

/// The packing work the cache elides: one fully packed row per element,
/// the element replicated across every slot — a single pass over the
/// element table.
fn pack_element_rows(lut: &Lut, row_bytes: usize) -> Vec<Arc<Vec<u8>>> {
    let slot_bits = lut.slot_bits();
    let per_row = slots_per_row(row_bytes, slot_bits);
    let mut values = vec![0u64; per_row];
    let mut row = Vec::new();
    lut.elements()
        .iter()
        .map(|&elem| {
            values.fill(elem);
            // Elements are validated against `output_bits` at LUT
            // construction, so they always fit the slot.
            pack_slots_into(&values, slot_bits, row_bytes, &mut row)
                .expect("validated elements always pack");
            Arc::new(row.clone())
        })
        .collect()
}

/// Hit/miss/occupancy counters of the packed-row cache (for tests and the
/// bench harness; counters are process-wide and monotonic).
pub fn packed_cache_stats() -> PackedCacheStats {
    let cache = packed_cache().lock().expect("packed-row cache poisoned");
    PackedCacheStats {
        hits: cache.hits,
        misses: cache.misses,
        entries: cache.entries.values().map(Vec::len).sum(),
    }
}

/// A LUT resident in a pLUTo-enabled subarray.
#[derive(Debug, Clone)]
pub struct LutStore {
    lut: Lut,
    bank: BankId,
    subarray: SubarrayId,
    /// Subarray holding the pristine master copy (used by GSA reloads).
    /// Must be LISA-adjacent to `subarray` for the Table 1 reload cost
    /// (`LISA_RBM × N`) to hold; the canonical placement co-locates it with
    /// the source subarray, in rows above the input data (§6.5 requires
    /// "close physical proximity").
    master: SubarrayId,
    /// First master-copy row (element `i` lives at `master_row_base + i`).
    master_row_base: u16,
    loaded: bool,
}

impl LutStore {
    /// Materializes `lut` into `subarray` of `bank`, with a master copy at
    /// rows `master_row_base..` of `master`. Uses the zero-cost backdoor:
    /// the LUT is modeled as already resident in DRAM; the *loading cost*
    /// trade-off is a separate study (paper §8.5 / Fig. 11, reproduced in
    /// [`crate::loading`]).
    ///
    /// # Errors
    /// Fails if the LUT has more elements than the subarray has rows, the
    /// master range overflows its subarray, `master == subarray`, or an
    /// element row cannot be packed.
    pub fn load(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        subarray: SubarrayId,
        master: SubarrayId,
        master_row_base: u16,
    ) -> Result<Self, PlutoError> {
        let cfg = engine.config().clone();
        if lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::InvalidLut {
                reason: format!(
                    "{} elements exceed the {}-row subarray (partition across subarrays instead, §5.6)",
                    lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        if master == subarray {
            return Err(PlutoError::AllocationFailed {
                reason: "master copy must live in a different subarray".into(),
            });
        }
        if master_row_base as usize + lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::AllocationFailed {
                reason: format!(
                    "master rows {}..{} overflow the {}-row subarray",
                    master_row_base,
                    master_row_base as usize + lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        // Packed element rows come from the process-wide cache: repeated
        // loads of the same LUT (pooled cluster machines, GSA streams)
        // skip the packing work entirely, and the bulk poke shares the
        // cached rows into DRAM as copy-on-write handles (a repeat load
        // of an unchanged table moves no bytes at all).
        let rows = packed_rows(&lut, cfg.row_bytes);
        engine.poke_rows_shared(bank, subarray, RowId(0), &rows)?;
        engine.poke_rows_shared(bank, master, RowId(master_row_base), &rows)?;
        Ok(LutStore {
            lut,
            bank,
            subarray,
            master,
            master_row_base,
            loaded: true,
        })
    }

    /// Materializes a LUT whose packed rows the caller already holds — the
    /// partitioned path, where every segment is a slice of the parent's
    /// single cached pack plus shared zero-padding rows. Performs the same
    /// placement validation as [`LutStore::load`] but no cache lookup and
    /// no packing; `rows` must hold exactly `lut.len()` packed rows.
    ///
    /// # Errors
    /// Same conditions as [`LutStore::load`], plus a row-count mismatch.
    pub(crate) fn load_sliced(
        engine: &mut Engine,
        lut: Lut,
        bank: BankId,
        subarray: SubarrayId,
        master: SubarrayId,
        master_row_base: u16,
        rows: &[Arc<Vec<u8>>],
    ) -> Result<Self, PlutoError> {
        let cfg = engine.config();
        if rows.len() != lut.len() {
            return Err(PlutoError::InvalidLut {
                reason: format!("{} packed rows for a {}-element LUT", rows.len(), lut.len()),
            });
        }
        if lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::InvalidLut {
                reason: format!(
                    "{} elements exceed the {}-row subarray (partition across subarrays instead, §5.6)",
                    lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        if master == subarray {
            return Err(PlutoError::AllocationFailed {
                reason: "master copy must live in a different subarray".into(),
            });
        }
        if master_row_base as usize + lut.len() > cfg.rows_per_subarray as usize {
            return Err(PlutoError::AllocationFailed {
                reason: format!(
                    "master rows {}..{} overflow the {}-row subarray",
                    master_row_base,
                    master_row_base as usize + lut.len(),
                    cfg.rows_per_subarray
                ),
            });
        }
        engine.poke_rows_shared(bank, subarray, RowId(0), rows)?;
        engine.poke_rows_shared(bank, master, RowId(master_row_base), rows)?;
        Ok(LutStore {
            lut,
            bank,
            subarray,
            master,
            master_row_base,
            loaded: true,
        })
    }

    /// The stored LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// The bank holding the store.
    pub fn bank(&self) -> BankId {
        self.bank
    }

    /// The pLUTo-enabled subarray.
    pub fn subarray(&self) -> SubarrayId {
        self.subarray
    }

    /// The master-copy subarray.
    pub fn master(&self) -> SubarrayId {
        self.master
    }

    /// Whether the subarray currently holds valid LUT contents.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Location of the row holding element `i`.
    pub fn element_row(&self, i: usize) -> RowLoc {
        RowLoc {
            bank: self.bank,
            subarray: self.subarray,
            row: RowId(i as u16),
        }
    }

    /// Marks the contents destroyed (after a GSA sweep) and functionally
    /// clears the rows: unmatched cells lost their charge, so subsequent
    /// reads return garbage — modeled as zeros.
    ///
    /// # Errors
    /// Propagates out-of-bounds errors (cannot occur for a valid store).
    pub fn mark_destroyed(&mut self, engine: &mut Engine) -> Result<(), PlutoError> {
        engine.poke_clear_rows(self.bank, self.subarray, RowId(0), self.lut.len())?;
        self.loaded = false;
        Ok(())
    }

    /// Reloads the LUT from the master copy via one LISA-RBM per element
    /// row (cost `LISA_RBM × N`, Table 1 / §5.2.2). The engine batches
    /// the transfer — cost, counters, and trace are identical to the
    /// per-row deposit + RBM loop this used to issue, but the data moves
    /// as copy-on-write row handles (GSA pays this path on every query).
    ///
    /// # Errors
    /// Propagates DRAM errors.
    pub fn reload(&mut self, engine: &mut Engine) -> Result<(), PlutoError> {
        engine.lisa_reload_rows(
            self.bank,
            self.master,
            RowId(self.master_row_base),
            self.subarray,
            RowId(0),
            self.lut.len(),
        )?;
        self.loaded = true;
        Ok(())
    }

    /// [`LutStore::reload`] with the functional restore elided: the same
    /// `LISA_RBM × N` cost, counters, and trace, but the subarray keeps
    /// its (destroyed) contents. For the fused partitioned query, which
    /// reloads and re-destroys every GSA segment within one composite
    /// operation — the restored rows are never observable, so moving the
    /// row handles would be pure overhead. The caller must destroy the
    /// store again before returning control.
    ///
    /// # Errors
    /// Propagates DRAM errors.
    pub(crate) fn reload_transient(&mut self, engine: &mut Engine) -> Result<(), PlutoError> {
        engine.lisa_reload_rows_transient(
            self.bank,
            self.master,
            RowId(self.master_row_base),
            self.subarray,
            RowId(0),
            self.lut.len(),
        )?;
        self.loaded = true;
        Ok(())
    }

    /// Ensures the store is ready for a query on `design`: reloads first if
    /// the design destroys LUT data and the store is stale.
    ///
    /// # Errors
    /// Propagates DRAM errors.
    pub fn ensure_ready(
        &mut self,
        engine: &mut Engine,
        design: DesignKind,
    ) -> Result<(), PlutoError> {
        if !self.loaded {
            if design.reload_per_query() || !design.destructive_reads() {
                self.reload(engine)?;
            } else {
                return Err(PlutoError::LutDestroyed);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::catalog;
    use pluto_dram::DramConfig;

    fn engine() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            ..DramConfig::ddr4_2400()
        })
    }

    #[test]
    fn load_replicates_elements_across_rows() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(2), SubarrayId(0), 0).unwrap();
        // Row 2 holds repeated copies of element 5 = 0b0101 packed in 4-bit
        // slots => bytes of 0x55.
        let row = e.peek_row(store.element_row(2)).unwrap();
        assert!(row.iter().all(|&b| b == 0x55));
        // Master copy identical.
        let m = e.peek_row(store.element_row(2).with_subarray(0)).unwrap();
        assert_eq!(m, row);
    }

    #[test]
    fn load_rejects_oversized_luts() {
        let mut e = engine();
        let lut = catalog::add(4).unwrap(); // 256 elements > 64 rows
        assert!(matches!(
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(2), SubarrayId(0), 0),
            Err(PlutoError::InvalidLut { .. })
        ));
    }

    #[test]
    fn destroy_then_reload_restores_contents() {
        let mut e = engine();
        let lut = Lut::from_table("primes", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let mut store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(1), SubarrayId(0), 60).unwrap();
        let before = e.peek_row(store.element_row(3)).unwrap();
        store.mark_destroyed(&mut e).unwrap();
        assert!(!store.is_loaded());
        assert!(e
            .peek_row(store.element_row(3))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
        let t0 = e.elapsed();
        store.reload(&mut e).unwrap();
        assert!(store.is_loaded());
        assert_eq!(e.peek_row(store.element_row(3)).unwrap(), before);
        // Cost: one LISA hop per element (adjacent master).
        let dt = e.elapsed() - t0;
        assert_eq!(dt, e.timing().t_lisa_hop.times(4));
    }

    #[test]
    fn packed_cache_serves_repeat_loads_without_aliasing() {
        // Distinct name to isolate from other tests sharing the process
        // cache.
        let lut = Lut::from_table("cache-probe", 2, 4, vec![9, 8, 7, 6]).unwrap();
        let mut e1 = engine();
        let s1 = LutStore::load(
            &mut e1,
            lut.clone(),
            BankId(0),
            SubarrayId(2),
            SubarrayId(0),
            0,
        )
        .unwrap();
        let before = packed_cache_stats();
        let mut e2 = engine();
        let s2 = LutStore::load(&mut e2, lut, BankId(0), SubarrayId(2), SubarrayId(0), 0).unwrap();
        let after = packed_cache_stats();
        // Counters are process-wide and other tests load stores
        // concurrently, so only lower-bound them; the aliasing checks
        // below are the deterministic part.
        assert!(after.hits > before.hits, "second load is a cache hit");
        for i in 0..4 {
            assert_eq!(
                e1.peek_row(s1.element_row(i)).unwrap(),
                e2.peek_row(s2.element_row(i)).unwrap()
            );
        }

        // Same name and shape, different contents: must re-pack, not alias.
        let impostor = Lut::from_table("cache-probe", 2, 4, vec![1, 2, 3, 4]).unwrap();
        let mut e3 = engine();
        let s3 = LutStore::load(
            &mut e3,
            impostor,
            BankId(0),
            SubarrayId(2),
            SubarrayId(0),
            0,
        )
        .unwrap();
        assert!(packed_cache_stats().misses > after.misses);
        assert_ne!(
            e3.peek_row(s3.element_row(0)).unwrap(),
            e1.peek_row(s1.element_row(0)).unwrap()
        );
    }

    #[test]
    fn cache_is_immune_to_in_dram_destruction() {
        let lut = Lut::from_table("cache-destroy-probe", 2, 4, vec![2, 3, 5, 7]).unwrap();
        let mut e = engine();
        let mut store = LutStore::load(
            &mut e,
            lut.clone(),
            BankId(0),
            SubarrayId(1),
            SubarrayId(0),
            60,
        )
        .unwrap();
        let pristine = e.peek_row(store.element_row(1)).unwrap();
        store.mark_destroyed(&mut e).unwrap();
        // A fresh load of the same LUT (cache hit) must see pristine rows,
        // not the zeroed ones the destruction wrote into the DRAM array.
        let mut e2 = engine();
        let s2 = LutStore::load(&mut e2, lut, BankId(0), SubarrayId(1), SubarrayId(0), 60).unwrap();
        assert_eq!(e2.peek_row(s2.element_row(1)).unwrap(), pristine);
    }

    #[test]
    fn ensure_ready_reloads_when_stale() {
        let mut e = engine();
        let lut = Lut::from_table("t", 1, 1, vec![0, 1]).unwrap();
        let mut store =
            LutStore::load(&mut e, lut, BankId(0), SubarrayId(1), SubarrayId(0), 60).unwrap();
        store.mark_destroyed(&mut e).unwrap();
        store.ensure_ready(&mut e, DesignKind::Gsa).unwrap();
        assert!(store.is_loaded());
    }
}
