//! # pluto-core — the pLUTo architecture
//!
//! Implements the primary contribution of *pLUTo: Enabling Massively
//! Parallel Computation in DRAM via Lookup Tables* (Ferreira et al., MICRO
//! 2022) on top of the [`pluto_dram`] substrate:
//!
//! * [`design`] — the three hardware designs (BSA / GSA / GMC) and their
//!   Table 1 analytic cost models.
//! * [`lut`] — lookup tables, the bit-parallel row layout, and a catalog of
//!   the paper's workload LUTs.
//! * [`store`] — LUT residence in a pLUTo-enabled subarray (vertical
//!   replication, GSA master copies and reloads).
//! * [`match_logic`] — the per-element comparators and matchline semantics.
//! * [`query`] — the five-step pLUTo LUT Query executed as real DRAM
//!   command streams (bit-exact data path, Table 1-faithful costs).
//! * [`isa`] — the pLUTo ISA (Table 2) with assembler/disassembler.
//! * [`controller`] — the pLUTo Controller (§6.4): executes ISA programs.
//! * [`compiler`] — the pLUTo Compiler (§6.3): expression graphs, operand
//!   alignment, lowering to ISA programs.
//! * [`library`] — the pLUTo Library (§6.2): high-level routines
//!   (`api_pluto_add`, `api_pluto_mul`, arbitrary maps) over a device
//!   facade.
//! * [`area`] — the Table 5 area model.
//! * [`partition`] — §5.6 partitioned queries for LUTs larger than one
//!   subarray (same latency, segment-count × energy), plus the unified
//!   [`PlutoStore`] the machine/controller route every LUT through.
//! * [`plan`] — compiled query plans (`DESIGN.md` §10): a process-wide
//!   cache of recorded command-stream cost tapes, so warm queries apply a
//!   memoized delta instead of re-simulating every command.
//! * [`salp`] — subarray-level parallelism scaling, tFAW sensitivity.
//! * [`loading`] — the §8.5 LUT-loading overhead model (Fig. 11).
//! * [`session`] — the unified execution API (`DESIGN.md` §5): explicit
//!   [`ExecConfig`]s build [`Session`]s that run pluggable [`Workload`]
//!   scenarios and accumulate [`CostReport`]s.
//! * [`cluster`] — the sharded parallel executor (`DESIGN.md` §6): a
//!   deterministic multi-worker [`Cluster`] with per-configuration
//!   machine pooling, serial-identical results in submission order.
//! * `deque` (crate-internal) — per-worker work-stealing deques, the
//!   scheduling substrate under both the cluster and the serve front-end.
//! * [`serve`] — the streaming query service (`DESIGN.md` §9): a
//!   long-lived [`serve::Server`] with non-blocking ingestion, affinity
//!   batching, and per-ticket replies bit-identical to serial execution.
//!
//! ## Quickstart
//!
//! ```
//! use pluto_core::prelude::*;
//!
//! # fn main() -> Result<(), pluto_core::PlutoError> {
//! let mut machine = PlutoMachine::ddr4(DesignKind::Gmc)?;
//! let lut = Lut::from_fn("square", 8, 16, |x| x * x)?;
//! let inputs: Vec<u64> = (0..100).collect();
//! let out = machine.map(&lut, &inputs)?;
//! assert_eq!(out.values[42], 42 * 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod cluster;
pub mod compiler;
pub mod controller;
pub(crate) mod deque;
pub mod design;
pub mod error;
pub mod isa;
pub mod library;
pub mod loading;
pub mod lut;
pub mod match_logic;
pub mod partition;
pub mod plan;
pub mod query;
pub mod salp;
pub mod serve;
pub mod session;
pub mod store;

pub use cluster::Cluster;
pub use design::{DesignKind, DesignModel};
pub use error::PlutoError;
pub use library::{MapResult, PlutoMachine};
pub use lut::Lut;
pub use partition::{FarmPolicy, PartitionedCost, PartitionedLut, PlutoStore};
pub use plan::PlanStats;
pub use query::{QueryCost, QueryExecutor, QueryPlacement, QueryScratch};
pub use serve::{QueryReply, QuerySpec, ServeConfig, Server, Ticket};
pub use session::{CostReport, ExecConfig, Session, SessionBuilder, Workload};
pub use store::LutStore;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::cluster::Cluster;
    pub use crate::design::{DesignKind, DesignModel};
    pub use crate::error::PlutoError;
    pub use crate::library::{MapResult, PlutoMachine};
    pub use crate::lut::{catalog, Lut};
    pub use crate::partition::{FarmPolicy, PartitionedCost, PartitionedLut, PlutoStore};
    pub use crate::query::{QueryCost, QueryExecutor, QueryPlacement};
    pub use crate::serve::{QueryReply, QuerySpec, ServeConfig, Server, Ticket};
    pub use crate::session::{CostReport, ExecConfig, Session, SessionBuilder, Workload};
    pub use crate::store::LutStore;
    pub use pluto_dram::{DramConfig, Engine, MemoryKind};
}
