//! `pluto-serve` — a streaming LUT-query service with affinity batching
//! and work-stealing workers on top of [`Cluster`] (`DESIGN.md` §9).
//!
//! The batch [`Cluster`] answers "run this job list and wait"; the north
//! star's serving scenario — millions of users hitting a tone-map / CRC /
//! inference endpoint backed by pLUTo DRAM — needs the opposite shape: a
//! long-lived [`Server`] ingesting a *continuous stream* of independent
//! queries, each a `(ExecConfig, LUT, inputs)` triple, and streaming its
//! result back to the caller as soon as it completes. PALUTE
//! (arXiv:2606.08891) frames LUT-PIM as exactly this request-stream
//! backend, and PULSAR (arXiv:2312.02880) motivates the queueing problem
//! the design solves: latency-sensitive small queries coexisting with
//! heavyweight sweeps on one substrate.
//!
//! The pipeline (ingestion → affinity coalescer → work-stealing deques →
//! per-ticket replies):
//!
//! 1. **Ingestion.** [`Server::enqueue`] is non-blocking: it hands back a
//!    [`Ticket`] immediately; the caller later blocks on
//!    [`Ticket::wait`] (or holds a bag of tickets and waits for each in
//!    arrival order).
//! 2. **Affinity coalescing.** Queries are grouped into shard-sized
//!    batches keyed by `(effective ExecConfig, LUT identity)` — the
//!    same key the cluster workers pool their [`Session`]s under, so
//!    every query of a batch lands on a machine already sized and reset
//!    for it, and repeat LUTs hit the process-wide packed-row cache
//!    ([`crate::store`]). A batch flushes when it reaches
//!    [`ServeConfig::batch_slots`] entries or on [`Server::flush`] /
//!    [`Server::drain`].
//! 3. **Work-stealing dispatch.** Each affinity class has a *home lane*
//!    (assigned round-robin in first-appearance order — deterministic,
//!    no hash iteration). Batches are injected onto that worker's deque;
//!    an idle worker steals from the back of a busy lane, so a small
//!    query batch never queues behind another lane's in-flight sweep
//!    (the crate-internal `deque` module).
//! 4. **Per-ticket replies.** Every query owns an `mpsc` reply channel.
//!    Within a batch, queries execute and reply in arrival order; a
//!    dropped worker resolves its tickets with
//!    [`PlutoError::WorkerLost`] instead of leaving the caller hanging.
//!
//! **Determinism contract.** Each query runs as its own
//! [`Session::run`] on a pristine (reset) machine, so its output words
//! and [`CostReport`] are bit-identical to [`serial_oracle`] — the same
//! query run serially through a fresh [`Session`] — regardless of
//! worker count, arrival order, batching, or whether a steal moved the
//! batch. Scheduling decides only *when*, never *what*.
//!
//! ```
//! use pluto_core::serve::{QuerySpec, Server, ServeConfig};
//! use pluto_core::session::ExecConfig;
//! use pluto_core::lut::{catalog, Lut};
//! use pluto_core::DesignKind;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), pluto_core::PlutoError> {
//! let mut server = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let lut = Arc::new(catalog::add(4)?);
//! let tickets: Vec<_> = (0..8)
//!     .map(|i| {
//!         server.enqueue(QuerySpec {
//!             config: ExecConfig::measurement(DesignKind::Gmc),
//!             lut: Arc::clone(&lut),
//!             inputs: vec![i, i + 1],
//!         })
//!     })
//!     .collect();
//! server.flush();
//! for (i, t) in tickets.into_iter().enumerate() {
//!     let reply = t.wait()?;
//!     assert_eq!(reply.values[0], (i as u64 >> 4) + (i as u64 & 0xf));
//!     assert!(reply.report.validated);
//! }
//! # Ok(())
//! # }
//! ```

use crate::cluster::{default_workers, panic_message, Cluster};
use crate::error::PlutoError;
use crate::lut::Lut;
use crate::session::{encode_words, ConfigKey, CostReport, ExecConfig, Session, Workload};
use sim_support::StdRng;
use std::collections::HashMap;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};

/// One independent LUT query: apply `lut` to `inputs` under `config`.
///
/// The LUT is shared by `Arc` so that thousands of queries against one
/// registry LUT (the serving steady state) carry a pointer, not a table
/// copy; affinity batching keys on the LUT's identity
/// (name/width/length), so clones of one logical LUT coalesce together.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Execution configuration (design, memory kind, geometry, seed).
    pub config: ExecConfig,
    /// The lookup table to query. Any size — large LUTs route through
    /// the §5.6 partitioned store exactly as in a serial session.
    pub lut: Arc<Lut>,
    /// Input elements, one LUT lookup each.
    pub inputs: Vec<u64>,
}

/// A completed query's results, delivered through its [`Ticket`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The query's arrival sequence number ([`Ticket::seq`]).
    pub seq: u64,
    /// Output elements, one per input.
    pub values: Vec<u64>,
    /// The query's cost report — bit-identical to the [`serial_oracle`]
    /// report for the same spec.
    pub report: CostReport,
}

/// Claim check for one enqueued query: resolves to the query's
/// [`QueryReply`] (or error) exactly once.
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    rx: mpsc::Receiver<Result<QueryReply, PlutoError>>,
}

impl Ticket {
    /// The query's arrival sequence number (dense, starting at 0 per
    /// server).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the query completes.
    ///
    /// # Errors
    /// The query's own failure (bad input index, layout mismatch, a
    /// panic caught on the worker as [`PlutoError::WorkerPanic`]), or
    /// [`PlutoError::WorkerLost`] if the serving worker died before a
    /// result could be produced — a ticket never blocks forever.
    pub fn wait(self) -> Result<QueryReply, PlutoError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(PlutoError::WorkerLost {
                reason: format!(
                    "reply channel for ticket {} closed before a result arrived",
                    self.seq
                ),
            }),
        }
    }

    /// Non-blocking probe: `Some` once the query has completed.
    pub fn try_wait(&self) -> Option<Result<QueryReply, PlutoError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(PlutoError::WorkerLost {
                reason: format!(
                    "reply channel for ticket {} closed before a result arrived",
                    self.seq
                ),
            })),
        }
    }
}

/// Construction parameters for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (and deque lanes). Clamped to at least one.
    pub workers: usize,
    /// Queries per affinity batch before it auto-flushes. Sized so one
    /// batch amortizes session residency without starving other
    /// affinities of a worker; latency-sensitive callers flush early
    /// via [`Server::flush`].
    pub batch_slots: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_workers(),
            batch_slots: 32,
        }
    }
}

/// Scheduling/ingestion telemetry of a [`Server`] (monotonic since
/// construction). Results never depend on any of these numbers — they
/// describe *when* work ran, not *what* it computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries accepted by [`Server::enqueue`].
    pub enqueued: u64,
    /// Batches dispatched to worker lanes.
    pub batches: u64,
    /// Batches dispatched because they filled to `batch_slots` (the
    /// rest were flushed explicitly or by drain/shutdown).
    pub full_batches: u64,
    /// Largest batch occupancy dispatched so far.
    pub max_batch: usize,
    /// Distinct affinity classes seen (config × LUT identity).
    pub affinities: usize,
}

/// Count of enqueued-but-unresolved queries, shared between the server
/// handle and in-flight batches; [`Server::drain`] blocks on it reaching
/// zero. Batches decrement it from a drop guard, so even a panicking
/// worker accounts for its queries.
#[derive(Debug, Default)]
struct Outstanding {
    count: Mutex<u64>,
    zero: Condvar,
}

impl Outstanding {
    fn add(&self, n: u64) {
        let mut count = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        *count += n;
    }

    fn sub(&self, n: u64) {
        let mut count = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        *count = count.saturating_sub(n);
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    fn current(&self) -> u64 {
        *self.count.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_zero(&self) {
        let mut count = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        while *count > 0 {
            count = self
                .zero
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Decrements the outstanding counter when dropped — once per query the
/// batch carried — so ticket accounting survives worker panics and
/// discarded batches alike.
struct DoneGuard {
    outstanding: Arc<Outstanding>,
    queries: u64,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.outstanding.sub(self.queries);
    }
}

/// One query inside a coalesced batch.
struct ServeEntry {
    seq: u64,
    inputs: Vec<u64>,
    reply: mpsc::Sender<Result<QueryReply, PlutoError>>,
}

/// A coalesced, dispatch-ready batch of same-affinity queries — the
/// serve flavor of [`crate::cluster::Job`]. All entries share one
/// effective configuration and LUT, so the executing worker runs the
/// whole batch on one pooled session.
pub(crate) struct ServeBatch {
    /// Effective configuration: the submitted one with its subarray
    /// floor already raised to the LUT's demand, so pooling keys match
    /// what [`Session::run`] sizes the machine to.
    config: ExecConfig,
    lut: Arc<Lut>,
    min_subarrays: u16,
    entries: Vec<ServeEntry>,
    /// Accounting guard; dropping the batch (normally, on panic, or
    /// discarded by shutdown) releases its queries from `drain`.
    done: DoneGuard,
}

/// Identity of an affinity class: queries whose batches may share a
/// pooled session and packed LUT rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AffinityKey {
    config: ConfigKey,
    lut_name: String,
    lut_input_bits: u32,
    lut_output_bits: u32,
    lut_len: usize,
}

impl AffinityKey {
    fn of(effective: &ExecConfig, lut: &Lut) -> Self {
        AffinityKey {
            config: ConfigKey::of(effective),
            lut_name: lut.name().to_string(),
            lut_input_bits: lut.input_bits(),
            lut_output_bits: lut.output_bits(),
            lut_len: lut.len(),
        }
    }
}

/// A batch still filling in the coalescer. Kept in an insertion-ordered
/// `Vec` (not a `HashMap`) so flush order — and therefore lane traffic —
/// is deterministic for a fixed arrival order.
struct PendingBatch {
    key: AffinityKey,
    lane: usize,
    config: ExecConfig,
    lut: Arc<Lut>,
    min_subarrays: u16,
    entries: Vec<ServeEntry>,
}

/// A streaming LUT-query service: non-blocking ingestion, affinity
/// batching, work-stealing execution on a [`Cluster`] worker pool, and
/// per-ticket result delivery. See the [module docs](self).
pub struct Server {
    cluster: Cluster,
    batch_slots: usize,
    /// Filling batches, insertion-ordered.
    pending: Vec<PendingBatch>,
    /// Home lane per affinity class, assigned round-robin in
    /// first-appearance order.
    lanes: HashMap<AffinityKey, usize>,
    next_lane: usize,
    next_seq: u64,
    outstanding: Arc<Outstanding>,
    stats: ServeStats,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.cluster.workers())
            .field("batch_slots", &self.batch_slots)
            .field("pending_batches", &self.pending.len())
            .field("outstanding", &self.outstanding.current())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts a server with its own worker pool.
    pub fn new(config: ServeConfig) -> Self {
        Server {
            cluster: Cluster::new(config.workers),
            batch_slots: config.batch_slots.max(1),
            pending: Vec::new(),
            lanes: HashMap::new(),
            next_lane: 0,
            next_seq: 0,
            outstanding: Arc::new(Outstanding::default()),
            stats: ServeStats::default(),
        }
    }

    /// Starts a server with `workers` threads and default batching.
    pub fn with_workers(workers: usize) -> Self {
        Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.cluster.workers()
    }

    /// Cross-lane steals performed by the pool so far (scheduling
    /// telemetry; see [`Cluster::steals`]).
    pub fn steals(&self) -> u64 {
        self.cluster.steals()
    }

    /// Enqueued queries not yet resolved to their tickets.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.current()
    }

    /// Compiled-plan cache counters ([`crate::plan::plan_stats`]). The
    /// cache is process-wide, so under steady mixed traffic the workers'
    /// repeat queries show up here as hits regardless of which lane ran
    /// them.
    pub fn plan_stats(&self) -> crate::plan::PlanStats {
        crate::plan::plan_stats()
    }

    /// Ingestion/batching telemetry so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Accepts one query and returns its [`Ticket`] immediately.
    ///
    /// Non-blocking: the query joins (or opens) the filling batch of its
    /// affinity class and is dispatched when that batch fills to
    /// [`ServeConfig::batch_slots`], or on [`Server::flush`] /
    /// [`Server::drain`]. Invalid queries (e.g. an input exceeding the
    /// LUT's index range) are still accepted here; the failure arrives
    /// through the ticket, leaving other queries of the batch untouched.
    pub fn enqueue(&mut self, spec: QuerySpec) -> Ticket {
        let QuerySpec {
            config,
            lut,
            inputs,
        } = spec;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.enqueued += 1;
        self.outstanding.add(1);
        let (reply, rx) = mpsc::channel();

        let min_subarrays = min_subarrays_for(&lut, config.rows_per_subarray);
        let mut effective = config;
        effective.subarrays_per_bank = effective.subarrays_per_bank.max(min_subarrays);
        let key = AffinityKey::of(&effective, &lut);

        // Home lane: first appearance of an affinity claims the next
        // lane round-robin — deterministic for a fixed arrival order.
        let lane = match self.lanes.get(&key) {
            Some(&lane) => lane,
            None => {
                let lane = self.next_lane;
                self.next_lane = (self.next_lane + 1) % self.cluster.workers().max(1);
                self.lanes.insert(key.clone(), lane);
                self.stats.affinities = self.lanes.len();
                lane
            }
        };

        let entry = ServeEntry { seq, inputs, reply };
        match self.pending.iter_mut().find(|b| b.key == key) {
            Some(batch) => batch.entries.push(entry),
            None => self.pending.push(PendingBatch {
                key,
                lane,
                config: effective,
                lut,
                min_subarrays,
                entries: vec![entry],
            }),
        }
        // Auto-flush any batch that just filled (only the touched one
        // can have).
        if let Some(pos) = self
            .pending
            .iter()
            .position(|b| b.entries.len() >= self.batch_slots)
        {
            let batch = self.pending.remove(pos);
            self.stats.full_batches += 1;
            self.dispatch(batch);
        }
        Ticket { seq, rx }
    }

    /// Dispatches every filling batch, in insertion order. Call after a
    /// burst of enqueues (or for latency-sensitive single queries) so no
    /// query waits for its batch to fill.
    pub fn flush(&mut self) {
        for batch in std::mem::take(&mut self.pending) {
            self.dispatch(batch);
        }
    }

    fn dispatch(&mut self, batch: PendingBatch) {
        let PendingBatch {
            lane,
            config,
            lut,
            min_subarrays,
            entries,
            ..
        } = batch;
        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(entries.len());
        let done = DoneGuard {
            outstanding: Arc::clone(&self.outstanding),
            queries: entries.len() as u64,
        };
        self.cluster.inject_serve(
            lane,
            ServeBatch {
                config,
                lut,
                min_subarrays,
                entries,
                done,
            },
        );
    }

    /// Graceful drain: flushes every filling batch, then blocks until
    /// every enqueued ticket has been resolved (successfully or with an
    /// error). After `drain` returns, every outstanding [`Ticket::wait`]
    /// returns without blocking; no ticket is ever dropped. The server
    /// stays usable — drain is a barrier, not a shutdown.
    pub fn drain(&mut self) {
        self.flush();
        self.outstanding.wait_zero();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Shutdown implies drain: every accepted ticket resolves before
        // the workers join (satellite: no enqueued ticket is ever
        // dropped). The cluster's own Drop then closes the deques and
        // joins the pool.
        self.drain();
    }
}

/// Minimum subarrays-per-bank a standalone query against `lut` needs:
/// room for the §5.6 partitioned store's segment pairs (2 per segment)
/// plus the controller's fixed rails, floored at the measurement
/// geometry's 16 (mirrors the direct-LUT workloads' demands: 20 for the
/// 4096-entry Gamma12, 260 for the 65 536-entry MulDirect8).
fn min_subarrays_for(lut: &Lut, rows_per_subarray: u16) -> u16 {
    let rows = (rows_per_subarray as usize).max(1);
    let segments = lut.len().div_ceil(rows);
    let demand = 2 * segments + 4;
    u16::try_from(demand).unwrap_or(u16::MAX).max(16)
}

/// The serve path's unit of execution: one query run as a [`Workload`]
/// so that [`Session::run`] gives it the full measurement protocol —
/// pristine machine, reference validation, costed report — and therefore
/// bit-identity with any other execution of the same spec.
struct QueryWorkload {
    lut: Arc<Lut>,
    inputs: Vec<u64>,
    min_subarrays: u16,
    /// Output words captured during `run_pluto` for the reply.
    out: Vec<u64>,
}

impl std::fmt::Debug for QueryWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryWorkload")
            .field("lut", &self.lut.name())
            .field("inputs", &self.inputs.len())
            .finish_non_exhaustive()
    }
}

impl Workload for QueryWorkload {
    fn id(&self) -> &'static str {
        "serve-query"
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        // Inputs arrive fully formed from the caller; nothing to
        // generate, which is what makes a query seed-independent.
    }

    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = session.machine_mut().apply(&self.lut, &self.inputs)?.values;
        let encoded = encode_words(&out);
        self.out = out;
        Ok(encoded)
    }

    fn run_reference(&self) -> Vec<u8> {
        // Only reached after run_pluto succeeded, so every input is in
        // range; an empty fallback would simply fail validation.
        encode_words(&self.lut.apply_all(&self.inputs).unwrap_or_default())
    }

    fn input_bytes(&self) -> f64 {
        self.inputs.len() as f64 * f64::from(self.lut.input_bits()) / 8.0
    }

    fn min_subarrays(&self) -> u16 {
        self.min_subarrays
    }
}

/// Runs one query exactly as a worker would, but serially on a fresh
/// [`Session`] — the determinism oracle: for any worker count, arrival
/// order, or batching, the served [`QueryReply`] carries these same
/// output words and this same bit-exact [`CostReport`].
///
/// # Errors
/// Whatever the query itself fails with (construction, layout, index
/// range).
pub fn serial_oracle(spec: &QuerySpec) -> Result<(Vec<u64>, CostReport), PlutoError> {
    let mut session = Session::with_config(spec.config.clone())?;
    let mut workload = QueryWorkload {
        lut: Arc::clone(&spec.lut),
        inputs: spec.inputs.clone(),
        min_subarrays: min_subarrays_for(&spec.lut, spec.config.rows_per_subarray),
        out: Vec::new(),
    };
    let report = session.run(&mut workload)?;
    Ok((workload.out, report))
}

/// Executes a coalesced batch on a worker's pooled sessions (called from
/// the cluster worker loop). Entries run — and reply — in arrival
/// order; a per-entry panic resolves that entry's ticket with
/// [`PlutoError::WorkerPanic`] and drops the (possibly torn) pooled
/// sessions, leaving the rest of the batch to run on rebuilt machines.
pub(crate) fn execute_batch(pool: &mut HashMap<ConfigKey, Session>, batch: ServeBatch) {
    let ServeBatch {
        config,
        lut,
        min_subarrays,
        entries,
        done,
    } = batch;
    // One workload reused across the whole batch: per-query inputs are
    // moved in and outputs moved out, so the hot loop constructs no
    // per-entry workload (and clones no per-entry `Arc`).
    let mut workload = QueryWorkload {
        lut,
        inputs: Vec::new(),
        min_subarrays,
        out: Vec::new(),
    };
    for entry in entries {
        let ServeEntry { seq, inputs, reply } = entry;
        workload.inputs = inputs;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_query(pool, &config, &mut workload)
        }))
        .unwrap_or_else(|payload| {
            pool.clear();
            Err(PlutoError::WorkerPanic {
                reason: panic_message(payload.as_ref()),
            })
        });
        // A dropped ticket (caller gave up) is fine; everyone else gets
        // their reply before the done-guard releases the drain barrier.
        let _ = reply.send(outcome.map(|(values, report)| QueryReply {
            seq,
            values,
            report,
        }));
    }
    drop(done);
}

fn run_query(
    pool: &mut HashMap<ConfigKey, Session>,
    config: &ExecConfig,
    workload: &mut QueryWorkload,
) -> Result<(Vec<u64>, CostReport), PlutoError> {
    // `config` is already effective (subarray floor raised at enqueue),
    // so this key matches the batch path's pooling and `Session::run`
    // takes the cheap reset branch on repeat geometries.
    let session = match pool.entry(ConfigKey::of(config)) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(Session::with_config(config.clone())?)
        }
    };
    let report = session.run(workload)?;
    session.clear_reports();
    Ok((std::mem::take(&mut workload.out), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::catalog;
    use crate::DesignKind;

    fn spec(inputs: Vec<u64>) -> QuerySpec {
        QuerySpec {
            config: ExecConfig::measurement(DesignKind::Gmc),
            lut: Arc::new(catalog::add(4).unwrap()),
            inputs,
        }
    }

    #[test]
    fn served_replies_match_the_serial_oracle() {
        let mut server = Server::with_workers(2);
        let specs: Vec<QuerySpec> = (0..6).map(|i| spec(vec![i, i + 16, i + 32])).collect();
        let tickets: Vec<Ticket> = specs.iter().map(|s| server.enqueue(s.clone())).collect();
        server.flush();
        for (s, t) in specs.iter().zip(tickets) {
            let (values, report) = serial_oracle(s).unwrap();
            let reply = t.wait().unwrap();
            assert_eq!(reply.values, values);
            assert_eq!(reply.report, report);
            assert!(reply.report.validated);
        }
    }

    #[test]
    fn tickets_number_in_arrival_order_and_batches_coalesce() {
        let mut server = Server::new(ServeConfig {
            workers: 1,
            batch_slots: 4,
        });
        let tickets: Vec<Ticket> = (0..10).map(|i| server.enqueue(spec(vec![i]))).collect();
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(t.seq(), i as u64);
        }
        // 10 same-affinity queries with 4 slots: two full batches
        // auto-flushed, two queries still filling.
        let stats = server.stats();
        assert_eq!(stats.enqueued, 10);
        assert_eq!(stats.full_batches, 2);
        assert_eq!(stats.max_batch, 4);
        assert_eq!(stats.affinities, 1);
        server.drain();
        assert_eq!(server.outstanding(), 0);
        for t in tickets {
            assert!(t.try_wait().expect("drained").is_ok());
        }
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let mut server = Server::with_workers(1);
        let good = server.enqueue(spec(vec![3]));
        let bad = server.enqueue(spec(vec![1 << 40])); // exceeds 8-bit index
        let after = server.enqueue(spec(vec![5]));
        server.drain();
        assert!(good.wait().unwrap().report.validated);
        assert!(matches!(
            bad.wait().unwrap_err(),
            PlutoError::IndexOutOfRange { .. }
        ));
        assert!(after.wait().unwrap().report.validated);
    }

    #[test]
    fn drop_without_drain_resolves_every_ticket() {
        let mut server = Server::with_workers(2);
        let tickets: Vec<Ticket> = (0..5).map(|i| server.enqueue(spec(vec![i]))).collect();
        drop(server); // never flushed explicitly
        for t in tickets {
            assert!(t.wait().unwrap().report.validated);
        }
    }

    #[test]
    fn large_luts_are_served_through_the_partitioned_store() {
        // 4096-entry 12-bit LUT: 8 segments at 512 rows/subarray.
        let lut = Arc::new(Lut::from_fn("tone", 12, 8, |x| x >> 4).unwrap());
        assert_eq!(min_subarrays_for(&lut, 512), 20);
        let s = QuerySpec {
            config: ExecConfig::measurement(DesignKind::Gmc),
            lut,
            inputs: vec![0, 4095, 1234],
        };
        let mut server = Server::with_workers(1);
        let t = server.enqueue(s.clone());
        server.flush();
        let reply = t.wait().unwrap();
        let (values, report) = serial_oracle(&s).unwrap();
        assert_eq!(reply.values, values);
        assert_eq!(reply.report, report);
        assert_eq!(reply.values, vec![0, 255, 77]);
    }

    #[test]
    fn min_subarray_floor_matches_the_direct_workload_demands() {
        let small = Lut::from_fn("s", 8, 8, |x| x).unwrap();
        assert_eq!(min_subarrays_for(&small, 512), 16);
        // The §5.6 direct-LUT workloads pin 20 (Gamma12, 8 segments) and
        // 260 (MulDirect8, 128 segments); the serve formula reproduces
        // both.
        let mul8 = catalog::mul(8).unwrap();
        assert_eq!(min_subarrays_for(&mul8, 512), 260);
    }
}
