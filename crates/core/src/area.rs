//! DRAM chip area model (paper §8.4, Table 5).
//!
//! The paper derives component areas from transistor-count estimates on top
//! of CACTI 7's DDR4 model. We encode the published Table 5 breakdown
//! directly (in mm²) and expose the per-design overhead fractions the rest
//! of the evaluation uses (performance-per-area, Fig. 8; Table 6 rows).

use crate::design::DesignKind;
use std::fmt;

/// Component-level area breakdown of one DRAM chip variant, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// DRAM cell array (2T1C inflates this for GMC).
    pub dram_cell: f64,
    /// Local wordline drivers.
    pub local_wl_driver: f64,
    /// pLUTo match logic (zero for baseline DRAM).
    pub match_logic: f64,
    /// Matchlines (zero for baseline DRAM).
    pub match_lines: f64,
    /// Sense amplifiers (grows with m-c switches / FF buffer).
    pub sense_amp: f64,
    /// Row decoder (grows with sweep support).
    pub row_decoder: f64,
    /// Column decoder.
    pub column_decoder: f64,
    /// Everything else (I/O, pads, …).
    pub other: f64,
}

impl AreaBreakdown {
    /// Baseline commodity DRAM chip (Table 5 "Base DRAM", 70.23 mm²).
    pub fn base_dram() -> Self {
        AreaBreakdown {
            dram_cell: 45.23,
            local_wl_driver: 12.45,
            match_logic: 0.0,
            match_lines: 0.0,
            sense_amp: 11.40,
            row_decoder: 0.16,
            column_decoder: 0.01,
            other: 0.99,
        }
    }

    /// Area breakdown for one pLUTo design (Table 5 columns).
    pub fn for_design(design: DesignKind) -> Self {
        let base = AreaBreakdown::base_dram();
        match design {
            // GSA: +20 % of SA area for the m-c switch per bitline.
            DesignKind::Gsa => AreaBreakdown {
                match_logic: 4.61,
                match_lines: 0.02,
                sense_amp: 13.67,
                row_decoder: 0.47,
                ..base
            },
            // BSA: +60 % of SA area for m-c switch + FF buffer.
            DesignKind::Bsa => AreaBreakdown {
                match_logic: 4.61,
                match_lines: 0.02,
                sense_amp: 18.23,
                row_decoder: 0.47,
                ..base
            },
            // GMC: 2T1C cell — access-transistor area (≈ 15.1 mm² of the
            // cell array) doubles; SA unchanged.
            DesignKind::Gmc => AreaBreakdown {
                dram_cell: 56.53,
                match_logic: 4.61,
                match_lines: 0.02,
                sense_amp: 11.40,
                row_decoder: 0.47,
                ..base
            },
        }
    }

    /// Total chip area in mm².
    pub fn total(&self) -> f64 {
        self.dram_cell
            + self.local_wl_driver
            + self.match_logic
            + self.match_lines
            + self.sense_amp
            + self.row_decoder
            + self.column_decoder
            + self.other
    }

    /// Overhead of this variant relative to baseline DRAM, as a fraction.
    pub fn overhead_vs_base(&self) -> f64 {
        self.total() / AreaBreakdown::base_dram().total() - 1.0
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell={:.2} lwl={:.2} match={:.2}+{:.2} sa={:.2} rdec={:.2} cdec={:.2} other={:.2} total={:.2} mm^2",
            self.dram_cell,
            self.local_wl_driver,
            self.match_logic,
            self.match_lines,
            self.sense_amp,
            self.row_decoder,
            self.column_decoder,
            self.other,
            self.total()
        )
    }
}

/// Area overhead of a pLUTo-3DS (HMC-based) design, following the paper's
/// Fig. 8 assumption of 4.4 mm² of logic per vault on top of the vault's
/// DRAM area.
pub fn stacked_vault_overhead_mm2() -> f64 {
    4.4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_total_matches_table5() {
        assert!((AreaBreakdown::base_dram().total() - 70.23).abs() < 0.01);
    }

    #[test]
    fn design_totals_match_table5() {
        let gsa = AreaBreakdown::for_design(DesignKind::Gsa).total();
        let bsa = AreaBreakdown::for_design(DesignKind::Bsa).total();
        let gmc = AreaBreakdown::for_design(DesignKind::Gmc).total();
        assert!((gsa - 77.44).abs() < 0.01, "GSA total {gsa}");
        assert!((bsa - 82.00).abs() < 0.01, "BSA total {bsa}");
        assert!((gmc - 86.47).abs() < 0.02, "GMC total {gmc}");
    }

    #[test]
    fn overheads_match_paper_percentages() {
        // +10.2 %, +16.7 %, +23.1 % (§8.4).
        let pct = |d| AreaBreakdown::for_design(d).overhead_vs_base() * 100.0;
        assert!(
            (pct(DesignKind::Gsa) - 10.2).abs() < 0.15,
            "{}",
            pct(DesignKind::Gsa)
        );
        assert!(
            (pct(DesignKind::Bsa) - 16.7).abs() < 0.15,
            "{}",
            pct(DesignKind::Bsa)
        );
        assert!(
            (pct(DesignKind::Gmc) - 23.1).abs() < 0.15,
            "{}",
            pct(DesignKind::Gmc)
        );
    }

    #[test]
    fn design_kind_fraction_consistent_with_breakdown() {
        for d in DesignKind::ALL {
            let table = AreaBreakdown::for_design(d).overhead_vs_base();
            let flag = d.area_overhead_fraction();
            assert!((table - flag).abs() < 0.002, "{d}: {table} vs {flag}");
        }
    }

    #[test]
    fn gmc_cell_overhead_is_access_transistor_doubling() {
        // Base access transistors ≈ 15.1 mm²; GMC doubles them within the
        // 45.23 mm² cell array: 45.23 + 11.3 ≈ 56.53.
        let base = AreaBreakdown::base_dram().dram_cell;
        let gmc = AreaBreakdown::for_design(DesignKind::Gmc).dram_cell;
        assert!((gmc - base - 11.3).abs() < 0.01);
    }

    #[test]
    fn display_contains_total() {
        let s = AreaBreakdown::base_dram().to_string();
        assert!(s.contains("cell=45.23") && s.contains("mm^2"), "{s}");
    }
}
