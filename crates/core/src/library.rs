//! The pLUTo Library (paper §6.2): high-level computation routines.
//!
//! [`PlutoMachine`] is the programmer-facing facade: each routine builds the
//! corresponding expression graph, compiles it with the pLUTo Compiler
//! (§6.3), and executes it on the pLUTo Controller (§6.4), so every call
//! exercises the full system-integration stack down to individual DRAM
//! commands. Results carry both the computed values and the simulated
//! cost.

use crate::compiler::Graph;
use crate::controller::Controller;
use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::lut::{catalog, slots_per_row, Lut};
use crate::partition::PlutoStore;
use crate::query::QueryScratch;
use pluto_dram::{
    BankId, CommandStats, DramConfig, Engine, PicoJoules, Picos, RowId, SubarrayId, TimingBackend,
};
use std::collections::HashMap;

/// Aggregate cost of the operations a [`PlutoMachine`] has executed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateCost {
    /// Number of library calls executed.
    pub calls: u64,
    /// Total simulated time (serial, single-subarray; see [`crate::salp`]
    /// for parallel scaling).
    pub time: Picos,
    /// Total dynamic DRAM energy.
    pub energy: PicoJoules,
}

/// Result of one library routine: values plus the cost of the call.
#[derive(Debug, Clone, PartialEq)]
pub struct MapResult {
    /// Output element values.
    pub values: Vec<u64>,
    /// Simulated time of this call.
    pub time: Picos,
    /// Dynamic DRAM energy of this call.
    pub energy: PicoJoules,
    /// DRAM command counts of this call.
    pub stats: CommandStats,
}

/// A simulated pLUTo-enabled module exposing the pLUTo Library routines.
///
/// Two execution paths are provided:
///
/// * [`PlutoMachine::map`] / [`PlutoMachine::map2`] compile an expression
///   graph and run it through the full Compiler → ISA → Controller stack —
///   exactly the paper's §6 flow, used by the system-integration tests.
/// * [`PlutoMachine::apply`] / [`PlutoMachine::apply2`] drive a persistent
///   engine directly through the query executor — the fast path the
///   workload suite uses for operation streams of thousands of queries
///   (LUT stores persist across calls, so GSA's per-query reload semantics
///   are preserved end to end).
#[derive(Debug)]
pub struct PlutoMachine {
    cfg: DramConfig,
    design: DesignKind,
    backend: TimingBackend,
    totals: AggregateCost,
    engine: Engine,
    stores: HashMap<String, PlutoStore>,
    /// Query-path scratch buffers, reused across every `apply` chunk so
    /// operation streams stop reallocating per query. Pure buffers — no
    /// state survives a query, so reuse cannot perturb results.
    scratch: QueryScratch,
    next_pluto: u16,
    bank: BankId,
    data_sa: SubarrayId,
    /// Segment-farming policy applied to partitioned stores as they are
    /// created (see [`crate::partition::FarmPolicy`]).
    farm: Option<crate::partition::FarmPolicy>,
}

impl PlutoMachine {
    /// Creates a machine over an arbitrary geometry.
    ///
    /// # Errors
    /// Fails if the geometry cannot host the controller layout.
    pub fn new(cfg: DramConfig, design: DesignKind) -> Result<Self, PlutoError> {
        PlutoMachine::with_backend(cfg, design, TimingBackend::Analytic)
    }

    /// Creates a machine whose fast-path engine uses the given timing
    /// backend (`DESIGN.md` §11). [`PlutoMachine::new`] is this with
    /// [`TimingBackend::Analytic`].
    ///
    /// # Errors
    /// Fails if the geometry cannot host the controller layout.
    pub fn with_backend(
        cfg: DramConfig,
        design: DesignKind,
        backend: TimingBackend,
    ) -> Result<Self, PlutoError> {
        // Validate the layout once up front.
        Controller::new(cfg.clone(), design)?;
        Ok(PlutoMachine {
            engine: Engine::new(cfg.clone()).with_timing_backend(backend),
            cfg,
            design,
            backend,
            totals: AggregateCost::default(),
            stores: HashMap::new(),
            scratch: QueryScratch::new(),
            next_pluto: 1,
            bank: BankId(0),
            data_sa: SubarrayId(0),
            farm: None,
        })
    }

    /// The paper's DDR4 configuration (Table 3).
    ///
    /// # Errors
    /// Never fails for the built-in geometry; the `Result` mirrors
    /// [`PlutoMachine::new`].
    pub fn ddr4(design: DesignKind) -> Result<Self, PlutoError> {
        PlutoMachine::new(DramConfig::ddr4_2400(), design)
    }

    /// The paper's 3D-stacked (HMC) configuration (§7).
    ///
    /// # Errors
    /// Never fails for the built-in geometry; the `Result` mirrors
    /// [`PlutoMachine::new`].
    pub fn hmc_3ds(design: DesignKind) -> Result<Self, PlutoError> {
        PlutoMachine::new(DramConfig::hmc_3ds(), design)
    }

    /// The design this machine simulates.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// The timing backend the fast-path engine charges costs with.
    pub fn timing_backend(&self) -> TimingBackend {
        self.backend
    }

    /// The DRAM geometry this machine simulates.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Aggregate cost across all calls so far.
    pub fn totals(&self) -> AggregateCost {
        self.totals
    }

    /// Cumulative DRAM command counters of the fast-path engine.
    pub fn engine_stats(&self) -> CommandStats {
        self.engine.stats()
    }

    /// Resets the aggregate counters.
    pub fn reset_totals(&mut self) {
        self.totals = AggregateCost::default();
    }

    /// Applies a segment-farming policy ([`crate::partition::FarmPolicy`])
    /// to every partitioned store on the fast path — those already cached
    /// and those created by later calls. The policy survives
    /// [`PlutoMachine::reset`] (it is configuration, not run state).
    pub fn set_segment_farming(&mut self, policy: Option<crate::partition::FarmPolicy>) {
        self.farm = policy;
        for store in self.stores.values_mut() {
            store.set_farming(policy);
        }
    }

    /// Pins a LUT resident on the machine ahead of its first query,
    /// returning the number of subarrays its store claims (2 per §5.6
    /// segment: pLUTo + master). Layered pipelines use this to keep a
    /// whole layer's tables — weight-product LUT plus requantization
    /// LUT — co-resident before any activation streams through, so the
    /// first inference pays no mid-layer load and every later layer
    /// shares the same stores via the content-keyed cache.
    ///
    /// Idempotent: preloading an already-resident LUT costs nothing and
    /// reports the same claim.
    ///
    /// # Errors
    /// Fails if the subarray pool cannot hold the store.
    pub fn preload(&mut self, lut: &Lut) -> Result<u16, PlutoError> {
        let key = self.store_for(lut)?;
        Ok(self.stores[&key].subarrays_claimed())
    }

    /// Number of distinct LUT stores currently resident on the machine
    /// (variant keys for same-name/different-table LUTs count separately).
    pub fn resident_luts(&self) -> usize {
        self.stores.len()
    }

    /// Restores the machine to its just-constructed state: a pristine
    /// engine (zero clock/energy/stats, empty array), no cached LUT
    /// stores, and zeroed totals.
    ///
    /// A reset machine is bit-identical in behavior to a freshly built
    /// one, but skips the controller-layout validation that
    /// [`PlutoMachine::new`] performs — this is what lets the cluster
    /// worker pool keep one machine per configuration and reuse it across
    /// jobs without perturbing any measurement.
    pub fn reset(&mut self) {
        self.engine = Engine::new(self.cfg.clone()).with_timing_backend(self.backend);
        self.totals = AggregateCost::default();
        self.stores.clear();
        self.next_pluto = 1;
    }

    /// Runs a compiled graph through a fresh controller.
    fn run_graph(
        &mut self,
        graph: &Graph,
        output: crate::compiler::NodeId,
        inputs: &[Vec<u64>],
    ) -> Result<MapResult, PlutoError> {
        let n = inputs.iter().map(Vec::len).max().unwrap_or(0);
        let compiled = graph.compile(output, n as u32)?;
        let mut controller = Controller::new(self.cfg.clone(), self.design)?;
        for lut in &compiled.luts {
            controller.register_lut(lut.clone());
        }
        let stats0 = controller.engine().stats();
        let run = controller.run(&compiled.program, inputs)?;
        let stats = controller.engine().stats().since(&stats0);
        self.totals.calls += 1;
        self.totals.time += run.elapsed;
        self.totals.energy += run.energy;
        Ok(MapResult {
            values: run.outputs,
            time: run.elapsed,
            energy: run.energy,
            stats,
        })
    }

    /// Returns (creating on first use) the persistent [`PlutoStore`] for
    /// a LUT on the fast path. Stores claim subarray pairs (pLUTo +
    /// master) starting at subarray 1 — one pair for a LUT that fits a
    /// subarray, one pair per §5.6 segment for a LUT that exceeds
    /// `rows_per_subarray` (which is routed through the partitioned data
    /// path transparently).
    ///
    /// Cache identity is the *full LUT* — name and shape pick the key,
    /// but a hit is only served after the stored table compares equal
    /// (same witness rule as the packed-row cache in [`crate::store`]);
    /// a different table reusing a name deterministically claims its own
    /// variant key and subarrays instead of aliasing.
    fn store_for(&mut self, lut: &Lut) -> Result<String, PlutoError> {
        let base = format!("{}#{}x{}", lut.name(), lut.input_bits(), lut.output_bits());
        let mut key = base.clone();
        let mut variant = 0usize;
        loop {
            match self.stores.get(&key) {
                Some(existing) if existing.lut() == lut => return Ok(key),
                Some(_) => {
                    variant += 1;
                    key = format!("{base}#v{variant}");
                }
                None => break,
            }
        }
        let mut store = PlutoStore::load(
            &mut self.engine,
            lut.clone(),
            self.bank,
            SubarrayId(self.next_pluto),
        )?;
        store.set_farming(self.farm);
        self.next_pluto += store.subarrays_claimed();
        self.stores.insert(key.clone(), store);
        Ok(key)
    }

    /// Charges the §6.3 operand-alignment sequence for one merged input
    /// row: RowClone the left operand, DRISA-shift it by the right
    /// operand's width, and Ambit-OR the operands together (real engine
    /// commands on scratch rows).
    fn charge_alignment(&mut self, shift_bits: u32) -> Result<(), PlutoError> {
        let loc = |row: u16| pluto_dram::RowLoc {
            bank: self.bank,
            subarray: self.data_sa,
            row: RowId(row),
        };
        // Scratch rows 2..8 of the data subarray.
        self.engine.row_clone_fpm(loc(2), RowId(3))?;
        self.engine.shift_row(loc(3), true, shift_bits)?;
        // Ambit OR: AAP(a,T0); AAP(b,T1); AAP(C1,T2); TRA; AAP(T0,dst).
        self.engine.row_clone_fpm(loc(3), RowId(4))?;
        self.engine.row_clone_fpm(loc(2), RowId(5))?;
        self.engine.row_clone_fpm(loc(7), RowId(6))?;
        self.engine
            .triple_row_activate(self.bank, self.data_sa, [RowId(4), RowId(5), RowId(6)])?;
        self.engine.row_clone_fpm(loc(4), RowId(2))?;
        Ok(())
    }

    /// Fast-path elementwise LUT application on the persistent engine.
    /// Chunks the input across as many queries as needed; the LUT store
    /// persists across calls (GSA reload costs recur per query, §5.2.1).
    ///
    /// LUTs larger than one subarray are routed through the §5.6
    /// partitioned data path transparently ([`crate::partition`]): the
    /// same call serves an 8-bit gamma table and a 4096-entry direct
    /// table, with §5.6 max-latency / summed-energy cost semantics folded
    /// into the reported call cost.
    ///
    /// # Errors
    /// Fails if inputs exceed the LUT's index range or the subarray pool is
    /// exhausted.
    pub fn apply(&mut self, lut: &Lut, inputs: &[u64]) -> Result<MapResult, PlutoError> {
        let key = self.store_for(lut)?;
        let capacity = slots_per_row(self.cfg.row_bytes, lut.slot_bits());
        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();
        let stats0 = self.engine.stats();
        let mut values = Vec::with_capacity(inputs.len());
        let mut store = self.stores.remove(&key).expect("store cached above");
        let result: Result<(), PlutoError> = (|| {
            for chunk in inputs.chunks(capacity.max(1)) {
                store.query_with(
                    &mut self.engine,
                    self.design,
                    self.data_sa,
                    self.data_sa,
                    chunk,
                    RowId(0),
                    RowId(1),
                    &mut self.scratch,
                )?;
                values.extend_from_slice(self.scratch.outputs());
            }
            Ok(())
        })();
        self.stores.insert(key, store);
        result?;
        let time = self.engine.elapsed() - clock0;
        let energy = self.engine.command_energy() - energy0;
        self.totals.calls += 1;
        self.totals.time += time;
        self.totals.energy += energy;
        Ok(MapResult {
            values,
            time,
            energy,
            stats: self.engine.stats().since(&stats0),
        })
    }

    /// Fast-path binary LUT application: `lut[(a << b_bits) | b]`, charging
    /// the shift + OR alignment commands per input row (§6.3).
    ///
    /// # Errors
    /// Fails if `a_bits + b_bits` differs from the LUT's input width, the
    /// vectors differ in length, or any operand is out of range.
    pub fn apply2(
        &mut self,
        lut: &Lut,
        a: &[u64],
        a_bits: u32,
        b: &[u64],
        b_bits: u32,
    ) -> Result<MapResult, PlutoError> {
        if a.len() != b.len() {
            return Err(PlutoError::LayoutMismatch {
                reason: format!("operand lengths differ: {} vs {}", a.len(), b.len()),
            });
        }
        if a_bits + b_bits != lut.input_bits() {
            return Err(PlutoError::InvalidProgram {
                reason: format!(
                    "LUT `{}` expects {} input bits, operands supply {}",
                    lut.name(),
                    lut.input_bits(),
                    a_bits + b_bits
                ),
            });
        }
        let mask_a = crate::lut::width_mask(a_bits);
        let mask_b = crate::lut::width_mask(b_bits);
        for (&x, &y) in a.iter().zip(b) {
            if x & !mask_a != 0 || y & !mask_b != 0 {
                return Err(PlutoError::IndexOutOfRange {
                    value: if x & !mask_a != 0 { x } else { y },
                    input_bits: lut.input_bits(),
                });
            }
        }
        let merged: Vec<u64> = a.iter().zip(b).map(|(&x, &y)| (x << b_bits) | y).collect();
        // Charge the alignment sequence once per input row-chunk.
        let capacity = slots_per_row(self.cfg.row_bytes, lut.slot_bits()).max(1);
        let clock0 = self.engine.elapsed();
        let energy0 = self.engine.command_energy();
        let stats0 = self.engine.stats();
        for _ in 0..merged.len().div_ceil(capacity) {
            self.charge_alignment(b_bits)?;
        }
        let mut result = self.apply(lut, &merged)?;
        // Fold the alignment cost into the reported call cost.
        result.time = self.engine.elapsed() - clock0;
        result.energy = self.engine.command_energy() - energy0;
        result.stats = self.engine.stats().since(&stats0);
        Ok(result)
    }

    /// `api_pluto_map`: applies an arbitrary LUT elementwise.
    ///
    /// # Errors
    /// Fails if inputs exceed the LUT's index range or the geometry's
    /// capacity.
    pub fn map(&mut self, lut: &Lut, inputs: &[u64]) -> Result<MapResult, PlutoError> {
        let mut g = Graph::new();
        let x = g.input(lut.input_bits());
        let y = g.map(lut.clone(), x);
        self.run_graph(&g, y, &[inputs.to_vec()])
    }

    /// `api_pluto_map2`: applies a binary LUT over concatenated operands
    /// `lut[(a << b_bits) | b]`.
    ///
    /// # Errors
    /// Fails if `a_bits + b_bits` differs from the LUT's input width.
    pub fn map2(
        &mut self,
        lut: &Lut,
        a: &[u64],
        a_bits: u32,
        b: &[u64],
        b_bits: u32,
    ) -> Result<MapResult, PlutoError> {
        let mut g = Graph::new();
        let na = g.input(a_bits);
        let nb = g.input(b_bits);
        let y = g.combine(lut.clone(), na, nb);
        self.run_graph(&g, y, &[a.to_vec(), b.to_vec()])
    }

    /// `api_pluto_add`: `n`-bit + `n`-bit addition via an add LUT.
    ///
    /// # Errors
    /// Fails if operands exceed `n` bits.
    pub fn add(&mut self, bits: u32, a: &[u64], b: &[u64]) -> Result<MapResult, PlutoError> {
        self.map2(&catalog::add(bits)?, a, bits, b, bits)
    }

    /// `api_pluto_mul`: `n`-bit × `n`-bit multiplication via a mul LUT.
    ///
    /// # Errors
    /// Fails if operands exceed `n` bits.
    pub fn mul(&mut self, bits: u32, a: &[u64], b: &[u64]) -> Result<MapResult, PlutoError> {
        self.map2(&catalog::mul(bits)?, a, bits, b, bits)
    }

    /// Row-level bitwise AND via Ambit.
    ///
    /// # Errors
    /// Propagates controller errors.
    pub fn bitwise_and(
        &mut self,
        bits: u32,
        a: &[u64],
        b: &[u64],
    ) -> Result<MapResult, PlutoError> {
        let mut g = Graph::new();
        let na = g.input(bits);
        let nb = g.input(bits);
        let y = g.and(na, nb);
        self.run_graph(&g, y, &[a.to_vec(), b.to_vec()])
    }

    /// Row-level bitwise OR via Ambit.
    ///
    /// # Errors
    /// Propagates controller errors.
    pub fn bitwise_or(&mut self, bits: u32, a: &[u64], b: &[u64]) -> Result<MapResult, PlutoError> {
        let mut g = Graph::new();
        let na = g.input(bits);
        let nb = g.input(bits);
        let y = g.or(na, nb);
        self.run_graph(&g, y, &[a.to_vec(), b.to_vec()])
    }

    /// Row-level bitwise XOR — not natively supported by Ambit's
    /// AND/OR/NOT set; pLUTo's flexibility lets it run as one LUT query
    /// over paired operands (Table 6's XOR advantage).
    ///
    /// # Errors
    /// Fails if operands exceed `bits` bits.
    pub fn bitwise_xor(
        &mut self,
        bits: u32,
        a: &[u64],
        b: &[u64],
    ) -> Result<MapResult, PlutoError> {
        self.map2(&catalog::xor(bits)?, a, bits, b, bits)
    }

    /// Bit counting (the paper's BC-4 / BC-8 workloads).
    ///
    /// # Errors
    /// Fails if inputs exceed `bits` bits.
    pub fn popcount(&mut self, bits: u32, inputs: &[u64]) -> Result<MapResult, PlutoError> {
        self.map(&catalog::popcount(bits)?, inputs)
    }

    /// Image binarization at `threshold` (the paper's ImgBin workload).
    ///
    /// # Errors
    /// Fails if inputs exceed 8 bits.
    pub fn binarize(&mut self, threshold: u8, pixels: &[u64]) -> Result<MapResult, PlutoError> {
        self.map(&catalog::binarize(threshold)?, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig {
            row_bytes: 64,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 16,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        }
    }

    #[test]
    fn map_applies_lut_elementwise() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gmc).unwrap();
        let lut = Lut::from_fn("sq", 8, 16, |x| x * x).unwrap();
        let inputs: Vec<u64> = (0..200).collect();
        let r = m.map(&lut, &inputs).unwrap();
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(r.values, expect);
        assert!(r.time > Picos::ZERO);
        assert!(r.stats.sweep_steps > 0);
    }

    #[test]
    fn add_and_mul_library_routines() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let a: Vec<u64> = (0..50u64).map(|i| i % 16).collect();
        let b: Vec<u64> = (0..50u64).map(|i| (i * 7) % 16).collect();
        let sum = m.add(4, &a, &b).unwrap();
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        assert_eq!(sum.values, expect);
        let prod = m.mul(4, &a, &b).unwrap();
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(prod.values, expect);
        assert_eq!(m.totals().calls, 2);
    }

    #[test]
    fn bitwise_routines() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let a: Vec<u64> = (0..64u64).map(|i| (i * 37) % 256).collect();
        let b: Vec<u64> = (0..64u64).map(|i| (i * 11 + 5) % 256).collect();
        assert_eq!(
            m.bitwise_and(8, &a, &b).unwrap().values,
            a.iter().zip(&b).map(|(&x, &y)| x & y).collect::<Vec<_>>()
        );
        assert_eq!(
            m.bitwise_or(8, &a, &b).unwrap().values,
            a.iter().zip(&b).map(|(&x, &y)| x | y).collect::<Vec<_>>()
        );
        // XOR uses a 4-bit paired LUT to keep the LUT size moderate.
        let a4: Vec<u64> = a.iter().map(|x| x % 16).collect();
        let b4: Vec<u64> = b.iter().map(|x| x % 16).collect();
        assert_eq!(
            m.bitwise_xor(4, &a4, &b4).unwrap().values,
            a4.iter().zip(&b4).map(|(&x, &y)| x ^ y).collect::<Vec<_>>()
        );
    }

    #[test]
    fn popcount_and_binarize() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gsa).unwrap();
        let inputs: Vec<u64> = (0..100u64).map(|i| i % 256).collect();
        let bc = m.popcount(8, &inputs).unwrap();
        assert_eq!(
            bc.values,
            inputs
                .iter()
                .map(|x| x.count_ones() as u64)
                .collect::<Vec<_>>()
        );
        let bin = m.binarize(128, &inputs).unwrap();
        assert_eq!(
            bin.values,
            inputs
                .iter()
                .map(|&x| if x >= 128 { 255 } else { 0 })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gmc_beats_bsa_beats_gsa_on_map_time() {
        // Table 1 throughput ordering must emerge from the full stack.
        let inputs: Vec<u64> = (0..256).collect();
        let lut = catalog::binarize(99).unwrap();
        let mut times = Vec::new();
        for design in [DesignKind::Gsa, DesignKind::Bsa, DesignKind::Gmc] {
            let mut m = PlutoMachine::new(small_cfg(), design).unwrap();
            // Two calls: the second GSA call pays the reload.
            m.map(&lut, &inputs).unwrap();
            let r = m.map(&lut, &inputs).unwrap();
            times.push((design, r.time));
        }
        assert!(times[2].1 < times[1].1, "GMC faster than BSA: {times:?}");
        assert!(times[1].1 < times[0].1, "BSA faster than GSA: {times:?}");
    }

    #[test]
    fn apply_matches_map_output() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let lut = Lut::from_fn("sq", 8, 16, |x| x * x).unwrap();
        let inputs: Vec<u64> = (0..150).collect();
        let fast = m.apply(&lut, &inputs).unwrap();
        let slow = m.map(&lut, &inputs).unwrap();
        assert_eq!(fast.values, slow.values);
        assert!(fast.stats.sweep_steps > 0);
    }

    #[test]
    fn apply_reuses_cached_store() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gmc).unwrap();
        let lut = catalog::binarize(64).unwrap();
        m.apply(&lut, &[1, 2, 3]).unwrap();
        let before = m.next_pluto;
        m.apply(&lut, &[200, 201]).unwrap();
        assert_eq!(m.next_pluto, before, "second call reuses the store");
    }

    #[test]
    fn apply2_computes_concatenated_lookup_and_charges_alignment() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let a: Vec<u64> = (0..40u64).map(|i| i % 16).collect();
        let b: Vec<u64> = (0..40u64).map(|i| (i * 3) % 16).collect();
        let r = m.apply2(&catalog::mul(4).unwrap(), &a, 4, &b, 4).unwrap();
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(r.values, expect);
        assert!(r.stats.row_clones > 0, "alignment RowClones charged");
        assert!(r.stats.triple_acts > 0, "alignment Ambit OR charged");
    }

    #[test]
    fn apply2_validates_widths_and_lengths() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let lut = catalog::mul(4).unwrap();
        assert!(m.apply2(&lut, &[1, 2], 4, &[1], 4).is_err());
        assert!(m.apply2(&lut, &[1], 5, &[1], 4).is_err());
        assert!(m.apply2(&lut, &[99], 4, &[1], 4).is_err());
    }

    #[test]
    fn gsa_apply_pays_reload_every_query() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gsa).unwrap();
        let lut = catalog::popcount(4).unwrap();
        let r1 = m.apply(&lut, &[1, 2, 3]).unwrap();
        let r2 = m.apply(&lut, &[4, 5, 6]).unwrap();
        assert!(
            r1.stats.lisa_hops >= 16,
            "reload hops: {}",
            r1.stats.lisa_hops
        );
        assert!(r2.stats.lisa_hops >= 16);
    }

    #[test]
    fn reset_machine_is_bit_identical_to_fresh() {
        // The cluster's machine-pooling contract: a reset machine costs
        // and computes exactly like a freshly constructed one, including
        // the GSA reload semantics that depend on LUT-store state.
        for design in [DesignKind::Bsa, DesignKind::Gsa, DesignKind::Gmc] {
            let lut = catalog::popcount(8).unwrap();
            let inputs: Vec<u64> = (0..150u64).map(|i| (i * 37) % 256).collect();
            let mut fresh = PlutoMachine::new(small_cfg(), design).unwrap();
            let want = fresh.apply(&lut, &inputs).unwrap();
            let want_totals = fresh.totals();
            let want_stats = fresh.engine_stats();

            let mut pooled = PlutoMachine::new(small_cfg(), design).unwrap();
            // Dirty the machine with unrelated work, then reset.
            pooled
                .apply(&catalog::binarize(90).unwrap(), &[1, 2, 3])
                .unwrap();
            pooled.reset();
            assert_eq!(pooled.totals(), AggregateCost::default());
            let got = pooled.apply(&lut, &inputs).unwrap();
            assert_eq!(got, want, "{design}");
            assert_eq!(pooled.totals(), want_totals, "{design}");
            assert_eq!(pooled.engine_stats(), want_stats, "{design}");
        }
    }

    #[test]
    fn apply_routes_oversized_luts_through_the_partitioned_path() {
        // 2048-entry LUT over 512-row subarrays => 4 segments, served by
        // the *same* `apply` call sites use for small LUTs.
        for design in DesignKind::ALL {
            let mut m = PlutoMachine::new(small_cfg(), design).unwrap();
            let lut = Lut::from_fn("tri11", 11, 16, |x| (x * 3) & 0xFFFF).unwrap();
            let inputs: Vec<u64> = (0..300u64).map(|i| (i * 13) % 2048).collect();
            let r = m.apply(&lut, &inputs).unwrap();
            let expect: Vec<u64> = inputs.iter().map(|&x| (x * 3) & 0xFFFF).collect();
            assert_eq!(r.values, expect, "{design}");
            assert!(r.time > Picos::ZERO);
            // All 4 segments swept per chunk: ≥ 4 × 512 sweep steps.
            assert!(r.stats.sweep_steps >= 4 * 512, "{design}");
        }
    }

    #[test]
    fn partitioned_apply_pays_max_latency_not_serial_segments() {
        // §5.6 end-to-end through the library: a 4-segment LUT query's
        // reported time is close to a 1-segment query of the same row
        // count, while its energy is ~4x.
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gmc).unwrap();
        let small = Lut::from_fn("lat9", 9, 16, |x| x).unwrap(); // 512 = 1 subarray
        let big = Lut::from_fn("lat11", 11, 16, |x| x).unwrap(); // 2048 = 4 segments
        let inputs: Vec<u64> = (0..32u64).collect();
        let r1 = m.apply(&small, &inputs).unwrap();
        let r4 = m.apply(&big, &inputs).unwrap();
        let t_ratio = r4.time.as_ns() / r1.time.as_ns();
        assert!(
            t_ratio < 1.2,
            "partitioned latency should stay flat, got {t_ratio:.2}x"
        );
        let e_ratio = r4.energy.as_pj() / r1.energy.as_pj();
        assert!(
            (3.0..5.0).contains(&e_ratio),
            "partitioned energy should be ~4x, got {e_ratio:.2}x"
        );
    }

    #[test]
    fn oversized_lut_store_is_cached_across_calls() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gmc).unwrap();
        let lut = Lut::from_fn("cache11", 11, 16, |x| x ^ 0x55).unwrap();
        m.apply(&lut, &[1, 2, 3]).unwrap();
        let before = m.next_pluto;
        assert_eq!(before, 1 + 2 * 4, "4 segment pairs claimed");
        m.apply(&lut, &[2000, 2047]).unwrap();
        assert_eq!(m.next_pluto, before, "second call reuses the store");
    }

    #[test]
    fn same_name_different_contents_never_alias_a_cached_store() {
        // The store cache's identity is the full LUT, not its name and
        // widths: two truncated tables sharing both must get distinct
        // stores, answer from their own elements, and accept their own
        // index ranges.
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Gmc).unwrap();
        let first = Lut::from_fn_len("alias", 650, 16, |x| x + 1).unwrap();
        let second = Lut::from_fn_len("alias", 700, 16, |x| x + 2).unwrap();
        assert_eq!(m.apply(&first, &[0, 649]).unwrap().values, vec![1, 650]);
        let r = m.apply(&second, &[0, 690]).unwrap();
        assert_eq!(
            r.values,
            vec![2, 692],
            "second table answers from its own elements"
        );
        // And the first store is still intact (no eviction aliasing).
        assert_eq!(m.apply(&first, &[10]).unwrap().values, vec![11]);
        assert!(matches!(
            m.apply(&first, &[650]),
            Err(PlutoError::IndexOutOfRange { value: 650, .. })
        ));
    }

    #[test]
    fn totals_accumulate_and_reset() {
        let mut m = PlutoMachine::new(small_cfg(), DesignKind::Bsa).unwrap();
        let lut = catalog::binarize(10).unwrap();
        m.map(&lut, &[1, 2, 3]).unwrap();
        m.map(&lut, &[4, 5, 6]).unwrap();
        assert_eq!(m.totals().calls, 2);
        assert!(m.totals().time > Picos::ZERO);
        m.reset_totals();
        assert_eq!(m.totals(), AggregateCost::default());
    }
}
