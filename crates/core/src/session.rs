//! The unified execution API: configurable sessions over pluggable
//! workloads (`DESIGN.md` §5).
//!
//! The paper's §6.2 Library frames execution as `api_pluto_*` calls over a
//! device facade; follow-on LUT-PIM systems generalize that to
//! *configurable sessions over pluggable operations*. This module is that
//! shape for the reproduction:
//!
//! * [`ExecConfig`] / [`SessionBuilder`] — every knob that used to hide in
//!   scattered `DramConfig` literals or (worse) a `thread_local!` memory
//!   kind is an explicit value: design, memory kind, geometry, row width,
//!   SALP degree, tFAW scale, data seed.
//! * [`Session`] — owns a [`PlutoMachine`], runs [`Workload`]s one at a
//!   time or batched ([`Session::run_all`]), and accumulates one
//!   [`CostReport`] per run. A `Session` is an ownable unit of work — the
//!   prerequisite for sharded/async execution that a thread-local never
//!   was.
//! * [`Workload`] — the pluggable-scenario trait. Every paper workload in
//!   `pluto-workloads` implements it (see that crate's `registry()`), and
//!   downstream code can plug in new scenarios without touching any
//!   dispatch table.
//!
//! ```
//! use pluto_core::session::{Session, Workload};
//! use pluto_core::{DesignKind, PlutoError};
//! use pluto_core::lut::Lut;
//! use sim_support::StdRng;
//!
//! /// A user-defined scenario: square 100 bytes via an 8-bit LUT.
//! #[derive(Debug, Default)]
//! struct Square {
//!     inputs: Vec<u64>,
//!     outputs: Vec<u64>,
//! }
//!
//! impl Workload for Square {
//!     fn id(&self) -> &'static str {
//!         "square"
//!     }
//!     fn prepare(&mut self, _rng: &mut StdRng) {
//!         self.inputs = (0..100).collect();
//!     }
//!     fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
//!         let lut = Lut::from_fn("square", 8, 16, |x| x * x)?;
//!         self.outputs = session.machine_mut().apply(&lut, &self.inputs)?.values;
//!         Ok(pluto_core::session::encode_words(&self.outputs))
//!     }
//!     fn run_reference(&self) -> Vec<u8> {
//!         let expect: Vec<u64> = self.inputs.iter().map(|&x| x * x).collect();
//!         pluto_core::session::encode_words(&expect)
//!     }
//!     fn input_bytes(&self) -> f64 {
//!         self.inputs.len() as f64
//!     }
//! }
//!
//! # fn main() -> Result<(), PlutoError> {
//! let mut session = Session::builder(DesignKind::Gmc).build()?;
//! let report = session.run(&mut Square::default())?;
//! assert!(report.validated);
//! # Ok(())
//! # }
//! ```

use crate::design::DesignKind;
use crate::error::PlutoError;
use crate::library::PlutoMachine;
use pluto_dram::{DramConfig, MemoryKind, PicoJoules, Picos, TimingBackend, TimingParams};
use sim_support::{SeedableRng, StdRng};

/// Row size used for fast functional measurement runs: command timing is
/// independent of row *width* (a sweep step costs tRCD(+tRP) whether the
/// row is 256 B or 8 KiB), so sessions default to narrow rows for speed
/// and scale reported byte volumes by [`ExecConfig::row_ratio`].
pub const MEASURE_ROW_BYTES: usize = 256;

/// Row size of the paper's DDR4 configuration (Table 3).
pub const PAPER_ROW_BYTES: usize = 8192;

/// Row size of the paper's 3D-stacked (HMC) configuration (§7).
pub const PAPER_3DS_ROW_BYTES: usize = 256;

/// Default subarray-level parallelism per memory kind (Table 3: 16
/// subarrays for DDR4, 512 for 3D-stacked).
pub const fn default_salp(kind: MemoryKind) -> usize {
    match kind {
        MemoryKind::Ddr4 => 16,
        MemoryKind::Stacked3d => 512,
    }
}

/// Fully explicit execution configuration of a [`Session`].
///
/// Every field that used to be implicit — the memory kind smuggled
/// through a thread-local, the geometry repeated as `DramConfig` literals
/// at every call site — is a named value here.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// The hardware design (BSA / GSA / GMC).
    pub design: DesignKind,
    /// DDR4 or 3D-stacked memory (selects timing and energy models).
    pub kind: MemoryKind,
    /// Row (and row buffer) size in bytes.
    pub row_bytes: usize,
    /// Column burst size in bytes.
    pub burst_bytes: usize,
    /// Number of independently addressable banks.
    pub banks: u16,
    /// Subarrays per bank. A [`Workload`] may demand more via
    /// [`Workload::min_subarrays`]; each run uses the maximum of the two.
    pub subarrays_per_bank: u16,
    /// Rows per subarray.
    pub rows_per_subarray: u16,
    /// Row size the measured byte volumes are scaled to (the paper's
    /// 8 KiB DDR4 rows; see [`ExecConfig::row_ratio`]).
    pub paper_row_bytes: usize,
    /// Subarray-level parallelism applied by [`Session::wall_secs`].
    pub salp_subarrays: usize,
    /// tFAW throttle scale used by [`Session::wall_secs`] (0.0 disables
    /// the activation-window floor, 1.0 is the nominal chip tFAW).
    pub t_faw_scale: f64,
    /// Seed of the RNG handed to [`Workload::prepare`].
    pub seed: u64,
    /// Opt-in policy for farming one partitioned query's per-segment cost
    /// lanes across threads ([`crate::partition::FarmPolicy`]); `None`
    /// (the default) keeps the serial lane issue, which is bit-identical
    /// in energy as well as latency/counters.
    pub segment_farming: Option<crate::partition::FarmPolicy>,
    /// Timing backend charging the engine's command costs (`DESIGN.md`
    /// §11): the paper's analytic model, or the event-driven banked
    /// model that also charges row-buffer conflicts and command-queue
    /// contention. On serial single-bank streams the two agree
    /// bit-for-bit.
    pub timing_backend: TimingBackend,
}

impl ExecConfig {
    /// The default measurement configuration: narrow 256 B rows on one
    /// bank of DDR4 (fast functional runs, paper-equivalent reporting).
    pub fn measurement(design: DesignKind) -> Self {
        ExecConfig {
            design,
            kind: MemoryKind::Ddr4,
            row_bytes: MEASURE_ROW_BYTES,
            burst_bytes: 32,
            banks: 1,
            subarrays_per_bank: 16,
            rows_per_subarray: 512,
            paper_row_bytes: PAPER_ROW_BYTES,
            salp_subarrays: default_salp(MemoryKind::Ddr4),
            t_faw_scale: 0.0,
            seed: 0,
            segment_farming: None,
            timing_backend: TimingBackend::Analytic,
        }
    }

    /// The default measurement configuration on an explicit memory kind:
    /// [`ExecConfig::measurement`] with the kind's timing/energy models
    /// and Table 3 SALP default. This is the configuration
    /// `Session::builder(design).memory(kind)` builds — use it for
    /// cluster submissions that must match a builder-made session
    /// bit-for-bit.
    pub fn measurement_on(design: DesignKind, kind: MemoryKind) -> Self {
        let mut cfg = ExecConfig::measurement(design);
        cfg.kind = kind;
        cfg.salp_subarrays = default_salp(kind);
        cfg
    }

    /// The DRAM geometry this configuration describes.
    pub fn dram_config(&self) -> DramConfig {
        DramConfig {
            kind: self.kind,
            banks: self.banks,
            subarrays_per_bank: self.subarrays_per_bank,
            rows_per_subarray: self.rows_per_subarray,
            row_bytes: self.row_bytes,
            burst_bytes: self.burst_bytes,
        }
    }

    /// Timing parameters of the configured memory kind.
    pub fn timing(&self) -> TimingParams {
        match self.kind {
            MemoryKind::Ddr4 => TimingParams::ddr4_2400(),
            MemoryKind::Stacked3d => TimingParams::hmc_3ds(),
        }
    }

    /// Scaling factor from measurement rows to paper rows: the paper's
    /// DDR4 rows are 8 KiB ([`ExecConfig::paper_row_bytes`]); its 3DS
    /// rows are 256 B — equal to the default measurement rows, so 3DS
    /// volumes scale by 1 unless the row width is overridden.
    pub fn row_ratio(&self) -> f64 {
        let paper = match self.kind {
            MemoryKind::Ddr4 => self.paper_row_bytes,
            MemoryKind::Stacked3d => PAPER_3DS_ROW_BYTES,
        };
        paper as f64 / self.row_bytes as f64
    }
}

/// Hashable identity of an [`ExecConfig`] for keyed machine/session pools
/// (`f64` fields keyed by their bit patterns). Both the cluster's
/// per-worker machine pools and the serve path's affinity coalescer key
/// on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ConfigKey {
    design: DesignKind,
    kind: MemoryKind,
    row_bytes: usize,
    burst_bytes: usize,
    banks: u16,
    subarrays_per_bank: u16,
    rows_per_subarray: u16,
    paper_row_bytes: usize,
    salp_subarrays: usize,
    t_faw_bits: u64,
    seed: u64,
    segment_farming: Option<crate::partition::FarmPolicy>,
    timing_backend: TimingBackend,
}

impl ConfigKey {
    pub(crate) fn of(config: &ExecConfig) -> Self {
        // Exhaustive destructuring: adding a field to ExecConfig must
        // fail to compile here, not silently alias distinct configs to
        // one pooled machine.
        let ExecConfig {
            design,
            kind,
            row_bytes,
            burst_bytes,
            banks,
            subarrays_per_bank,
            rows_per_subarray,
            paper_row_bytes,
            salp_subarrays,
            t_faw_scale,
            seed,
            segment_farming,
            timing_backend,
        } = config.clone();
        ConfigKey {
            design,
            kind,
            row_bytes,
            burst_bytes,
            banks,
            subarrays_per_bank,
            rows_per_subarray,
            paper_row_bytes,
            salp_subarrays,
            t_faw_bits: t_faw_scale.to_bits(),
            seed,
            segment_farming,
            timing_backend,
        }
    }
}

/// Builder for [`Session`]s; starts from [`ExecConfig::measurement`].
///
/// The SALP degree follows the memory kind's Table 3 default (16 for
/// DDR4, 512 for 3DS) until [`SessionBuilder::salp`] pins it explicitly.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: ExecConfig,
    salp_explicit: bool,
}

impl SessionBuilder {
    /// Starts a builder for `design` with measurement defaults.
    pub fn new(design: DesignKind) -> Self {
        SessionBuilder {
            config: ExecConfig::measurement(design),
            salp_explicit: false,
        }
    }

    /// Sets the hardware design.
    #[must_use]
    pub fn design(mut self, design: DesignKind) -> Self {
        self.config.design = design;
        self
    }

    /// Sets the memory kind (and, unless pinned, its default SALP degree).
    #[must_use]
    pub fn memory(mut self, kind: MemoryKind) -> Self {
        self.config.kind = kind;
        if !self.salp_explicit {
            self.config.salp_subarrays = default_salp(kind);
        }
        self
    }

    /// Sets the row width in bytes.
    #[must_use]
    pub fn row_bytes(mut self, bytes: usize) -> Self {
        self.config.row_bytes = bytes;
        self
    }

    /// Sets the column burst size in bytes.
    #[must_use]
    pub fn burst_bytes(mut self, bytes: usize) -> Self {
        self.config.burst_bytes = bytes;
        self
    }

    /// Sets the bank count.
    #[must_use]
    pub fn banks(mut self, banks: u16) -> Self {
        self.config.banks = banks;
        self
    }

    /// Sets the subarrays-per-bank floor (workloads may demand more).
    #[must_use]
    pub fn subarrays(mut self, subarrays: u16) -> Self {
        self.config.subarrays_per_bank = subarrays;
        self
    }

    /// Sets the rows per subarray.
    #[must_use]
    pub fn rows_per_subarray(mut self, rows: u16) -> Self {
        self.config.rows_per_subarray = rows;
        self
    }

    /// Pins the subarray-level parallelism used for wall-clock scaling.
    #[must_use]
    pub fn salp(mut self, subarrays: usize) -> Self {
        self.config.salp_subarrays = subarrays;
        self.salp_explicit = true;
        self
    }

    /// Sets the tFAW throttle scale (0.0 = unthrottled).
    #[must_use]
    pub fn t_faw_scale(mut self, scale: f64) -> Self {
        self.config.t_faw_scale = scale;
        self
    }

    /// Sets the seed of the RNG handed to [`Workload::prepare`].
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Opts partitioned queries into segment farming
    /// ([`crate::partition::FarmPolicy`]); `None` keeps the serial lane
    /// issue.
    #[must_use]
    pub fn segment_farming(mut self, policy: Option<crate::partition::FarmPolicy>) -> Self {
        self.config.segment_farming = policy;
        self
    }

    /// Selects the timing backend (`DESIGN.md` §11). Defaults to
    /// [`TimingBackend::Analytic`], the paper's model.
    #[must_use]
    pub fn timing(mut self, backend: TimingBackend) -> Self {
        self.config.timing_backend = backend;
        self
    }

    /// Builds the session (constructs and validates the machine).
    ///
    /// # Errors
    /// Fails if the geometry cannot host the controller layout.
    pub fn build(self) -> Result<Session, PlutoError> {
        Session::with_config(self.config)
    }
}

/// Measured cost of one [`Workload`] run on a [`Session`].
///
/// The session-level sibling of `MapResult`: where `MapResult` reports a
/// single library call, a `CostReport` covers a whole workload batch plus
/// its functional validation verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// The workload's stable identifier.
    pub workload: &'static str,
    /// The design the run executed on.
    pub design: DesignKind,
    /// The memory kind the run executed on.
    pub kind: MemoryKind,
    /// Serial single-subarray time of the batch.
    pub time: Picos,
    /// Dynamic DRAM energy of the batch.
    pub energy: PicoJoules,
    /// Row activations issued in the batch (tFAW-relevant).
    pub acts: u64,
    /// Activations classified as row-buffer hits (`DESIGN.md` §11).
    pub row_hits: u64,
    /// Activations classified as row-buffer misses.
    pub row_misses: u64,
    /// Activations classified as row-buffer conflicts (charged latency
    /// only by the banked backend).
    pub row_conflicts: u64,
    /// Activations that found the bounded command queue full (delayed
    /// only by the banked backend).
    pub queue_stalls: u64,
    /// Paper-equivalent input bytes covered by the batch (8 KiB rows).
    pub paper_bytes: f64,
    /// Whether the pLUTo output matched the reference bit-for-bit.
    pub validated: bool,
}

impl CostReport {
    /// Serial seconds per paper-equivalent input byte.
    pub fn secs_per_byte(&self) -> f64 {
        self.time.as_secs() / self.paper_bytes
    }

    /// Joules per paper-equivalent input byte (SALP-independent, §8.3).
    pub fn joules_per_byte(&self) -> f64 {
        self.energy.as_joules() / self.paper_bytes
    }

    /// Wall-clock seconds to process `volume_bytes` of input given
    /// `subarrays`-way SALP and a tFAW scale (0.0 = unthrottled).
    pub fn scaled_wall_time(
        &self,
        volume_bytes: f64,
        subarrays: usize,
        t_faw_scale: f64,
        timing: &TimingParams,
    ) -> f64 {
        let batches = volume_bytes / self.paper_bytes;
        let serial = self.time.as_secs() * batches;
        let parallel = serial / subarrays.max(1) as f64;
        if t_faw_scale <= 0.0 {
            return parallel;
        }
        let t_faw = timing.t_faw.as_secs() * t_faw_scale;
        let act_floor = self.acts as f64 * batches * t_faw / 4.0;
        parallel.max(act_floor)
    }

    /// Energy in joules to process `volume_bytes` (independent of SALP,
    /// §8.3).
    pub fn scaled_energy(&self, volume_bytes: f64) -> f64 {
        self.joules_per_byte() * volume_bytes
    }

    /// Folds another shard's report into this one (the cluster's shard
    /// reduction): time, energy, activations, and byte volumes add;
    /// validation ANDs. Workload id, design, and kind are taken from
    /// `self` — shards of one job share all three by construction.
    ///
    /// Folding in ascending shard order is deterministic (fixed
    /// floating-point summation order), so a sharded parallel run
    /// reduces to the same bits regardless of worker scheduling.
    pub fn absorb(&mut self, shard: &CostReport) {
        debug_assert_eq!(self.design, shard.design);
        debug_assert_eq!(self.kind, shard.kind);
        self.time += shard.time;
        self.energy += shard.energy;
        self.acts += shard.acts;
        self.row_hits += shard.row_hits;
        self.row_misses += shard.row_misses;
        self.row_conflicts += shard.row_conflicts;
        self.queue_stalls += shard.queue_stalls;
        self.paper_bytes += shard.paper_bytes;
        self.validated &= shard.validated;
    }
}

/// A pluggable execution scenario: anything a [`Session`] can run,
/// validate, and cost.
///
/// The eight workload modules of `pluto-workloads` implement this trait
/// (enumerated by that crate's `registry()`); new scenarios plug in the
/// same way with no dispatch table to edit.
///
/// Both `run_pluto` and `run_reference` return a canonical little-endian
/// byte serialization of the workload output; the session compares the
/// two to set [`CostReport::validated`].
///
/// Workloads are `Send` so that a [`crate::cluster::Cluster`] can move
/// boxed scenarios onto its worker threads; scenario structs are plain
/// data, so the bound is free in practice.
pub trait Workload: Send {
    /// Stable identifier (the paper's workload label where applicable).
    fn id(&self) -> &'static str;

    /// (Re)generates the workload's input data. The session passes a
    /// deterministically seeded RNG ([`ExecConfig::seed`]); the paper
    /// scenarios pin their own generator seeds instead of drawing from it
    /// so that figure data stays bit-stable, but custom scenarios are free
    /// to use `rng`.
    fn prepare(&mut self, rng: &mut StdRng);

    /// Executes the pLUTo mapping on the session's machine and returns
    /// the serialized output.
    ///
    /// # Errors
    /// Propagates machine/workload errors.
    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError>;

    /// Runs the reference software implementation over the prepared
    /// inputs and returns the serialized output.
    fn run_reference(&self) -> Vec<u8>;

    /// Input bytes covered by one batch (before paper-row scaling).
    fn input_bytes(&self) -> f64;

    /// Minimum subarrays-per-bank the mapping needs (LUT stores claim
    /// subarray pairs). Defaults to the measurement geometry's 16.
    fn min_subarrays(&self) -> u16 {
        16
    }

    /// Splits this workload into independent input shards for parallel
    /// fan-out across a [`crate::cluster::Cluster`]'s workers.
    ///
    /// The default implementation returns an empty vector, which marks
    /// the workload as a *single shard*: the cluster runs it whole on one
    /// worker. Shardable scenarios return two or more sub-workloads, each
    /// carrying a pinned slice of the parent's input (their `prepare`
    /// must keep that slice rather than regenerate). The cluster calls
    /// [`Workload::prepare`] on the parent — with the configuration's
    /// seeded RNG, exactly as a serial run would — *before* sharding, so
    /// the slices always cover the prepared input state; the
    /// cluster runs every shard on its own machine and reduces the shard
    /// [`CostReport`]s — sums of time/energy/activations/bytes, logical
    /// AND of `validated` — into one report for the submitted job.
    ///
    /// The reduced report equals the bit-exact fold of the shard reports
    /// in shard order, so a sharded cluster run is reproducible and
    /// matches a serial shard-by-shard execution exactly. It is *not*
    /// expected to equal the unsharded run of the same workload: each
    /// shard pays its own LUT-store load, exactly as independent
    /// subarray groups would in hardware.
    fn shards(&self) -> Vec<Box<dyn Workload>> {
        Vec::new()
    }
}

/// An ownable execution context: a [`PlutoMachine`] plus the explicit
/// [`ExecConfig`] it was built from, accumulating one [`CostReport`] per
/// workload run.
///
/// Each [`Session::run`] executes on a freshly initialized machine sized
/// to the workload (cold-cost isolation, exactly the paper's per-workload
/// measurement protocol); between runs the machine is available through
/// [`Session::machine_mut`] for direct §6.2 library calls.
#[derive(Debug)]
pub struct Session {
    config: ExecConfig,
    machine: PlutoMachine,
    reports: Vec<CostReport>,
}

impl Session {
    /// Starts a [`SessionBuilder`] for `design`.
    pub fn builder(design: DesignKind) -> SessionBuilder {
        SessionBuilder::new(design)
    }

    /// Builds a session directly from an [`ExecConfig`].
    ///
    /// # Errors
    /// Fails if the geometry cannot host the controller layout.
    pub fn with_config(config: ExecConfig) -> Result<Self, PlutoError> {
        let mut machine =
            PlutoMachine::with_backend(config.dram_config(), config.design, config.timing_backend)?;
        machine.set_segment_farming(config.segment_farming);
        Ok(Session {
            config,
            machine,
            reports: Vec::new(),
        })
    }

    /// The configuration this session was built from.
    ///
    /// This is the *configured* geometry: a [`Session::run`] sizes its
    /// fresh machine to `max(subarrays_per_bank, workload.min_subarrays())`,
    /// so the machine left behind by a run may hold more subarrays than
    /// configured here — `self.machine().config()` is the effective
    /// geometry of the most recent machine.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The session's machine (state of the most recent run, or the
    /// initial machine if nothing ran yet). Its
    /// [`PlutoMachine::config`] reflects the effective geometry, which a
    /// run may have widened beyond [`Session::config`]'s subarray floor.
    pub fn machine(&self) -> &PlutoMachine {
        &self.machine
    }

    /// Mutable access to the machine for direct library calls.
    pub fn machine_mut(&mut self) -> &mut PlutoMachine {
        &mut self.machine
    }

    /// Consumes the session, returning its machine.
    pub fn into_machine(self) -> PlutoMachine {
        self.machine
    }

    /// Reports accumulated by [`Session::run`] / [`Session::run_all`], in
    /// run order.
    pub fn reports(&self) -> &[CostReport] {
        &self.reports
    }

    /// Removes and returns the accumulated reports.
    pub fn take_reports(&mut self) -> Vec<CostReport> {
        std::mem::take(&mut self.reports)
    }

    /// Drops the accumulated reports in place, keeping the allocation.
    /// The pooled-worker hot paths (cluster shards, serve batches) call
    /// this once per query, where [`Session::take_reports`]'s fresh
    /// `Vec` would churn the allocator.
    pub fn clear_reports(&mut self) {
        self.reports.clear();
    }

    /// Runs one workload: prepare on a pristine machine, execute the
    /// pLUTo mapping, validate against the reference, and record the
    /// cost.
    ///
    /// The machine starts every run in its just-constructed state
    /// (cold-cost isolation). When the effective geometry matches the
    /// machine left by the previous run, the session *resets* that
    /// machine in place instead of rebuilding it — bit-identical
    /// behavior (see [`PlutoMachine::reset`]) without re-validating the
    /// controller layout, which is what makes pooled cluster workers
    /// cheap.
    ///
    /// # Errors
    /// Propagates machine construction and workload errors.
    pub fn run(&mut self, workload: &mut dyn Workload) -> Result<CostReport, PlutoError> {
        let mut cfg = self.config.clone();
        cfg.subarrays_per_bank = cfg.subarrays_per_bank.max(workload.min_subarrays());
        let dram = cfg.dram_config();
        if *self.machine.config() == dram
            && self.machine.design() == cfg.design
            && self.machine.timing_backend() == cfg.timing_backend
        {
            self.machine.reset();
        } else {
            self.machine = PlutoMachine::with_backend(dram, cfg.design, cfg.timing_backend)?;
            self.machine.set_segment_farming(cfg.segment_farming);
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        workload.prepare(&mut rng);
        let pluto_out = workload.run_pluto(self)?;
        let validated = pluto_out == workload.run_reference();
        let totals = self.machine.totals();
        let stats = self.machine.engine_stats();
        let report = CostReport {
            workload: workload.id(),
            design: self.config.design,
            kind: self.config.kind,
            time: totals.time,
            energy: totals.energy,
            acts: stats.activates,
            row_hits: stats.row_hits,
            row_misses: stats.row_misses,
            row_conflicts: stats.row_conflicts,
            queue_stalls: stats.queue_stalls,
            paper_bytes: workload.input_bytes() * self.config.row_ratio(),
            validated,
        };
        self.reports.push(report);
        Ok(report)
    }

    /// Runs a batch of workloads in order, returning their reports (also
    /// accumulated on the session).
    ///
    /// # Errors
    /// Stops at, and propagates, the first failing run.
    pub fn run_all(
        &mut self,
        workloads: &mut [Box<dyn Workload>],
    ) -> Result<Vec<CostReport>, PlutoError> {
        workloads.iter_mut().map(|w| self.run(w.as_mut())).collect()
    }

    /// Wall-clock seconds to process `volume_bytes` under this session's
    /// SALP degree and tFAW scale.
    pub fn wall_secs(&self, report: &CostReport, volume_bytes: f64) -> f64 {
        report.scaled_wall_time(
            volume_bytes,
            self.config.salp_subarrays,
            self.config.t_faw_scale,
            &self.config.timing(),
        )
    }

    /// Energy in joules to process `volume_bytes` (SALP-independent).
    pub fn energy_joules(&self, report: &CostReport, volume_bytes: f64) -> f64 {
        report.scaled_energy(volume_bytes)
    }

    /// Compiled-plan cache counters ([`crate::plan::plan_stats`]) —
    /// process-wide and monotonic, surfaced here so session-level tools
    /// can report warm-plan hit rates next to their cost reports.
    pub fn plan_stats(&self) -> crate::plan::PlanStats {
        crate::plan::plan_stats()
    }
}

/// Canonical little-endian serialization of a word vector, for
/// [`Workload`] output comparison.
pub fn encode_words(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Flattens byte packets for [`Workload`] output comparison (both sides
/// of a comparison share one deterministic shape).
pub fn encode_packets(packets: &[Vec<u8>]) -> Vec<u8> {
    packets.iter().flat_map(|p| p.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;

    /// Minimal scenario used to exercise the session plumbing.
    #[derive(Debug)]
    struct SquareScenario {
        inputs: Vec<u64>,
        lie: bool,
    }

    impl SquareScenario {
        fn new() -> Self {
            SquareScenario {
                inputs: Vec::new(),
                lie: false,
            }
        }
    }

    impl Workload for SquareScenario {
        fn id(&self) -> &'static str {
            "square"
        }
        fn prepare(&mut self, _rng: &mut StdRng) {
            self.inputs = (0..60).map(|i| i % 256).collect();
        }
        fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
            let lut = Lut::from_fn("sq", 8, 16, |x| x * x)?;
            let out = session.machine_mut().apply(&lut, &self.inputs)?.values;
            Ok(encode_words(&out))
        }
        fn run_reference(&self) -> Vec<u8> {
            if self.lie {
                return vec![0xFF];
            }
            let expect: Vec<u64> = self.inputs.iter().map(|&x| x * x).collect();
            encode_words(&expect)
        }
        fn input_bytes(&self) -> f64 {
            self.inputs.len() as f64
        }
    }

    #[test]
    fn builder_defaults_match_measurement_config() {
        let s = Session::builder(DesignKind::Gmc).build().unwrap();
        assert_eq!(*s.config(), ExecConfig::measurement(DesignKind::Gmc));
        assert_eq!(s.config().row_bytes, MEASURE_ROW_BYTES);
        assert_eq!(s.config().salp_subarrays, 16);
        assert!((s.config().row_ratio() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn memory_kind_updates_salp_default_unless_pinned() {
        let s = Session::builder(DesignKind::Bsa)
            .memory(MemoryKind::Stacked3d)
            .build()
            .unwrap();
        assert_eq!(s.config().salp_subarrays, 512);
        assert!((s.config().row_ratio() - 1.0).abs() < 1e-12);
        // measurement_on is exactly what the builder produces — the
        // contract cluster submissions rely on.
        assert_eq!(
            *s.config(),
            ExecConfig::measurement_on(DesignKind::Bsa, MemoryKind::Stacked3d)
        );

        let pinned = Session::builder(DesignKind::Bsa)
            .salp(64)
            .memory(MemoryKind::Stacked3d)
            .build()
            .unwrap();
        assert_eq!(pinned.config().salp_subarrays, 64);

        // Overriding the row width rescales both kinds' paper ratios.
        let wide = Session::builder(DesignKind::Bsa)
            .memory(MemoryKind::Stacked3d)
            .row_bytes(512)
            .build()
            .unwrap();
        assert!((wide.config().row_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_validates_and_accumulates_reports() {
        let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
        let mut w = SquareScenario::new();
        let report = session.run(&mut w).unwrap();
        assert!(report.validated);
        assert_eq!(report.workload, "square");
        assert!(report.time > Picos::ZERO);
        assert!(report.acts > 0);
        assert!((report.paper_bytes - 60.0 * 32.0).abs() < 1e-9);
        let second = session.run(&mut w).unwrap();
        assert_eq!(session.reports(), &[report, second]);
        // Fresh-machine isolation: identical runs cost identically.
        assert_eq!(report, second);
        assert_eq!(session.take_reports().len(), 2);
        assert!(session.reports().is_empty());
    }

    #[test]
    fn validation_failure_is_reported_not_fatal() {
        let mut session = Session::builder(DesignKind::Bsa).build().unwrap();
        let mut w = SquareScenario::new();
        w.lie = true;
        let report = session.run(&mut w).unwrap();
        assert!(!report.validated);
    }

    #[test]
    fn run_all_preserves_order() {
        let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
        let mut ws: Vec<Box<dyn Workload>> = vec![
            Box::new(SquareScenario::new()),
            Box::new(SquareScenario::new()),
        ];
        let reports = session.run_all(&mut ws).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports, session.reports());
    }

    #[test]
    fn sessions_compose_without_global_state() {
        // The regression the thread-local made impossible: interleaving
        // sessions of different memory kinds must not perturb each other.
        let mut ddr4 = Session::builder(DesignKind::Gmc).build().unwrap();
        let mut hmc = Session::builder(DesignKind::Gmc)
            .memory(MemoryKind::Stacked3d)
            .build()
            .unwrap();
        let first = ddr4.run(&mut SquareScenario::new()).unwrap();
        let inner = hmc.run(&mut SquareScenario::new()).unwrap();
        let second = ddr4.run(&mut SquareScenario::new()).unwrap();
        assert_eq!(first, second, "inner 3DS session perturbed the outer one");
        assert_eq!(inner.kind, MemoryKind::Stacked3d);
        assert_eq!(first.kind, MemoryKind::Ddr4);
        // ×32 paper-row scaling on DDR4, ×1 on 3DS.
        assert!((first.paper_bytes / inner.paper_bytes - 32.0).abs() < 1e-9);
    }

    #[test]
    fn wall_secs_honors_salp_and_tfaw() {
        let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
        let report = session.run(&mut SquareScenario::new()).unwrap();
        let serial = report.scaled_wall_time(1e6, 1, 0.0, &session.config().timing());
        assert!((session.wall_secs(&report, 1e6) - serial / 16.0).abs() / serial < 1e-9);
        // A nominal tFAW can only slow things down.
        let throttled = report.scaled_wall_time(1e6, 2048, 1.0, &session.config().timing());
        let free = report.scaled_wall_time(1e6, 2048, 0.0, &session.config().timing());
        assert!(throttled >= free);
        // Energy is parallelism-independent.
        let e = session.energy_joules(&report, 2e6);
        assert!((e / session.energy_joules(&report, 1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn encode_helpers_are_shape_faithful() {
        assert_eq!(encode_words(&[1, 2]).len(), 16);
        assert_eq!(encode_words(&[1])[0], 1);
        assert_eq!(encode_packets(&[vec![1, 2], vec![3]]), vec![1, 2, 3]);
    }
}
