//! Sharded parallel execution: a deterministic multi-worker [`Cluster`]
//! over the [`Session`] API (`DESIGN.md` §6).
//!
//! The paper's headline claim is *massively parallel* computation —
//! thousands of subarrays querying LUTs at once — and follow-on LUT-PIM
//! work (PULSAR's simultaneous many-row activation, "Towards Efficient
//! LUT-based PIM") stresses that scalability lives or dies on exploiting
//! independent parallel units. The harness mirrors that at the host
//! level: independent `(ExecConfig, Workload)` measurement jobs fan out
//! across a pool of OS worker threads, each worker owning a keyed cache
//! of per-configuration machines, while results come back in
//! **deterministic submission order** — bit-identical to running the same
//! jobs serially through a [`Session`].
//!
//! Scheduling runs on per-worker work-stealing deques
//! (the crate-internal `deque::StealDeques`): batch shards are dealt round-robin
//! across worker lanes, the streaming [`crate::serve::Server`] injects
//! its affinity batches onto specific lanes, and an idle worker steals
//! from the back of a busy lane — so a small latency-sensitive serve
//! batch never waits behind another lane's large sweep. The same worker
//! pool executes both job flavors (the internal `Job` enum), sharing one
//! per-configuration machine pool.
//!
//! Three properties make the pool safe to put under every figure sweep:
//!
//! 1. **Bit-identity.** A worker runs each job through [`Session::run`]
//!    on a pristine machine (reset in place when the geometry matches —
//!    see [`crate::PlutoMachine::reset`]), so a job's [`CostReport`] does
//!    not depend on which worker ran it, what ran before it, or how many
//!    workers exist.
//! 2. **Deterministic ordering.** Results are reassembled by submission
//!    index, and sharded jobs reduce their shard reports in ascending
//!    shard order ([`CostReport::absorb`]), fixing the floating-point
//!    summation order.
//! 3. **Machine pooling.** Workers keep one [`Session`] (and therefore
//!    one machine) per distinct *effective* configuration — the
//!    submitted [`ExecConfig`] with its subarray floor raised to the
//!    workload's [`Workload::min_subarrays`], exactly the geometry
//!    [`Session::run`] sizes its machine to — so repeat jobs on a pooled
//!    geometry skip machine construction and controller-layout
//!    validation entirely.
//!
//! ```
//! use pluto_core::cluster::Cluster;
//! use pluto_core::session::ExecConfig;
//! use pluto_core::DesignKind;
//! # use pluto_core::session::{Session, Workload};
//! # use pluto_core::lut::Lut;
//! # use sim_support::StdRng;
//! # #[derive(Debug, Default)]
//! # struct Square { inputs: Vec<u64> }
//! # impl Workload for Square {
//! #     fn id(&self) -> &'static str { "square" }
//! #     fn prepare(&mut self, _rng: &mut StdRng) { self.inputs = (0..50).collect(); }
//! #     fn run_pluto(&mut self, s: &mut Session) -> Result<Vec<u8>, pluto_core::PlutoError> {
//! #         let lut = Lut::from_fn("sq", 8, 16, |x| x * x)?;
//! #         let out = s.machine_mut().apply(&lut, &self.inputs)?.values;
//! #         Ok(pluto_core::session::encode_words(&out))
//! #     }
//! #     fn run_reference(&self) -> Vec<u8> {
//! #         let e: Vec<u64> = self.inputs.iter().map(|&x| x * x).collect();
//! #         pluto_core::session::encode_words(&e)
//! #     }
//! #     fn input_bytes(&self) -> f64 { self.inputs.len() as f64 }
//! # }
//! # fn main() -> Result<(), pluto_core::PlutoError> {
//! let mut cluster = Cluster::new(4);
//! for design in [DesignKind::Bsa, DesignKind::Gmc] {
//!     cluster.submit(ExecConfig::measurement(design), Box::new(Square::default()));
//! }
//! let reports = cluster.run()?; // submission order, bit-identical to serial
//! assert!(reports.iter().all(|r| r.validated));
//! # Ok(())
//! # }
//! ```

use crate::deque::{Pop, StealDeques};
use crate::error::PlutoError;
use crate::session::{ConfigKey, CostReport, ExecConfig, Session, Workload};
use sim_support::{SeedableRng, StdRng};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

/// One queued unit of work: a shard of a submitted job.
pub(crate) struct ShardJob {
    /// Submission index within the current batch.
    seq: usize,
    /// Shard index within the submission.
    shard: usize,
    config: ExecConfig,
    workload: Box<dyn Workload>,
}

/// What a worker can pull off a deque lane: a batch-mode shard (the
/// `submit`/`run` path) or a streaming serve batch injected by
/// [`crate::serve::Server`]. Both run on the same per-worker machine
/// pool, so a serve batch lands on sessions the batch path warmed and
/// vice versa.
pub(crate) enum Job {
    /// A shard of a submitted batch job; its result flows back through
    /// the cluster's result channel.
    Shard(ShardJob),
    /// A coalesced serve batch; its results flow back through the
    /// batch's own per-ticket reply channels.
    Serve(crate::serve::ServeBatch),
}

/// Book-keeping for one submitted job until all its shards report back.
#[derive(Debug)]
struct PendingJob {
    /// One slot per shard, filled as results arrive (any completion
    /// order), reduced in shard order.
    shards: Vec<Option<Result<CostReport, PlutoError>>>,
}

type ShardResult = (usize, usize, Result<CostReport, PlutoError>);

/// A pool of worker threads executing [`Session`] jobs in parallel with
/// serial-identical results. See the [module docs](self) for the
/// determinism contract.
///
/// Workers live as long as the cluster, and their per-[`ExecConfig`]
/// machine caches persist across [`Cluster::run`] batches, so a figure
/// binary can reuse one cluster for every sweep it prints — and the
/// streaming [`crate::serve::Server`] front-end reuses the same pool for
/// its query traffic.
#[derive(Debug)]
pub struct Cluster {
    deques: Arc<StealDeques<Job>>,
    results: mpsc::Receiver<ShardResult>,
    workers: Vec<JoinHandle<()>>,
    pending: Vec<PendingJob>,
    /// Round-robin cursor for dealing batch shards across lanes.
    next_lane: usize,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Shard(s) => f
                .debug_struct("Job::Shard")
                .field("seq", &s.seq)
                .field("shard", &s.shard)
                .finish_non_exhaustive(),
            Job::Serve(_) => f.debug_struct("Job::Serve").finish_non_exhaustive(),
        }
    }
}

impl Cluster {
    /// Spawns a cluster of `workers` threads (clamped to at least one).
    ///
    /// Worker count affects wall-clock time only, never results: reports
    /// are bit-identical for any worker count, including one.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let deques: Arc<StealDeques<Job>> = Arc::new(StealDeques::new(workers));
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|i| {
                let deques = Arc::clone(&deques);
                let tx = tx.clone();
                thread::Builder::new()
                    .name(format!("pluto-cluster-{i}"))
                    .spawn(move || worker_main(&deques, i, &tx))
                    .expect("spawning cluster worker")
            })
            .collect();
        Cluster {
            deques,
            results: rx,
            workers: handles,
            pending: Vec::new(),
            next_lane: 0,
        }
    }

    /// Spawns one worker per available CPU (what the figure binaries use
    /// unless `--workers N` / `PLUTO_WORKERS` overrides it).
    pub fn with_default_workers() -> Self {
        Cluster::new(default_workers())
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted since the last [`Cluster::run`].
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Cross-lane steals performed by the pool since construction — a
    /// worker that found its own lane empty and took the *back* item of
    /// another lane. Scheduling telemetry only; results are identical
    /// whether or not any steal happened.
    pub fn steals(&self) -> u64 {
        self.deques.steal_count()
    }

    /// Compiled-plan cache counters ([`crate::plan::plan_stats`]). The
    /// cache is process-wide, so every pooled worker shares one set of
    /// recorded plans — a tape recorded on one lane replays on all.
    pub fn plan_stats(&self) -> crate::plan::PlanStats {
        crate::plan::plan_stats()
    }

    /// Queues one workload to run whole (a single shard) under `config`.
    /// Returns the job's submission index — [`Cluster::run`] reports in
    /// exactly this order.
    ///
    /// Workers may start the job immediately; `run` collects the result.
    pub fn submit(&mut self, config: ExecConfig, workload: Box<dyn Workload>) -> usize {
        self.enqueue(config, workload, false)
    }

    /// Queues one workload with shard fan-out: the workload is first
    /// prepared (with the configuration's seeded RNG, exactly as a
    /// serial [`Session::run`] would before executing it), then split
    /// via [`Workload::shards`]. If that yields two or more shards, each
    /// runs as its own queue entry (on its own machine, any worker) and
    /// the shard reports are reduced — in shard order, via
    /// [`CostReport::absorb`] — into the single report this submission
    /// index receives. Unshardable workloads run whole, exactly as
    /// [`Cluster::submit`].
    ///
    /// Preparing before sharding guarantees the shards cover the same
    /// inputs a serial run of the workload would measure, even for
    /// scenarios that (re)generate their data in `prepare` rather than
    /// in their constructor.
    pub fn submit_sharded(&mut self, config: ExecConfig, workload: Box<dyn Workload>) -> usize {
        self.enqueue(config, workload, true)
    }

    fn enqueue(
        &mut self,
        config: ExecConfig,
        mut workload: Box<dyn Workload>,
        shard: bool,
    ) -> usize {
        let seq = self.pending.len();
        let shards = if shard {
            let mut rng = StdRng::seed_from_u64(config.seed);
            workload.prepare(&mut rng);
            workload.shards()
        } else {
            Vec::new()
        };
        let jobs: Vec<ShardJob> = if shards.len() >= 2 {
            shards
                .into_iter()
                .enumerate()
                .map(|(i, w)| ShardJob {
                    seq,
                    shard: i,
                    config: config.clone(),
                    workload: w,
                })
                .collect()
        } else {
            vec![ShardJob {
                seq,
                shard: 0,
                config,
                workload,
            }]
        };
        self.pending.push(PendingJob {
            shards: (0..jobs.len()).map(|_| None).collect(),
        });
        // Deal shards round-robin across worker lanes; idle workers
        // steal across lanes, so the exact dealing only seeds locality.
        for job in jobs {
            let lane = self.next_lane;
            self.next_lane = (self.next_lane + 1) % self.deques.lanes();
            self.deques.push(lane, Job::Shard(job));
        }
        seq
    }

    /// Pushes a coalesced serve batch onto worker `lane`'s deque (used by
    /// [`crate::serve::Server`], which owns the lane-affinity mapping).
    pub(crate) fn inject_serve(&self, lane: usize, batch: crate::serve::ServeBatch) {
        self.deques.push(lane, Job::Serve(batch));
    }

    /// Submits every workload of a batch under one configuration and
    /// runs the batch — the parallel counterpart of [`Session::run_all`].
    ///
    /// # Errors
    /// As [`Cluster::run`].
    pub fn run_all(
        &mut self,
        config: &ExecConfig,
        workloads: Vec<Box<dyn Workload>>,
    ) -> Result<Vec<CostReport>, PlutoError> {
        for w in workloads {
            self.submit(config.clone(), w);
        }
        self.run()
    }

    /// Waits for every job submitted since the last `run` and returns
    /// their reports **in submission order**, each bit-identical to the
    /// serial [`Session`] execution of the same job.
    ///
    /// # Errors
    /// If any job failed, returns the error of the lowest submission
    /// index (lowest shard index within it) — the same error a serial
    /// stop-at-first-failure loop over the jobs would surface. All other
    /// jobs of the batch still ran to completion. A workload that
    /// *panics* on a worker is caught and reported as
    /// [`PlutoError::WorkerPanic`]; the worker (and the cluster) stay
    /// usable. If the worker pool itself dies with shards outstanding
    /// (every worker thread exited), the missing shards are reported as
    /// [`PlutoError::WorkerLost`] instead of hanging the caller.
    pub fn run(&mut self) -> Result<Vec<CostReport>, PlutoError> {
        let mut pending = std::mem::take(&mut self.pending);
        let mut outstanding: usize = pending.iter().map(|p| p.shards.len()).sum();
        while outstanding > 0 {
            match self.results.recv() {
                Ok((seq, shard, outcome)) => {
                    pending[seq].shards[shard] = Some(outcome);
                    outstanding -= 1;
                }
                Err(_) => {
                    // Every worker's sender is gone: the pool died with
                    // shards outstanding. Fill the holes so the batch
                    // degrades to an error instead of blocking forever.
                    let reason = format!(
                        "cluster result channel closed with {outstanding} shard(s) outstanding"
                    );
                    for job in &mut pending {
                        for slot in &mut job.shards {
                            if slot.is_none() {
                                *slot = Some(Err(PlutoError::WorkerLost {
                                    reason: reason.clone(),
                                }));
                            }
                        }
                    }
                    break;
                }
            }
        }
        let mut reports = Vec::with_capacity(pending.len());
        for job in pending {
            let mut shards = job.shards.into_iter().map(|s| s.expect("shard accounted"));
            let mut reduced = shards.next().expect("jobs have at least one shard")?;
            for shard in shards {
                reduced.absorb(&shard?);
            }
            reports.push(reduced);
        }
        Ok(reports)
    }

    /// Test hook: shut the worker pool down (discarding queued jobs) so
    /// the degraded-pool paths can be exercised deterministically.
    #[cfg(test)]
    pub(crate) fn kill_workers(&mut self) {
        self.deques.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.deques.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker-count default: one per available CPU.
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn worker_main(deques: &StealDeques<Job>, lane: usize, results: &mpsc::Sender<ShardResult>) {
    // The keyed machine pool: one live Session (machine + config) per
    // distinct ExecConfig this worker has executed. Sessions reset their
    // machine in place between runs, so repeat configurations never pay
    // machine construction again. Batch shards and serve batches share
    // the pool.
    let mut pool: HashMap<ConfigKey, Session> = HashMap::new();
    loop {
        let job = match deques.pop(lane) {
            Pop::Item { item, .. } => item,
            Pop::Closed => return,
        };
        match job {
            Job::Shard(job) => {
                // Contain workload panics: report the job failed and keep
                // the worker alive, so `Cluster::run` surfaces an error
                // instead of deadlocking on a shard that never reports.
                let (seq, shard) = (job.seq, job.shard);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_shard(&mut pool, job.config, job.workload)
                }))
                .unwrap_or_else(|payload| {
                    // A panic may have left the pooled sessions
                    // mid-mutation; drop them (the next job rebuilds its
                    // machine).
                    pool.clear();
                    Err(PlutoError::WorkerPanic {
                        reason: panic_message(payload.as_ref()),
                    })
                });
                if results.send((seq, shard, outcome)).is_err() {
                    return; // cluster handle dropped
                }
            }
            Job::Serve(batch) => {
                // Serve batches reply on their own per-ticket channels
                // and catch per-query panics internally; a panic escaping
                // the batch machinery itself still must not kill the
                // worker (the batch's drop guards resolve its tickets).
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::serve::execute_batch(&mut pool, batch);
                }));
                if caught.is_err() {
                    pool.clear();
                }
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_shard(
    pool: &mut HashMap<ConfigKey, Session>,
    config: ExecConfig,
    mut workload: Box<dyn Workload>,
) -> Result<CostReport, PlutoError> {
    // Pool by the *effective* configuration — the subarray floor raised
    // to the workload's demand, exactly what `Session::run` sizes its
    // machine to. Keying on the raw config would make the session
    // rebuild its machine whenever consecutive jobs' `min_subarrays`
    // differ; keying on the effective one lets every repeat geometry
    // take the reset path. Reports are unaffected: the session's run
    // applies the same widening either way.
    let mut effective = config;
    effective.subarrays_per_bank = effective.subarrays_per_bank.max(workload.min_subarrays());
    let session = match pool.entry(ConfigKey::of(&effective)) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => v.insert(Session::with_config(effective)?),
    };
    let report = session.run(workload.as_mut())?;
    // Keep pooled sessions lean: the cluster, not the session, owns
    // result aggregation (and `clear_reports` keeps the allocation).
    session.clear_reports();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use crate::session::encode_words;
    use crate::DesignKind;
    use sim_support::StdRng;

    /// Square via an 8-bit LUT; shardable into fixed 20-element chunks.
    #[derive(Debug)]
    struct Square {
        inputs: Vec<u64>,
        pinned: bool,
        fail: bool,
    }

    impl Square {
        fn new(n: u64) -> Self {
            Square {
                inputs: (0..n).map(|i| i % 256).collect(),
                pinned: false,
                fail: false,
            }
        }
    }

    impl Workload for Square {
        fn id(&self) -> &'static str {
            "square"
        }
        fn prepare(&mut self, _rng: &mut StdRng) {
            if !self.pinned {
                let n = self.inputs.len() as u64;
                self.inputs = (0..n).map(|i| i % 256).collect();
            }
        }
        fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
            if self.fail {
                return Err(PlutoError::InvalidProgram {
                    reason: "injected".into(),
                });
            }
            let lut = Lut::from_fn("sq", 8, 16, |x| x * x)?;
            let out = session.machine_mut().apply(&lut, &self.inputs)?.values;
            Ok(encode_words(&out))
        }
        fn run_reference(&self) -> Vec<u8> {
            encode_words(&self.inputs.iter().map(|&x| x * x).collect::<Vec<_>>())
        }
        fn input_bytes(&self) -> f64 {
            self.inputs.len() as f64
        }
        fn shards(&self) -> Vec<Box<dyn Workload>> {
            self.inputs
                .chunks(20)
                .map(|c| {
                    Box::new(Square {
                        inputs: c.to_vec(),
                        pinned: true,
                        fail: self.fail,
                    }) as Box<dyn Workload>
                })
                .collect()
        }
    }

    fn serial_report(design: DesignKind, n: u64) -> CostReport {
        let mut session = Session::builder(design).build().unwrap();
        session.run(&mut Square::new(n)).unwrap()
    }

    #[test]
    fn parallel_reports_match_serial_in_submission_order() {
        let mut cluster = Cluster::new(3);
        let jobs: Vec<(DesignKind, u64)> = vec![
            (DesignKind::Gmc, 50),
            (DesignKind::Bsa, 30),
            (DesignKind::Gsa, 10),
            (DesignKind::Gmc, 30),
            (DesignKind::Bsa, 50),
            (DesignKind::Gmc, 50),
        ];
        for &(design, n) in &jobs {
            cluster.submit(ExecConfig::measurement(design), Box::new(Square::new(n)));
        }
        let reports = cluster.run().unwrap();
        assert_eq!(reports.len(), jobs.len());
        for (report, &(design, n)) in reports.iter().zip(&jobs) {
            assert_eq!(*report, serial_report(design, n), "{design} n={n}");
        }
    }

    #[test]
    fn results_are_worker_count_invariant() {
        let collect = |workers| {
            let mut cluster = Cluster::new(workers);
            for n in [5u64, 60, 33, 128] {
                cluster.submit(
                    ExecConfig::measurement(DesignKind::Gmc),
                    Box::new(Square::new(n)),
                );
            }
            cluster.run().unwrap()
        };
        assert_eq!(collect(1), collect(4));
    }

    #[test]
    fn sharded_submission_reduces_to_the_serial_shard_fold() {
        // 50 inputs -> three 20/20/10 shards.
        let config = ExecConfig::measurement(DesignKind::Bsa);
        let mut cluster = Cluster::new(4);
        cluster.submit_sharded(config.clone(), Box::new(Square::new(50)));
        let reduced = cluster.run().unwrap().remove(0);

        // Serial fold of the same shards through plain Sessions.
        let mut expect: Option<CostReport> = None;
        for mut shard in Square::new(50).shards() {
            let mut session = Session::with_config(config.clone()).unwrap();
            let r = session.run(shard.as_mut()).unwrap();
            match expect.as_mut() {
                None => expect = Some(r),
                Some(acc) => acc.absorb(&r),
            }
        }
        assert_eq!(reduced, expect.unwrap());
        assert!(reduced.validated);
        assert!(
            (reduced.paper_bytes - serial_report(DesignKind::Bsa, 50).paper_bytes).abs() < 1e-9
        );
    }

    #[test]
    fn unshardable_submissions_run_whole() {
        // 15 inputs -> a single 15-element shard; submit_sharded must
        // behave exactly like submit.
        let config = ExecConfig::measurement(DesignKind::Gmc);
        let mut cluster = Cluster::new(2);
        cluster.submit_sharded(config.clone(), Box::new(Square::new(15)));
        cluster.submit(config, Box::new(Square::new(15)));
        let reports = cluster.run().unwrap();
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn batches_reuse_pooled_machines() {
        let mut cluster = Cluster::new(2);
        let config = ExecConfig::measurement(DesignKind::Gmc);
        cluster.submit(config.clone(), Box::new(Square::new(40)));
        let first = cluster.run().unwrap().remove(0);
        // Second batch on the same config hits the worker's machine pool.
        cluster.submit(config, Box::new(Square::new(40)));
        let second = cluster.run().unwrap().remove(0);
        assert_eq!(first, second, "pooled machine perturbed the report");
    }

    #[test]
    fn lowest_submission_error_wins() {
        let mut cluster = Cluster::new(2);
        let config = ExecConfig::measurement(DesignKind::Gmc);
        cluster.submit(config.clone(), Box::new(Square::new(10)));
        let mut bad = Square::new(10);
        bad.fail = true;
        cluster.submit(config.clone(), Box::new(bad));
        cluster.submit(config, Box::new(Square::new(10)));
        let err = cluster.run().unwrap_err();
        assert!(matches!(err, PlutoError::InvalidProgram { .. }));
        // The cluster stays usable after a failed batch.
        cluster.submit(
            ExecConfig::measurement(DesignKind::Gmc),
            Box::new(Square::new(10)),
        );
        assert_eq!(cluster.run().unwrap().len(), 1);
    }

    #[test]
    fn run_all_mirrors_session_run_all() {
        let config = ExecConfig::measurement(DesignKind::Bsa);
        let workloads: Vec<Box<dyn Workload>> = (1..=4)
            .map(|i| Box::new(Square::new(i * 16)) as Box<dyn Workload>)
            .collect();
        let mut cluster = Cluster::new(2);
        let parallel = cluster.run_all(&config, workloads).unwrap();

        let mut serial_workloads: Vec<Box<dyn Workload>> = (1..=4)
            .map(|i| Box::new(Square::new(i * 16)) as Box<dyn Workload>)
            .collect();
        let mut session = Session::with_config(config).unwrap();
        let serial = session.run_all(&mut serial_workloads).unwrap();
        assert_eq!(parallel, serial);
    }

    /// Panics inside a workload.
    #[derive(Debug)]
    struct Bomb;

    impl Workload for Bomb {
        fn id(&self) -> &'static str {
            "bomb"
        }
        fn prepare(&mut self, _rng: &mut StdRng) {}
        fn run_pluto(&mut self, _session: &mut Session) -> Result<Vec<u8>, PlutoError> {
            panic!("boom");
        }
        fn run_reference(&self) -> Vec<u8> {
            Vec::new()
        }
        fn input_bytes(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn workload_panics_become_errors_not_deadlocks() {
        let mut cluster = Cluster::new(3);
        let config = ExecConfig::measurement(DesignKind::Gmc);
        cluster.submit(config.clone(), Box::new(Bomb));
        cluster.submit(config.clone(), Box::new(Square::new(10)));
        let err = cluster.run().unwrap_err();
        assert!(
            matches!(err, PlutoError::WorkerPanic { ref reason } if reason.contains("boom")),
            "{err}"
        );
        // The worker that caught the panic keeps serving jobs, and its
        // rebuilt machine still produces serial-identical reports.
        cluster.submit(config, Box::new(Square::new(10)));
        let report = cluster.run().unwrap().remove(0);
        assert_eq!(report, serial_report(DesignKind::Gmc, 10));
    }

    #[test]
    fn dead_pool_degrades_to_worker_lost_not_a_hang() {
        let mut cluster = Cluster::new(2);
        cluster.kill_workers();
        let config = ExecConfig::measurement(DesignKind::Gmc);
        cluster.submit(config.clone(), Box::new(Square::new(10)));
        cluster.submit(config, Box::new(Square::new(20)));
        let err = cluster.run().unwrap_err();
        assert!(
            matches!(err, PlutoError::WorkerLost { ref reason } if reason.contains("outstanding")),
            "{err}"
        );
    }

    #[test]
    fn batch_shards_record_steals_under_skewed_lanes() {
        // One worker pool property the serve path depends on: an idle
        // lane helps a loaded one. With 2 workers and many single-shard
        // jobs dealt round-robin, forcing all work through `run` should
        // complete regardless of which lane executed what.
        let mut cluster = Cluster::new(2);
        let config = ExecConfig::measurement(DesignKind::Gmc);
        for _ in 0..6 {
            cluster.submit(config.clone(), Box::new(Square::new(30)));
        }
        let reports = cluster.run().unwrap();
        assert_eq!(reports.len(), 6);
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn worker_count_clamps_to_one() {
        let cluster = Cluster::new(0);
        assert_eq!(cluster.workers(), 1);
        assert!(default_workers() >= 1);
    }
}
