//! LUT loading overhead model (paper §6.5, §8.5, Fig. 11).
//!
//! Before pLUTo can query a LUT, the replicated LUT rows must be loaded
//! into the pLUTo-enabled subarray. The paper evaluates two sources:
//! loading from elsewhere in DRAM at DDR4 bandwidth (19.2 GB/s \[135\]) and
//! loading from an M.2 SSD (7.5 GB/s \[136\]), and plots the fraction of
//! total execution time spent loading as the queried data volume grows.

use crate::design::DesignModel;
use std::fmt;

/// Where LUT data is loaded from (Fig. 11's two series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutSource {
    /// Copy from DRAM at DDR4-2400 module bandwidth.
    Ddr4Memory,
    /// DMA from an M.2 NVMe SSD.
    M2Ssd,
}

impl LutSource {
    /// Sustained bandwidth of the source in bytes per second.
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            LutSource::Ddr4Memory => 19.2e9,
            LutSource::M2Ssd => 7.5e9,
        }
    }
}

impl fmt::Display for LutSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutSource::Ddr4Memory => write!(f, "DDR4"),
            LutSource::M2Ssd => write!(f, "SSD"),
        }
    }
}

/// The §8.5 loading-overhead model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadingModel {
    /// Volume of LUT data to load (bytes): one subarray's replicated copy,
    /// `lut_elems × row_bytes`.
    pub lut_bytes: f64,
    /// Query throughput while executing (bytes of input processed per
    /// second across the parallel subarrays).
    pub query_bytes_per_sec: f64,
}

impl LoadingModel {
    /// Builds the model for a design at the paper's default configuration:
    /// an 8-bit → 8-bit LUT (256 rows) on DDR4 with 16-subarray
    /// parallelism.
    pub fn paper_default(model: &DesignModel, row_bytes: usize, subarrays: usize) -> Self {
        let lut_elems = 256u64;
        let queries_per_sec = 1.0 / model.query_latency(lut_elems).as_secs();
        // One query processes one row of 8-bit inputs per subarray.
        let query_bytes_per_sec = queries_per_sec * row_bytes as f64 * subarrays as f64;
        LoadingModel {
            lut_bytes: lut_elems as f64 * row_bytes as f64,
            query_bytes_per_sec,
        }
    }

    /// Time to load the LUT from `source`, in seconds.
    pub fn load_time(&self, source: LutSource) -> f64 {
        self.lut_bytes / source.bandwidth_bytes_per_sec()
    }

    /// Time to query `data_bytes` of input, in seconds.
    pub fn query_time(&self, data_bytes: f64) -> f64 {
        data_bytes / self.query_bytes_per_sec
    }

    /// Fraction of total execution time spent loading the LUT when
    /// processing `data_bytes` of input (Fig. 11's y-axis).
    pub fn loading_fraction(&self, source: LutSource, data_bytes: f64) -> f64 {
        let load = self.load_time(source);
        let query = self.query_time(data_bytes);
        load / (load + query)
    }

    /// Input volume at which loading time equals query time (the paper's
    /// "◆" break-even point, ≈ 1.9 MB for DDR4).
    pub fn break_even_bytes(&self, source: LutSource) -> f64 {
        self.load_time(source) * self.query_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignKind;
    use pluto_dram::{EnergyModel, TimingParams};

    fn paper_model() -> LoadingModel {
        let m = DesignModel::new(
            DesignKind::Bsa,
            TimingParams::ddr4_2400(),
            EnergyModel::ddr4(),
        );
        LoadingModel::paper_default(&m, 8192, 16)
    }

    #[test]
    fn break_even_near_paper_value() {
        // Paper §8.5: "it is sufficient to process 1.9 MB of data in the
        // DDR4-based scenario for the LUT loading time to equal the LUT
        // query time."
        let m = paper_model();
        let be = m.break_even_bytes(LutSource::Ddr4Memory) / 1e6;
        assert!(
            be > 0.9 && be < 4.0,
            "break-even {be:.2} MB should be in the paper's low-MB regime"
        );
    }

    #[test]
    fn fraction_is_half_at_break_even() {
        let m = paper_model();
        let be = m.break_even_bytes(LutSource::Ddr4Memory);
        let f = m.loading_fraction(LutSource::Ddr4Memory, be);
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_decreases_with_volume() {
        // Paper observation 2: the loading fraction quickly decreases as
        // the processed volume grows; ≈ 2 % at 120 MB for DDR4.
        let m = paper_model();
        let mut prev = 1.0;
        for mb in [1.0, 5.0, 20.0, 60.0, 120.0] {
            let f = m.loading_fraction(LutSource::Ddr4Memory, mb * 1e6);
            assert!(f < prev, "fraction must fall with volume");
            prev = f;
        }
        let at_120 = m.loading_fraction(LutSource::Ddr4Memory, 120e6);
        assert!(at_120 < 0.05, "at 120 MB the fraction is small: {at_120}");
    }

    #[test]
    fn ssd_slower_than_dram_but_same_regime() {
        // Paper observation 3: SSD loading takes longer but does not change
        // the picture fundamentally.
        let m = paper_model();
        let f_dram = m.loading_fraction(LutSource::Ddr4Memory, 20e6);
        let f_ssd = m.loading_fraction(LutSource::M2Ssd, 20e6);
        assert!(f_ssd > f_dram);
        assert!(f_ssd < 3.0 * f_dram + 0.05);
    }

    #[test]
    fn source_bandwidths() {
        assert_eq!(LutSource::Ddr4Memory.bandwidth_bytes_per_sec(), 19.2e9);
        assert_eq!(LutSource::M2Ssd.bandwidth_bytes_per_sec(), 7.5e9);
        assert_eq!(LutSource::Ddr4Memory.to_string(), "DDR4");
    }
}
