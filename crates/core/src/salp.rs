//! Subarray-level parallelism (SALP) scaling (paper §5.5, §8.7, §8.8).
//!
//! Independent pLUTo LUT Queries execute concurrently across subarrays; the
//! binding shared constraint is tFAW, which limits the module to four row
//! activations per window. This module turns a per-design query recipe into
//! per-subarray command lanes and computes the parallel makespan with the
//! [`pluto_dram::schedule`] scheduler — regenerating the paper's Fig. 13
//! (tFAW sensitivity) and Fig. 14 (subarray scaling).
//!
//! Energy is *not* affected by the degree of parallelism (§8.3): callers
//! take energy from the serial model.

use crate::design::{DesignKind, DesignModel};
use pluto_dram::{Lane, LaneStep, ParallelScheduler, Picos};

/// A batch of identical LUT queries to schedule across subarrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBatch {
    /// Number of LUT elements (rows swept per query).
    pub lut_elems: u64,
    /// Total queries to execute.
    pub queries: u64,
}

/// SALP execution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalpConfig {
    /// Number of subarrays operating in parallel (paper default: 16 for
    /// DDR4, 512 for 3DS).
    pub subarrays: usize,
    /// tFAW scale relative to nominal: 0.0 = unthrottled (the paper's
    /// default, Table 3), 1.0 = nominal DDR4 (§8.7).
    pub t_faw_scale: f64,
}

impl SalpConfig {
    /// The paper's default DDR4 configuration: 16 subarrays, unthrottled
    /// activations.
    pub fn ddr4_default() -> Self {
        SalpConfig {
            subarrays: 16,
            t_faw_scale: 0.0,
        }
    }

    /// The paper's default 3DS configuration: 512 subarrays.
    pub fn hmc_default() -> Self {
        SalpConfig {
            subarrays: 512,
            t_faw_scale: 0.0,
        }
    }
}

/// Builds the command lane of one subarray executing `queries_here`
/// consecutive LUT queries of `lut_elems` rows each on `design`.
pub fn query_lane(model: &DesignModel, lut_elems: u64, queries_here: u64) -> Lane {
    let t = model.timing();
    let mut lane = Lane::new();
    for _ in 0..queries_here {
        // GSA reload before each query (zero-length for other designs).
        let reload = model.reload_latency(lut_elems);
        if reload > Picos::ZERO {
            lane.push(LaneStep::other(reload));
        }
        // Source-row activation.
        lane.push(LaneStep::act(t.t_rcd));
        // The row sweep.
        match model.kind {
            DesignKind::Bsa => {
                lane.push_repeated(LaneStep::act(t.act_pre_cycle()), lut_elems as usize);
            }
            DesignKind::Gsa | DesignKind::Gmc => {
                lane.push_repeated(LaneStep::act(t.t_rcd), lut_elems as usize);
                lane.push(LaneStep::other(t.t_rp));
            }
        }
        // Copy-out to the destination row buffer (one LISA hop) and source
        // precharge.
        lane.push(LaneStep::other(t.t_lisa_hop));
        lane.push(LaneStep::other(t.t_rp));
    }
    lane
}

/// Computes the wall-clock time of `batch` under `salp`, distributing
/// queries round-robin across subarrays.
pub fn batch_makespan(model: &DesignModel, batch: QueryBatch, salp: SalpConfig) -> Picos {
    if batch.queries == 0 {
        return Picos::ZERO;
    }
    let subarrays = salp.subarrays.max(1) as u64;
    let per_lane = batch.queries / subarrays;
    let remainder = (batch.queries % subarrays) as usize;
    let t_faw = model.timing().t_faw.scale(salp.t_faw_scale);
    let scheduler = ParallelScheduler::new(t_faw);
    let mut lanes = Vec::with_capacity(salp.subarrays.min(batch.queries as usize));
    for i in 0..salp.subarrays.min(batch.queries as usize) {
        let q = per_lane + u64::from(i < remainder);
        if q > 0 {
            lanes.push(query_lane(model, batch.lut_elems, q));
        }
    }
    scheduler.makespan(&lanes)
}

/// Relative performance at a given tFAW scale versus unthrottled execution
/// (the paper's Fig. 13 y-axis).
pub fn t_faw_relative_performance(
    model: &DesignModel,
    batch: QueryBatch,
    subarrays: usize,
    t_faw_scale: f64,
) -> f64 {
    let free = batch_makespan(
        model,
        batch,
        SalpConfig {
            subarrays,
            t_faw_scale: 0.0,
        },
    );
    let throttled = batch_makespan(
        model,
        batch,
        SalpConfig {
            subarrays,
            t_faw_scale,
        },
    );
    free.as_secs() / throttled.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_dram::{EnergyModel, TimingParams};

    fn model(kind: DesignKind) -> DesignModel {
        DesignModel::new(kind, TimingParams::ddr4_2400(), EnergyModel::ddr4())
    }

    #[test]
    fn one_lane_matches_serial_query_latency() {
        for kind in DesignKind::ALL {
            let m = model(kind);
            let batch = QueryBatch {
                lut_elems: 256,
                queries: 1,
            };
            let t = batch_makespan(
                &m,
                batch,
                SalpConfig {
                    subarrays: 1,
                    t_faw_scale: 0.0,
                },
            );
            // Lane = setup ACT + query latency + copyout + source PRE.
            let overhead = m.timing().t_rcd + m.timing().t_lisa_hop + m.timing().t_rp;
            assert_eq!(t, m.query_latency(256) + overhead, "{kind}");
        }
    }

    #[test]
    fn scaling_is_nearly_linear_without_tfaw() {
        // Paper §8.8: "performance scaling is approximately proportional to
        // the number of subarrays operating in parallel".
        let m = model(DesignKind::Bsa);
        let total_queries = 256;
        let t1 = batch_makespan(
            &m,
            QueryBatch {
                lut_elems: 256,
                queries: total_queries,
            },
            SalpConfig {
                subarrays: 1,
                t_faw_scale: 0.0,
            },
        );
        let t16 = batch_makespan(
            &m,
            QueryBatch {
                lut_elems: 256,
                queries: total_queries,
            },
            SalpConfig {
                subarrays: 16,
                t_faw_scale: 0.0,
            },
        );
        let speedup = t1.as_secs() / t16.as_secs();
        assert!(
            (speedup - 16.0).abs() < 0.5,
            "16-subarray speedup = {speedup}"
        );
    }

    #[test]
    fn tfaw_penalty_grows_with_scale() {
        // Paper Fig. 13: performance decreases monotonically as tFAW
        // tightens from 0 % to 100 %.
        let m = model(DesignKind::Gmc);
        let batch = QueryBatch {
            lut_elems: 256,
            queries: 64,
        };
        let p0 = t_faw_relative_performance(&m, batch, 16, 0.0);
        let p50 = t_faw_relative_performance(&m, batch, 16, 0.5);
        let p100 = t_faw_relative_performance(&m, batch, 16, 1.0);
        assert!((p0 - 1.0).abs() < 1e-9);
        assert!(p50 <= p0 && p100 <= p50, "p0={p0} p50={p50} p100={p100}");
        assert!(
            p100 > 0.2,
            "throttling should not collapse performance: {p100}"
        );
    }

    #[test]
    fn single_subarray_unaffected_by_tfaw() {
        // Serial activations are spaced wider than tFAW/4 already.
        let m = model(DesignKind::Bsa);
        let batch = QueryBatch {
            lut_elems: 64,
            queries: 4,
        };
        let p = t_faw_relative_performance(&m, batch, 1, 1.0);
        assert!((p - 1.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn empty_batch_is_free() {
        let m = model(DesignKind::Bsa);
        assert_eq!(
            batch_makespan(
                &m,
                QueryBatch {
                    lut_elems: 16,
                    queries: 0
                },
                SalpConfig::ddr4_default()
            ),
            Picos::ZERO
        );
    }

    #[test]
    fn more_subarrays_never_slower() {
        let m = model(DesignKind::Gsa);
        let batch = QueryBatch {
            lut_elems: 128,
            queries: 128,
        };
        let mut prev = Picos::from_ps(u64::MAX);
        for s in [1usize, 2, 4, 8, 16, 32] {
            let t = batch_makespan(
                &m,
                batch,
                SalpConfig {
                    subarrays: s,
                    t_faw_scale: 1.0,
                },
            );
            assert!(t <= prev, "{s} subarrays slower than {}", s / 2);
            prev = t;
        }
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(SalpConfig::ddr4_default().subarrays, 16);
        assert_eq!(SalpConfig::hmc_default().subarrays, 512);
        assert_eq!(SalpConfig::ddr4_default().t_faw_scale, 0.0);
    }
}
