//! The pLUTo Match Logic (paper §5.1.2).
//!
//! A set of per-element comparators sits between the source subarray and the
//! pLUTo-enabled subarray. During a row sweep, every comparator compares the
//! index of the currently activated row against its element of the LUT query
//! input vector and asserts its matchlines on equality.
//!
//! Both helpers return lazy iterators rather than allocating a `Vec` per
//! sweep step: a sweep issues one call per LUT row, so the old per-step
//! allocations multiplied into `lut_len` heap round-trips per query.
//! Callers that need an owned vector can `.collect()` (the scalar reference
//! path in [`crate::query`] does exactly that, preserving the original
//! allocation profile for differential benchmarking).

/// Computes the matchline vector for one sweep step: element `j` is `true`
/// iff `inputs[j] == row_index` (paper Fig. 3's ✓/✗ row).
pub fn matchlines(inputs: &[u64], row_index: u64) -> impl Iterator<Item = bool> + '_ {
    inputs.iter().map(move |&x| x == row_index)
}

/// Positions of the matched elements for one sweep step.
pub fn matched_positions(inputs: &[u64], row_index: u64) -> impl Iterator<Item = usize> + '_ {
    inputs
        .iter()
        .enumerate()
        .filter_map(move |(j, &x)| (x == row_index).then_some(j))
}

/// Verifies the invariant the GMC design relies on (§5.3.3): over a full
/// sweep of `0..lut_len`, each input element matches **exactly once**.
/// Returns `true` if the invariant holds for every element.
///
/// The bound check `x < lut_len` is the *whole* invariant — a common
/// misreading is that duplicate inputs would need rejecting too. They do
/// not: the invariant is per *input element*, and element `j` matches
/// exactly when the sweep activates row `inputs[j]`, which happens exactly
/// once per sweep regardless of how many other elements hold the same
/// value. (Two elements with equal inputs assert two *different*
/// matchlines on the same step; no matchline fires twice.) See
/// `duplicates_still_match_exactly_once` below for the spelled-out case.
pub fn each_element_matches_exactly_once(inputs: &[u64], lut_len: u64) -> bool {
    inputs.iter().all(|&x| x < lut_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matchline_vec(inputs: &[u64], row_index: u64) -> Vec<bool> {
        matchlines(inputs, row_index).collect()
    }

    #[test]
    fn paper_figure3_match_pattern() {
        // Input vector [1,0,1,3]; sweeping rows 0..4 (paper Fig. 3c).
        let inputs = [1u64, 0, 1, 3];
        assert_eq!(matchline_vec(&inputs, 0), vec![false, true, false, false]);
        assert_eq!(matchline_vec(&inputs, 1), vec![true, false, true, false]);
        assert_eq!(matchline_vec(&inputs, 2), vec![false, false, false, false]);
        assert_eq!(matchline_vec(&inputs, 3), vec![false, false, false, true]);
    }

    #[test]
    fn matched_positions_lists_indices() {
        let inputs = [1u64, 0, 1, 3];
        assert_eq!(
            matched_positions(&inputs, 1).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(matched_positions(&inputs, 2).count(), 0);
    }

    #[test]
    fn exactly_once_invariant() {
        assert!(each_element_matches_exactly_once(&[0, 1, 2, 3], 4));
        assert!(!each_element_matches_exactly_once(&[0, 4], 4));
        // Empty input trivially satisfies the invariant.
        assert!(each_element_matches_exactly_once(&[], 4));
    }

    /// The documented footgun: `each_element_matches_exactly_once` checks
    /// only `x < lut_len`, and that *is* sufficient — duplicated inputs are
    /// legal and still satisfy the invariant, because the invariant counts
    /// matches per input element (per comparator), not per LUT row.
    #[test]
    fn duplicates_still_match_exactly_once() {
        let inputs = [2u64, 2, 2, 0, 2];
        assert!(each_element_matches_exactly_once(&inputs, 4));
        // Over the full sweep, every element position matches exactly once…
        let mut match_count = vec![0usize; inputs.len()];
        for row in 0..4u64 {
            for j in matched_positions(&inputs, row) {
                match_count[j] += 1;
            }
        }
        assert_eq!(match_count, vec![1; inputs.len()]);
        // …even though one step (row 2) asserts four matchlines at once.
        assert_eq!(matched_positions(&inputs, 2).count(), 4);
    }

    #[test]
    fn total_matches_over_sweep_equal_input_len() {
        let inputs = [3u64, 3, 0, 2, 1, 1, 1];
        let total: usize = (0..4u64)
            .map(|r| matched_positions(&inputs, r).count())
            .sum();
        assert_eq!(total, inputs.len());
    }
}
