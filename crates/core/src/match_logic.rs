//! The pLUTo Match Logic (paper §5.1.2).
//!
//! A set of per-element comparators sits between the source subarray and the
//! pLUTo-enabled subarray. During a row sweep, every comparator compares the
//! index of the currently activated row against its element of the LUT query
//! input vector and asserts its matchlines on equality.

/// Computes the matchline vector for one sweep step: element `j` is `true`
/// iff `inputs[j] == row_index` (paper Fig. 3's ✓/✗ row).
pub fn matchlines(inputs: &[u64], row_index: u64) -> Vec<bool> {
    inputs.iter().map(|&x| x == row_index).collect()
}

/// Positions of the matched elements for one sweep step.
pub fn matched_positions(inputs: &[u64], row_index: u64) -> Vec<usize> {
    inputs
        .iter()
        .enumerate()
        .filter_map(|(j, &x)| (x == row_index).then_some(j))
        .collect()
}

/// Verifies the invariant the GMC design relies on (§5.3.3): over a full
/// sweep of `0..lut_len`, each input element matches **exactly once**.
/// Returns `true` if the invariant holds for every element.
pub fn each_element_matches_exactly_once(inputs: &[u64], lut_len: u64) -> bool {
    inputs.iter().all(|&x| x < lut_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_match_pattern() {
        // Input vector [1,0,1,3]; sweeping rows 0..4 (paper Fig. 3c).
        let inputs = [1u64, 0, 1, 3];
        assert_eq!(matchlines(&inputs, 0), vec![false, true, false, false]);
        assert_eq!(matchlines(&inputs, 1), vec![true, false, true, false]);
        assert_eq!(matchlines(&inputs, 2), vec![false, false, false, false]);
        assert_eq!(matchlines(&inputs, 3), vec![false, false, false, true]);
    }

    #[test]
    fn matched_positions_lists_indices() {
        let inputs = [1u64, 0, 1, 3];
        assert_eq!(matched_positions(&inputs, 1), vec![0, 2]);
        assert!(matched_positions(&inputs, 2).is_empty());
    }

    #[test]
    fn exactly_once_invariant() {
        assert!(each_element_matches_exactly_once(&[0, 1, 2, 3], 4));
        assert!(!each_element_matches_exactly_once(&[0, 4], 4));
        // Empty input trivially satisfies the invariant.
        assert!(each_element_matches_exactly_once(&[], 4));
    }

    #[test]
    fn total_matches_over_sweep_equal_input_len() {
        let inputs = [3u64, 3, 0, 2, 1, 1, 1];
        let total: usize = (0..4u64).map(|r| matched_positions(&inputs, r).len()).sum();
        assert_eq!(total, inputs.len());
    }
}
