//! Property-based tests of the pLUTo architecture layer (sim-support
//! harness).

use pluto_core::isa::{parse_program, Instruction};
use pluto_core::lut::{catalog, Lut};
use pluto_core::prelude::*;
use pluto_dram::DramConfig;
use sim_support::prop::{self, Gen};
use sim_support::{prop_assert, prop_assert_eq};

const CASES: u32 = 40;

fn cfg() -> DramConfig {
    DramConfig {
        row_bytes: 64,
        burst_bytes: 8,
        banks: 2,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    }
}

/// Every design answers every random LUT identically to software.
#[test]
fn designs_agree_with_software_and_each_other() {
    prop::check(
        "designs_agree_with_software_and_each_other",
        CASES,
        |g: &mut Gen| {
            let elements: Vec<u64> = g.vec_range(16, 16, 0u64..256);
            let raw_inputs: Vec<u64> = g.vec_any(1, 49);
            let lut = Lut::from_table("rand", 4, 8, elements).unwrap();
            let inputs: Vec<u64> = raw_inputs.iter().map(|&v| v % 16).collect();
            let expect = lut.apply_all(&inputs).unwrap();
            for design in DesignKind::ALL {
                let mut m = PlutoMachine::new(cfg(), design).unwrap();
                let got = m.apply(&lut, &inputs).unwrap().values;
                prop_assert_eq!(&got, &expect, "{}", design);
            }
            Ok(())
        },
    );
}

/// Repeating a query yields identical results and identical marginal
/// cost on the non-destructive designs; GSA stays correct while paying
/// its reload every time.
#[test]
fn repeat_query_stability() {
    prop::check("repeat_query_stability", CASES, |g| {
        let inputs: Vec<u64> = g.vec_range(1, 39, 0u64..16);
        let lut = catalog::popcount(4).unwrap();
        for design in DesignKind::ALL {
            let mut m = PlutoMachine::new(cfg(), design).unwrap();
            let first = m.apply(&lut, &inputs).unwrap();
            let second = m.apply(&lut, &inputs).unwrap();
            prop_assert_eq!(&first.values, &second.values);
            if !design.destructive_reads() {
                prop_assert_eq!(first.time, second.time, "{} marginal cost stable", design);
            }
        }
        Ok(())
    });
}

/// apply2 over random widths equals the concatenated-index semantics.
#[test]
fn apply2_equals_concat_semantics() {
    prop::check("apply2_equals_concat_semantics", CASES, |g| {
        let a_bits: u32 = g.range(1u32..5);
        let b_bits: u32 = g.range(1u32..5);
        let seed: u64 = g.any();
        let lut = Lut::from_fn("cat", a_bits + b_bits, 8, |x| (x * 7) & 0xFF).unwrap();
        let n = 24usize;
        let a: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) % (1 << a_bits))
            .collect();
        let b: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 7)) % (1 << b_bits))
            .collect();
        let mut m = PlutoMachine::new(cfg(), DesignKind::Bsa).unwrap();
        let got = m.apply2(&lut, &a, a_bits, &b, b_bits).unwrap().values;
        let expect: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| lut.element((x << b_bits) | y).unwrap())
            .collect();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

/// The compiler's output is valid assembly: it round-trips through the
/// textual assembler.
#[test]
fn compiled_programs_roundtrip_as_assembly() {
    prop::check("compiled_programs_roundtrip_as_assembly", CASES, |g| {
        let n_elems: u32 = g.range(1u32..200);
        let mut graph = pluto_core::compiler::Graph::new();
        let a = graph.input(4);
        let b = graph.input(4);
        let s = graph.combine(catalog::add(4).unwrap(), a, b);
        // popcount expects 4-bit input; mask the 5-bit sum through a LUT.
        let mask = Lut::from_fn("mask4", 5, 4, |x| x & 0xF).unwrap();
        let masked = graph.map(mask, s);
        let m = graph.map(catalog::popcount(4).unwrap(), masked);
        let compiled = graph.compile(m, n_elems).unwrap();
        let text = compiled.program.to_assembly();
        let parsed = parse_program(&text).unwrap();
        prop_assert_eq!(parsed, compiled.program.instructions);
        Ok(())
    });
}

/// Query cost grows linearly with LUT size for every design (Table 1).
#[test]
fn cost_linear_in_lut_size() {
    prop::check("cost_linear_in_lut_size", CASES, |g| {
        let bits: u32 = g.range(1u32..9);
        use pluto_dram::{EnergyModel, TimingParams};
        for design in DesignKind::ALL {
            let m = DesignModel::new(design, TimingParams::ddr4_2400(), EnergyModel::ddr4());
            let n = 1u64 << bits;
            let t1 = m.query_latency(n).as_ps() as f64;
            let t2 = m.query_latency(2 * n).as_ps() as f64;
            // Doubling N must scale latency by <= 2 (affine with a
            // non-negative constant term) and >= 1.9 (dominated by the
            // per-row term).
            prop_assert!(t2 / t1 <= 2.0 + 1e-9, "{}", design);
            prop_assert!(t2 / t1 > 1.5, "{}", design);
        }
        Ok(())
    });
}

/// The ISA parser rejects any mangled mnemonic.
#[test]
fn parser_rejects_unknown_mnemonics() {
    prop::check("parser_rejects_unknown_mnemonics", CASES, |g| {
        let suffix = g.lowercase(1, 8);
        let line = format!("pluto_{suffix}_bogus $prg0, $prg1");
        prop_assert!(pluto_core::isa::parse_instruction(&line).is_err());
        Ok(())
    });
}

#[test]
fn instruction_display_covers_every_variant() {
    // Non-property companion: every instruction variant round-trips (the
    // properties above only exercise compiler-emitted subsets).
    use pluto_core::isa::{RowReg, ShiftDir, SubarrayReg};
    let all = vec![
        Instruction::RowAlloc {
            dst: RowReg(1),
            size: 8,
            bitwidth: 4,
        },
        Instruction::SubarrayAlloc {
            dst: SubarrayReg(0),
            num_rows: 16,
            lut_name: "x".into(),
        },
        Instruction::Op {
            dst: RowReg(1),
            src: RowReg(0),
            lut: SubarrayReg(0),
            lut_size: 16,
            lut_bitw: 4,
        },
        Instruction::Not {
            dst: RowReg(1),
            src: RowReg(0),
        },
        Instruction::And {
            dst: RowReg(2),
            src1: RowReg(0),
            src2: RowReg(1),
        },
        Instruction::Or {
            dst: RowReg(2),
            src1: RowReg(0),
            src2: RowReg(1),
        },
        Instruction::BitShift {
            dir: ShiftDir::Left,
            reg: RowReg(0),
            amount: 3,
        },
        Instruction::ByteShift {
            dir: ShiftDir::Right,
            reg: RowReg(0),
            amount: 2,
        },
        Instruction::Move {
            dst: RowReg(1),
            src: RowReg(0),
        },
    ];
    for inst in all {
        let parsed = pluto_core::isa::parse_instruction(&inst.to_string()).unwrap();
        assert_eq!(parsed, inst);
    }
}
