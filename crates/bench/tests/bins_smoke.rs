//! Smoke tests: every figure/table binary must run to completion in
//! `--quick` mode and produce non-empty, parseable output.
//!
//! "Parseable" here means: the expected artifact title appears, the output
//! has a tabular body (several lines), and at least one numeric cell is
//! present — enough to catch a binary that panics, prints nothing, or
//! loses its data rows, without pinning exact figures (which the unit
//! tests of each model already cover).

use std::process::Command;

/// Runs one compiled bench binary with `--quick` and returns stdout.
fn run_quick(exe: &str) -> String {
    let output = Command::new(exe)
        .arg("--quick")
        .env("PLUTO_QUICK", "1")
        .output()
        .unwrap_or_else(|e| panic!("spawning {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap_or_else(|e| panic!("{exe}: non-UTF8 stdout: {e}"))
}

/// Asserts the shared output contract for one binary.
fn assert_parseable(name: &str, stdout: &str, title: &str) {
    assert!(!stdout.trim().is_empty(), "{name}: empty stdout");
    assert!(
        stdout.contains(title),
        "{name}: missing title '{title}' in output:\n{stdout}"
    );
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        lines.len() >= 3,
        "{name}: expected a tabular body, got {} non-empty lines",
        lines.len()
    );
    // At least one numeric cell (integer or float) somewhere in the body.
    let has_number = stdout.split_whitespace().any(|tok| {
        tok.trim_matches(|c: char| !c.is_ascii_digit() && c != '.')
            .parse::<f64>()
            .is_ok()
    });
    assert!(has_number, "{name}: no numeric cells in output:\n{stdout}");
}

macro_rules! smoke {
    ($test:ident, $bin:literal, $title:literal) => {
        #[test]
        fn $test() {
            let stdout = run_quick(env!(concat!("CARGO_BIN_EXE_", $bin)));
            assert_parseable($bin, &stdout, $title);
        }
    };
}

smoke!(ablations_quick, "ablations", "Ablation 1");
smoke!(fig06_bitline_quick, "fig06_bitline", "Figure 6");
smoke!(fig07_speedup_quick, "fig07_speedup", "Figure 7");
smoke!(fig08_perf_per_area_quick, "fig08_perf_per_area", "Figure 8");
smoke!(fig09_fpga_quick, "fig09_fpga", "Figure 9");
smoke!(fig10_energy_quick, "fig10_energy", "Figure 10");
smoke!(fig11_lut_loading_quick, "fig11_lut_loading", "Figure 11");
smoke!(fig12_scalability_quick, "fig12_scalability", "Figure 12");
smoke!(fig13_tfaw_quick, "fig13_tfaw", "Figure 13");
smoke!(fig14_salp_quick, "fig14_salp", "Figure 14");
smoke!(table1_designs_quick, "table1_designs", "Table 1");
smoke!(table5_area_quick, "table5_area", "Table 5");
smoke!(table6_pum_quick, "table6_pum", "Table 6");
smoke!(table7_qnn_quick, "table7_qnn", "Table 7");
