//! Throughput and cost of the layered quantized-inference pipeline
//! (`DESIGN.md` §12), writing the machine-readable `BENCH_qnn.json`
//! baseline — the LoCalut capacity–computation sweep made explicit.
//!
//! Groups:
//!
//! * `gemv` — wall-clock of one 16×32 GEMV tile per operand width and
//!   lowering: `direct/w4` (a 256-entry signed product table, one
//!   segment), `direct/w8` (the 65 536-entry `MulDirect8`-scale table,
//!   128 partitioned §5.6 segments), and the nibble-plane `Mul8`-style
//!   contrast (`nibble/w4`, `nibble/w8`).
//! * `gemv_sim` / `gemv_energy_nj` — the *simulated* device cost of the
//!   same tiles (deterministic: engine time/energy, not host
//!   wall-clock), measured warm (stores resident, plans cached). These
//!   carry the tradeoff the sweep exists to expose: the direct path
//!   spends one lookup per MAC but every lookup sweeps the table's
//!   128 §5.6 segments — energy multiplies by the segment count while
//!   the latency merge (max over lanes, not sum) keeps the tile within
//!   ~1.5× of the nibble-plane path, which runs `limbs²` lookups per
//!   MAC against a one-segment table.
//! * `mlp` — wall-clock of the full 196→32→16→10 forward pass plus
//!   per-layer simulated-time summaries (`mlp_sim/<layer>`), the
//!   per-layer `CostReport` breakdown of the committed baseline.
//!
//! Guards (CI gates, `ci.sh`):
//!
//! * warm layers replay compiled plans — the second forward pass on a
//!   resident machine must add plan-cache hits;
//! * the direct-table GEMV holds its committed cost ratios against the
//!   nibble-plane path at 8 bits: tile energy ≥ 100× (the §5.6 segment
//!   sweep is real) while tile latency stays ≤ 2× (the partitioned
//!   latency merge is max-over-lanes — a regression to serial segment
//!   sweeps would show up as ~32×).

use pluto_core::session::{ExecConfig, Session};
use pluto_core::DesignKind;
use pluto_qnn::gemv::{GemvPath, QuantLinear};
use pluto_qnn::model::{sample_batch, QuantModel};
use pluto_qnn::requant::Requant;
use sim_support::bench::Criterion;
use sim_support::{SeedableRng, StdRng};

/// Committed floor on the direct/nibble tile *energy* ratio at 8-bit
/// operands — the §5.6 segment sweep (measured ≈ 151×).
const DIRECT_ENERGY_FLOOR: f64 = 100.0;

/// Committed ceiling on the direct/nibble tile *latency* ratio at 8-bit
/// operands (measured ≈ 1.54×). The partitioned latency merge takes the
/// max over segment lanes; if it regressed to summing the 128 lanes the
/// ratio would land near 32×.
const DIRECT_TIME_CEILING: f64 = 2.0;

fn bench_session() -> Session {
    let mut cfg = ExecConfig::measurement(DesignKind::Gmc);
    cfg.subarrays_per_bank = 300;
    Session::with_config(cfg).expect("bench session")
}

fn tile(width: u32) -> (QuantLinear, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(u64::from(width));
    let lo = -(1i32 << (width - 1));
    let hi = (1i32 << (width - 1)) - 1;
    let linear = QuantLinear::seeded("bench-tile", 16, 32, width, lo..=hi, &mut rng);
    let x = {
        use sim_support::Rng;
        (0..32).map(|_| rng.gen_range(lo..=hi)).collect()
    };
    (linear, x)
}

/// Simulated device cost `(time ns, energy nJ)` of one GEMV tile,
/// measured warm: one throwaway pass makes the stores resident and the
/// plans cached, then the second pass is the steady-state cost.
fn sim_cost(width: u32, path: GemvPath) -> (f64, f64) {
    let (linear, x) = tile(width);
    let mut session = bench_session();
    let m = session.machine_mut();
    linear.forward_on(m, &x, path).unwrap();
    let cold = m.totals();
    linear.forward_on(m, &x, path).unwrap();
    let warm = m.totals();
    (
        (warm.time - cold.time).as_ns(),
        (warm.energy - cold.energy).as_nj(),
    )
}

fn bench_gemv(c: &mut Criterion) {
    for width in [4u32, 8] {
        let (linear, x) = tile(width);
        for path in GemvPath::ALL {
            // Wall-clock on a persistent machine (stores stay resident,
            // the steady state of a model reusing tables across layers).
            let mut session = bench_session();
            let m = session.machine_mut();
            let expect = linear.forward_reference(&x);
            assert_eq!(linear.forward_on(m, &x, path).unwrap(), expect);
            let mut group = c.benchmark_group("gemv");
            group.bench_function(&format!("{path}/w{width}"), |b| {
                b.iter(|| linear.forward_on(m, &x, path).unwrap().len())
            });
            group.finish();

            let (sim_t, sim_e) = sim_cost(width, path);
            c.summary_ns(&format!("gemv_sim/{path}/w{width}"), sim_t);
            c.summary_ns(&format!("gemv_energy_nj/{path}/w{width}"), sim_e);
        }
    }
}

fn bench_mlp(c: &mut Criterion) {
    let model = QuantModel::mnist_mlp(7);
    let (_, x) = sample_batch(5, 1).remove(0);
    let oracle = model.forward_reference(&x);

    let mut session = bench_session();
    assert_eq!(
        model
            .forward_on(session.machine_mut(), &x, GemvPath::Direct)
            .unwrap(),
        oracle
    );
    let mut group = c.benchmark_group("mlp");
    group.bench_function("forward_direct", |b| {
        b.iter(|| {
            model
                .forward_on(session.machine_mut(), &x, GemvPath::Direct)
                .unwrap()
                .len()
        })
    });
    group.finish();

    // Per-layer simulated-time breakdown on a warm machine (stores
    // resident, plans cached — the serving steady state).
    let mut act = x.clone();
    for layer in &model.layers {
        let m = session.machine_mut();
        let before = m.totals();
        let accs = layer.linear.forward_on(m, &act, GemvPath::Direct).unwrap();
        act = match &layer.requant {
            Some(r) => r.apply_on(m, &accs).unwrap(),
            None => accs,
        };
        let after = session.machine().totals();
        c.summary_ns(
            &format!("mlp_sim/{}", layer.linear.name()),
            (after.time - before.time).as_ns(),
        );
    }
}

/// Requantization stays one query stream regardless of batch width.
fn bench_requant(c: &mut Criterion) {
    let stage = Requant::new(12, 2, 8);
    let accs: Vec<i32> = (0..192).map(|i| (i * 37) % 4000 - 2000).collect();
    let mut session = bench_session();
    let m = session.machine_mut();
    let mut group = c.benchmark_group("requant");
    group.bench_function("w12_batch192", |b| {
        b.iter(|| stage.apply_on(m, &accs).unwrap().len())
    });
    group.finish();
}

fn guard() {
    // Plan replay on warm layers: the second forward pass over resident
    // stores must hit the compiled-plan cache.
    let model = QuantModel::mnist_mlp(7);
    let (_, x) = sample_batch(5, 1).remove(0);
    let mut session = bench_session();
    model
        .forward_on(session.machine_mut(), &x, GemvPath::Direct)
        .unwrap();
    let cold = session.plan_stats();
    model
        .forward_on(session.machine_mut(), &x, GemvPath::Direct)
        .unwrap();
    let warm = session.plan_stats();
    let hits = warm.hits - cold.hits;
    assert!(
        hits > 0,
        "warm forward pass must replay compiled plans (0 new hits)"
    );
    println!("guard: warm MLP forward pass replayed {hits} compiled plan(s)");

    // The LoCalut axis at 8 bits, on warm (resident) stores: the direct
    // table trades 4× fewer lookups for a 128-segment sweep per lookup.
    let (direct_t, direct_e) = sim_cost(8, GemvPath::Direct);
    let (nibble_t, nibble_e) = sim_cost(8, GemvPath::NibblePlane);
    let e_ratio = direct_e / nibble_e;
    assert!(
        e_ratio >= DIRECT_ENERGY_FLOOR,
        "the 128-segment direct sweep lost its energy signature: \
         direct/nibble = {e_ratio:.1}x (committed floor {DIRECT_ENERGY_FLOOR}x)"
    );
    println!("guard: direct w8 pays {e_ratio:.1}x the nibble-plane tile energy (§5.6 sweep)");
    let t_ratio = direct_t / nibble_t;
    assert!(
        t_ratio <= DIRECT_TIME_CEILING,
        "partitioned direct GEMV latency blew past the nibble-plane path: \
         direct/nibble = {t_ratio:.2}x (committed ceiling {DIRECT_TIME_CEILING}x; \
         serial segment sweeps would read ~32x)"
    );
    println!(
        "guard: direct w8 tile latency {t_ratio:.2}x nibble-plane (max-over-lanes merge holds)"
    );
}

fn main() {
    let mut c = Criterion::named("qnn");
    bench_gemv(&mut c);
    bench_requant(&mut c);
    bench_mlp(&mut c);
    guard();
    c.finalize();
}
