//! Throughput of the §5.6 partitioned-LUT data path (`DESIGN.md` §8),
//! writing the machine-readable `BENCH_partition.json` baseline.
//!
//! Four groups on the measurement geometry (256 B rows, 512 rows per
//! subarray):
//!
//! * `query` — the end-to-end partitioned query (a 2048-entry LUT swept
//!   as 4 parallel segment lanes through [`PartitionedLut::query_with`])
//!   against a single-segment query of a 512-entry LUT (the same
//!   per-subarray sweep length), all three designs. The partitioned
//!   query still issues 4× the commands (§5.6 is authoritative for
//!   cost), but the fused data path does its data work in one pass —
//!   the wall-clock ratio gates the simulator's constant factor. Both
//!   sides run with compiled plans *disabled* (the issuing path the
//!   ratio has always measured): a warm-plan replay collapses the
//!   single query to a tape apply while the partitioned query keeps
//!   per-lane replay bookkeeping, so the ratio would gate the plan
//!   cache, not the fusion — the plan cache has its own ≥ 2× guard in
//!   `benches/query.rs` and a hit-counter guard in `benches/serve.rs`.
//! * `query_wide` — the high-segment-count regime: the Gamma12 LUT
//!   (4096 entries, 8 segments) and the full 8-bit multiplier table
//!   (65536 entries, 128 segments), the shapes §5.6 warns about.
//! * `store` — `PartitionedLut::load` with the parent's packed rows
//!   served by the process-wide cache (`load_cached`, the pooled-cluster
//!   steady state; the engine is constructed outside the timed loop)
//!   against `pack_segments_uncached`, the per-element packing work a
//!   cold cache performs.
//! * `routing` — `PlutoMachine::apply` over the same inputs with a
//!   512-entry (single) and a 2048-entry (partitioned) LUT: the
//!   transparent-routing overhead callers actually see.

use pluto_core::lut::{catalog, pack_slots, slots_per_row};
use pluto_core::partition::PartitionedLut;
use pluto_core::query::QueryScratch;
use pluto_core::store::LutStore;
use pluto_core::{DesignKind, Lut, PlutoMachine, QueryExecutor, QueryPlacement};
use pluto_dram::{BankId, DramConfig, Engine, RowId, SubarrayId};
use pluto_workloads::direct::gamma12_lut;
use sim_support::bench::Criterion;

fn wide_engine(subarrays: u16) -> Engine {
    Engine::new(DramConfig {
        row_bytes: 256,
        burst_bytes: 32,
        banks: 1,
        subarrays_per_bank: subarrays,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    })
}

fn bench_engine() -> Engine {
    wide_engine(16)
}

/// 2048-entry LUT: 4 segments on the 512-row measurement geometry.
fn big_lut() -> Lut {
    Lut::from_fn("bench2048", 11, 16, |x| (x * x) & 0xFFFF).unwrap()
}

/// 512-entry LUT: the same per-subarray sweep length, one segment.
fn small_lut() -> Lut {
    Lut::from_fn("bench512", 9, 16, |x| (x * x) & 0xFFFF).unwrap()
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    for design in DesignKind::ALL {
        let inputs: Vec<u64> = (0..128u64).map(|i| (i * 16) % 2048).collect();
        let mut e = bench_engine();
        let mut part = PartitionedLut::load(&mut e, big_lut(), BankId(0), SubarrayId(2)).unwrap();
        part.set_use_plans(false);
        let mut scratch = QueryScratch::new();
        group.bench_function(&format!("partitioned4/{design}"), |b| {
            b.iter(|| {
                part.query_with(
                    &mut e,
                    design,
                    SubarrayId(0),
                    SubarrayId(1),
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });

        let inputs: Vec<u64> = (0..128u64).map(|i| (i * 4) % 512).collect();
        let mut e = bench_engine();
        let mut store = LutStore::load(
            &mut e,
            small_lut(),
            BankId(0),
            SubarrayId(2),
            SubarrayId(1),
            0,
        )
        .unwrap();
        let placement = QueryPlacement::adjacent(BankId(0), SubarrayId(2));
        let mut scratch = QueryScratch::new();
        group.bench_function(&format!("single/{design}"), |b| {
            b.iter(|| {
                let mut ex = QueryExecutor::new(&mut e, design);
                ex.set_use_plans(false);
                ex.execute_with(
                    &mut store,
                    placement,
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });
    }
    group.finish();
}

/// High-segment-count queries: Gamma12 (4096 entries → 8 segments) and
/// the full 8-bit multiplier table (65536 entries → 128 segments).
fn bench_query_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_wide");
    for design in DesignKind::ALL {
        // Gamma12: 12→8-bit, 8 segments (needs 2 + 8×2 subarrays).
        let lut = gamma12_lut().unwrap();
        let inputs: Vec<u64> = (0..128u64).map(|i| (i * 31) % 4096).collect();
        let mut e = wide_engine(20);
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 8);
        let mut scratch = QueryScratch::new();
        group.bench_function(&format!("gamma12_8seg/{design}"), |b| {
            b.iter(|| {
                part.query_with(
                    &mut e,
                    design,
                    SubarrayId(0),
                    SubarrayId(1),
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });

        // MulDirect8: 16→16-bit, 128 segments (needs 2 + 128×2 subarrays).
        let lut = catalog::mul(8).unwrap();
        let inputs: Vec<u64> = (0..128u64).map(|i| (i * 509) % 65536).collect();
        let mut e = wide_engine(260);
        let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
        assert_eq!(part.segment_count(), 128);
        let mut scratch = QueryScratch::new();
        group.bench_function(&format!("mul8_128seg/{design}"), |b| {
            b.iter(|| {
                part.query_with(
                    &mut e,
                    design,
                    SubarrayId(0),
                    SubarrayId(1),
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });
    }
    group.finish();
}

fn bench_store_load(c: &mut Criterion) {
    let lut = big_lut();
    let mut group = c.benchmark_group("store");
    // The engine lives outside the timed loop: `load_cached` measures the
    // load itself (one cache lookup, per-segment row slicing, batched
    // pokes), not engine construction.
    let mut e = bench_engine();
    group.bench_function("load_cached", |b| {
        b.iter(|| {
            let part = PartitionedLut::load(&mut e, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
            part.segment_count()
        })
    });
    let row_bytes = bench_engine().config().row_bytes;
    let per_row = slots_per_row(row_bytes, lut.slot_bits());
    group.bench_function("pack_segments_uncached", |b| {
        b.iter(|| {
            // The packing work every segment's cache miss performs.
            lut.elements()
                .iter()
                .map(|&elem| {
                    let values = vec![elem; per_row];
                    pack_slots(&values, lut.slot_bits(), row_bytes)
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_machine_routing(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..128u64).map(|i| (i * 3) % 512).collect();
    let mut group = c.benchmark_group("routing");
    for (label, lut) in [("single512", small_lut()), ("partitioned2048", big_lut())] {
        let mut m = PlutoMachine::new(
            DramConfig {
                row_bytes: 256,
                burst_bytes: 32,
                banks: 1,
                subarrays_per_bank: 16,
                rows_per_subarray: 512,
                ..DramConfig::ddr4_2400()
            },
            DesignKind::Gmc,
        )
        .unwrap();
        group.bench_function(&format!("apply/{label}"), |b| {
            b.iter(|| m.apply(&lut, &inputs).unwrap().values.len())
        });
    }
    group.finish();
}

/// Sanity gates (deliberately loose — wall-clock on shared containers is
/// noisy), tightened for the fused single-pass data path:
///
/// * a cached 4-segment load must beat redoing the full packing work AND
///   cost less than the partitioned query it serves;
/// * a 4-segment query must cost less than 2× a single-segment query of
///   the same sweep length — it still issues 4× the commands, but data
///   moves in one pass, so only the per-lane cost accounting scales with
///   the segment count.
fn guard(c: &Criterion) {
    let cached = c.mean_ns("store/load_cached");
    let packing = c.mean_ns("store/pack_segments_uncached");
    assert!(
        cached < packing,
        "cached segment load ({cached:.0} ns) should beat uncached packing ({packing:.0} ns)"
    );
    println!(
        "guard: cached 4-segment load {:.1}x faster than uncached packing",
        packing / cached
    );
    for design in DesignKind::ALL {
        let part = c.mean_ns(&format!("query/partitioned4/{design}"));
        let single = c.mean_ns(&format!("query/single/{design}"));
        let ratio = part / single;
        assert!(
            ratio < 2.0,
            "4-segment query costs {ratio:.2}x a single-segment query on {design} \
             (fused data path expected < 2x despite 4x the commands)"
        );
        assert!(
            cached < part,
            "cached segment load ({cached:.0} ns) should cost less than the \
             partitioned query it serves ({part:.0} ns on {design})"
        );
        println!("guard: {design} partitioned/single query cost {ratio:.2}x (4x commands)");
    }
}

fn main() {
    let mut c = Criterion::named("partition");
    bench_query(&mut c);
    bench_query_wide(&mut c);
    bench_store_load(&mut c);
    bench_machine_routing(&mut c);
    guard(&c);
    c.finalize();
}
