//! Wall-clock comparison of the serial `Session` sweep against the
//! multi-worker `Cluster` executor (`DESIGN.md` §6): the full-registry
//! sweep at 1/2/4 workers, plus shard fan-out over oversize batches.
//! Writes the machine-readable `BENCH_cluster.json` baseline; the
//! speedup is the ratio of the `serial/…` record to the matching
//! `cluster/…` record (and `sharded/workers1` over `sharded/workers4`
//! for the shard path).
//!
//! Results are bit-identical across all of these configurations (asserted
//! in `tests/cluster.rs`); only wall-clock time varies. The measured
//! speedup tracks the host's core count: ~1x on a single-CPU container,
//! and at least 2x at 4 workers on a 4-core machine (the sweep's longest
//! job, CRC-32, bounds the unsharded makespan at ~40% of the serial
//! total).
//!
//! `PLUTO_QUICK=1` shrinks both the sample counts and the workload set
//! (the three long-running scenarios are dropped), matching the other
//! smoke-mode binaries.

use pluto_baselines::WorkloadId;
use pluto_bench::{measure_all, PlutoConfig};
use pluto_core::cluster::Cluster;
use pluto_core::session::Workload;
use pluto_core::DesignKind;
use pluto_dram::MemoryKind;
use pluto_workloads::bitcount::BitcountWorkload;
use pluto_workloads::image::{BinarizeWorkload, GradeWorkload};
use pluto_workloads::vecops::AddWorkload;
use pluto_workloads::workload_for;
use sim_support::bench::Criterion;
use sim_support::{bench_group, bench_main};

fn sweep_ids() -> Vec<WorkloadId> {
    let quick = std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    WorkloadId::CANONICAL
        .into_iter()
        .filter(|id| {
            !quick
                || !matches!(
                    id,
                    WorkloadId::Crc16 | WorkloadId::Crc32 | WorkloadId::Salsa20
                )
        })
        .collect()
}

fn cfg() -> PlutoConfig {
    PlutoConfig {
        design: DesignKind::Gmc,
        kind: MemoryKind::Ddr4,
    }
}

fn registry_workloads(ids: &[WorkloadId]) -> Vec<Box<dyn Workload>> {
    ids.iter().map(|&id| workload_for(id)).collect()
}

/// `registryN` for the full canonical sweep, `quick` for the smoke set.
fn sweep_label(ids: &[WorkloadId]) -> String {
    if ids.len() == WorkloadId::CANONICAL.len() {
        format!("registry{}", ids.len())
    } else {
        "quick".into()
    }
}

fn bench_serial_sweep(c: &mut Criterion) {
    let ids = sweep_ids();
    let label = sweep_label(&ids);
    c.bench_function(&format!("serial/{label}"), |b| {
        b.iter(|| measure_all(&ids, cfg()).len());
    });
}

fn bench_cluster_sweep(c: &mut Criterion) {
    let ids = sweep_ids();
    let label = sweep_label(&ids);
    let mut group = c.benchmark_group("cluster");
    for workers in [1usize, 2, 4] {
        // One long-lived pool per worker count: the steady state the
        // figure binaries run in (machine pool stays warm across
        // batches).
        let mut cluster = Cluster::new(workers);
        let config = cfg().exec_config();
        group.bench_function(&format!("workers{workers}_{label}"), |b| {
            b.iter(|| {
                cluster
                    .run_all(&config, registry_workloads(&ids))
                    .expect("cluster sweep")
                    .len()
            });
        });
    }
    group.finish();
}

/// Oversize batches of the input-sharded scenarios (small-LUT workloads,
/// where per-shard LUT-store loading is cheap relative to the queries):
/// eight measurement tiles each, fanned out with `submit_sharded`.
fn sharded_batches() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(AddWorkload::with_batch(4, 8 * 192)),
        Box::new(BitcountWorkload::with_batch(8, 8 * 192)),
        Box::new(BinarizeWorkload::with_pixels(8 * 192)),
        Box::new(GradeWorkload::with_pixels(8 * 192)),
    ]
}

fn bench_sharded_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    for workers in [1usize, 4] {
        let mut cluster = Cluster::new(workers);
        let config = cfg().exec_config();
        group.bench_function(&format!("workers{workers}_batches8x"), |b| {
            b.iter(|| {
                for w in sharded_batches() {
                    cluster.submit_sharded(config.clone(), w);
                }
                cluster.run().expect("sharded fan-out").len()
            });
        });
    }
    group.finish();
}

bench_group!(
    benches,
    bench_serial_sweep,
    bench_cluster_sweep,
    bench_sharded_fanout
);
bench_main!(benches);
