//! Single-thread throughput of the word-parallel LUT query engine
//! (`DESIGN.md` §7) against the retained scalar reference path, writing
//! the machine-readable `BENCH_query.json` baseline.
//!
//! Three groups:
//!
//! * `pack` / `unpack` — the slot packing microbenches (the streaming
//!   64-bit shift/mask accumulator vs the original bit-serial loops) at
//!   aligned, non-power-of-two, and word-straddling slot widths over one
//!   paper-sized 8 KiB row.
//! * `query` — the end-to-end LUT query on the measurement geometry (one
//!   full row of 8-bit lookups through a 256-entry LUT, all three
//!   designs), three ways: `word` (the issuing word-parallel path, plans
//!   disabled — the cold cost every first-seen plan key pays), `scalar`
//!   (the retained scalar reference), and `warm_plan` (the compiled-plan
//!   cache hot: the query applies a memoized cost tape instead of
//!   re-simulating every command, `DESIGN.md` §10).
//! * `store` — `LutStore::load` with the packed-row cache warm (the
//!   pooled-cluster steady state) vs `pack_rows_uncached`, the
//!   per-element packing work a cache miss performs.
//!
//! All paths are bit-identical (enforced by `tests/query_differential.rs`
//! and `tests/plan_replay.rs`); only throughput differs. This target also
//! acts as CI's **throughput regression guard**: it fails outright if the
//! word-parallel packer is less than 2x the scalar reference on the
//! packing microbench (1.5x at the narrowest width, where the structural
//! gap is smallest), if the end-to-end word query is not faster than the
//! scalar query it replaced, or if a warm-plan query is not at least 2x
//! faster than the issuing path it memoizes.

use pluto_core::lut::{catalog, pack_slots, pack_slots_scalar, unpack_slots, unpack_slots_scalar};
use pluto_core::query::{QueryExecutor, QueryPlacement, QueryScratch};
use pluto_core::store::LutStore;
use pluto_core::DesignKind;
use pluto_dram::{BankId, DramConfig, Engine, RowId, SubarrayId};
use sim_support::bench::Criterion;

/// The paper's DDR4 row width (Table 3) — the realistic packing volume.
const ROW_BYTES: usize = 8192;

/// Aligned (8), non-power-of-two (5), and word-straddling (11) widths.
const WIDTHS: [u32; 3] = [5, 8, 11];

fn values_for(width: u32) -> Vec<u64> {
    let capacity = (ROW_BYTES * 8) / width as usize;
    let mask = (1u64 << width) - 1;
    (0..capacity as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
        .collect()
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    for width in WIDTHS {
        let values = values_for(width);
        group.bench_function(&format!("word/w{width}"), |b| {
            b.iter(|| pack_slots(&values, width, ROW_BYTES).unwrap())
        });
        group.bench_function(&format!("scalar/w{width}"), |b| {
            b.iter(|| pack_slots_scalar(&values, width, ROW_BYTES).unwrap())
        });
    }
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("unpack");
    for width in WIDTHS {
        let values = values_for(width);
        let count = values.len();
        let row = pack_slots(&values, width, ROW_BYTES).unwrap();
        group.bench_function(&format!("word/w{width}"), |b| {
            b.iter(|| unpack_slots(&row, width, count))
        });
        group.bench_function(&format!("scalar/w{width}"), |b| {
            b.iter(|| unpack_slots_scalar(&row, width, count))
        });
    }
    group.finish();
}

/// The measurement geometry every `Session` runs on (256 B rows, 512
/// rows per subarray), with a 256-entry 8-bit LUT: one query serves a
/// full row of 256 lookups in a 256-step sweep.
fn query_engine() -> Engine {
    Engine::new(DramConfig {
        row_bytes: 256,
        burst_bytes: 32,
        banks: 1,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    })
}

fn query_setup(e: &mut Engine) -> (LutStore, QueryPlacement) {
    let lut = catalog::binarize(128).unwrap();
    let bank = BankId(0);
    let pluto = SubarrayId(2);
    let store = LutStore::load(e, lut, bank, pluto, SubarrayId(1), 0).unwrap();
    (store, QueryPlacement::adjacent(bank, pluto))
}

fn bench_query(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..256u64).collect();
    let mut group = c.benchmark_group("query");
    for design in DesignKind::ALL {
        let mut e = query_engine();
        let (mut store, placement) = query_setup(&mut e);
        let mut scratch = QueryScratch::new();
        group.bench_function(&format!("word/{design}"), |b| {
            b.iter(|| {
                // Plans off: this is the issuing path — the cold cost a
                // first-seen plan key pays, and the differential oracle.
                let mut ex = QueryExecutor::new(&mut e, design);
                ex.set_use_plans(false);
                ex.execute_with(
                    &mut store,
                    placement,
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });
        let mut e = query_engine();
        let (mut store, placement) = query_setup(&mut e);
        group.bench_function(&format!("scalar/{design}"), |b| {
            b.iter(|| {
                let mut ex = QueryExecutor::new(&mut e, design);
                ex.execute_scalar_reference(&mut store, placement, &inputs, RowId(0), RowId(1))
                    .unwrap()
                    .0
                    .len()
            })
        });
        let mut e = query_engine();
        let (mut store, placement) = query_setup(&mut e);
        let mut scratch = QueryScratch::new();
        // One unmeasured query records the plan; the measured loop then
        // runs the warm steady state (tape replay + data gather only).
        {
            let mut ex = QueryExecutor::new(&mut e, design);
            ex.execute_with(
                &mut store,
                placement,
                &inputs,
                RowId(0),
                RowId(1),
                &mut scratch,
            )
            .unwrap();
        }
        group.bench_function(&format!("warm_plan/{design}"), |b| {
            b.iter(|| {
                let mut ex = QueryExecutor::new(&mut e, design);
                ex.execute_with(
                    &mut store,
                    placement,
                    &inputs,
                    RowId(0),
                    RowId(1),
                    &mut scratch,
                )
                .unwrap();
                scratch.outputs().len()
            })
        });
    }
    group.finish();
}

/// `LutStore::load` in the pooled-cluster steady state (`load_cached`:
/// after the first load the packed rows come from the process-wide
/// cache) against `pack_rows_uncached`, the per-element packing work a
/// cache miss performs — the cost every load used to pay.
fn bench_store_load(c: &mut Criterion) {
    let lut = catalog::binarize(200).unwrap();
    let mut group = c.benchmark_group("store");
    group.bench_function("load_cached", |b| {
        b.iter(|| {
            let mut e = query_engine();
            let store = LutStore::load(
                &mut e,
                lut.clone(),
                BankId(0),
                SubarrayId(2),
                SubarrayId(1),
                0,
            )
            .unwrap();
            store.lut().len()
        })
    });
    let row_bytes = query_engine().config().row_bytes;
    let per_row = row_bytes * 8 / lut.slot_bits() as usize;
    group.bench_function("pack_rows_uncached", |b| {
        b.iter(|| {
            lut.elements()
                .iter()
                .map(|&elem| {
                    let values = vec![elem; per_row];
                    pack_slots(&values, lut.slot_bits(), row_bytes)
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

/// The CI throughput gates. Floors sit well below the observed gaps so
/// scheduler noise on small containers cannot produce false failures,
/// while a regression that reverts the vectorization (ratio ~1.0x)
/// still trips them immediately.
fn guard(c: &Criterion) {
    for width in WIDTHS {
        let ratio =
            c.mean_ns(&format!("pack/scalar/w{width}")) / c.mean_ns(&format!("pack/word/w{width}"));
        // The word-vs-scalar gap grows with slot width (the accumulator
        // amortizes shifts over more bits per slot): w11 measures ~20x,
        // w8 ~3x, but w5 sits near 2x — close enough that scheduler
        // noise straddles a 2.0 floor. A reverted vectorization lands at
        // ~1.0x either way, so the narrow-width floor is 1.5.
        let floor = if width < 8 { 1.5 } else { 2.0 };
        assert!(
            ratio >= floor,
            "throughput regression: word-parallel pack is only {ratio:.2}x the scalar \
             reference at w{width} (the guard requires >= {floor}x)"
        );
        println!("guard: pack w{width} word/scalar speedup {ratio:.1}x (>= {floor}x required)");
    }
    for design in DesignKind::ALL {
        let ratio = c.mean_ns(&format!("query/scalar/{design}"))
            / c.mean_ns(&format!("query/word/{design}"));
        // GSA's query is dominated by its per-query LUT reload (Table 1
        // charges LISA_RBM × N every query) — engine data movement both
        // paths share — so its end-to-end ratio is structurally smaller
        // than BSA/GMC's, which measure ≥ 3x.
        let floor = if design.reload_per_query() { 1.2 } else { 2.0 };
        assert!(
            ratio >= floor,
            "throughput regression: word-parallel end-to-end query is only {ratio:.2}x \
             the scalar reference on {design} (the guard requires >= {floor}x)"
        );
        println!("guard: end-to-end query {design} word/scalar speedup {ratio:.1}x");
    }
    for design in DesignKind::ALL {
        let ratio = c.mean_ns(&format!("query/word/{design}"))
            / c.mean_ns(&format!("query/warm_plan/{design}"));
        assert!(
            ratio >= 2.0,
            "plan-cache regression: warm-plan query is only {ratio:.2}x the issuing \
             path on {design} (the guard requires >= 2x) — replay is not skipping \
             command simulation"
        );
        println!("guard: warm-plan query {design} replay speedup {ratio:.1}x (>= 2x required)");
    }
}

fn main() {
    let mut c = Criterion::named("query");
    bench_pack(&mut c);
    bench_unpack(&mut c);
    bench_query(&mut c);
    bench_store_load(&mut c);
    guard(&c);
    c.finalize();
}
