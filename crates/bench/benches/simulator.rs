//! Micro-benchmarks of the simulator itself: per-design LUT query
//! execution, the Ambit path, and compiler lowering. These measure the
//! *reproduction's* performance (host seconds per simulated operation),
//! complementing the figure harness which reports *simulated* time.
//!
//! Runs under the sim-support harness (`cargo bench -p pluto-bench`) and
//! writes a machine-readable `BENCH_simulator.json` baseline.

use pluto_core::compiler::Graph;
use pluto_core::lut::catalog;
use pluto_core::{DesignKind, PlutoMachine};
use pluto_dram::DramConfig;
use sim_support::bench::{BenchmarkId, Criterion};
use sim_support::{bench_group, bench_main};

fn machine(design: DesignKind) -> PlutoMachine {
    PlutoMachine::new(
        DramConfig {
            row_bytes: 256,
            burst_bytes: 32,
            banks: 1,
            subarrays_per_bank: 32,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        },
        design,
    )
    .unwrap()
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_query_256rows");
    let inputs: Vec<u64> = (0..256u64).collect();
    let lut = catalog::binarize(128).unwrap();
    for design in DesignKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(design), &design, |b, &d| {
            let mut m = machine(d);
            b.iter(|| m.apply(&lut, &inputs).unwrap().values.len());
        });
    }
    group.finish();
}

fn bench_apply2_alignment(c: &mut Criterion) {
    c.bench_function("apply2_mul4_with_alignment", |b| {
        let mut m = machine(DesignKind::Bsa);
        let a: Vec<u64> = (0..256u64).map(|i| i % 16).collect();
        let bb: Vec<u64> = (0..256u64).map(|i| (i * 3) % 16).collect();
        let lut = catalog::mul(4).unwrap();
        b.iter(|| m.apply2(&lut, &a, 4, &bb, 4).unwrap().values.len());
    });
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("compile_mul_add_graph", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(2);
            let y = g.input(2);
            let z = g.input(4);
            let p = g.combine(catalog::mul(2).unwrap(), x, y);
            let s = g.combine(catalog::add(4).unwrap(), p, z);
            g.compile(s, 1024).unwrap().program.instructions.len()
        });
    });
}

bench_group!(benches, bench_query, bench_apply2_alignment, bench_compiler);
bench_main!(benches);
