//! Micro-benchmarks of the unified execution API (`DESIGN.md` §5): host
//! cost of one `Session::run` (machine construction + prepare + pLUTo
//! mapping + validation) per quick workload, and of the batched
//! `run_all` path.
//!
//! Runs under the sim-support harness (`cargo bench -p pluto-bench`) and
//! writes a machine-readable `BENCH_session.json` baseline.

use pluto_baselines::WorkloadId;
use pluto_core::session::{Session, Workload};
use pluto_core::DesignKind;
use pluto_workloads::workload_for;
use sim_support::bench::{BenchmarkId, Criterion};
use sim_support::{bench_group, bench_main};

/// The cheap end of the registry — keeps bench wall time in check while
/// still covering single-query, composed, and byte-vector scenarios.
const QUICK_IDS: [WorkloadId; 4] = [
    WorkloadId::Bc4,
    WorkloadId::Add4,
    WorkloadId::ImgBin,
    WorkloadId::BitwiseRow,
];

fn bench_session_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_run");
    for id in QUICK_IDS {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            let mut workload = workload_for(id);
            b.iter(|| {
                let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
                session.run(workload.as_mut()).unwrap().acts
            });
        });
    }
    group.finish();
}

fn bench_session_run_all(c: &mut Criterion) {
    c.bench_function("session_run_all_quick4", |b| {
        b.iter(|| {
            let mut workloads: Vec<Box<dyn Workload>> =
                QUICK_IDS.iter().map(|&id| workload_for(id)).collect();
            let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
            session.run_all(&mut workloads).unwrap().len()
        });
    });
}

bench_group!(benches, bench_session_run, bench_session_run_all);
bench_main!(benches);
