//! Serve-path benchmarks (`DESIGN.md` §9): sustained query throughput at
//! 1/2/4 workers and small-query latency distributions, isolated vs.
//! mixed with large partitioned-LUT sweeps. Writes the machine-readable
//! `BENCH_serve.json` baseline.
//!
//! Two in-process **queue-behavior guards** run alongside the
//! measurements (this is what CI enforces — on a 1-CPU container the
//! interesting property is scheduling, not wall-clock speedup):
//!
//! 1. **Tail-latency bound.** The p99 latency of small queries under
//!    mixed traffic must stay within `TAIL_FACTOR`× their isolated
//!    *median* — work-stealing lets an idle worker lift a small batch
//!    over another lane's in-flight sweep, so the tail grows by
//!    timesharing, not by queueing behind whole sweeps.
//! 2. **Stealing is live.** Under skewed lane load (many sweep batches
//!    on one affinity's home lane, an otherwise idle second worker) the
//!    pool's steal counter must move.
//!
//! Latency records use `Criterion::record_ns` (each measured query is
//! one sample), so `median_ns` is p50. Derived statistics — the isolated
//! p50, the mixed-traffic p99, the plan-cache hit count — go through
//! `Criterion::summary_ns` into the baseline's `"summaries"` object, not
//! as fake one-sample benchmark rows. The `queue/steals_count` record is
//! a *count*, not nanoseconds — it exists so the baseline documents that
//! stealing occurred.
//!
//! A third guard compares the mixed-traffic p99 against the committed
//! `BENCH_serve.json` baseline (generously, wall-clock on shared runners
//! is noisy): the compiled-plan cache must not let the serve tail
//! regress.
//!
//! `PLUTO_QUICK=1` shrinks query counts and sample sizes for the CI
//! smoke run; the committed baseline comes from a full run.

use pluto_baselines::WorkloadId;
use pluto_core::lut::Lut;
use pluto_core::serve::{QuerySpec, Server};
use pluto_core::session::ExecConfig;
use pluto_core::DesignKind;
use pluto_dram::TimingBackend;
use pluto_workloads::serve_lut;
use sim_support::bench::{percentile_ns, BenchmarkId, Criterion};
use sim_support::{bench_group, bench_main};
use std::sync::Arc;
use std::time::Instant;

/// Mixed-traffic p99 budget, as a multiple of the isolated small-query
/// median. Generous because a 1-CPU container timeshares every worker
/// thread over one core (each in-flight sweep inflates wall latency even
/// with perfect scheduling); without stealing, a small query stuck
/// behind a lane's whole sweep backlog blows well past this.
const TAIL_FACTOR: f64 = 64.0;

fn quick() -> bool {
    std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn config() -> ExecConfig {
    ExecConfig::measurement(DesignKind::Gmc)
}

/// The measurement configuration on the banked timing backend
/// (`DESIGN.md` §11) — its own affinity/machine pool key, so banked
/// traffic never shares a pooled machine with analytic traffic.
fn banked_config() -> ExecConfig {
    ExecConfig {
        timing_backend: TimingBackend::Banked,
        ..config()
    }
}

/// The small latency-sensitive query class: a handful of lookups against
/// the registry's 256-entry nibble-adder LUT (fits one subarray).
fn small_spec(lut: &Arc<Lut>, i: u64) -> QuerySpec {
    QuerySpec {
        config: config(),
        lut: Arc::clone(lut),
        inputs: (0..8).map(|k| (i * 13 + k * 7) % 256).collect(),
    }
}

/// The heavyweight sweep class: a wide batch against the 4096-entry
/// Gamma12 tone map, served through the §5.6 partitioned store.
fn sweep_spec(lut: &Arc<Lut>, i: u64) -> QuerySpec {
    let n = if quick() { 12 } else { 32 };
    QuerySpec {
        config: config(),
        lut: Arc::clone(lut),
        inputs: (0..n).map(|k| (i * 97 + k * 31) % 4096).collect(),
    }
}

fn add_lut() -> Arc<Lut> {
    Arc::new(serve_lut(WorkloadId::Add4).expect("Add4 serves a single LUT"))
}

fn gamma_lut() -> Arc<Lut> {
    Arc::new(serve_lut(WorkloadId::Gamma12).expect("Gamma12 serves a single LUT"))
}

/// Sustained small-query throughput at 1/2/4 workers: one iteration is a
/// burst of enqueues, a flush, and a wait for every ticket. The
/// per-query rate is `1e9 * queries / mean_ns`.
fn bench_throughput(c: &mut Criterion) {
    let lut = add_lut();
    let queries: u64 = if quick() { 8 } else { 32 };
    let mut group = c.benchmark_group("throughput");
    for workers in [1usize, 2, 4] {
        let mut server = Server::with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new(format!("burst{queries}"), workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let tickets: Vec<_> = (0..queries)
                        .map(|i| server.enqueue(small_spec(&lut, i)))
                        .collect();
                    server.flush();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().expect("query served").values[0])
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

/// Small-query latency, isolated vs. mixed with sweep traffic, plus the
/// two queue-behavior guards.
fn bench_latency(c: &mut Criterion) {
    let add = add_lut();
    let gamma = gamma_lut();
    let measured = if quick() { 16 } else { 48 };
    let mut server = Server::with_workers(4);

    // Warm the pools (machine construction, packed-row caches) so the
    // distributions measure steady-state serving.
    for i in 0..4 {
        let t = server.enqueue(small_spec(&add, i));
        let s = server.enqueue(sweep_spec(&gamma, i));
        server.flush();
        t.wait().expect("warmup query");
        s.wait().expect("warmup sweep");
    }

    // Isolated: one small query in flight at a time.
    let mut isolated = Vec::with_capacity(measured);
    for i in 0..measured {
        let start = Instant::now();
        let t = server.enqueue(small_spec(&add, i as u64));
        server.flush();
        t.wait().expect("isolated query");
        isolated.push(start.elapsed().as_nanos() as f64);
    }
    c.record_ns("latency/small_isolated", isolated.clone());

    // Mixed: keep sweep batches landing on the gamma affinity's home
    // lane while small queries arrive on theirs; stealing (or simply a
    // free worker) must keep the small-query tail bounded. The sweep
    // backlog is capped at 4 in flight — steady-state mixed traffic,
    // not unbounded accumulation: on a 1-CPU container every in-flight
    // worker timeshares the core, so an ever-growing pile would charge
    // late small queries for the whole backlog no matter how well the
    // scheduler behaves.
    let mut mixed = Vec::with_capacity(measured);
    let mut backlog = std::collections::VecDeque::new();
    for i in 0..measured {
        for j in 0..2 {
            backlog.push_back(server.enqueue(sweep_spec(&gamma, (i * 2 + j) as u64)));
        }
        while backlog.len() > 4 {
            let t = backlog.pop_front().expect("non-empty backlog");
            t.wait().expect("sweep served");
        }
        let start = Instant::now();
        let t = server.enqueue(small_spec(&add, 1000 + i as u64));
        server.flush();
        t.wait().expect("mixed query");
        mixed.push(start.elapsed().as_nanos() as f64);
    }
    server.drain();
    for t in backlog {
        t.wait().expect("sweep served");
    }
    c.record_ns("latency/small_mixed_w4", mixed.clone());

    let isolated_p50 = percentile_ns(&isolated, 50.0);
    let mixed_p99 = percentile_ns(&mixed, 99.0);
    c.summary_ns("latency/small_isolated_p50", isolated_p50);
    c.summary_ns("latency/small_mixed_w4_p99", mixed_p99);

    // Guard 1: mixed-traffic tail within budget of the isolated median.
    assert!(
        mixed_p99 <= TAIL_FACTOR * isolated_p50,
        "queue-behavior guard: small-query p99 under mixed traffic \
         ({mixed_p99:.0} ns) exceeds {TAIL_FACTOR}x the isolated median \
         ({isolated_p50:.0} ns) — small queries are queuing behind sweeps"
    );

    // Guard 3: compiled-plan cache live on the serve path. The measured
    // traffic repeats two plan shapes dozens of times, so the workers'
    // warm queries must be replaying memoized tapes, not re-simulating.
    let plans = server.plan_stats();
    c.summary_ns("plan/hits_count", plans.hits as f64);
    assert!(
        plans.hits > 0,
        "plan-cache guard: zero warm-plan hits under mixed serve traffic ({plans:?})"
    );

    // Guard 4: the mixed-traffic p99 must not regress past the committed
    // baseline. The allowance is deliberately generous — wall-clock on a
    // shared 1-CPU container is noisy — so this catches order-of-
    // magnitude queueing regressions, not jitter.
    const BASELINE_FACTOR: f64 = 8.0;
    if let Some(baseline_p99) = baseline_summary("latency/small_mixed_w4_p99") {
        assert!(
            mixed_p99 <= BASELINE_FACTOR * baseline_p99,
            "serve-tail guard: mixed p99 ({mixed_p99:.0} ns) exceeds \
             {BASELINE_FACTOR}x the committed baseline ({baseline_p99:.0} ns)"
        );
    } else {
        println!("serve-tail guard skipped: no committed baseline summary");
    }
}

/// Reads one `"summaries"` value from the committed `BENCH_serve.json`
/// at the repo root (`None` if the file or key is missing — first run
/// after a baseline format change, or a pruned checkout).
fn baseline_summary(key: &str) -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let json = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Skewed-lane contention: every sweep batch homes on lane 0 while the
/// second worker's lane stays empty, so any batch worker 1 executes is a
/// steal. Repeats bounded rounds until the counter moves (thread
/// scheduling decides *when* a steal happens, never *whether results
/// change*).
fn bench_steals(c: &mut Criterion) {
    let gamma = gamma_lut();
    let mut server = Server::with_workers(2);
    let mut rounds = 0u64;
    while server.steals() == 0 && rounds < 50 {
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let t = server.enqueue(sweep_spec(&gamma, rounds * 8 + i));
                server.flush(); // one batch per query -> 8 queued batches
                t
            })
            .collect();
        for t in tickets {
            t.wait().expect("sweep served");
        }
        rounds += 1;
    }
    let steals = server.steals();
    c.record_ns("queue/steals_count", vec![steals as f64]);
    // Guard 2: work-stealing is live under contention.
    assert!(
        steals > 0,
        "queue-behavior guard: no cross-lane steal after {rounds} contended rounds"
    );
}

/// Banked-backend serve traffic (`DESIGN.md` §11): the same mixed
/// small + sweep mix, served on the event-driven backend. The guard
/// checks the backend is actually live on the serve path — GMC's
/// charge-share sweep chains must report row-buffer hits in the query
/// replies' `CostReport`s — and the baseline records the hit/stall
/// counters so `BENCH_serve.json` documents queueing effects.
fn bench_banked(c: &mut Criterion) {
    let add = add_lut();
    let gamma = gamma_lut();
    let queries = if quick() { 8u64 } else { 24 };
    let mut server = Server::with_workers(2);
    let mut hits = 0u64;
    let mut stalls = 0u64;
    let mut conflicts = 0u64;
    let tickets: Vec<_> = (0..queries)
        .map(|i| {
            let small = QuerySpec {
                config: banked_config(),
                ..small_spec(&add, i)
            };
            let sweep = QuerySpec {
                config: banked_config(),
                ..sweep_spec(&gamma, i)
            };
            (server.enqueue(small), server.enqueue(sweep))
        })
        .collect();
    server.flush();
    for (small, sweep) in tickets {
        for reply in [
            small.wait().expect("banked small"),
            sweep.wait().expect("banked sweep"),
        ] {
            hits += reply.report.row_hits;
            stalls += reply.report.queue_stalls;
            conflicts += reply.report.row_conflicts;
        }
    }
    c.record_ns("banked/row_hits_count", vec![hits as f64]);
    c.summary_ns("banked/queue_stalls_count", stalls as f64);
    c.summary_ns("banked/row_conflicts_count", conflicts as f64);
    // Guard 5: the banked backend is live under mixed serve traffic.
    assert!(
        hits > 0,
        "banked-backend guard: zero row-buffer hits across {queries} \
         mixed banked queries — the backend is not classifying ACTs"
    );
}

bench_group!(
    benches,
    bench_throughput,
    bench_latency,
    bench_steals,
    bench_banked
);
bench_main!(benches);
