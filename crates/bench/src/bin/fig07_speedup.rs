//! Figure 7: speedup of GPU, PnM, and the six pLUTo configurations over
//! the baseline CPU (paper §8.2). Every pLUTo point is measured by running
//! the workload's full pLUTo mapping on the command-level simulator (with
//! functional validation against the reference implementation).

use pluto_baselines::{Machine, WorkloadId};
use pluto_bench::{
    baseline_secs, cluster, fmt_x, geomean, measure_sweep, pluto_wall_secs, print_row, quick_mode,
    PlutoConfig,
};

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![
            WorkloadId::Crc8,
            WorkloadId::Vmpc,
            WorkloadId::ImgBin,
            WorkloadId::ColorGrade,
        ]
    } else {
        WorkloadId::FIG7.to_vec()
    };
    let cpu = Machine::xeon_gold_5118();
    let gpu = Machine::rtx_3080_ti();
    let pnm = Machine::hmc_pnm();

    // Every (workload, config) measurement fans out across the cluster's
    // workers; costs are bit-identical to the serial sweep.
    let mut pool = cluster();
    let costs = measure_sweep(&ids, &PlutoConfig::ALL, &mut pool);

    let mut headers = vec!["GPU".to_string(), "PnM".to_string()];
    headers.extend(PlutoConfig::ALL.iter().map(|c| c.label()));
    println!(
        "Figure 7 — speedup over CPU (higher is better; measured on {} workers)\n",
        pool.workers()
    );
    print_row("workload", &headers);

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    for (row, &id) in costs.iter().zip(&ids) {
        let t_cpu = baseline_secs(id, &cpu);
        let mut cells = vec![
            t_cpu / baseline_secs(id, &gpu),
            t_cpu / baseline_secs(id, &pnm),
        ];
        for (cfg, cost) in PlutoConfig::ALL.iter().zip(row) {
            cells.push(t_cpu / pluto_wall_secs(id, *cfg, cost));
        }
        for (s, &v) in series.iter_mut().zip(&cells) {
            s.push(v);
        }
        print_row(
            &id.to_string(),
            &cells.iter().map(|&v| fmt_x(v)).collect::<Vec<_>>(),
        );
    }
    let gmeans: Vec<String> = series.iter().map(|s| fmt_x(geomean(s))).collect();
    print_row("GMEAN", &gmeans);
    println!(
        "\npaper (DDR4): GSA 357x, BSA 713x, GMC 1413x over CPU; \
         GPU between GSA and BSA; PnM well below all pLUTo designs"
    );
    println!("shape checks:");
    let g = |i: usize| geomean(&series[i]);
    println!(
        "  GMC > BSA > GSA (DDR4):      {}",
        g(4) > g(3) && g(3) > g(2)
    );
    println!(
        "  3DS beats DDR4 per design:   {}",
        g(5) > g(2) && g(6) > g(3) && g(7) > g(4)
    );
    println!(
        "  pLUTo geomeans beat PnM:     {}",
        (2..8).all(|i| g(i) > g(1))
    );
    println!(
        "  all pLUTo beat the CPU:      {}",
        (2..8).all(|i| g(i) > 1.0)
    );
}
