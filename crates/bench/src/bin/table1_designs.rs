//! Table 1: comparison of the three pLUTo designs' core attributes, with
//! the closed-form latency/energy evaluated at N = 256 (an 8-bit LUT) and
//! cross-checked against the command-level engine.

use pluto_core::design::{DesignKind, DesignModel};
use pluto_core::lut::catalog;
use pluto_core::query::{QueryExecutor, QueryPlacement};
use pluto_core::store::LutStore;
use pluto_dram::{BankId, DramConfig, EnergyModel, Engine, RowId, SubarrayId, TimingParams};

fn main() {
    let n = 256u64;
    println!("Table 1 — pLUTo design comparison (N = {n} LUT elements)\n");
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "attribute", "pLUTo-BSA", "pLUTo-GSA", "pLUTo-GMC"
    );
    let attr = |name: &str, f: &dyn Fn(DesignKind) -> String| {
        println!(
            "{:<22} {:>14} {:>14} {:>14}",
            name,
            f(DesignKind::Bsa),
            f(DesignKind::Gsa),
            f(DesignKind::Gmc)
        );
    };
    attr("area overhead", &|d| {
        format!("{:.1}%", d.area_overhead_fraction() * 100.0)
    });
    attr("destructive reads", &|d| {
        if d.destructive_reads() { "Yes" } else { "No" }.into()
    });
    attr("LUT loading", &|d| {
        if d.reload_per_query() {
            "every use"
        } else {
            "once"
        }
        .into()
    });
    let model = |d| DesignModel::new(d, TimingParams::ddr4_2400(), EnergyModel::ddr4());
    attr("query latency", &|d| {
        format!("{}", model(d).query_latency(n))
    });
    attr("query energy", &|d| format!("{}", model(d).query_energy(n)));
    attr("throughput (q/s/SA)", &|d| {
        format!("{:.3e}", model(d).throughput_per_subarray(65536, 8, n))
    });

    // Engine cross-check: measured sweep cost equals the closed form.
    println!("\nengine cross-check (measured vs closed form):");
    for design in DesignKind::ALL {
        let cfg = DramConfig {
            row_bytes: 64,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 8,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        };
        let mut engine = Engine::new(cfg);
        let lut = catalog::binarize(128).unwrap();
        let mut store = LutStore::load(
            &mut engine,
            lut,
            BankId(0),
            SubarrayId(2),
            SubarrayId(1),
            256,
        )
        .unwrap();
        if design.reload_per_query() {
            store.mark_destroyed(&mut engine).unwrap();
        }
        let m = DesignModel::new(
            design,
            engine.timing().clone(),
            engine.energy_model().clone(),
        );
        let mut ex = QueryExecutor::new(&mut engine, design);
        let inputs: Vec<u64> = (0..64).collect();
        let (_, cost) = ex
            .execute(
                &mut store,
                QueryPlacement::adjacent(BankId(0), SubarrayId(2)),
                &inputs,
                RowId(0),
                RowId(0),
            )
            .unwrap();
        let matches = cost.table1_latency() == m.query_latency(n);
        println!(
            "  {design}: measured {} vs model {} -> {}",
            cost.table1_latency(),
            m.query_latency(n),
            if matches { "MATCH" } else { "MISMATCH" }
        );
    }
}
