//! Table 6: operations supported by pLUTo versus prior PuM architectures
//! (paper §8.9). Prior-PuM rows are the paper's published values; the
//! pLUTo-BSA column shows both the published value and this reproduction's
//! measured latency (our DDR4 timings differ from the authors' — see
//! EXPERIMENTS.md).

use pluto_baselines::pum::{published_latency_ns, published_pluto_bsa_latency_ns, PumArch, PumOp};
use pluto_core::design::{DesignKind, DesignModel};
use pluto_dram::{EnergyModel, TimingParams};

/// This reproduction's pLUTo-BSA latency for a Table 6 op: the Table 1
/// closed form at the op's LUT size, plus the fixed per-query overheads
/// (source ACT, copy-out hop, source PRE).
fn measured_pluto_ns(op: PumOp) -> f64 {
    let m = DesignModel::new(
        DesignKind::Bsa,
        TimingParams::ddr4_2400(),
        EnergyModel::ddr4(),
    );
    let lut_elems: u64 = match op {
        PumOp::Not => 2,
        PumOp::And | PumOp::Or | PumOp::Xor | PumOp::Xnor => 4,
        PumOp::Bc4 => 16,
        PumOp::LutQuery6To2 => 64,
        _ => 256,
    };
    let t = m.timing();
    let overhead = t.t_rcd + t.t_lisa_hop + t.t_rp;
    (m.query_latency(lut_elems) + overhead).as_ns()
}

fn main() {
    println!("Table 6 — op latency (ns): prior PuM (published) vs pLUTo-BSA\n");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "operation", "Ambit", "SIMDRAM", "LAcc", "DRISA", "pLUTo(pub)", "pLUTo(ours)"
    );
    for op in PumOp::ALL {
        let cell = |a: PumArch| {
            published_latency_ns(a, op)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<26} {:>9} {:>9} {:>9} {:>9} {:>11.0} {:>11.0}",
            op.to_string(),
            cell(PumArch::Ambit),
            cell(PumArch::Simdram),
            cell(PumArch::LAcc),
            cell(PumArch::Drisa),
            published_pluto_bsa_latency_ns(op),
            measured_pluto_ns(op)
        );
    }
    println!("\narchitecture attributes (published):");
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "arch", "cap (GB)", "area mm2", "power W"
    );
    for a in PumArch::ALL {
        println!(
            "{:<10} {:>10} {:>10.1} {:>8.1}",
            a.to_string(),
            a.capacity_gb(),
            a.area_mm2(),
            a.power_w()
        );
    }
    println!(
        "{:<10} {:>10} {:>10.1} {:>8.1}",
        "pLUTo-BSA", 8.0, 70.5, 11.0
    );

    println!("\nshape checks (paper's key observations):");
    let ours_xor = measured_pluto_ns(PumOp::Xor);
    let best_prior_xor = PumArch::ALL
        .iter()
        .filter_map(|&a| published_latency_ns(a, PumOp::Xor))
        .fold(f64::INFINITY, f64::min);
    println!(
        "  pLUTo XOR beats every prior PuM XOR: {} ({ours_xor:.0} vs {best_prior_xor:.0} ns)",
        ours_xor < best_prior_xor
    );
    println!(
        "  XOR costs the same as AND on pLUTo: {}",
        (measured_pluto_ns(PumOp::Xor) - measured_pluto_ns(PumOp::And)).abs() < 1e-9
    );
    println!(
        "  binarization/exponentiation only on pLUTo: {}",
        PumArch::ALL
            .iter()
            .all(|&a| published_latency_ns(a, PumOp::Exp8).is_none())
    );
}
