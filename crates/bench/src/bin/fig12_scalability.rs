//! Figure 12: (a) LUT-query throughput and energy versus LUT size for the
//! three designs; (b) multiplication energy efficiency versus operand bit
//! width for pLUTo-BSA, SIMDRAM, and the PnM baseline (paper §8.6).

use pluto_baselines::pum;
use pluto_core::design::{DesignKind, DesignModel};
use pluto_dram::{EnergyModel, TimingParams};

fn main() {
    let models: Vec<DesignModel> = DesignKind::ALL
        .iter()
        .map(|&k| DesignModel::new(k, TimingParams::ddr4_2400(), EnergyModel::ddr4()))
        .collect();

    println!("Figure 12a — throughput (queries/s per subarray) and energy (J) vs LUT size\n");
    println!(
        "{:>9} {:>13} {:>13} {:>13} {:>12} {:>12} {:>12}",
        "LUT size", "GSA q/s", "BSA q/s", "GMC q/s", "GSA J", "BSA J", "GMC J"
    );
    println!("csv12a: lut_size,gsa_qps,bsa_qps,gmc_qps,gsa_j,bsa_j,gmc_j");
    for n in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let tp: Vec<f64> = models
            .iter()
            .map(|m| m.throughput_per_subarray(65536, 8, n))
            .collect();
        let en: Vec<f64> = models
            .iter()
            .map(|m| m.query_energy(n).as_joules())
            .collect();
        println!(
            "{n:>9} {:>13.3e} {:>13.3e} {:>13.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            tp[1], tp[0], tp[2], en[1], en[0], en[2]
        );
        println!(
            "csv12a: {n},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e}",
            tp[1], tp[0], tp[2], en[1], en[0], en[2]
        );
    }
    // NOTE: models[] order is [Bsa, Gsa, Gmc] (DesignKind::ALL).

    println!("\nFigure 12b — multiplication energy efficiency (ops/J) vs bit width\n");
    println!(
        "{:>9} {:>14} {:>14} {:>14}",
        "bits", "pLUTo-BSA", "SIMDRAM", "PnM"
    );
    println!("csv12b: bits,pluto_ops_per_j,simdram_ops_per_j,pnm_ops_per_j");
    for bits in [1u32, 2, 4, 8, 16, 32] {
        let p = pum::mul_ops_per_joule(pum::pluto_mul_energy_nj(bits));
        let s = pum::mul_ops_per_joule(pum::simdram_mul_energy_nj(bits));
        let n = pum::mul_ops_per_joule(pum::pnm_mul_energy_nj(bits));
        println!("{bits:>9} {p:>14.3e} {s:>14.3e} {n:>14.3e}");
        println!("csv12b: {bits},{p:.3e},{s:.3e},{n:.3e}");
    }
    println!("\nshape checks (paper §8.6):");
    let better_than_simdram = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .all(|&b| pum::pluto_mul_energy_nj(b) < pum::simdram_mul_energy_nj(b));
    println!("  pLUTo >= SIMDRAM at every width: {better_than_simdram}");
    let low_precision_win = [4u32, 8]
        .iter()
        .all(|&b| pum::pluto_mul_energy_nj(b) < pum::pnm_mul_energy_nj(b));
    let high_precision_loss = pum::pluto_mul_energy_nj(32) > pum::pnm_mul_energy_nj(32);
    println!(
        "  pLUTo beats PnM at <= 8 bits, loses at 32: {}",
        low_precision_win && high_precision_loss
    );
}
