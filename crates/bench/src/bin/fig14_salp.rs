//! Figure 14: geometric-mean speedup over the CPU for varying degrees of
//! subarray-level parallelism, for DDR4 (1–2048 subarrays) and 3D-stacked
//! (512–8192) memory (paper §8.8).

use pluto_baselines::{Machine, WorkloadId};
use pluto_bench::{
    baseline_secs, cluster, fmt_x, geomean, measure_sweep, quick_mode, volume_bytes, PlutoConfig,
};
use pluto_core::DesignKind;
use pluto_dram::{MemoryKind, TimingParams};
use pluto_workloads::runner::scaled_wall_time;

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![WorkloadId::Crc8, WorkloadId::ImgBin]
    } else {
        WorkloadId::FIG7.to_vec()
    };
    let cpu = Machine::xeon_gold_5118();
    let mut pool = cluster();

    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        let (timing, counts): (TimingParams, Vec<usize>) = match kind {
            MemoryKind::Ddr4 => (
                TimingParams::ddr4_2400(),
                vec![1, 4, 16, 64, 256, 1024, 2048],
            ),
            MemoryKind::Stacked3d => (TimingParams::hmc_3ds(), vec![512, 1024, 2048, 4096, 8192]),
        };
        println!("\nFigure 14 — {kind}: geomean speedup over CPU vs subarrays\n");
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "subarrays", "GSA", "BSA", "GMC"
        );
        println!("csv14-{kind}: subarrays,gsa,bsa,gmc");
        // Measure each (workload, design) once — all pairs in parallel
        // on the cluster — then sweep parallelism analytically.
        let cfgs: Vec<PlutoConfig> = DesignKind::ALL
            .iter()
            .map(|&design| PlutoConfig { design, kind })
            .collect();
        let by_workload = measure_sweep(&ids, &cfgs, &mut pool);
        let costs: Vec<Vec<_>> = (0..cfgs.len())
            .map(|d| by_workload.iter().map(|row| row[d]).collect())
            .collect();
        let mut last: Vec<f64> = vec![0.0; 3];
        for &s in &counts {
            let mut row = Vec::new();
            for (d, _design) in DesignKind::ALL.iter().enumerate() {
                let speedups: Vec<f64> = ids
                    .iter()
                    .zip(&costs[d])
                    .map(|(&id, cost)| {
                        baseline_secs(id, &cpu)
                            / scaled_wall_time(cost, volume_bytes(id), s, 0.0, &timing)
                    })
                    .collect();
                row.push(geomean(&speedups));
            }
            println!(
                "{s:>10} {:>12} {:>12} {:>12}",
                fmt_x(row[1]),
                fmt_x(row[0]),
                fmt_x(row[2])
            );
            println!(
                "csv14-{kind}: {s},{:.3e},{:.3e},{:.3e}",
                row[1], row[0], row[2]
            );
            last = row;
        }
        let _ = last;
        println!("paper: scaling is approximately proportional to the subarray count");
    }
}
