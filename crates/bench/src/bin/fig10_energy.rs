//! Figure 10: energy consumption of the GPU and the six pLUTo
//! configurations, normalized to the CPU (paper §8.3; higher = less energy
//! used than the CPU).

use pluto_baselines::{Machine, WorkloadId};
use pluto_bench::{
    baseline_joules, cluster, fmt_x, geomean, measure_sweep, print_row, quick_mode, volume_bytes,
    PlutoConfig,
};
use pluto_workloads::runner::scaled_energy;

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![WorkloadId::Crc8, WorkloadId::Vmpc, WorkloadId::ImgBin]
    } else {
        WorkloadId::FIG7.to_vec()
    };
    let cpu = Machine::xeon_gold_5118();
    let gpu = Machine::rtx_3080_ti();

    let mut pool = cluster();
    let costs = measure_sweep(&ids, &PlutoConfig::ALL, &mut pool);

    let mut headers = vec!["GPU".to_string()];
    headers.extend(PlutoConfig::ALL.iter().map(|c| c.label()));
    println!(
        "Figure 10 — CPU-normalized energy reduction (higher is better; {} workers)\n",
        pool.workers()
    );
    print_row("workload", &headers);

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    for (row, &id) in costs.iter().zip(&ids) {
        let e_cpu = baseline_joules(id, &cpu);
        let mut cells = vec![e_cpu / baseline_joules(id, &gpu)];
        for cost in row {
            cells.push(e_cpu / scaled_energy(cost, volume_bytes(id)));
        }
        for (s, &v) in series.iter_mut().zip(&cells) {
            s.push(v);
        }
        print_row(
            &id.to_string(),
            &cells.iter().map(|&v| fmt_x(v)).collect::<Vec<_>>(),
        );
    }
    let gmeans: Vec<String> = series.iter().map(|s| fmt_x(geomean(s))).collect();
    print_row("GMEAN", &gmeans);
    println!(
        "\npaper (DDR4): pLUTo consumes 1362x (GSA), 1855x (BSA), 3071x (GMC) \
         less energy than the CPU; 29-65x less than the GPU"
    );
    let g = |i: usize| geomean(&series[i]);
    println!("shape checks:");
    println!(
        "  GMC > BSA > GSA (DDR4):          {}",
        g(3) > g(2) && g(2) > g(1)
    );
    println!(
        "  DDR4 ~8x more efficient than 3DS: {} (ratio {:.1})",
        (g(1) / g(4) - 8.0).abs() < 2.0,
        g(1) / g(4)
    );
    println!(
        "  all DDR4 pLUTo beat the CPU:     {}",
        (1..4).all(|i| g(i) > 1.0)
    );
}
