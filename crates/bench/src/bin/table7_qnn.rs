//! Table 7: quantized LeNet-5 inference time and energy on CPU, GPU
//! (P100), FPGA, and pLUTo-BSA (paper §9), with this reproduction's
//! modeled estimates next to the published values — query counts
//! derived from the layer graph (`DESIGN.md` §12) — plus live
//! functional demonstrations of both inference kernels on the cluster:
//! the binary XNOR-popcount inner product and the layered int8
//! GEMV → requantize MLP forward pass.

use pluto_core::DesignKind;
use pluto_qnn::gemv::GemvPath;
use pluto_qnn::lenet::{binary_dot_reference, LeNet5, Precision};
use pluto_qnn::mnist::SyntheticMnist;
use pluto_qnn::model::QuantModel;
use pluto_qnn::pluto_exec::{
    binary_dot_cluster, mlp_cluster_layers, mlp_exec_config, qnn_layer_query_counts,
};
use pluto_qnn::table7::{modeled, published, published_accuracy_percent, Platform};

fn main() {
    println!("Table 7 — LeNet-5 inference time (us) and energy (mJ)\n");
    for precision in [Precision::Bit1, Precision::Bit4] {
        println!(
            "{:?} (published accuracy {:.1}%):",
            precision,
            published_accuracy_percent(precision)
        );
        let net = LeNet5::new(precision, 42);
        let per_layer: Vec<String> = qnn_layer_query_counts(&net)
            .into_iter()
            .map(|(name, queries)| format!("{name}={queries}"))
            .collect();
        println!(
            "  per-layer query counts (from the layer graph): {}",
            per_layer.join(" ")
        );
        println!(
            "  {:<12} {:>11} {:>11} {:>12} {:>12}",
            "platform", "pub time", "pub energy", "model time", "model energy"
        );
        for p in Platform::ALL {
            let pb = published(p, precision);
            let md = modeled(p, precision);
            println!(
                "  {:<12} {:>9.0}us {:>9.2}mJ {:>10.1}us {:>10.3}mJ",
                p.to_string(),
                pb.time_us,
                pb.energy_mj,
                md.time_us,
                md.energy_mj
            );
        }
        let pluto = modeled(Platform::PlutoBsa, precision);
        let all_faster = [Platform::Cpu, Platform::Gpu, Platform::Fpga]
            .iter()
            .all(|&p| modeled(p, precision).time_us > pluto.time_us);
        println!("  shape check — pLUTo fastest: {all_faster}\n");
    }

    // Live kernel demonstration: the binary inner product, run as a
    // sharded workload through the same cluster pool as the figure
    // sweeps — 32 row pairs of 128 bits (quantized activations against
    // consecutive 128-weight slices of the fc1 matrix).
    println!("functional demo — binary XNOR-popcount dot products via the cluster:");
    let net = LeNet5::new(Precision::Bit1, 42);
    let img = SyntheticMnist::new(3).image(7, 0);
    let x = net.quantize_input(&img);
    let a_bits: Vec<u8> = x.data()[..128].iter().map(|&v| u8::from(v > 0)).collect();
    let a_rows: Vec<Vec<u8>> = vec![a_bits.clone(); 32];
    let b_rows: Vec<Vec<u8>> = (0..32)
        .map(|n| {
            net.fc1.weights[n * 128..(n + 1) * 128]
                .iter()
                .map(|&w| u8::from(w > 0))
                .collect()
        })
        .collect();
    let mut pool = pluto_bench::cluster();
    let (out, report) = binary_dot_cluster(&mut pool, DesignKind::Bsa, &a_rows, &b_rows).unwrap();
    let all_match = out
        .iter()
        .zip(&b_rows)
        .all(|(&dot, b)| dot == binary_dot_reference(&a_bits, b));
    println!(
        "  32 row pairs on {} workers: first dot = {}, all match reference = {}, \
         batch simulated time = {}",
        pool.workers(),
        out[0],
        all_match,
        report.time
    );
    let prediction = net.classify(&img);
    println!("  full 1-bit LeNet-5 classifies the synthetic '7' as class {prediction}");

    // The layered pipeline through the same pool: one digit through the
    // int8 MLP, every layer a GEMV-by-LUT batch sharded by output-neuron
    // tile, with the per-layer cost breakdown.
    println!("\nfunctional demo — layered int8 MLP forward pass via the cluster:");
    let model = QuantModel::mnist_mlp(7);
    let x = QuantModel::input_from_image(&img);
    let oracle = model.forward_reference(&x);
    let (logits, reports) = mlp_cluster_layers(
        &mut pool,
        mlp_exec_config(DesignKind::Bsa),
        &model,
        &x,
        GemvPath::Direct,
    )
    .unwrap();
    assert_eq!(logits, oracle, "cluster logits must match the host oracle");
    for (shape, report) in model.layer_shapes().iter().zip(&reports) {
        println!(
            "  {:<10} {:>4}x{:<3} macs={:<5} simulated {} / {}",
            shape.name,
            shape.out_features,
            shape.in_features,
            shape.mac_count(),
            report.time,
            report.energy
        );
    }
    println!(
        "  logits {logits:?} -> class {} (bit-identical to the host i32 oracle)",
        logits
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap()
    );
}
