//! Table 7: quantized LeNet-5 inference time and energy on CPU, GPU
//! (P100), FPGA, and pLUTo-BSA (paper §9), with this reproduction's
//! modeled estimates next to the published values — plus a live functional
//! demonstration of the binary XNOR-popcount kernel on the simulator.

use pluto_core::DesignKind;
use pluto_qnn::lenet::{binary_dot_reference, LeNet5, Precision};
use pluto_qnn::mnist::SyntheticMnist;
use pluto_qnn::pluto_exec::binary_dot_cluster;
use pluto_qnn::table7::{modeled, published, published_accuracy_percent, Platform};

fn main() {
    println!("Table 7 — LeNet-5 inference time (us) and energy (mJ)\n");
    for precision in [Precision::Bit1, Precision::Bit4] {
        println!(
            "{:?} (published accuracy {:.1}%):",
            precision,
            published_accuracy_percent(precision)
        );
        println!(
            "  {:<12} {:>11} {:>11} {:>12} {:>12}",
            "platform", "pub time", "pub energy", "model time", "model energy"
        );
        for p in Platform::ALL {
            let pb = published(p, precision);
            let md = modeled(p, precision);
            println!(
                "  {:<12} {:>9.0}us {:>9.2}mJ {:>10.1}us {:>10.3}mJ",
                p.to_string(),
                pb.time_us,
                pb.energy_mj,
                md.time_us,
                md.energy_mj
            );
        }
        let pluto = modeled(Platform::PlutoBsa, precision);
        let all_faster = [Platform::Cpu, Platform::Gpu, Platform::Fpga]
            .iter()
            .all(|&p| modeled(p, precision).time_us > pluto.time_us);
        println!("  shape check — pLUTo fastest: {all_faster}\n");
    }

    // Live kernel demonstration: the binary inner product, run as a
    // sharded workload through the same cluster pool as the figure
    // sweeps — 32 row pairs of 128 bits (quantized activations against
    // consecutive 128-weight slices of the fc1 matrix).
    println!("functional demo — binary XNOR-popcount dot products via the cluster:");
    let net = LeNet5::new(Precision::Bit1, 42);
    let img = SyntheticMnist::new(3).image(7, 0);
    let x = net.quantize_input(&img);
    let a_bits: Vec<u8> = x.data()[..128].iter().map(|&v| u8::from(v > 0)).collect();
    let a_rows: Vec<Vec<u8>> = vec![a_bits.clone(); 32];
    let b_rows: Vec<Vec<u8>> = (0..32)
        .map(|n| {
            net.fc1.weights[n * 128..(n + 1) * 128]
                .iter()
                .map(|&w| u8::from(w > 0))
                .collect()
        })
        .collect();
    let mut pool = pluto_bench::cluster();
    let (out, report) = binary_dot_cluster(&mut pool, DesignKind::Bsa, &a_rows, &b_rows).unwrap();
    let all_match = out
        .iter()
        .zip(&b_rows)
        .all(|(&dot, b)| dot == binary_dot_reference(&a_bits, b));
    println!(
        "  32 row pairs on {} workers: first dot = {}, all match reference = {}, \
         batch simulated time = {}",
        pool.workers(),
        out[0],
        all_match,
        report.time
    );
    let prediction = net.classify(&img);
    println!("  full 1-bit LeNet-5 classifies the synthetic '7' as class {prediction}");
}
