//! Table 7: quantized LeNet-5 inference time and energy on CPU, GPU
//! (P100), FPGA, and pLUTo-BSA (paper §9), with this reproduction's
//! modeled estimates next to the published values — plus a live functional
//! demonstration of the binary XNOR-popcount kernel on the simulator.

use pluto_core::DesignKind;
use pluto_qnn::lenet::{binary_dot_reference, LeNet5, Precision};
use pluto_qnn::mnist::SyntheticMnist;
use pluto_qnn::pluto_exec::{binary_dot_pluto, qnn_session};
use pluto_qnn::table7::{modeled, published, published_accuracy_percent, Platform};

fn main() {
    println!("Table 7 — LeNet-5 inference time (us) and energy (mJ)\n");
    for precision in [Precision::Bit1, Precision::Bit4] {
        println!(
            "{:?} (published accuracy {:.1}%):",
            precision,
            published_accuracy_percent(precision)
        );
        println!(
            "  {:<12} {:>11} {:>11} {:>12} {:>12}",
            "platform", "pub time", "pub energy", "model time", "model energy"
        );
        for p in Platform::ALL {
            let pb = published(p, precision);
            let md = modeled(p, precision);
            println!(
                "  {:<12} {:>9.0}us {:>9.2}mJ {:>10.1}us {:>10.3}mJ",
                p.to_string(),
                pb.time_us,
                pb.energy_mj,
                md.time_us,
                md.energy_mj
            );
        }
        let pluto = modeled(Platform::PlutoBsa, precision);
        let all_faster = [Platform::Cpu, Platform::Gpu, Platform::Fpga]
            .iter()
            .all(|&p| modeled(p, precision).time_us > pluto.time_us);
        println!("  shape check — pLUTo fastest: {all_faster}\n");
    }

    // Live kernel demonstration: the binary inner product on the simulator.
    println!("functional demo — binary XNOR-popcount dot product on the simulator:");
    let net = LeNet5::new(Precision::Bit1, 42);
    let img = SyntheticMnist::new(3).image(7, 0);
    let x = net.quantize_input(&img);
    let a_bits: Vec<u8> = x.data()[..128].iter().map(|&v| u8::from(v > 0)).collect();
    let b_bits: Vec<u8> = net.fc1.weights[..128]
        .iter()
        .map(|&w| u8::from(w > 0))
        .collect();
    let mut session = qnn_session(DesignKind::Bsa).unwrap();
    let out = binary_dot_pluto(
        &mut session,
        std::slice::from_ref(&a_bits),
        std::slice::from_ref(&b_bits),
    )
    .unwrap();
    let expect = binary_dot_reference(&a_bits, &b_bits);
    println!(
        "  pLUTo dot = {}, reference = {}, match = {}, simulated time = {}",
        out[0],
        expect,
        out[0] == expect,
        session.machine().totals().time
    );
    let prediction = net.classify(&img);
    println!("  full 1-bit LeNet-5 classifies the synthetic '7' as class {prediction}");
}
