//! Table 5: area breakdown for baseline DRAM and the three pLUTo designs
//! (paper §8.4).

use pluto_core::area::AreaBreakdown;
use pluto_core::DesignKind;

fn main() {
    println!("Table 5 — area breakdown (mm^2)\n");
    let base = AreaBreakdown::base_dram();
    let designs: Vec<(String, AreaBreakdown)> = std::iter::once(("Base DRAM".to_string(), base))
        .chain(
            DesignKind::ALL
                .iter()
                .map(|&d| (d.to_string(), AreaBreakdown::for_design(d))),
        )
        .collect();
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "component", designs[0].0, designs[1].0, designs[2].0, designs[3].0
    );
    let row = |name: &str, f: &dyn Fn(&AreaBreakdown) -> f64| {
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            name,
            f(&designs[0].1),
            f(&designs[1].1),
            f(&designs[2].1),
            f(&designs[3].1)
        );
    };
    row("DRAM cell", &|a| a.dram_cell);
    row("local WL driver", &|a| a.local_wl_driver);
    row("match logic", &|a| a.match_logic);
    row("match lines", &|a| a.match_lines);
    row("sense amp", &|a| a.sense_amp);
    row("row decoder", &|a| a.row_decoder);
    row("column decoder", &|a| a.column_decoder);
    row("other", &|a| a.other);
    row("TOTAL", &|a| a.total());
    println!();
    for (name, a) in &designs[1..] {
        println!(
            "{name}: +{:.1}% over base DRAM",
            a.overhead_vs_base() * 100.0
        );
    }
    println!("paper: GSA +10.2%, BSA +16.7%, GMC +23.1%");
}
