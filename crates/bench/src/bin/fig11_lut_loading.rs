//! Figure 11: fraction of total execution time spent loading LUT data,
//! versus the volume of queried data, for DDR4-resident and SSD-resident
//! LUTs (paper §8.5).

use pluto_core::design::{DesignKind, DesignModel};
use pluto_core::loading::{LoadingModel, LutSource};
use pluto_dram::{EnergyModel, TimingParams};

fn main() {
    let model = DesignModel::new(
        DesignKind::Bsa,
        TimingParams::ddr4_2400(),
        EnergyModel::ddr4(),
    );
    let loading = LoadingModel::paper_default(&model, 8192, 16);
    println!("Figure 11 — fraction of time spent loading LUTs\n");
    println!("{:>12} {:>10} {:>10}", "volume (MB)", "DDR4", "SSD");
    println!("csv: volume_mb,ddr4_fraction,ssd_fraction");
    for mb in [
        0.5, 1.0, 1.9, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0,
    ] {
        let d = loading.loading_fraction(LutSource::Ddr4Memory, mb * 1e6);
        let s = loading.loading_fraction(LutSource::M2Ssd, mb * 1e6);
        println!("{mb:>12.1} {:>9.1}% {:>9.1}%", d * 100.0, s * 100.0);
        println!("csv: {mb},{d:.4},{s:.4}");
    }
    let be = loading.break_even_bytes(LutSource::Ddr4Memory) / 1e6;
    println!(
        "\nbreak-even volume (load time = query time, DDR4): {be:.2} MB \
         (paper: ~1.9 MB)"
    );
    let at120 = loading.loading_fraction(LutSource::Ddr4Memory, 120e6);
    println!(
        "fraction at 120 MB (DDR4): {:.1}% (paper: ~2%)",
        at120 * 100.0
    );
}
