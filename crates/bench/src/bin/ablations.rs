//! Ablation studies of pLUTo's design choices (beyond the paper's
//! figures; `DESIGN.md` §4 last row).
//!
//! 1. **GSA master-copy distance** — Table 1 charges `LISA_RBM × N` per
//!    reload assuming the pristine copy is LISA-adjacent; how fast does
//!    GSA degrade as the master moves away?
//! 2. **Slot width vs throughput** — wider slots waste row capacity
//!    (fewer lookups per sweep) but enable wider outputs; where is the
//!    elbow?
//! 3. **SALP × tFAW interaction** — the paper studies each axis alone
//!    (Figs. 13, 14); the grid shows where the activation window starts to
//!    cap scaling.

use pluto_core::design::{DesignKind, DesignModel};
use pluto_core::lut::catalog;
use pluto_core::query::{QueryExecutor, QueryPlacement};
use pluto_core::salp::{batch_makespan, QueryBatch, SalpConfig};
use pluto_core::store::LutStore;
use pluto_dram::{BankId, DramConfig, EnergyModel, Engine, RowId, SubarrayId, TimingParams};

fn main() {
    ablation_master_distance();
    ablation_slot_width();
    ablation_salp_tfaw_grid();
}

/// GSA reload cost versus master-copy placement distance.
fn ablation_master_distance() {
    println!("Ablation 1 — GSA query latency vs master-copy distance\n");
    println!(
        "{:>10} {:>14} {:>12}",
        "hops", "query latency", "vs adjacent"
    );
    let mut adjacent_ns = 0.0;
    for hops in [1u16, 2, 4, 8, 16] {
        let cfg = DramConfig {
            row_bytes: 64,
            burst_bytes: 8,
            banks: 1,
            subarrays_per_bank: 64,
            rows_per_subarray: 512,
            ..DramConfig::ddr4_2400()
        };
        let mut engine = Engine::new(cfg);
        let lut = catalog::popcount(4).unwrap();
        let pluto = SubarrayId(20);
        let master = SubarrayId(20 + hops);
        let mut store = LutStore::load(&mut engine, lut, BankId(0), pluto, master, 0).unwrap();
        let placement = QueryPlacement {
            bank: BankId(0),
            source: SubarrayId(19),
            pluto,
            dest: SubarrayId(21),
        };
        let mut ex = QueryExecutor::new(&mut engine, DesignKind::Gsa);
        let inputs: Vec<u64> = (0..16).collect();
        let (_, cost) = ex
            .execute(&mut store, placement, &inputs, RowId(0), RowId(0))
            .unwrap();
        let ns = cost.total().as_ns();
        if hops == 1 {
            adjacent_ns = ns;
        }
        println!("{hops:>10} {:>12.0}ns {:>11.2}x", ns, ns / adjacent_ns);
    }
    println!("-> reload dominates GSA: every extra hop adds ~LISA_RBM x N.\n");
}

/// Lookups per second as a function of slot width at fixed LUT size.
fn ablation_slot_width() {
    println!("Ablation 2 — throughput vs slot width (256-element LUT, BSA)\n");
    println!(
        "{:>11} {:>13} {:>16}",
        "slot bits", "slots/row", "lookups/s/SA"
    );
    let model = DesignModel::new(
        DesignKind::Bsa,
        TimingParams::ddr4_2400(),
        EnergyModel::ddr4(),
    );
    for slot_bits in [8u32, 10, 12, 16, 24, 32] {
        let slots = 65536 / slot_bits as u64;
        let qps = slots as f64 / model.query_latency(256).as_secs();
        println!("{slot_bits:>11} {slots:>13} {qps:>16.3e}");
    }
    println!("-> throughput is inversely proportional to slot width: wide\n   outputs trade directly against parallelism (paper §5.6).\n");
}

/// Makespan of a fixed query batch across the SALP × tFAW grid.
fn ablation_salp_tfaw_grid() {
    println!("Ablation 3 — batch makespan (us): subarrays x tFAW scale (GMC, 256-row LUT)\n");
    let model = DesignModel::new(
        DesignKind::Gmc,
        TimingParams::ddr4_2400(),
        EnergyModel::ddr4(),
    );
    let batch = QueryBatch {
        lut_elems: 256,
        queries: 256,
    };
    print!("{:>10}", "subarrays");
    for scale in [0.0, 0.25, 0.5, 1.0, 2.0] {
        print!(" {:>9}", format!("f={scale}"));
    }
    println!();
    for subarrays in [1usize, 4, 16, 64, 256] {
        print!("{subarrays:>10}");
        for scale in [0.0, 0.25, 0.5, 1.0, 2.0] {
            let t = batch_makespan(
                &model,
                batch,
                SalpConfig {
                    subarrays,
                    t_faw_scale: scale,
                },
            );
            print!(" {:>9.1}", t.as_us());
        }
        println!();
    }
    println!("\n-> tFAW is irrelevant below ~16 subarrays and caps scaling\n   beyond; doubling tFAW halves the achievable parallel rate —\n   quantifying the paper's §5.5/§8.7 discussion on one grid.");
}
