//! Figure 6: bitline voltage versus time after wordline activation, for
//! unmodified DRAM and the three pLUTo designs, under 100-run Monte Carlo
//! process variation (paper §8.1).

use pluto_analog::{ActivationScenario, CircuitParams, DesignVariant, MonteCarlo};

fn main() {
    let params = CircuitParams::lp22nm();
    let mc = MonteCarlo::default();
    println!(
        "Figure 6 — bitline transients ({} runs, {:.0}% variation)\n",
        mc.runs,
        mc.sigma * 100.0
    );
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>14} {:>12}",
        "design", "correct", "mean V_bl", "std V_bl", "latch (ns)", "disturb %"
    );
    for variant in DesignVariant::ALL {
        for scenario in [
            ActivationScenario::matched_one(),
            ActivationScenario::matched_zero(),
        ] {
            let s = mc.summarize(&params, variant, scenario);
            println!(
                "{:<12} {:>6}/{:<3} {:>10.4} V {:>10.4} V {:>12.2} {:>11.2}",
                format!(
                    "{variant}{}",
                    if scenario.cell_value { " (1)" } else { " (0)" }
                ),
                s.correct,
                s.runs,
                s.mean_final,
                s.std_final,
                s.mean_latch_time * 1e9,
                s.max_unmatched_disturbance * 100.0
            );
        }
    }
    // Unmatched GMC: the disturbance bound (paper: ~0.9 % of VDD).
    let s = mc.summarize(
        &params,
        DesignVariant::Gmc,
        ActivationScenario::unmatched_one(),
    );
    println!(
        "\nGMC unmatched bitline disturbance: {:.2}% of VDD (paper: ~0.9%)",
        s.max_unmatched_disturbance * 100.0
    );

    // CSV sample transient per design (downsampled), for plotting.
    println!(
        "\ncsv: time_ns,{}",
        DesignVariant::ALL.map(|v| v.to_string()).join(",")
    );
    let traces: Vec<_> = DesignVariant::ALL
        .iter()
        .map(|&v| pluto_analog::simulate_activation(&params, v, ActivationScenario::matched_one()))
        .collect();
    let n = traces[0].time.len();
    for i in (0..n).step_by(n / 25) {
        let row: Vec<String> = traces
            .iter()
            .map(|t| format!("{:.4}", t.v_bitline[i]))
            .collect();
        println!("csv: {:.2},{}", traces[0].time[i] * 1e9, row.join(","));
    }
}
