//! Figure 9: speedup of the six pLUTo configurations over the FPGA
//! baseline on the arithmetic/bit-counting/CRC/binarization micro-workloads
//! (paper §8.2.2).

use pluto_baselines::{Machine, WorkloadId};
use pluto_bench::{
    baseline_secs, cluster, fmt_x, geomean, measure_sweep, pluto_wall_secs, print_row, quick_mode,
    PlutoConfig,
};

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![WorkloadId::Add4, WorkloadId::Bc4, WorkloadId::ImgBin]
    } else {
        WorkloadId::FIG9.to_vec()
    };
    let fpga = Machine::zcu102();

    let mut pool = cluster();
    let costs = measure_sweep(&ids, &PlutoConfig::ALL, &mut pool);

    let headers: Vec<String> = PlutoConfig::ALL.iter().map(|c| c.label()).collect();
    println!(
        "Figure 9 — speedup over the FPGA baseline (higher is better; {} workers)\n",
        pool.workers()
    );
    print_row("workload", &headers);

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    let mut small_lut_gain = Vec::new(); // BC4 / ImgBin style
    let mut wide_op_gain = Vec::new(); // MUL16 style
    for (row, &id) in costs.iter().zip(&ids) {
        let t_fpga = baseline_secs(id, &fpga);
        let mut cells = Vec::new();
        for (cfg, cost) in PlutoConfig::ALL.iter().zip(row) {
            cells.push(t_fpga / pluto_wall_secs(id, *cfg, cost));
        }
        for (s, &v) in series.iter_mut().zip(&cells) {
            s.push(v);
        }
        match id {
            WorkloadId::Bc4 | WorkloadId::ImgBin => small_lut_gain.push(cells[1]),
            WorkloadId::Mul16 => wide_op_gain.push(cells[1]),
            _ => {}
        }
        print_row(
            &id.to_string(),
            &cells.iter().map(|&v| fmt_x(v)).collect::<Vec<_>>(),
        );
    }
    let gmeans: Vec<String> = series.iter().map(|s| fmt_x(geomean(s))).collect();
    print_row("GMEAN", &gmeans);
    println!("\npaper (DDR4): GSA 160x, BSA 274x, GMC 459x over the FPGA");
    if !small_lut_gain.is_empty() && !wide_op_gain.is_empty() {
        println!(
            "shape check — small-LUT workloads gain most, wide ops least: {}",
            geomean(&small_lut_gain) > geomean(&wide_op_gain)
        );
    }
}
