//! Figure 13: impact of the tFAW activation-rate limit on pLUTo
//! performance, at 0 % (unconstrained), 50 %, and 100 % (nominal) of the
//! modeled chip's tFAW (paper §8.7).

use pluto_baselines::WorkloadId;
use pluto_bench::{
    cluster, geomean, measure_all_on, print_row, quick_mode, volume_bytes, PlutoConfig,
};
use pluto_core::DesignKind;
use pluto_dram::{MemoryKind, TimingParams};
use pluto_workloads::runner::scaled_wall_time;

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![WorkloadId::Crc8, WorkloadId::Vmpc, WorkloadId::ImgBin]
    } else {
        WorkloadId::FIG7.to_vec()
    };
    let cfg = PlutoConfig {
        design: DesignKind::Bsa,
        kind: MemoryKind::Ddr4,
    };
    let timing = TimingParams::ddr4_2400();
    let scales = [0.0, 0.5, 1.0];

    println!("Figure 13 — relative performance vs tFAW (pLUTo-BSA, 16 subarrays)\n");
    print_row(
        "workload",
        &["tFAW=0%".into(), "tFAW=50%".into(), "tFAW=100%".into()],
    );
    let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); scales.len()];
    // One parallel cluster batch measures every workload up front.
    let costs = measure_all_on(&ids, cfg, &mut cluster());
    for (&id, cost) in ids.iter().zip(&costs) {
        let free = scaled_wall_time(cost, volume_bytes(id), 16, 0.0, &timing);
        let mut cells = Vec::new();
        for (k, &s) in scales.iter().enumerate() {
            let t = scaled_wall_time(cost, volume_bytes(id), 16, s, &timing);
            let rel = free / t;
            per_scale[k].push(rel);
            cells.push(format!("{:.1}%", rel * 100.0));
        }
        print_row(&id.to_string(), &cells);
    }
    let gmeans: Vec<String> = per_scale
        .iter()
        .map(|v| format!("{:.1}%", geomean(v) * 100.0))
        .collect();
    print_row("GMEAN", &gmeans);
    println!("\npaper: ~10% loss at tFAW=50%, ~20% at tFAW=100%, similar across workloads");
    println!(
        "shape check — monotone penalty: {}",
        geomean(&per_scale[0]) >= geomean(&per_scale[1])
            && geomean(&per_scale[1]) >= geomean(&per_scale[2])
    );
}
