//! Figure 8: speedup per unit area of the GPU and the six pLUTo
//! configurations, normalized to the CPU (paper §8.2.1). pLUTo's area is
//! the Table 5 DRAM chip area; 3DS configurations add 4.4 mm² of logic per
//! vault.

use pluto_baselines::{Machine, WorkloadId};
use pluto_bench::{
    baseline_secs, cluster, fmt_x, geomean, measure_sweep, pluto_wall_secs, print_row, quick_mode,
    PlutoConfig,
};
use pluto_core::area::{stacked_vault_overhead_mm2, AreaBreakdown};
use pluto_dram::MemoryKind;

fn pluto_area_mm2(cfg: PlutoConfig) -> f64 {
    let chip = AreaBreakdown::for_design(cfg.design).total();
    match cfg.kind {
        MemoryKind::Ddr4 => chip,
        // 32 vaults of added logic on the stacked die.
        MemoryKind::Stacked3d => chip + 32.0 * stacked_vault_overhead_mm2(),
    }
}

fn main() {
    let ids: Vec<WorkloadId> = if quick_mode() {
        vec![WorkloadId::Crc8, WorkloadId::Vmpc, WorkloadId::ImgBin]
    } else {
        WorkloadId::FIG7.to_vec()
    };
    let cpu = Machine::xeon_gold_5118();
    let gpu = Machine::rtx_3080_ti();

    let mut pool = cluster();
    let costs = measure_sweep(&ids, &PlutoConfig::ALL, &mut pool);

    let mut headers = vec!["GPU".to_string()];
    headers.extend(PlutoConfig::ALL.iter().map(|c| c.label()));
    println!(
        "Figure 8 — speedup per unit area over CPU (higher is better; {} workers)\n",
        pool.workers()
    );
    print_row("workload", &headers);

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    for (row, &id) in costs.iter().zip(&ids) {
        let t_cpu = baseline_secs(id, &cpu);
        let per_area = |speedup: f64, area: f64| speedup / (area / cpu.area_mm2);
        let mut cells = vec![per_area(t_cpu / baseline_secs(id, &gpu), gpu.area_mm2)];
        for (cfg, cost) in PlutoConfig::ALL.iter().zip(row) {
            let speedup = t_cpu / pluto_wall_secs(id, *cfg, cost);
            cells.push(per_area(speedup, pluto_area_mm2(*cfg)));
        }
        for (s, &v) in series.iter_mut().zip(&cells) {
            s.push(v);
        }
        print_row(
            &id.to_string(),
            &cells.iter().map(|&v| fmt_x(v)).collect::<Vec<_>>(),
        );
    }
    let gmeans: Vec<String> = series.iter().map(|s| fmt_x(geomean(s))).collect();
    print_row("GMEAN", &gmeans);
    println!("\npaper: every pLUTo design beats both CPU and GPU per unit area by a wide margin");
    let g = |i: usize| geomean(&series[i]);
    println!(
        "shape check — all pLUTo above GPU per area: {}",
        (1..7).all(|i| g(i) > g(0))
    );
}
