//! # pluto-bench — harness regenerating every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §4 for the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig06_bitline` | Fig. 6 — Monte Carlo bitline transients |
//! | `fig07_speedup` | Fig. 7 — speedup over CPU |
//! | `fig08_perf_per_area` | Fig. 8 — speedup per unit area |
//! | `fig09_fpga` | Fig. 9 — speedup over FPGA |
//! | `fig10_energy` | Fig. 10 — CPU-normalized energy |
//! | `fig11_lut_loading` | Fig. 11 — LUT loading overhead |
//! | `fig12_scalability` | Fig. 12 — LUT-size scaling + mul energy efficiency |
//! | `fig13_tfaw` | Fig. 13 — tFAW sensitivity |
//! | `fig14_salp` | Fig. 14 — subarray-level-parallelism scaling |
//! | `table1_designs` | Table 1 — design comparison |
//! | `table5_area` | Table 5 — area breakdown |
//! | `table6_pum` | Table 6 — prior-PuM comparison |
//! | `table7_qnn` | Table 7 — LeNet-5 inference |
//!
//! Binaries print the paper's rows/series as aligned tables plus CSV. Set
//! `PLUTO_QUICK=1` to shrink the expensive measurement runs (Salsa20,
//! CRC-32) for smoke testing.
//!
//! Measurement sweeps run on a `pluto_core::cluster::Cluster` worker
//! pool ([`measure_sweep`]/[`measure_all_on`]): results are bit-identical
//! to the serial session path for any worker count, so parallelism is a
//! pure wall-clock win. Pass `--workers N` (or set `PLUTO_WORKERS`) to
//! pin the pool size; the default is one worker per available CPU.

#![warn(missing_docs)]

use pluto_baselines::{estimate, machine::Machine, profile, WorkloadId};
use pluto_core::cluster::Cluster;
use pluto_core::session::{ExecConfig, Session, Workload};
use pluto_core::DesignKind;
use pluto_dram::MemoryKind;
use pluto_workloads::runner::{self, PlutoCost};
use pluto_workloads::workload_for;

/// Input volume used when scaling workload costs (bytes).
pub fn volume_bytes(id: WorkloadId) -> f64 {
    match id {
        // The paper's image workloads are one 936 000-pixel 3-channel image.
        WorkloadId::ImgBin | WorkloadId::ColorGrade => 936_000.0 * 3.0,
        // Packet workloads: 100 MB streams.
        _ => 100e6,
    }
}

/// The six pLUTo configurations of Figs. 7, 8, 10 (design × memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlutoConfig {
    /// The hardware design.
    pub design: DesignKind,
    /// DDR4 or 3D-stacked memory.
    pub kind: MemoryKind,
}

impl PlutoConfig {
    /// The paper's six configurations, in figure legend order.
    pub const ALL: [PlutoConfig; 6] = [
        PlutoConfig {
            design: DesignKind::Gsa,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Bsa,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Gmc,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Gsa,
            kind: MemoryKind::Stacked3d,
        },
        PlutoConfig {
            design: DesignKind::Bsa,
            kind: MemoryKind::Stacked3d,
        },
        PlutoConfig {
            design: DesignKind::Gmc,
            kind: MemoryKind::Stacked3d,
        },
    ];

    /// Figure legend label.
    pub fn label(&self) -> String {
        match self.kind {
            MemoryKind::Ddr4 => format!("{}", self.design),
            MemoryKind::Stacked3d => format!("{}-3DS", self.design),
        }
    }

    /// Default subarray-level parallelism (Table 3: 16 for DDR4, 512 for
    /// 3DS).
    pub fn subarrays(&self) -> usize {
        pluto_core::session::default_salp(self.kind)
    }

    /// A [`Session`] configured for this figure configuration (built
    /// from [`PlutoConfig::exec_config`], so the serial and cluster
    /// paths share one configuration by construction), panicking with
    /// context on failure.
    pub fn session(&self) -> Session {
        Session::with_config(self.exec_config())
            .unwrap_or_else(|e| panic!("building a session for {}: {e}", self.label()))
    }

    /// The explicit [`ExecConfig`] of this figure configuration — what
    /// cluster submissions use.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig::measurement_on(self.design, self.kind)
    }
}

/// Measures (and caches nothing — callers decide) the pLUTo cost of a
/// workload under one configuration, panicking with context on failure.
pub fn measure_config(id: WorkloadId, cfg: PlutoConfig) -> PlutoCost {
    let mut workload = workload_for(id);
    let report = cfg
        .session()
        .run(workload.as_mut())
        .unwrap_or_else(|e| panic!("measuring {id} on {}: {e}", cfg.label()));
    assert!(
        report.validated,
        "{id} failed functional validation on {}",
        cfg.label()
    );
    PlutoCost::from_report(id, report)
}

/// Serial batched measurement: runs every workload in `ids` on one
/// [`Session`] via `run_all` (the serial baseline the
/// `BENCH_session.json` and `BENCH_cluster.json` baselines compare
/// against), panicking with context on failure.
pub fn measure_all(ids: &[WorkloadId], cfg: PlutoConfig) -> Vec<PlutoCost> {
    let mut workloads: Vec<Box<dyn Workload>> = ids.iter().map(|&id| workload_for(id)).collect();
    let mut session = cfg.session();
    let reports = session
        .run_all(&mut workloads)
        .unwrap_or_else(|e| panic!("batched measurement on {}: {e}", cfg.label()));
    ids.iter()
        .zip(reports)
        .map(|(&id, report)| {
            assert!(
                report.validated,
                "{id} failed functional validation on {}",
                cfg.label()
            );
            PlutoCost::from_report(id, report)
        })
        .collect()
}

/// Parallel batched measurement: the cluster counterpart of
/// [`measure_all`] — same ids, same configuration, bit-identical costs,
/// executed across `cluster`'s workers. Panics with context on failure.
pub fn measure_all_on(
    ids: &[WorkloadId],
    cfg: PlutoConfig,
    cluster: &mut Cluster,
) -> Vec<PlutoCost> {
    let sweep = measure_sweep(ids, &[cfg], cluster);
    sweep.into_iter().map(|mut row| row.remove(0)).collect()
}

/// The full figure sweep on a [`Cluster`]: every `(workload, config)`
/// pair becomes one job, all jobs run across the pool's workers, and the
/// costs come back indexed `[workload][config]` — each bit-identical to
/// the serial [`measure_config`] measurement of the same pair. Panics
/// with context on the first failing or non-validating job (matching the
/// serial sweep's behavior), or if `cluster` still has submissions
/// pending from before this call (collect them with [`Cluster::run`]
/// first — otherwise their reports would be misattributed to sweep
/// cells).
pub fn measure_sweep(
    ids: &[WorkloadId],
    cfgs: &[PlutoConfig],
    cluster: &mut Cluster,
) -> Vec<Vec<PlutoCost>> {
    assert_eq!(
        cluster.pending(),
        0,
        "measure_sweep runs its own batch; collect pending submissions with run() first"
    );
    for &id in ids {
        for cfg in cfgs {
            cluster.submit(cfg.exec_config(), workload_for(id));
        }
    }
    let reports = cluster
        .run()
        .unwrap_or_else(|e| panic!("cluster sweep ({} jobs): {e}", ids.len() * cfgs.len()));
    let mut rows = Vec::with_capacity(ids.len());
    let mut it = reports.into_iter();
    for &id in ids {
        let row: Vec<PlutoCost> = cfgs
            .iter()
            .map(|cfg| {
                let report = it.next().expect("one report per submitted job");
                assert!(
                    report.validated,
                    "{id} failed functional validation on {}",
                    cfg.label()
                );
                PlutoCost::from_report(id, report)
            })
            .collect();
        rows.push(row);
    }
    rows
}

/// Worker-thread count for figure binaries: `--workers N` on the command
/// line, else the `PLUTO_WORKERS` environment variable, else one per
/// available CPU. Worker count never changes results — only wall-clock
/// time (see `pluto_core::cluster`).
///
/// # Panics
/// Panics (rather than silently falling back) when `--workers` or
/// `PLUTO_WORKERS` is present but not a positive integer.
pub fn worker_count() -> usize {
    let parse = |source: &str, v: &str| -> usize {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("{source} expects a positive integer, got {v:?}"))
    };
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--workers" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--workers expects a value"));
            return parse("--workers", &v);
        }
    }
    if let Ok(v) = std::env::var("PLUTO_WORKERS") {
        return parse("PLUTO_WORKERS", &v);
    }
    pluto_core::cluster::default_workers()
}

/// A [`Cluster`] sized by [`worker_count`] — what every migrated figure
/// binary executes its sweeps on.
pub fn cluster() -> Cluster {
    Cluster::new(worker_count())
}

/// pLUTo wall-clock seconds for a workload volume under one configuration.
pub fn pluto_wall_secs(id: WorkloadId, cfg: PlutoConfig, cost: &PlutoCost) -> f64 {
    let timing = match cfg.kind {
        MemoryKind::Ddr4 => pluto_dram::TimingParams::ddr4_2400(),
        MemoryKind::Stacked3d => pluto_dram::TimingParams::hmc_3ds(),
    };
    runner::scaled_wall_time(cost, volume_bytes(id), cfg.subarrays(), 0.0, &timing)
}

/// Baseline runtime in seconds for a workload volume.
pub fn baseline_secs(id: WorkloadId, machine: &Machine) -> f64 {
    estimate::runtime_secs(machine, &profile::workload_profile(id), volume_bytes(id))
}

/// Baseline energy in joules for a workload volume.
pub fn baseline_joules(id: WorkloadId, machine: &Machine) -> f64 {
    estimate::energy_joules(machine, &profile::workload_profile(id), volume_bytes(id))
}

/// Geometric mean of a slice.
///
/// # Panics
/// Panics on an empty slice or non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a row of an aligned table.
pub fn print_row(first: &str, cells: &[String]) {
    print!("{first:<14}");
    for c in cells {
        print!(" {c:>13}");
    }
    println!();
}

/// Formats a speedup-style number compactly.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else if v >= 1.0 {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Whether quick mode is enabled — `PLUTO_QUICK=1` in the environment or
/// a `--quick` flag on the binary's command line. Every figure/table
/// binary honors this (the `bins_smoke` integration tests run them all
/// with `--quick`).
pub fn quick_mode() -> bool {
    std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn config_labels_and_parallelism() {
        assert_eq!(PlutoConfig::ALL[1].label(), "pLUTo-BSA");
        assert_eq!(PlutoConfig::ALL[4].label(), "pLUTo-BSA-3DS");
        assert_eq!(PlutoConfig::ALL[0].subarrays(), 16);
        assert_eq!(PlutoConfig::ALL[3].subarrays(), 512);
    }

    #[test]
    fn volumes_positive() {
        for id in WorkloadId::FIG7 {
            assert!(volume_bytes(id) > 0.0);
        }
    }

    #[test]
    fn cluster_sweep_is_bit_identical_to_serial_measurement() {
        let ids = [WorkloadId::Bc4, WorkloadId::BitwiseRow];
        let cfgs = [PlutoConfig::ALL[2], PlutoConfig::ALL[5]];
        let mut cluster = Cluster::new(2);
        let sweep = measure_sweep(&ids, &cfgs, &mut cluster);
        for (i, &id) in ids.iter().enumerate() {
            for (j, &cfg) in cfgs.iter().enumerate() {
                assert_eq!(sweep[i][j], measure_config(id, cfg), "{id}/{}", cfg.label());
            }
        }
        // measure_all_on agrees with the serial batched path.
        let parallel = measure_all_on(&ids, cfgs[0], &mut cluster);
        assert_eq!(parallel, measure_all(&ids, cfgs[0]));
    }
}
