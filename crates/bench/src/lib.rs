//! # pluto-bench — harness regenerating every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §4 for the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig06_bitline` | Fig. 6 — Monte Carlo bitline transients |
//! | `fig07_speedup` | Fig. 7 — speedup over CPU |
//! | `fig08_perf_per_area` | Fig. 8 — speedup per unit area |
//! | `fig09_fpga` | Fig. 9 — speedup over FPGA |
//! | `fig10_energy` | Fig. 10 — CPU-normalized energy |
//! | `fig11_lut_loading` | Fig. 11 — LUT loading overhead |
//! | `fig12_scalability` | Fig. 12 — LUT-size scaling + mul energy efficiency |
//! | `fig13_tfaw` | Fig. 13 — tFAW sensitivity |
//! | `fig14_salp` | Fig. 14 — subarray-level-parallelism scaling |
//! | `table1_designs` | Table 1 — design comparison |
//! | `table5_area` | Table 5 — area breakdown |
//! | `table6_pum` | Table 6 — prior-PuM comparison |
//! | `table7_qnn` | Table 7 — LeNet-5 inference |
//!
//! Binaries print the paper's rows/series as aligned tables plus CSV. Set
//! `PLUTO_QUICK=1` to shrink the expensive measurement runs (Salsa20,
//! CRC-32) for smoke testing.

#![warn(missing_docs)]

use pluto_baselines::{estimate, machine::Machine, profile, WorkloadId};
use pluto_core::session::{Session, Workload};
use pluto_core::DesignKind;
use pluto_dram::MemoryKind;
use pluto_workloads::runner::{self, PlutoCost};
use pluto_workloads::workload_for;

/// Input volume used when scaling workload costs (bytes).
pub fn volume_bytes(id: WorkloadId) -> f64 {
    match id {
        // The paper's image workloads are one 936 000-pixel 3-channel image.
        WorkloadId::ImgBin | WorkloadId::ColorGrade => 936_000.0 * 3.0,
        // Packet workloads: 100 MB streams.
        _ => 100e6,
    }
}

/// The six pLUTo configurations of Figs. 7, 8, 10 (design × memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlutoConfig {
    /// The hardware design.
    pub design: DesignKind,
    /// DDR4 or 3D-stacked memory.
    pub kind: MemoryKind,
}

impl PlutoConfig {
    /// The paper's six configurations, in figure legend order.
    pub const ALL: [PlutoConfig; 6] = [
        PlutoConfig {
            design: DesignKind::Gsa,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Bsa,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Gmc,
            kind: MemoryKind::Ddr4,
        },
        PlutoConfig {
            design: DesignKind::Gsa,
            kind: MemoryKind::Stacked3d,
        },
        PlutoConfig {
            design: DesignKind::Bsa,
            kind: MemoryKind::Stacked3d,
        },
        PlutoConfig {
            design: DesignKind::Gmc,
            kind: MemoryKind::Stacked3d,
        },
    ];

    /// Figure legend label.
    pub fn label(&self) -> String {
        match self.kind {
            MemoryKind::Ddr4 => format!("{}", self.design),
            MemoryKind::Stacked3d => format!("{}-3DS", self.design),
        }
    }

    /// Default subarray-level parallelism (Table 3: 16 for DDR4, 512 for
    /// 3DS).
    pub fn subarrays(&self) -> usize {
        pluto_core::session::default_salp(self.kind)
    }

    /// A [`Session`] configured for this figure configuration, panicking
    /// with context on failure.
    pub fn session(&self) -> Session {
        Session::builder(self.design)
            .memory(self.kind)
            .build()
            .unwrap_or_else(|e| panic!("building a session for {}: {e}", self.label()))
    }
}

/// Measures (and caches nothing — callers decide) the pLUTo cost of a
/// workload under one configuration, panicking with context on failure.
pub fn measure_config(id: WorkloadId, cfg: PlutoConfig) -> PlutoCost {
    let mut workload = workload_for(id);
    let report = cfg
        .session()
        .run(workload.as_mut())
        .unwrap_or_else(|e| panic!("measuring {id} on {}: {e}", cfg.label()));
    assert!(
        report.validated,
        "{id} failed functional validation on {}",
        cfg.label()
    );
    PlutoCost::from_report(id, report)
}

/// Batched measurement: runs every workload in `ids` on one [`Session`]
/// via `run_all` (the path the `BENCH_session.json` baseline exercises),
/// panicking with context on failure.
pub fn measure_all(ids: &[WorkloadId], cfg: PlutoConfig) -> Vec<PlutoCost> {
    let mut workloads: Vec<Box<dyn Workload>> = ids.iter().map(|&id| workload_for(id)).collect();
    let mut session = cfg.session();
    let reports = session
        .run_all(&mut workloads)
        .unwrap_or_else(|e| panic!("batched measurement on {}: {e}", cfg.label()));
    ids.iter()
        .zip(reports)
        .map(|(&id, report)| {
            assert!(
                report.validated,
                "{id} failed functional validation on {}",
                cfg.label()
            );
            PlutoCost::from_report(id, report)
        })
        .collect()
}

/// pLUTo wall-clock seconds for a workload volume under one configuration.
pub fn pluto_wall_secs(id: WorkloadId, cfg: PlutoConfig, cost: &PlutoCost) -> f64 {
    let timing = match cfg.kind {
        MemoryKind::Ddr4 => pluto_dram::TimingParams::ddr4_2400(),
        MemoryKind::Stacked3d => pluto_dram::TimingParams::hmc_3ds(),
    };
    runner::scaled_wall_time(cost, volume_bytes(id), cfg.subarrays(), 0.0, &timing)
}

/// Baseline runtime in seconds for a workload volume.
pub fn baseline_secs(id: WorkloadId, machine: &Machine) -> f64 {
    estimate::runtime_secs(machine, &profile::workload_profile(id), volume_bytes(id))
}

/// Baseline energy in joules for a workload volume.
pub fn baseline_joules(id: WorkloadId, machine: &Machine) -> f64 {
    estimate::energy_joules(machine, &profile::workload_profile(id), volume_bytes(id))
}

/// Geometric mean of a slice.
///
/// # Panics
/// Panics on an empty slice or non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a row of an aligned table.
pub fn print_row(first: &str, cells: &[String]) {
    print!("{first:<14}");
    for c in cells {
        print!(" {c:>13}");
    }
    println!();
}

/// Formats a speedup-style number compactly.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else if v >= 1.0 {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Whether quick mode is enabled — `PLUTO_QUICK=1` in the environment or
/// a `--quick` flag on the binary's command line. Every figure/table
/// binary honors this (the `bins_smoke` integration tests run them all
/// with `--quick`).
pub fn quick_mode() -> bool {
    std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn config_labels_and_parallelism() {
        assert_eq!(PlutoConfig::ALL[1].label(), "pLUTo-BSA");
        assert_eq!(PlutoConfig::ALL[4].label(), "pLUTo-BSA-3DS");
        assert_eq!(PlutoConfig::ALL[0].subarrays(), 16);
        assert_eq!(PlutoConfig::ALL[3].subarrays(), 512);
    }

    #[test]
    fn volumes_positive() {
        for id in WorkloadId::FIG7 {
            assert!(volume_bytes(id) > 0.0);
        }
    }
}
