//! Property-based tests of the DRAM substrate (sim-support harness).

use pluto_dram::{
    BankId, DramConfig, Engine, Lane, LaneStep, ParallelScheduler, Picos, RowId, RowLoc,
    SubarrayId, SweepStepKind,
};
use sim_support::prop::{self, CaseResult, Gen};
use sim_support::{prop_assert, prop_assert_eq};

const CASES: u32 = 64;

fn cfg() -> DramConfig {
    DramConfig {
        row_bytes: 32,
        burst_bytes: 8,
        banks: 2,
        subarrays_per_bank: 8,
        rows_per_subarray: 64,
        ..DramConfig::ddr4_2400()
    }
}

/// A row written with poke reads back identically through both the
/// backdoor and the timed read path.
#[test]
fn poke_peek_read_roundtrip() {
    prop::check(
        "poke_peek_read_roundtrip",
        CASES,
        |g: &mut Gen| -> CaseResult {
            let data: Vec<u8> = g.vec_any(32, 32);
            let mut e = Engine::new(cfg());
            let loc = RowLoc::new(1, 3, 7);
            e.poke_row(loc, &data).unwrap();
            prop_assert_eq!(e.peek_row(loc).unwrap(), data.clone());
            prop_assert_eq!(e.read_row(loc).unwrap(), data);
            Ok(())
        },
    );
}

/// Shifting left then right by the same amount zeroes exactly the
/// wrapped-out bits and preserves the rest.
#[test]
fn shift_roundtrip_masks_only_edges() {
    prop::check("shift_roundtrip_masks_only_edges", CASES, |g| {
        let data: Vec<u8> = g.vec_any(32, 32);
        let amount: u32 = g.range(0u32..64);
        let mut e = Engine::new(cfg());
        let loc = RowLoc::new(0, 0, 0);
        e.poke_row(loc, &data).unwrap();
        e.shift_row(loc, true, amount).unwrap();
        e.shift_row(loc, false, amount).unwrap();
        let got = e.peek_row(loc).unwrap();
        // The top `amount` bits of the row were lost; everything else must
        // round-trip.
        let total_bits = 32 * 8;
        for bit in 0..total_bits {
            let expect = if bit < amount as usize {
                0
            } else {
                (data[bit / 8] >> (7 - bit % 8)) & 1
            };
            let actual = (got[bit / 8] >> (7 - bit % 8)) & 1;
            prop_assert_eq!(actual, expect, "bit {}", bit);
        }
        Ok(())
    });
}

/// Chained LISA movements deliver the original row buffer contents
/// across any path of subarrays.
#[test]
fn lisa_chain_preserves_data() {
    prop::check("lisa_chain_preserves_data", CASES, |g| {
        let data: Vec<u8> = g.vec_any(32, 32);
        let hops: Vec<u16> = g.vec_range(1, 4, 0u16..8);
        let mut e = Engine::new(cfg());
        let src = RowLoc::new(0, 0, 1);
        e.poke_row(src, &data).unwrap();
        e.activate(src).unwrap();
        let mut cur = SubarrayId(0);
        for &h in &hops {
            let next = SubarrayId(h);
            if next == cur {
                continue;
            }
            e.lisa_rbm(BankId(0), cur, next).unwrap();
            cur = next;
        }
        let buf = e.row_buffer(BankId(0), cur).unwrap();
        prop_assert_eq!(&buf.data, &data);
        Ok(())
    });
}

/// Engine clock and energy are monotone non-decreasing over any
/// command sequence.
#[test]
fn accounting_is_monotone() {
    prop::check("accounting_is_monotone", CASES, |g| {
        let ops: Vec<u8> = g.vec_range(1, 39, 0u8..5);
        let mut e = Engine::new(cfg());
        let mut last_t = Picos::ZERO;
        let mut last_e = 0.0f64;
        for (i, &op) in ops.iter().enumerate() {
            let row = (i % 60) as u16;
            match op {
                0 => {
                    let _ = e.sweep_step(RowLoc::new(0, 1, row), SweepStepKind::FullCycle);
                }
                1 => {
                    let _ = e.sweep_step(RowLoc::new(0, 1, row), SweepStepKind::ChargeShare);
                }
                2 => {
                    let _ = e.row_clone_fpm(RowLoc::new(0, 2, row), RowId((row + 1) % 60));
                }
                3 => {
                    let _ = e.precharge(BankId(0), SubarrayId(1));
                }
                _ => {
                    let _ = e.triple_row_activate(
                        BankId(0),
                        SubarrayId(3),
                        [RowId(0), RowId(1), RowId(2)],
                    );
                }
            }
            prop_assert!(e.elapsed() >= last_t);
            prop_assert!(e.command_energy().as_pj() >= last_e);
            last_t = e.elapsed();
            last_e = e.command_energy().as_pj();
        }
        prop_assert!(e.total_energy() >= e.command_energy());
        Ok(())
    });
}

/// Tightening tFAW never reduces a parallel schedule's makespan, and
/// disabling it never increases it.
#[test]
fn tfaw_monotone_in_makespan() {
    prop::check("tfaw_monotone_in_makespan", CASES, |g| {
        let lanes: usize = g.range(1usize..12);
        let steps: usize = g.range(1usize..20);
        let faw_ns: f64 = g.range(1.0f64..50.0);
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(Picos::from_ns(10.0)), steps);
        let free = ParallelScheduler::new(Picos::ZERO).makespan_uniform(&lane, lanes);
        let tight = ParallelScheduler::new(Picos::from_ns(faw_ns)).makespan_uniform(&lane, lanes);
        let tighter =
            ParallelScheduler::new(Picos::from_ns(faw_ns * 2.0)).makespan_uniform(&lane, lanes);
        prop_assert!(tight >= free);
        prop_assert!(tighter >= tight);
        Ok(())
    });
}

/// Ambit TRA with constant control rows implements AND/OR exactly.
#[test]
fn tra_and_or_reference() {
    prop::check("tra_and_or_reference", CASES, |g| {
        let a: Vec<u8> = g.vec_any(32, 32);
        let b: Vec<u8> = g.vec_any(32, 32);
        let use_or: bool = g.any();
        let mut e = Engine::new(cfg());
        let control = vec![if use_or { 0xFF } else { 0x00 }; 32];
        e.poke_row(RowLoc::new(0, 0, 0), &a).unwrap();
        e.poke_row(RowLoc::new(0, 0, 1), &b).unwrap();
        e.poke_row(RowLoc::new(0, 0, 2), &control).unwrap();
        e.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        let got = e.peek_row(RowLoc::new(0, 0, 0)).unwrap();
        let expect: Vec<u8> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| if use_or { x | y } else { x & y })
            .collect();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

/// DCC negating clone is an involution through a scratch row.
#[test]
fn dcc_double_negation() {
    prop::check("dcc_double_negation", CASES, |g| {
        let data: Vec<u8> = g.vec_any(32, 32);
        let mut e = Engine::new(cfg());
        let src = RowLoc::new(0, 0, 0);
        e.poke_row(src, &data).unwrap();
        e.row_clone_dcc(src, RowId(1)).unwrap();
        e.row_clone_dcc(src.with_row(1), RowId(2)).unwrap();
        prop_assert_eq!(e.peek_row(src.with_row(2)).unwrap(), data);
        Ok(())
    });
}
