//! The event-driven banked timing backend (`DESIGN.md` §11).
//!
//! [`BankedTiming`] is the second implementation of the
//! [`crate::TimingModel`] seam: where [`crate::AnalyticTiming`]
//! reproduces the paper's fixed per-command latencies, this backend
//! charges the tRCD/tRP/tRAS interplay a real per-bank controller
//! would:
//!
//! * **Row-buffer conflicts** — activating over a different open row in
//!   the same bank first waits out the open row's tRAS residency, then
//!   pays the implicit precharge (tRP) before the new activation can
//!   issue.
//! * **Command-queue contention** — a bounded per-rank queue of
//!   [`crate::ACT_QUEUE_DEPTH`] in-flight activations; an activation
//!   arriving at a full queue waits for the oldest entry to retire (one
//!   tRAS after its issue).
//!
//! The backend is deliberately *pure policy*: all bank/row/queue state
//! lives in the engine's shared tracking (`timing_model::RankState`),
//! which both backends maintain identically. On a serial single-bank
//! stream — no conflicts, queue occupancy bounded by ⌈tRAS/tRCD⌉ well
//! below the queue depth — every penalty term is zero and the two
//! backends agree bit-for-bit on latency and energy
//! (`tests/timing_backend.rs`).

use crate::timing::TimingParams;
use crate::timing_model::{ActClass, ActIssue, TimingBackend, TimingModel};
use crate::units::Picos;

/// Event-driven per-bank backend: charges row-buffer conflicts and
/// bounded command-queue contention (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct BankedTiming;

impl TimingModel for BankedTiming {
    fn backend(&self) -> TimingBackend {
        TimingBackend::Banked
    }

    fn act_issue(
        &self,
        at: Picos,
        class: ActClass,
        conflict_open: Option<Picos>,
        queue_gate: Option<Picos>,
        timing: &TimingParams,
    ) -> ActIssue {
        let mut at = at;
        if class == ActClass::Conflict {
            if let Some(opened) = conflict_open {
                // The open row must satisfy its tRAS residency before
                // the implicit precharge can issue; tRP then restores
                // the bitlines. Time-only: the closing precharge's
                // energy is already charged by the stream's own PREs.
                at = at.max(opened + timing.t_ras) + timing.t_rp;
            }
        }
        let queue_stalled = queue_gate.is_some_and(|gate| gate > at);
        if let Some(gate) = queue_gate {
            at = at.max(gate);
        }
        ActIssue { at, queue_stalled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_free() {
        let timing = TimingParams::ddr4_2400();
        let at = Picos::from_ns(100.0);
        for class in [ActClass::Hit, ActClass::Miss] {
            let issue = BankedTiming.act_issue(at, class, None, None, &timing);
            assert_eq!(issue.at, at);
            assert!(!issue.queue_stalled);
        }
    }

    #[test]
    fn conflict_waits_out_tras_then_pays_trp() {
        let timing = TimingParams::ddr4_2400();
        // Row opened at 90 ns, conflict attempted at 100 ns: the open
        // row holds until 90 + tRAS, then tRP.
        let opened = Picos::from_ns(90.0);
        let at = Picos::from_ns(100.0);
        let issue = BankedTiming.act_issue(at, ActClass::Conflict, Some(opened), None, &timing);
        assert_eq!(issue.at, opened + timing.t_ras + timing.t_rp);
        // A long-resident open row (tRAS already satisfied) only costs
        // the precharge.
        let stale = Picos::from_ns(10.0);
        let issue = BankedTiming.act_issue(at, ActClass::Conflict, Some(stale), None, &timing);
        assert_eq!(issue.at, at + timing.t_rp);
    }

    #[test]
    fn full_queue_delays_issue() {
        let timing = TimingParams::ddr4_2400();
        let at = Picos::from_ns(50.0);
        let gate = Picos::from_ns(60.0);
        let issue = BankedTiming.act_issue(at, ActClass::Miss, None, Some(gate), &timing);
        assert_eq!(issue.at, gate);
        assert!(issue.queue_stalled);
        // A gate already in the past neither stalls nor delays.
        let past = Picos::from_ns(40.0);
        let issue = BankedTiming.act_issue(at, ActClass::Miss, None, Some(past), &timing);
        assert_eq!(issue.at, at);
        assert!(!issue.queue_stalled);
    }

    #[test]
    fn conflict_resolution_can_absorb_the_queue_gate() {
        let timing = TimingParams::ddr4_2400();
        let opened = Picos::from_ns(100.0);
        let at = Picos::from_ns(101.0);
        // Conflict pushes the issue past the queue gate: no stall is
        // charged on top (the queue drained while the bank closed).
        let gate = Picos::from_ns(110.0);
        let issue =
            BankedTiming.act_issue(at, ActClass::Conflict, Some(opened), Some(gate), &timing);
        assert_eq!(issue.at, opened + timing.t_ras + timing.t_rp);
        assert!(!issue.queue_stalled);
    }
}
