//! Multi-lane makespan scheduling for subarray-level parallelism.
//!
//! The serial [`crate::Engine`] executes one command at a time. pLUTo,
//! however, exploits MASA/SALP (paper §2.2, §5.5) to run many LUT queries
//! concurrently across subarrays. The binding global constraint is the
//! four-activate window (tFAW): at most four ACTs may issue per rank per
//! tFAW.
//!
//! [`ParallelScheduler`] computes the *makespan* of a set of per-subarray
//! command lanes under that constraint. Each lane is a sequence of steps;
//! steps that issue an activation must reserve a slot in the shared
//! activation window, while other steps (LISA hops, column accesses) proceed
//! independently. Energy is not computed here — it is additive and
//! unaffected by parallelism (paper §8.3) — the caller sums per-lane
//! energies instead.

use crate::units::Picos;
use std::collections::VecDeque;

/// The scheduling class of one step in a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// The step begins with a row activation and must reserve a tFAW slot.
    Act,
    /// The step issues no activation (precharge tail, LISA hop, I/O, …).
    Other,
}

/// One step of work on a lane: its scheduling class and duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStep {
    /// Scheduling class.
    pub kind: StepKind,
    /// How long the lane is busy executing the step.
    pub duration: Picos,
}

impl LaneStep {
    /// An activation-bearing step.
    pub const fn act(duration: Picos) -> Self {
        LaneStep {
            kind: StepKind::Act,
            duration,
        }
    }

    /// A non-activation step.
    pub const fn other(duration: Picos) -> Self {
        LaneStep {
            kind: StepKind::Other,
            duration,
        }
    }
}

/// A sequence of steps executed serially on one subarray.
#[derive(Debug, Clone, Default)]
pub struct Lane {
    steps: Vec<LaneStep>,
}

impl Lane {
    /// Creates an empty lane.
    pub fn new() -> Self {
        Lane::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: LaneStep) -> &mut Self {
        self.steps.push(step);
        self
    }

    /// Appends `n` copies of a step.
    pub fn push_repeated(&mut self, step: LaneStep, n: usize) -> &mut Self {
        self.steps.extend(std::iter::repeat(step).take(n));
        self
    }

    /// The steps in this lane.
    pub fn steps(&self) -> &[LaneStep] {
        &self.steps
    }

    /// Serial duration of the lane (no tFAW interference).
    pub fn serial_duration(&self) -> Picos {
        self.steps.iter().map(|s| s.duration).sum()
    }
}

impl FromIterator<LaneStep> for Lane {
    fn from_iter<I: IntoIterator<Item = LaneStep>>(iter: I) -> Self {
        Lane {
            steps: iter.into_iter().collect(),
        }
    }
}

/// Computes the parallel makespan of a set of lanes under a shared tFAW
/// constraint, optionally with a bounded per-rank command queue.
#[derive(Debug, Clone)]
pub struct ParallelScheduler {
    t_faw: Picos,
    acts_per_window: usize,
    queue: Option<(usize, Picos)>,
}

impl ParallelScheduler {
    /// Creates a scheduler enforcing at most four activations per `t_faw`
    /// window ([`Picos::ZERO`] disables the constraint, the paper's
    /// "tFAW = 0 s" configuration). No command queue is modeled by
    /// default — see [`ParallelScheduler::with_command_queue`].
    pub fn new(t_faw: Picos) -> Self {
        ParallelScheduler {
            t_faw,
            acts_per_window: 4,
            queue: None,
        }
    }

    /// Overrides the number of activations allowed per window (default 4).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn with_acts_per_window(mut self, n: usize) -> Self {
        assert!(n > 0, "window must admit at least one activation");
        self.acts_per_window = n;
        self
    }

    /// Also models a bounded per-rank command queue: at most `depth`
    /// activations may be in flight, and an entry retires `t_ras` after
    /// it issues. An activation arriving at a full queue waits for the
    /// oldest in-flight entry to retire — the same gate the banked
    /// timing backend applies serially (`DESIGN.md` §11).
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn with_command_queue(mut self, depth: usize, t_ras: Picos) -> Self {
        assert!(depth > 0, "command queue must admit at least one entry");
        self.queue = Some((depth, t_ras));
        self
    }

    /// Returns the makespan: the time at which the last lane finishes when
    /// all lanes start at time zero and activations contend for the shared
    /// window (earliest-ready-first arbitration, FIFO tie-break).
    pub fn makespan(&self, lanes: &[Lane]) -> Picos {
        let mut ready: Vec<Picos> = vec![Picos::ZERO; lanes.len()];
        let mut next_step: Vec<usize> = vec![0; lanes.len()];
        let mut window: VecDeque<Picos> = VecDeque::with_capacity(self.acts_per_window);
        let mut cmd_queue: VecDeque<Picos> = VecDeque::new();
        let mut finish = Picos::ZERO;

        // Process steps globally in earliest-ready order so that the shared
        // activation window is granted fairly.
        loop {
            // Pick the unfinished lane with the earliest ready time.
            let mut best: Option<usize> = None;
            for (i, lane) in lanes.iter().enumerate() {
                if next_step[i] < lane.steps.len() {
                    match best {
                        None => best = Some(i),
                        Some(b) if ready[i] < ready[b] => best = Some(i),
                        _ => {}
                    }
                }
            }
            let Some(i) = best else { break };
            let step = lanes[i].steps[next_step[i]];
            next_step[i] += 1;
            let start = match step.kind {
                StepKind::Act => {
                    let mut at = ready[i];
                    if self.t_faw > Picos::ZERO && window.len() >= self.acts_per_window {
                        let gate = window[window.len() - self.acts_per_window] + self.t_faw;
                        at = at.max(gate);
                    }
                    if let Some((depth, t_ras)) = self.queue {
                        if cmd_queue.len() >= depth {
                            let gate = cmd_queue[cmd_queue.len() - depth] + t_ras;
                            at = at.max(gate);
                        }
                    }
                    if self.t_faw > Picos::ZERO {
                        window.push_back(at);
                        while window.len() > self.acts_per_window {
                            window.pop_front();
                        }
                    }
                    if let Some((depth, _)) = self.queue {
                        cmd_queue.push_back(at);
                        while cmd_queue.len() > depth {
                            cmd_queue.pop_front();
                        }
                    }
                    at
                }
                StepKind::Other => ready[i],
            };
            ready[i] = start + step.duration;
            finish = finish.max(ready[i]);
        }
        finish
    }

    /// Convenience: makespan of `n` identical lanes.
    pub fn makespan_uniform(&self, lane: &Lane, n: usize) -> Picos {
        let lanes: Vec<Lane> = std::iter::repeat(lane.clone()).take(n).collect();
        self.makespan(&lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Picos {
        Picos::from_ns(x)
    }

    #[test]
    fn single_lane_is_serial_sum() {
        let mut lane = Lane::new();
        lane.push(LaneStep::act(ns(14.0)))
            .push(LaneStep::other(ns(14.0)))
            .push(LaneStep::act(ns(14.0)));
        let sched = ParallelScheduler::new(ns(13.328));
        assert_eq!(sched.makespan(&[lane.clone()]), lane.serial_duration());
    }

    #[test]
    fn unconstrained_lanes_run_fully_parallel() {
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(28.0)), 10);
        let sched = ParallelScheduler::new(Picos::ZERO); // tFAW disabled
        let one = sched.makespan_uniform(&lane, 1);
        let sixteen = sched.makespan_uniform(&lane, 16);
        assert_eq!(one, sixteen, "no shared constraint => perfect scaling");
    }

    #[test]
    fn tfaw_binds_many_parallel_lanes() {
        // 16 lanes each issuing 10 ACTs of 28 ns. Aggregate demand:
        // 160 ACTs. Allowed rate: 4 per 13.328 ns. Lower bound:
        // (160 - 4) / 4 * 13.328 ns ≈ 519 ns > serial lane time 280 ns.
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(28.0)), 10);
        let sched = ParallelScheduler::new(ns(13.328));
        let t = sched.makespan_uniform(&lane, 16);
        assert!(t > ns(280.0), "tFAW must throttle: {t}");
        assert!(t >= ns(13.328 * 156.0 / 4.0));
    }

    #[test]
    fn tfaw_never_slows_a_single_slow_lane() {
        // ACT spacing (28 ns) already exceeds tFAW/4; four lanes of this
        // kind demand 4 ACTs per 28 ns < 4 per 13.328 ns allowed.
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(28.0)), 8);
        let sched = ParallelScheduler::new(ns(13.328));
        let one = sched.makespan_uniform(&lane, 1);
        assert_eq!(one, lane.serial_duration());
    }

    #[test]
    fn other_steps_do_not_contend() {
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::other(ns(28.0)), 10);
        let sched = ParallelScheduler::new(ns(13.328));
        assert_eq!(
            sched.makespan_uniform(&lane, 64),
            lane.serial_duration(),
            "non-ACT steps are unconstrained"
        );
    }

    #[test]
    fn makespan_monotone_in_lane_count() {
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(10.0)), 16);
        let sched = ParallelScheduler::new(ns(13.328));
        let mut prev = Picos::ZERO;
        for n in [1usize, 2, 4, 8, 16, 32] {
            let t = sched.makespan_uniform(&lane, n);
            assert!(t >= prev, "makespan must not shrink as lanes are added");
            prev = t;
        }
    }

    #[test]
    fn empty_lanes_finish_instantly() {
        let sched = ParallelScheduler::new(ns(13.328));
        assert_eq!(sched.makespan(&[]), Picos::ZERO);
        assert_eq!(sched.makespan(&[Lane::new()]), Picos::ZERO);
    }

    #[test]
    fn from_iterator_builds_lane() {
        let lane: Lane = (0..3).map(|_| LaneStep::act(ns(1.0))).collect();
        assert_eq!(lane.steps().len(), 3);
    }

    #[test]
    fn command_queue_binds_fast_parallel_lanes() {
        // 8 lanes each issuing 4 fast ACTs, tFAW disabled: aggregate
        // 32 ACTs hit a 4-deep queue with a 32 ns retirement time. The
        // queue admits 4 per 32 ns, so a lower bound on the makespan is
        // (32 - 4) / 4 * 32 ns = 224 ns, far above the 4 ns serial lane.
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(1.0)), 4);
        let free = ParallelScheduler::new(Picos::ZERO);
        let queued = ParallelScheduler::new(Picos::ZERO).with_command_queue(4, ns(32.0));
        assert_eq!(free.makespan_uniform(&lane, 8), lane.serial_duration());
        let t = queued.makespan_uniform(&lane, 8);
        assert!(t >= ns(224.0), "queue must throttle: {t}");
    }

    #[test]
    fn command_queue_never_slows_slow_lanes() {
        // ACT spacing (40 ns) exceeds tRAS (32 ns): each entry retires
        // before the next fills the queue, even with depth 1.
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(40.0)), 6);
        let sched = ParallelScheduler::new(Picos::ZERO).with_command_queue(1, ns(32.0));
        assert_eq!(sched.makespan_uniform(&lane, 1), lane.serial_duration());
    }

    #[test]
    fn command_queue_composes_with_tfaw() {
        // With both constraints active, the makespan is at least the
        // makespan under either alone.
        let mut lane = Lane::new();
        lane.push_repeated(LaneStep::act(ns(2.0)), 8);
        let faw_only = ParallelScheduler::new(ns(13.328));
        let queue_only = ParallelScheduler::new(Picos::ZERO).with_command_queue(8, ns(32.0));
        let both = ParallelScheduler::new(ns(13.328)).with_command_queue(8, ns(32.0));
        let t = both.makespan_uniform(&lane, 16);
        assert!(t >= faw_only.makespan_uniform(&lane, 16));
        assert!(t >= queue_only.makespan_uniform(&lane, 16));
    }
}
