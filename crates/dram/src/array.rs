//! Bit-accurate functional model of the DRAM array.
//!
//! Storage is sparse: only touched subarrays/rows are materialized, so the
//! full 8 GB module can be simulated without allocating 8 GB. A missing row
//! reads as all-zeros (freshly initialized DRAM).
//!
//! This module is *purely functional*: it models what data ends up where,
//! with no notion of time or energy (that is [`crate::engine`]'s job).

use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, RowId, RowLoc, SubarrayId};
use std::collections::HashMap;
use std::sync::Arc;

/// The local row buffer (sense amplifiers) of one subarray.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBuffer {
    /// Latched data. Only meaningful while `open_row` is `Some` or after a
    /// LISA movement deposited data (`latched` true).
    pub data: Vec<u8>,
    /// The row whose wordline is currently asserted, if any.
    pub open_row: Option<RowId>,
    /// Whether `data` holds valid latched contents (an open row, or data
    /// deposited by a LISA-RBM into a precharged subarray's buffer).
    pub latched: bool,
}

impl RowBuffer {
    fn new(row_bytes: usize) -> Self {
        RowBuffer {
            data: vec![0; row_bytes],
            open_row: None,
            latched: false,
        }
    }
}

/// Row storage of one subarray: a dense, lazily grown vector indexed by
/// row id (`None` = never written, reads as zeros). Rows are held behind
/// `Arc` with copy-on-write discipline — every mutation either replaces
/// the slot or writes through `Arc::get_mut` when sole owner — so bulk
/// loads from the packed-row cache and master→pLUTo reload copies are
/// O(1) handle clones per row instead of row-byte memcpys.
type RowSlots = Vec<Option<Arc<Vec<u8>>>>;

#[derive(Debug, Clone, Default)]
struct SubarrayState {
    rows: RowSlots,
    buffer: Option<RowBuffer>,
}

impl SubarrayState {
    fn row_ref(&self, row: RowId) -> Option<&Arc<Vec<u8>>> {
        self.rows.get(row.0 as usize).and_then(Option::as_ref)
    }

    /// The (growable) slot for a row; bounds must already be checked.
    fn row_slot(&mut self, row: RowId) -> &mut Option<Arc<Vec<u8>>> {
        let idx = row.0 as usize;
        if self.rows.len() <= idx {
            self.rows.resize(idx + 1, None);
        }
        &mut self.rows[idx]
    }
}

/// Stores `data` into a row slot, reusing the existing allocation when
/// this array is the sole owner of the row (the copy-on-write fast path).
fn store_bytes(slot: &mut Option<Arc<Vec<u8>>>, data: &[u8]) {
    if let Some(arc) = slot {
        if let Some(v) = Arc::get_mut(arc) {
            v.clear();
            v.extend_from_slice(data);
            return;
        }
    }
    *slot = Some(Arc::new(data.to_vec()));
}

/// Sparse functional storage for the whole module.
#[derive(Debug, Clone)]
pub struct MemoryArray {
    cfg: DramConfig,
    subarrays: HashMap<(BankId, SubarrayId), SubarrayState>,
}

impl MemoryArray {
    /// Creates an all-zeros array for the given geometry.
    pub fn new(cfg: DramConfig) -> Self {
        MemoryArray {
            cfg,
            subarrays: HashMap::new(),
        }
    }

    /// The configuration this array was built for.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn check(&self, loc: RowLoc) -> Result<(), DramError> {
        if self.cfg.contains(loc) {
            Ok(())
        } else {
            Err(DramError::OutOfBounds { loc })
        }
    }

    fn sa(&mut self, bank: BankId, subarray: SubarrayId) -> &mut SubarrayState {
        self.subarrays.entry((bank, subarray)).or_default()
    }

    fn buffer_mut(&mut self, bank: BankId, subarray: SubarrayId) -> &mut RowBuffer {
        let row_bytes = self.cfg.row_bytes;
        self.sa(bank, subarray)
            .buffer
            .get_or_insert_with(|| RowBuffer::new(row_bytes))
    }

    /// Reads a row's stored contents (zeros if never written).
    pub fn row(&self, loc: RowLoc) -> Result<Vec<u8>, DramError> {
        self.check(loc)?;
        Ok(self
            .subarrays
            .get(&(loc.bank, loc.subarray))
            .and_then(|sa| sa.row_ref(loc.row))
            .map(|arc| arc.as_ref().clone())
            .unwrap_or_else(|| vec![0; self.cfg.row_bytes]))
    }

    /// Reads a row's stored contents into a caller-owned buffer (cleared
    /// and refilled), avoiding the per-read allocation of
    /// [`MemoryArray::row`] — the hot-path variant the word-parallel query
    /// engine uses.
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds.
    pub fn read_row_into(&self, loc: RowLoc, out: &mut Vec<u8>) -> Result<(), DramError> {
        self.check(loc)?;
        out.clear();
        match self
            .subarrays
            .get(&(loc.bank, loc.subarray))
            .and_then(|sa| sa.row_ref(loc.row))
        {
            Some(data) => out.extend_from_slice(data),
            None => out.resize(self.cfg.row_bytes, 0),
        }
        Ok(())
    }

    /// Overwrites a row's stored contents directly (no row-buffer effects).
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds or `data` is not exactly one row.
    pub fn set_row(&mut self, loc: RowLoc, data: &[u8]) -> Result<(), DramError> {
        self.check(loc)?;
        if data.len() != self.cfg.row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: self.cfg.row_bytes,
                actual: data.len(),
            });
        }
        store_bytes(self.sa(loc.bank, loc.subarray).row_slot(loc.row), data);
        Ok(())
    }

    /// Bulk zero-cost row fill from shared packed rows: row `first + i`
    /// of the subarray becomes `rows[i]`. Slots that already hold the
    /// same `Arc` (a repeated load of a cached LUT) are skipped, so the
    /// steady-state load of an unchanged table is O(1) per row with no
    /// byte copies at all.
    ///
    /// # Errors
    /// Fails if the row range is out of bounds or a stored row is not
    /// exactly one row wide. Width is only checked on rows actually
    /// stored — a pointer-equal slot was validated when first stored —
    /// so a mixed-width slice may error after earlier rows were written.
    pub fn set_rows_shared(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        first: RowId,
        rows: &[Arc<Vec<u8>>],
    ) -> Result<(), DramError> {
        let Some(count) = check_row_range(self, bank, subarray, first, rows.len())? else {
            return Ok(());
        };
        let row_bytes = self.cfg.row_bytes;
        let sa = self.sa(bank, subarray);
        let base = first.0 as usize;
        if sa.rows.len() < base + count {
            sa.rows.resize(base + count, None);
        }
        for (slot, data) in sa.rows[base..base + count].iter_mut().zip(rows) {
            match slot {
                Some(existing) if Arc::ptr_eq(existing, data) => {}
                _ => {
                    if data.len() != row_bytes {
                        return Err(DramError::RowSizeMismatch {
                            expected: row_bytes,
                            actual: data.len(),
                        });
                    }
                    *slot = Some(Arc::clone(data));
                }
            }
        }
        Ok(())
    }

    /// Bulk functional row copy between two subarrays of one bank: row
    /// `to_first + i` becomes a shared handle to row `from_first + i`
    /// (missing source rows clear the destination slot — both read as
    /// zeros). Copy-on-write keeps the two subarrays independent.
    ///
    /// # Errors
    /// Fails if either row range is out of bounds.
    pub fn copy_rows(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        from_first: RowId,
        to: SubarrayId,
        to_first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        if check_row_range(self, bank, from, from_first, count)?.is_none()
            || check_row_range(self, bank, to, to_first, count)?.is_none()
        {
            return Ok(());
        }
        let handles: Vec<Option<Arc<Vec<u8>>>> = {
            let src = self.subarrays.get(&(bank, from));
            (0..count)
                .map(|i| {
                    src.and_then(|sa| sa.row_ref(RowId(from_first.0 + i as u16)))
                        .cloned()
                })
                .collect()
        };
        let sa = self.sa(bank, to);
        for (i, handle) in handles.into_iter().enumerate() {
            *sa.row_slot(RowId(to_first.0 + i as u16)) = handle;
        }
        Ok(())
    }

    /// Bulk functional row clear: rows `first .. first + count` of the
    /// subarray revert to the never-written state (read as zeros).
    ///
    /// # Errors
    /// Fails if the row range is out of bounds.
    pub fn clear_rows(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        let Some(count) = check_row_range(self, bank, subarray, first, count)? else {
            return Ok(());
        };
        let sa = self.sa(bank, subarray);
        for i in 0..count {
            *sa.row_slot(RowId(first.0 + i as u16)) = None;
        }
        Ok(())
    }

    /// Returns the row buffer of a subarray, if it has ever been used.
    pub fn buffer(&self, bank: BankId, subarray: SubarrayId) -> Option<&RowBuffer> {
        self.subarrays
            .get(&(bank, subarray))
            .and_then(|sa| sa.buffer.as_ref())
    }

    /// Row currently open in a subarray (if any).
    pub fn open_row(&self, bank: BankId, subarray: SubarrayId) -> Option<RowId> {
        self.buffer(bank, subarray).and_then(|b| b.open_row)
    }

    /// Functional ACT: latch `loc`'s contents into the local row buffer.
    ///
    /// `allow_back_to_back` permits activating while another row is open in
    /// the same subarray — required for RowClone-FPM's second activation and
    /// for pLUTo sweep steps, which are exempt from the one-open-row rule.
    ///
    /// # Errors
    /// Fails if out of bounds, or if a row is already open and
    /// `allow_back_to_back` is false.
    pub fn activate(&mut self, loc: RowLoc, allow_back_to_back: bool) -> Result<(), DramError> {
        self.check(loc)?;
        let row_bytes = self.cfg.row_bytes;
        // Split-borrow the subarray so the row read can fill the buffer in
        // place: a row sweep activates once per LUT row, so the fresh
        // `Vec` per activation this used to allocate multiplied into
        // `lut_len` heap round-trips per query.
        let sa = self.sa(loc.bank, loc.subarray);
        let SubarrayState { rows, buffer } = sa;
        let buf = buffer.get_or_insert_with(|| RowBuffer::new(row_bytes));
        if buf.open_row.is_some() && !allow_back_to_back {
            return Err(DramError::RowAlreadyOpen {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        }
        match rows.get(loc.row.0 as usize).and_then(Option::as_ref) {
            Some(data) => buf.data.clone_from(data.as_ref()),
            None => {
                buf.data.clear();
                buf.data.resize(row_bytes, 0);
            }
        }
        buf.open_row = Some(loc.row);
        buf.latched = true;
        Ok(())
    }

    /// Functional back-to-back activation used by RowClone-FPM: asserts the
    /// destination wordline while the buffer still drives the source data,
    /// so the *buffer contents overwrite the destination row*.
    ///
    /// # Errors
    /// Fails if no row is open in the subarray.
    pub fn activate_into(&mut self, loc: RowLoc) -> Result<(), DramError> {
        self.check(loc)?;
        let buf = self
            .subarrays
            .get(&(loc.bank, loc.subarray))
            .and_then(|sa| sa.buffer.as_ref());
        let Some(buf) = buf else {
            return Err(DramError::NoOpenRow {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        };
        if !buf.latched {
            return Err(DramError::NoOpenRow {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        }
        let data = buf.data.clone();
        *self.sa(loc.bank, loc.subarray).row_slot(loc.row) = Some(Arc::new(data));
        let buf = self.buffer_mut(loc.bank, loc.subarray);
        buf.open_row = Some(loc.row);
        Ok(())
    }

    /// Functional PRE: close the open row (buffer contents become stale).
    pub fn precharge(&mut self, bank: BankId, subarray: SubarrayId) {
        if let Some(sa) = self.subarrays.get_mut(&(bank, subarray)) {
            if let Some(buf) = sa.buffer.as_mut() {
                buf.open_row = None;
                buf.latched = false;
            }
        }
    }

    /// Writes bytes into the open row buffer at `offset`, write-through to
    /// the open row (cells stay connected while the wordline is asserted).
    ///
    /// # Errors
    /// Fails if no row is open.
    pub fn write_buffer(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), DramError> {
        let row_bytes = self.cfg.row_bytes;
        let open = self.open_row(bank, subarray);
        let Some(open) = open else {
            return Err(DramError::NoOpenRow { bank, subarray });
        };
        if offset + data.len() > row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: row_bytes,
                actual: offset + data.len(),
            });
        }
        let buf = self.buffer_mut(bank, subarray);
        buf.data[offset..offset + data.len()].copy_from_slice(data);
        let snapshot = buf.data.clone();
        *self.sa(bank, subarray).row_slot(open) = Some(Arc::new(snapshot));
        Ok(())
    }

    /// Deposits data directly into a subarray's row buffer, marking it
    /// latched without opening a row. Models a pLUTo FF buffer (or gated
    /// sense amplifiers) holding query results ready for a LISA movement.
    pub fn deposit_buffer(&mut self, bank: BankId, subarray: SubarrayId, data: &[u8]) {
        let buf = self.buffer_mut(bank, subarray);
        buf.data.clear();
        buf.data.extend_from_slice(data);
        buf.open_row = None;
        buf.latched = true;
    }

    /// LISA-RBM: deposit `from`'s latched buffer into `to`'s buffer. If `to`
    /// has an open row, the data writes through into that row.
    ///
    /// # Errors
    /// Fails if `from == to`, or `from` has no latched buffer contents.
    pub fn lisa_rbm(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        to: SubarrayId,
    ) -> Result<(), DramError> {
        if from == to {
            return Err(DramError::InvalidLisa { bank, from, to });
        }
        // Borrow the source data by temporarily taking it, so the copy
        // into the destination buffer (and its write-through row) reuses
        // existing capacity: GSA pays one LISA hop per LUT row per query,
        // so the buffer clones this used to make were a per-query
        // `2 × lut_len` allocation storm.
        let mut src = match self.subarrays.get_mut(&(bank, from)) {
            Some(sa) if sa.buffer.as_ref().is_some_and(|b| b.latched) => {
                std::mem::take(&mut sa.buffer.as_mut().expect("checked above").data)
            }
            _ => {
                return Err(DramError::NoOpenRow {
                    bank,
                    subarray: from,
                })
            }
        };
        let dst = self.buffer_mut(bank, to);
        dst.data.clone_from(&src);
        dst.latched = true;
        if let Some(open) = dst.open_row {
            let SubarrayState { rows, buffer } = self.sa(bank, to);
            let data = &buffer.as_ref().expect("buffer created above").data;
            let idx = open.0 as usize;
            if rows.len() <= idx {
                rows.resize(idx + 1, None);
            }
            store_bytes(&mut rows[idx], data);
        }
        // Hand the (unchanged) source data back to its buffer.
        std::mem::swap(
            &mut self
                .sa(bank, from)
                .buffer
                .as_mut()
                .expect("source buffer existed")
                .data,
            &mut src,
        );
        Ok(())
    }

    /// Ambit triple-row activation: rows (and the buffer) settle to the
    /// bitwise majority of the three rows' contents.
    ///
    /// # Errors
    /// Fails if any row is out of bounds.
    pub fn triple_row_activate(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        rows: [RowId; 3],
    ) -> Result<(), DramError> {
        let locs = rows.map(|r| RowLoc {
            bank,
            subarray,
            row: r,
        });
        for l in locs {
            self.check(l)?;
        }
        let a = self.row(locs[0])?;
        let b = self.row(locs[1])?;
        let c = self.row(locs[2])?;
        let maj: Vec<u8> = a
            .iter()
            .zip(&b)
            .zip(&c)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
            .collect();
        let shared = Arc::new(maj.clone());
        for l in locs {
            *self.sa(bank, subarray).row_slot(l.row) = Some(Arc::clone(&shared));
        }
        let buf = self.buffer_mut(bank, subarray);
        buf.data = maj;
        buf.open_row = Some(rows[0]);
        buf.latched = true;
        Ok(())
    }

    /// DRISA-style whole-row bit shift. The row is treated as one long
    /// big-endian bit string (byte 0 holds the most significant bits);
    /// "left" moves bits toward byte 0. Vacated bits fill with zeros.
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds.
    pub fn shift_row_bits(
        &mut self,
        loc: RowLoc,
        left: bool,
        amount: u32,
    ) -> Result<(), DramError> {
        self.check(loc)?;
        let data = self.row(loc)?;
        let shifted = shift_bits(&data, left, amount);
        *self.sa(loc.bank, loc.subarray).row_slot(loc.row) = Some(Arc::new(shifted));
        Ok(())
    }

    /// DRISA-style whole-row byte shift ("left" = toward byte 0).
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds.
    pub fn shift_row_bytes(
        &mut self,
        loc: RowLoc,
        left: bool,
        amount: usize,
    ) -> Result<(), DramError> {
        self.check(loc)?;
        let data = self.row(loc)?;
        let shifted = shift_bytes(&data, left, amount);
        *self.sa(loc.bank, loc.subarray).row_slot(loc.row) = Some(Arc::new(shifted));
        Ok(())
    }
}

/// Validates a `count`-row range starting at `first` within one
/// subarray; `Ok(None)` means the range is empty (nothing to do).
fn check_row_range(
    arr: &MemoryArray,
    bank: BankId,
    subarray: SubarrayId,
    first: RowId,
    count: usize,
) -> Result<Option<usize>, DramError> {
    if count == 0 {
        return Ok(None);
    }
    let first_loc = RowLoc {
        bank,
        subarray,
        row: first,
    };
    let last = first.0 as usize + count - 1;
    if last > u16::MAX as usize {
        return Err(DramError::OutOfBounds { loc: first_loc });
    }
    arr.check(first_loc)?;
    arr.check(RowLoc {
        bank,
        subarray,
        row: RowId(last as u16),
    })?;
    Ok(Some(count))
}

/// Reads a `width`-bit big-endian field starting at bit `bit` of a row
/// (bit 0 is the MSB of byte 0 — the whole-row bit-string convention of
/// the DRISA shifts and the pLUTo slot layout).
///
/// The field is extracted with one aligned 64-bit window load instead of
/// a per-bit loop. This is the standalone random-access accessor for row
/// fields; `pluto-core`'s bulk slot packing streams whole rows through
/// its own 64-bit accumulator and shares only the [`MAX_FIELD_BITS`]
/// width bound. Bytes past the end of `row` read as zero, so fields
/// ending on the last bits of a row need no special casing.
///
/// # Panics
/// Panics if `width` is 0 or > 57 (the widest field whose 64-bit window
/// still covers every starting bit-in-byte offset), or if the field
/// extends past the end of the row.
pub fn word_at_bit(row: &[u8], bit: usize, width: u32) -> u64 {
    assert!(
        (1..=MAX_FIELD_BITS).contains(&width),
        "field width {width} outside 1..={MAX_FIELD_BITS}"
    );
    assert!(
        bit + width as usize <= row.len() * 8,
        "field [{bit}, {}) extends past the {}-bit row",
        bit + width as usize,
        row.len() * 8
    );
    let start = bit / 8;
    let mut window = [0u8; 8];
    let take = (row.len() - start).min(8);
    window[..take].copy_from_slice(&row[start..start + take]);
    let word = u64::from_be_bytes(window);
    let shift = 64 - (bit % 8) as u32 - width;
    (word >> shift) & field_mask(width)
}

/// Writes a `width`-bit big-endian field starting at bit `bit` of a row
/// (inverse of [`word_at_bit`]; same conventions and limits).
///
/// # Panics
/// Panics under the same conditions as [`word_at_bit`], or if `value` does
/// not fit in `width` bits.
pub fn set_word_at_bit(row: &mut [u8], bit: usize, width: u32, value: u64) {
    assert!(
        (1..=MAX_FIELD_BITS).contains(&width),
        "field width {width} outside 1..={MAX_FIELD_BITS}"
    );
    assert!(
        bit + width as usize <= row.len() * 8,
        "field [{bit}, {}) extends past the {}-bit row",
        bit + width as usize,
        row.len() * 8
    );
    assert!(
        value & !field_mask(width) == 0,
        "value {value} exceeds {width} bits"
    );
    let start = bit / 8;
    let mut window = [0u8; 8];
    let take = (row.len() - start).min(8);
    window[..take].copy_from_slice(&row[start..start + take]);
    let mut word = u64::from_be_bytes(window);
    let shift = 64 - (bit % 8) as u32 - width;
    word = (word & !(field_mask(width) << shift)) | (value << shift);
    window = word.to_be_bytes();
    row[start..start + take].copy_from_slice(&window[..take]);
}

/// Widest field [`word_at_bit`]/[`set_word_at_bit`] support: an unaligned
/// field starting up to 7 bits into its window must still fit in 64 bits.
pub const MAX_FIELD_BITS: u32 = 57;

fn field_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Shifts a byte slice as one long big-endian bit string.
pub(crate) fn shift_bits(data: &[u8], left: bool, amount: u32) -> Vec<u8> {
    let n = data.len();
    let byte_shift = (amount / 8) as usize;
    let bit_shift = amount % 8;
    let mut out = vec![0u8; n];
    if byte_shift >= n {
        return out;
    }
    if left {
        for i in 0..n - byte_shift {
            let hi = data[i + byte_shift] << bit_shift;
            let lo = if bit_shift > 0 && i + byte_shift + 1 < n {
                data[i + byte_shift + 1] >> (8 - bit_shift)
            } else {
                0
            };
            out[i] = hi | lo;
        }
    } else {
        for i in byte_shift..n {
            let lo = data[i - byte_shift] >> bit_shift;
            let hi = if bit_shift > 0 && i - byte_shift >= 1 {
                data[i - byte_shift - 1] << (8 - bit_shift)
            } else {
                0
            };
            out[i] = hi | lo;
        }
    }
    out
}

/// Shifts a byte slice by whole bytes ("left" = toward index 0).
pub(crate) fn shift_bytes(data: &[u8], left: bool, amount: usize) -> Vec<u8> {
    let n = data.len();
    let mut out = vec![0u8; n];
    if amount >= n {
        return out;
    }
    if left {
        out[..n - amount].copy_from_slice(&data[amount..]);
    } else {
        out[amount..].copy_from_slice(&data[..n - amount]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DramConfig {
        DramConfig {
            row_bytes: 8,
            burst_bytes: 4,
            banks: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 16,
            ..DramConfig::ddr4_2400()
        }
    }

    #[test]
    fn rows_default_to_zero() {
        let arr = MemoryArray::new(tiny_cfg());
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0; 8]);
    }

    #[test]
    fn activate_latches_row() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(0, 1, 2);
        arr.set_row(loc, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        arr.activate(loc, false).unwrap();
        let buf = arr.buffer(loc.bank, loc.subarray).unwrap();
        assert_eq!(buf.data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(buf.open_row, Some(RowId(2)));
    }

    #[test]
    fn second_activate_rejected_unless_back_to_back() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(0, 0, 0);
        arr.activate(loc, false).unwrap();
        assert!(matches!(
            arr.activate(loc.with_row(1), false),
            Err(DramError::RowAlreadyOpen { .. })
        ));
        arr.activate(loc.with_row(1), true).unwrap();
    }

    #[test]
    fn rowclone_semantics_via_activate_into() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let src = RowLoc::new(0, 0, 3);
        let dst = src.with_row(5);
        arr.set_row(src, &[9; 8]).unwrap();
        arr.activate(src, false).unwrap();
        arr.activate_into(dst).unwrap();
        arr.precharge(src.bank, src.subarray);
        assert_eq!(arr.row(dst).unwrap(), vec![9; 8]);
        assert_eq!(arr.row(src).unwrap(), vec![9; 8], "source preserved");
    }

    #[test]
    fn activate_into_requires_latched_buffer() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.activate_into(RowLoc::new(0, 0, 1)),
            Err(DramError::NoOpenRow { .. })
        ));
    }

    #[test]
    fn write_buffer_writes_through_to_open_row() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(1, 0, 0);
        arr.activate(loc, false).unwrap();
        arr.write_buffer(loc.bank, loc.subarray, 2, &[0xAA, 0xBB])
            .unwrap();
        arr.precharge(loc.bank, loc.subarray);
        let row = arr.row(loc).unwrap();
        assert_eq!(&row[2..4], &[0xAA, 0xBB]);
    }

    #[test]
    fn write_buffer_requires_open_row_and_bounds() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.write_buffer(BankId(0), SubarrayId(0), 0, &[1]),
            Err(DramError::NoOpenRow { .. })
        ));
        let loc = RowLoc::new(0, 0, 0);
        arr.activate(loc, false).unwrap();
        assert!(matches!(
            arr.write_buffer(BankId(0), SubarrayId(0), 6, &[1, 2, 3]),
            Err(DramError::RowSizeMismatch { .. })
        ));
    }

    #[test]
    fn lisa_moves_buffer_and_writes_through() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let src = RowLoc::new(0, 0, 1);
        let dst = RowLoc::new(0, 2, 7);
        arr.set_row(src, &[7; 8]).unwrap();
        arr.activate(dst, false).unwrap(); // open destination row first
        arr.activate(src, false).unwrap();
        arr.lisa_rbm(src.bank, src.subarray, dst.subarray).unwrap();
        arr.precharge(dst.bank, dst.subarray);
        assert_eq!(arr.row(dst).unwrap(), vec![7; 8]);
    }

    #[test]
    fn lisa_rejects_same_subarray_and_unlatched_source() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.lisa_rbm(BankId(0), SubarrayId(1), SubarrayId(1)),
            Err(DramError::InvalidLisa { .. })
        ));
        assert!(matches!(
            arr.lisa_rbm(BankId(0), SubarrayId(0), SubarrayId(1)),
            Err(DramError::NoOpenRow { .. })
        ));
    }

    #[test]
    fn tra_computes_majority_into_all_three_rows() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let b = BankId(0);
        let s = SubarrayId(0);
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0b0110; 8]).unwrap();
        arr.triple_row_activate(b, s, [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        let expect = vec![0b1110u8; 8];
        for r in 0..3 {
            assert_eq!(arr.row(RowLoc::new(0, 0, r)).unwrap(), expect);
        }
        assert_eq!(arr.buffer(b, s).unwrap().data, expect);
    }

    #[test]
    fn tra_with_zeros_row_is_and_with_ones_row_is_or() {
        // MAJ(a, b, 0) = a AND b; MAJ(a, b, 1) = a OR b (Ambit's trick).
        let mut arr = MemoryArray::new(tiny_cfg());
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0x00; 8]).unwrap();
        arr.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0b1000u8; 8]);

        let mut arr = MemoryArray::new(tiny_cfg());
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0xFF; 8]).unwrap();
        arr.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0b1110u8; 8]);
    }

    #[test]
    fn bit_shift_left_crosses_byte_boundaries() {
        let v = shift_bits(&[0b0000_0001, 0b1000_0000], true, 1);
        assert_eq!(v, vec![0b0000_0011, 0b0000_0000]);
        let v = shift_bits(&[0xAB, 0xCD], true, 8);
        assert_eq!(v, vec![0xCD, 0x00]);
        let v = shift_bits(&[0xAB, 0xCD], true, 16);
        assert_eq!(v, vec![0, 0]);
    }

    #[test]
    fn bit_shift_right_crosses_byte_boundaries() {
        let v = shift_bits(&[0b0000_0011, 0b0000_0000], false, 1);
        assert_eq!(v, vec![0b0000_0001, 0b1000_0000]);
        let v = shift_bits(&[0xAB, 0xCD], false, 8);
        assert_eq!(v, vec![0x00, 0xAB]);
    }

    #[test]
    fn bit_shift_roundtrip_preserves_interior() {
        let data = vec![0x12, 0x34, 0x56, 0x78];
        let back = shift_bits(&shift_bits(&data, true, 5), false, 5);
        // Top 5 bits were shifted out and lost; the rest must round-trip.
        let mask_first = 0xFFu8 >> 5;
        assert_eq!(back[0] & mask_first, data[0] & mask_first);
        assert_eq!(&back[1..], &data[1..]);
    }

    #[test]
    fn byte_shift() {
        assert_eq!(shift_bytes(&[1, 2, 3, 4], true, 1), vec![2, 3, 4, 0]);
        assert_eq!(shift_bytes(&[1, 2, 3, 4], false, 2), vec![0, 0, 1, 2]);
        assert_eq!(shift_bytes(&[1, 2], false, 5), vec![0, 0]);
    }

    #[test]
    fn word_at_bit_reads_be_fields() {
        let row = [0xAB, 0xCD, 0xEF, 0x01];
        assert_eq!(word_at_bit(&row, 0, 8), 0xAB);
        assert_eq!(word_at_bit(&row, 8, 8), 0xCD);
        assert_eq!(word_at_bit(&row, 4, 8), 0xBC, "unaligned straddle");
        assert_eq!(word_at_bit(&row, 0, 16), 0xABCD);
        assert_eq!(word_at_bit(&row, 0, 1), 1);
        assert_eq!(word_at_bit(&row, 2, 1), 1);
        assert_eq!(word_at_bit(&row, 1, 1), 0);
        // Field ending exactly at the end of the row.
        assert_eq!(word_at_bit(&row, 24, 8), 0x01);
        assert_eq!(word_at_bit(&row, 29, 3), 0x01);
    }

    #[test]
    fn set_word_at_bit_roundtrips_and_preserves_neighbors() {
        let mut row = [0xFFu8; 4];
        set_word_at_bit(&mut row, 4, 8, 0x00);
        assert_eq!(row, [0xF0, 0x0F, 0xFF, 0xFF]);
        set_word_at_bit(&mut row, 29, 3, 0b010);
        assert_eq!(word_at_bit(&row, 29, 3), 0b010);
        assert_eq!(row[..3], [0xF0, 0x0F, 0xFF]);
        // Every (offset, width) roundtrips against a bit-serial oracle.
        for width in [1u32, 3, 7, 8, 11, 13, 16, 31, 57] {
            for bit in 0..16usize {
                let mut row = vec![0u8; 12];
                let v = 0x5AA5_3CC3_0FF0_55AAu64 & ((1u64 << (width.min(63))) - 1);
                set_word_at_bit(&mut row, bit, width, v);
                let mut oracle = 0u64;
                for b in 0..width as usize {
                    let pos = bit + b;
                    oracle = (oracle << 1) | u64::from((row[pos / 8] >> (7 - pos % 8)) & 1);
                }
                assert_eq!(oracle, v, "bit {bit} width {width}");
                assert_eq!(word_at_bit(&row, bit, width), v, "bit {bit} width {width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "extends past")]
    fn word_at_bit_rejects_overrun() {
        word_at_bit(&[0u8; 2], 12, 8);
    }

    #[test]
    fn read_row_into_matches_row() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(0, 1, 2);
        let mut buf = vec![0xEE; 3];
        arr.read_row_into(loc, &mut buf).unwrap();
        assert_eq!(buf, vec![0; 8], "missing rows read as zeros");
        arr.set_row(loc, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        arr.read_row_into(loc, &mut buf).unwrap();
        assert_eq!(buf, arr.row(loc).unwrap());
        assert!(arr.read_row_into(RowLoc::new(9, 0, 0), &mut buf).is_err());
    }

    #[test]
    fn bulk_shared_rows_copy_clear_and_cow() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let rows: Vec<Arc<Vec<u8>>> = (0..4u8).map(|i| Arc::new(vec![i + 1; 8])).collect();
        arr.set_rows_shared(BankId(0), SubarrayId(0), RowId(2), &rows)
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 3)).unwrap(), vec![2; 8]);
        // Repeat loads of the same handles are idempotent.
        arr.set_rows_shared(BankId(0), SubarrayId(0), RowId(2), &rows)
            .unwrap();
        // Copy into a second subarray, then mutate the copy: COW keeps
        // the source rows (and the caller's Arcs) intact.
        arr.copy_rows(
            BankId(0),
            SubarrayId(0),
            RowId(2),
            SubarrayId(1),
            RowId(0),
            4,
        )
        .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 1, 1)).unwrap(), vec![2; 8]);
        arr.set_row(RowLoc::new(0, 1, 1), &[9; 8]).unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 3)).unwrap(), vec![2; 8]);
        assert_eq!(*rows[1], vec![2u8; 8]);
        // Clearing reverts rows to the never-written (all-zeros) state.
        arr.clear_rows(BankId(0), SubarrayId(0), RowId(2), 4)
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 3)).unwrap(), vec![0; 8]);
        // Bounds and row-width violations are rejected.
        assert!(arr
            .set_rows_shared(BankId(0), SubarrayId(0), RowId(14), &rows)
            .is_err());
        assert!(arr
            .set_rows_shared(BankId(0), SubarrayId(0), RowId(0), &[Arc::new(vec![0; 3])])
            .is_err());
        assert!(arr
            .copy_rows(
                BankId(0),
                SubarrayId(0),
                RowId(14),
                SubarrayId(1),
                RowId(0),
                4
            )
            .is_err());
        assert!(arr
            .clear_rows(BankId(0), SubarrayId(9), RowId(0), 1)
            .is_err());
        // Empty ranges are no-ops.
        arr.clear_rows(BankId(0), SubarrayId(0), RowId(0), 0)
            .unwrap();
    }

    #[test]
    fn out_of_bounds_rejected_everywhere() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let bad = RowLoc::new(9, 0, 0);
        assert!(arr.row(bad).is_err());
        assert!(arr.set_row(bad, &[0; 8]).is_err());
        assert!(arr.activate(bad, false).is_err());
        assert!(arr.shift_row_bits(bad, true, 1).is_err());
    }
}
