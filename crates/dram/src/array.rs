//! Bit-accurate functional model of the DRAM array.
//!
//! Storage is sparse: only touched subarrays/rows are materialized, so the
//! full 8 GB module can be simulated without allocating 8 GB. A missing row
//! reads as all-zeros (freshly initialized DRAM).
//!
//! This module is *purely functional*: it models what data ends up where,
//! with no notion of time or energy (that is [`crate::engine`]'s job).

use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, RowId, RowLoc, SubarrayId};
use std::collections::HashMap;

/// The local row buffer (sense amplifiers) of one subarray.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBuffer {
    /// Latched data. Only meaningful while `open_row` is `Some` or after a
    /// LISA movement deposited data (`latched` true).
    pub data: Vec<u8>,
    /// The row whose wordline is currently asserted, if any.
    pub open_row: Option<RowId>,
    /// Whether `data` holds valid latched contents (an open row, or data
    /// deposited by a LISA-RBM into a precharged subarray's buffer).
    pub latched: bool,
}

impl RowBuffer {
    fn new(row_bytes: usize) -> Self {
        RowBuffer {
            data: vec![0; row_bytes],
            open_row: None,
            latched: false,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SubarrayState {
    rows: HashMap<RowId, Vec<u8>>,
    buffer: Option<RowBuffer>,
}

/// Sparse functional storage for the whole module.
#[derive(Debug, Clone)]
pub struct MemoryArray {
    cfg: DramConfig,
    subarrays: HashMap<(BankId, SubarrayId), SubarrayState>,
}

impl MemoryArray {
    /// Creates an all-zeros array for the given geometry.
    pub fn new(cfg: DramConfig) -> Self {
        MemoryArray {
            cfg,
            subarrays: HashMap::new(),
        }
    }

    /// The configuration this array was built for.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn check(&self, loc: RowLoc) -> Result<(), DramError> {
        if self.cfg.contains(loc) {
            Ok(())
        } else {
            Err(DramError::OutOfBounds { loc })
        }
    }

    fn sa(&mut self, bank: BankId, subarray: SubarrayId) -> &mut SubarrayState {
        self.subarrays.entry((bank, subarray)).or_default()
    }

    fn buffer_mut(&mut self, bank: BankId, subarray: SubarrayId) -> &mut RowBuffer {
        let row_bytes = self.cfg.row_bytes;
        self.sa(bank, subarray)
            .buffer
            .get_or_insert_with(|| RowBuffer::new(row_bytes))
    }

    /// Reads a row's stored contents (zeros if never written).
    pub fn row(&self, loc: RowLoc) -> Result<Vec<u8>, DramError> {
        self.check(loc)?;
        Ok(self
            .subarrays
            .get(&(loc.bank, loc.subarray))
            .and_then(|sa| sa.rows.get(&loc.row))
            .cloned()
            .unwrap_or_else(|| vec![0; self.cfg.row_bytes]))
    }

    /// Overwrites a row's stored contents directly (no row-buffer effects).
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds or `data` is not exactly one row.
    pub fn set_row(&mut self, loc: RowLoc, data: &[u8]) -> Result<(), DramError> {
        self.check(loc)?;
        if data.len() != self.cfg.row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: self.cfg.row_bytes,
                actual: data.len(),
            });
        }
        self.sa(loc.bank, loc.subarray)
            .rows
            .insert(loc.row, data.to_vec());
        Ok(())
    }

    /// Returns the row buffer of a subarray, if it has ever been used.
    pub fn buffer(&self, bank: BankId, subarray: SubarrayId) -> Option<&RowBuffer> {
        self.subarrays
            .get(&(bank, subarray))
            .and_then(|sa| sa.buffer.as_ref())
    }

    /// Row currently open in a subarray (if any).
    pub fn open_row(&self, bank: BankId, subarray: SubarrayId) -> Option<RowId> {
        self.buffer(bank, subarray).and_then(|b| b.open_row)
    }

    /// Functional ACT: latch `loc`'s contents into the local row buffer.
    ///
    /// `allow_back_to_back` permits activating while another row is open in
    /// the same subarray — required for RowClone-FPM's second activation and
    /// for pLUTo sweep steps, which are exempt from the one-open-row rule.
    ///
    /// # Errors
    /// Fails if out of bounds, or if a row is already open and
    /// `allow_back_to_back` is false.
    pub fn activate(&mut self, loc: RowLoc, allow_back_to_back: bool) -> Result<(), DramError> {
        self.check(loc)?;
        let data = self.row(loc)?;
        let buf = self.buffer_mut(loc.bank, loc.subarray);
        if buf.open_row.is_some() && !allow_back_to_back {
            return Err(DramError::RowAlreadyOpen {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        }
        buf.data = data;
        buf.open_row = Some(loc.row);
        buf.latched = true;
        Ok(())
    }

    /// Functional back-to-back activation used by RowClone-FPM: asserts the
    /// destination wordline while the buffer still drives the source data,
    /// so the *buffer contents overwrite the destination row*.
    ///
    /// # Errors
    /// Fails if no row is open in the subarray.
    pub fn activate_into(&mut self, loc: RowLoc) -> Result<(), DramError> {
        self.check(loc)?;
        let buf = self
            .subarrays
            .get(&(loc.bank, loc.subarray))
            .and_then(|sa| sa.buffer.as_ref());
        let Some(buf) = buf else {
            return Err(DramError::NoOpenRow {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        };
        if !buf.latched {
            return Err(DramError::NoOpenRow {
                bank: loc.bank,
                subarray: loc.subarray,
            });
        }
        let data = buf.data.clone();
        self.sa(loc.bank, loc.subarray).rows.insert(loc.row, data);
        let buf = self.buffer_mut(loc.bank, loc.subarray);
        buf.open_row = Some(loc.row);
        Ok(())
    }

    /// Functional PRE: close the open row (buffer contents become stale).
    pub fn precharge(&mut self, bank: BankId, subarray: SubarrayId) {
        if let Some(sa) = self.subarrays.get_mut(&(bank, subarray)) {
            if let Some(buf) = sa.buffer.as_mut() {
                buf.open_row = None;
                buf.latched = false;
            }
        }
    }

    /// Writes bytes into the open row buffer at `offset`, write-through to
    /// the open row (cells stay connected while the wordline is asserted).
    ///
    /// # Errors
    /// Fails if no row is open.
    pub fn write_buffer(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), DramError> {
        let row_bytes = self.cfg.row_bytes;
        let open = self.open_row(bank, subarray);
        let Some(open) = open else {
            return Err(DramError::NoOpenRow { bank, subarray });
        };
        if offset + data.len() > row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: row_bytes,
                actual: offset + data.len(),
            });
        }
        let buf = self.buffer_mut(bank, subarray);
        buf.data[offset..offset + data.len()].copy_from_slice(data);
        let snapshot = buf.data.clone();
        self.sa(bank, subarray).rows.insert(open, snapshot);
        Ok(())
    }

    /// Deposits data directly into a subarray's row buffer, marking it
    /// latched without opening a row. Models a pLUTo FF buffer (or gated
    /// sense amplifiers) holding query results ready for a LISA movement.
    pub fn deposit_buffer(&mut self, bank: BankId, subarray: SubarrayId, data: &[u8]) {
        let buf = self.buffer_mut(bank, subarray);
        buf.data.clear();
        buf.data.extend_from_slice(data);
        buf.open_row = None;
        buf.latched = true;
    }

    /// LISA-RBM: deposit `from`'s latched buffer into `to`'s buffer. If `to`
    /// has an open row, the data writes through into that row.
    ///
    /// # Errors
    /// Fails if `from == to`, or `from` has no latched buffer contents.
    pub fn lisa_rbm(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        to: SubarrayId,
    ) -> Result<(), DramError> {
        if from == to {
            return Err(DramError::InvalidLisa { bank, from, to });
        }
        let src = self
            .buffer(bank, from)
            .filter(|b| b.latched)
            .map(|b| b.data.clone())
            .ok_or(DramError::NoOpenRow {
                bank,
                subarray: from,
            })?;
        let dst = self.buffer_mut(bank, to);
        dst.data = src;
        dst.latched = true;
        if let Some(open) = dst.open_row {
            let snapshot = dst.data.clone();
            self.sa(bank, to).rows.insert(open, snapshot);
        }
        Ok(())
    }

    /// Ambit triple-row activation: rows (and the buffer) settle to the
    /// bitwise majority of the three rows' contents.
    ///
    /// # Errors
    /// Fails if any row is out of bounds.
    pub fn triple_row_activate(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        rows: [RowId; 3],
    ) -> Result<(), DramError> {
        let locs = rows.map(|r| RowLoc {
            bank,
            subarray,
            row: r,
        });
        for l in locs {
            self.check(l)?;
        }
        let a = self.row(locs[0])?;
        let b = self.row(locs[1])?;
        let c = self.row(locs[2])?;
        let maj: Vec<u8> = a
            .iter()
            .zip(&b)
            .zip(&c)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
            .collect();
        for l in locs {
            self.sa(bank, subarray).rows.insert(l.row, maj.clone());
        }
        let buf = self.buffer_mut(bank, subarray);
        buf.data = maj;
        buf.open_row = Some(rows[0]);
        buf.latched = true;
        Ok(())
    }

    /// DRISA-style whole-row bit shift. The row is treated as one long
    /// big-endian bit string (byte 0 holds the most significant bits);
    /// "left" moves bits toward byte 0. Vacated bits fill with zeros.
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds.
    pub fn shift_row_bits(
        &mut self,
        loc: RowLoc,
        left: bool,
        amount: u32,
    ) -> Result<(), DramError> {
        self.check(loc)?;
        let data = self.row(loc)?;
        let shifted = shift_bits(&data, left, amount);
        self.sa(loc.bank, loc.subarray)
            .rows
            .insert(loc.row, shifted);
        Ok(())
    }

    /// DRISA-style whole-row byte shift ("left" = toward byte 0).
    ///
    /// # Errors
    /// Fails if `loc` is out of bounds.
    pub fn shift_row_bytes(
        &mut self,
        loc: RowLoc,
        left: bool,
        amount: usize,
    ) -> Result<(), DramError> {
        self.check(loc)?;
        let data = self.row(loc)?;
        let shifted = shift_bytes(&data, left, amount);
        self.sa(loc.bank, loc.subarray)
            .rows
            .insert(loc.row, shifted);
        Ok(())
    }
}

/// Shifts a byte slice as one long big-endian bit string.
pub(crate) fn shift_bits(data: &[u8], left: bool, amount: u32) -> Vec<u8> {
    let n = data.len();
    let byte_shift = (amount / 8) as usize;
    let bit_shift = amount % 8;
    let mut out = vec![0u8; n];
    if byte_shift >= n {
        return out;
    }
    if left {
        for i in 0..n - byte_shift {
            let hi = data[i + byte_shift] << bit_shift;
            let lo = if bit_shift > 0 && i + byte_shift + 1 < n {
                data[i + byte_shift + 1] >> (8 - bit_shift)
            } else {
                0
            };
            out[i] = hi | lo;
        }
    } else {
        for i in byte_shift..n {
            let lo = data[i - byte_shift] >> bit_shift;
            let hi = if bit_shift > 0 && i - byte_shift >= 1 {
                data[i - byte_shift - 1] << (8 - bit_shift)
            } else {
                0
            };
            out[i] = hi | lo;
        }
    }
    out
}

/// Shifts a byte slice by whole bytes ("left" = toward index 0).
pub(crate) fn shift_bytes(data: &[u8], left: bool, amount: usize) -> Vec<u8> {
    let n = data.len();
    let mut out = vec![0u8; n];
    if amount >= n {
        return out;
    }
    if left {
        out[..n - amount].copy_from_slice(&data[amount..]);
    } else {
        out[amount..].copy_from_slice(&data[..n - amount]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DramConfig {
        DramConfig {
            row_bytes: 8,
            burst_bytes: 4,
            banks: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 16,
            ..DramConfig::ddr4_2400()
        }
    }

    #[test]
    fn rows_default_to_zero() {
        let arr = MemoryArray::new(tiny_cfg());
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0; 8]);
    }

    #[test]
    fn activate_latches_row() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(0, 1, 2);
        arr.set_row(loc, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        arr.activate(loc, false).unwrap();
        let buf = arr.buffer(loc.bank, loc.subarray).unwrap();
        assert_eq!(buf.data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(buf.open_row, Some(RowId(2)));
    }

    #[test]
    fn second_activate_rejected_unless_back_to_back() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(0, 0, 0);
        arr.activate(loc, false).unwrap();
        assert!(matches!(
            arr.activate(loc.with_row(1), false),
            Err(DramError::RowAlreadyOpen { .. })
        ));
        arr.activate(loc.with_row(1), true).unwrap();
    }

    #[test]
    fn rowclone_semantics_via_activate_into() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let src = RowLoc::new(0, 0, 3);
        let dst = src.with_row(5);
        arr.set_row(src, &[9; 8]).unwrap();
        arr.activate(src, false).unwrap();
        arr.activate_into(dst).unwrap();
        arr.precharge(src.bank, src.subarray);
        assert_eq!(arr.row(dst).unwrap(), vec![9; 8]);
        assert_eq!(arr.row(src).unwrap(), vec![9; 8], "source preserved");
    }

    #[test]
    fn activate_into_requires_latched_buffer() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.activate_into(RowLoc::new(0, 0, 1)),
            Err(DramError::NoOpenRow { .. })
        ));
    }

    #[test]
    fn write_buffer_writes_through_to_open_row() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let loc = RowLoc::new(1, 0, 0);
        arr.activate(loc, false).unwrap();
        arr.write_buffer(loc.bank, loc.subarray, 2, &[0xAA, 0xBB])
            .unwrap();
        arr.precharge(loc.bank, loc.subarray);
        let row = arr.row(loc).unwrap();
        assert_eq!(&row[2..4], &[0xAA, 0xBB]);
    }

    #[test]
    fn write_buffer_requires_open_row_and_bounds() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.write_buffer(BankId(0), SubarrayId(0), 0, &[1]),
            Err(DramError::NoOpenRow { .. })
        ));
        let loc = RowLoc::new(0, 0, 0);
        arr.activate(loc, false).unwrap();
        assert!(matches!(
            arr.write_buffer(BankId(0), SubarrayId(0), 6, &[1, 2, 3]),
            Err(DramError::RowSizeMismatch { .. })
        ));
    }

    #[test]
    fn lisa_moves_buffer_and_writes_through() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let src = RowLoc::new(0, 0, 1);
        let dst = RowLoc::new(0, 2, 7);
        arr.set_row(src, &[7; 8]).unwrap();
        arr.activate(dst, false).unwrap(); // open destination row first
        arr.activate(src, false).unwrap();
        arr.lisa_rbm(src.bank, src.subarray, dst.subarray).unwrap();
        arr.precharge(dst.bank, dst.subarray);
        assert_eq!(arr.row(dst).unwrap(), vec![7; 8]);
    }

    #[test]
    fn lisa_rejects_same_subarray_and_unlatched_source() {
        let mut arr = MemoryArray::new(tiny_cfg());
        assert!(matches!(
            arr.lisa_rbm(BankId(0), SubarrayId(1), SubarrayId(1)),
            Err(DramError::InvalidLisa { .. })
        ));
        assert!(matches!(
            arr.lisa_rbm(BankId(0), SubarrayId(0), SubarrayId(1)),
            Err(DramError::NoOpenRow { .. })
        ));
    }

    #[test]
    fn tra_computes_majority_into_all_three_rows() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let b = BankId(0);
        let s = SubarrayId(0);
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0b0110; 8]).unwrap();
        arr.triple_row_activate(b, s, [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        let expect = vec![0b1110u8; 8];
        for r in 0..3 {
            assert_eq!(arr.row(RowLoc::new(0, 0, r)).unwrap(), expect);
        }
        assert_eq!(arr.buffer(b, s).unwrap().data, expect);
    }

    #[test]
    fn tra_with_zeros_row_is_and_with_ones_row_is_or() {
        // MAJ(a, b, 0) = a AND b; MAJ(a, b, 1) = a OR b (Ambit's trick).
        let mut arr = MemoryArray::new(tiny_cfg());
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0x00; 8]).unwrap();
        arr.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0b1000u8; 8]);

        let mut arr = MemoryArray::new(tiny_cfg());
        arr.set_row(RowLoc::new(0, 0, 0), &[0b1100; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 1), &[0b1010; 8]).unwrap();
        arr.set_row(RowLoc::new(0, 0, 2), &[0xFF; 8]).unwrap();
        arr.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
            .unwrap();
        assert_eq!(arr.row(RowLoc::new(0, 0, 0)).unwrap(), vec![0b1110u8; 8]);
    }

    #[test]
    fn bit_shift_left_crosses_byte_boundaries() {
        let v = shift_bits(&[0b0000_0001, 0b1000_0000], true, 1);
        assert_eq!(v, vec![0b0000_0011, 0b0000_0000]);
        let v = shift_bits(&[0xAB, 0xCD], true, 8);
        assert_eq!(v, vec![0xCD, 0x00]);
        let v = shift_bits(&[0xAB, 0xCD], true, 16);
        assert_eq!(v, vec![0, 0]);
    }

    #[test]
    fn bit_shift_right_crosses_byte_boundaries() {
        let v = shift_bits(&[0b0000_0011, 0b0000_0000], false, 1);
        assert_eq!(v, vec![0b0000_0001, 0b1000_0000]);
        let v = shift_bits(&[0xAB, 0xCD], false, 8);
        assert_eq!(v, vec![0x00, 0xAB]);
    }

    #[test]
    fn bit_shift_roundtrip_preserves_interior() {
        let data = vec![0x12, 0x34, 0x56, 0x78];
        let back = shift_bits(&shift_bits(&data, true, 5), false, 5);
        // Top 5 bits were shifted out and lost; the rest must round-trip.
        let mask_first = 0xFFu8 >> 5;
        assert_eq!(back[0] & mask_first, data[0] & mask_first);
        assert_eq!(&back[1..], &data[1..]);
    }

    #[test]
    fn byte_shift() {
        assert_eq!(shift_bytes(&[1, 2, 3, 4], true, 1), vec![2, 3, 4, 0]);
        assert_eq!(shift_bytes(&[1, 2, 3, 4], false, 2), vec![0, 0, 1, 2]);
        assert_eq!(shift_bytes(&[1, 2], false, 5), vec![0, 0]);
    }

    #[test]
    fn out_of_bounds_rejected_everywhere() {
        let mut arr = MemoryArray::new(tiny_cfg());
        let bad = RowLoc::new(9, 0, 0);
        assert!(arr.row(bad).is_err());
        assert!(arr.set_row(bad, &[0; 8]).is_err());
        assert!(arr.activate(bad, false).is_err());
        assert!(arr.shift_row_bits(bad, true, 1).is_err());
    }
}
