//! Error type for the DRAM simulator.

use crate::geometry::{BankId, RowLoc, SubarrayId};
use std::error::Error;
use std::fmt;

/// Errors produced by the DRAM simulator.
///
/// Every variant carries enough context to identify the offending command;
/// the engine rejects command sequences that real DRAM (with the pLUTo
/// modifications) could not execute, instead of silently producing wrong
/// timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A location was outside the configured geometry.
    OutOfBounds {
        /// The offending location.
        loc: RowLoc,
    },
    /// ACT issued to a subarray whose row buffer already holds an open row.
    RowAlreadyOpen {
        /// Bank of the offending subarray.
        bank: BankId,
        /// The offending subarray.
        subarray: SubarrayId,
    },
    /// A command that needs an open row found the subarray precharged.
    NoOpenRow {
        /// Bank of the offending subarray.
        bank: BankId,
        /// The offending subarray.
        subarray: SubarrayId,
    },
    /// A row-granularity data transfer had mismatched length.
    RowSizeMismatch {
        /// Expected length in bytes (the configured row size).
        expected: usize,
        /// Provided length in bytes.
        actual: usize,
    },
    /// An intra-subarray operation was given rows in different subarrays.
    SubarrayMismatch {
        /// First location.
        a: RowLoc,
        /// Second location.
        b: RowLoc,
    },
    /// LISA row-buffer movement requires distinct source and destination
    /// subarrays within the same bank.
    InvalidLisa {
        /// Bank of the attempted movement.
        bank: BankId,
        /// Source subarray.
        from: SubarrayId,
        /// Destination subarray.
        to: SubarrayId,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfBounds { loc } => {
                write!(f, "location {loc} is outside the configured geometry")
            }
            DramError::RowAlreadyOpen { bank, subarray } => {
                write!(f, "{bank}/{subarray} already has an open row")
            }
            DramError::NoOpenRow { bank, subarray } => {
                write!(f, "{bank}/{subarray} has no open row")
            }
            DramError::RowSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "row data length {actual} does not match row size {expected}"
                )
            }
            DramError::SubarrayMismatch { a, b } => {
                write!(f, "rows {a} and {b} are not in the same subarray")
            }
            DramError::InvalidLisa { bank, from, to } => {
                write!(f, "invalid LISA movement {bank}: {from} -> {to}")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RowLoc;

    #[test]
    fn errors_display_context() {
        let e = DramError::OutOfBounds {
            loc: RowLoc::new(1, 2, 3),
        };
        assert!(e.to_string().contains("B1/SA2/R3"));
        let e = DramError::RowSizeMismatch {
            expected: 8192,
            actual: 16,
        };
        assert!(e.to_string().contains("8192"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DramError>();
    }
}
