//! Command counters accumulated by the engine.

use std::fmt;

/// Running counts of every command class executed by an [`crate::Engine`].
///
/// The paper's energy results are pure functions of these counts (§8.3:
/// "pLUTo's energy consumption depends on the total number of DRAM
/// operations required by the executed pLUTo ISA instructions"), so tests
/// assert on them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommandStats {
    /// Row activations (including those inside compound commands).
    pub activates: u64,
    /// Precharges.
    pub precharges: u64,
    /// RD bursts.
    pub read_bursts: u64,
    /// WR bursts.
    pub write_bursts: u64,
    /// RowClone-FPM copies.
    pub row_clones: u64,
    /// LISA row-buffer-movement hops (adjacent-subarray granularity).
    pub lisa_hops: u64,
    /// Ambit triple-row activations.
    pub triple_acts: u64,
    /// pLUTo sweep steps.
    pub sweep_steps: u64,
    /// Activations classified as row-buffer hits (charge-share chain
    /// landing on an already-open subarray). Classifications, not new
    /// commands — excluded from [`CommandStats::total_commands`].
    pub row_hits: u64,
    /// Activations classified as row-buffer misses (closed target).
    pub row_misses: u64,
    /// Activations classified as row-buffer conflicts (another subarray
    /// of the same bank still open — the banked backend charges
    /// tRAS/tRP to close it first).
    pub row_conflicts: u64,
    /// Activations that found the bounded per-rank command queue full
    /// (the banked backend delays issue until a slot frees).
    pub queue_stalls: u64,
}

impl CommandStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of commands of any class.
    pub fn total_commands(&self) -> u64 {
        self.activates
            + self.precharges
            + self.read_bursts
            + self.write_bursts
            + self.row_clones
            + self.lisa_hops
            + self.triple_acts
            + self.sweep_steps
    }

    /// Componentwise accumulation (`self += other`), for folding a
    /// parallel lane's counter deltas back into the engine's totals.
    pub fn merge(&mut self, other: &CommandStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.read_bursts += other.read_bursts;
        self.write_bursts += other.write_bursts;
        self.row_clones += other.row_clones;
        self.lisa_hops += other.lisa_hops;
        self.triple_acts += other.triple_acts;
        self.sweep_steps += other.sweep_steps;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.queue_stalls += other.queue_stalls;
    }

    /// Componentwise difference (`self - earlier`), for measuring a window
    /// of execution.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` has larger counts.
    pub fn since(&self, earlier: &CommandStats) -> CommandStats {
        CommandStats {
            activates: self.activates - earlier.activates,
            precharges: self.precharges - earlier.precharges,
            read_bursts: self.read_bursts - earlier.read_bursts,
            write_bursts: self.write_bursts - earlier.write_bursts,
            row_clones: self.row_clones - earlier.row_clones,
            lisa_hops: self.lisa_hops - earlier.lisa_hops,
            triple_acts: self.triple_acts - earlier.triple_acts,
            sweep_steps: self.sweep_steps - earlier.sweep_steps,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
            queue_stalls: self.queue_stalls - earlier.queue_stalls,
        }
    }
}

impl fmt::Display for CommandStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACT={} PRE={} RD={} WR={} RC={} LISA={} TRA={} SWEEP={} RBH={} RBM={} RBC={} QST={}",
            self.activates,
            self.precharges,
            self.read_bursts,
            self.write_bursts,
            self.row_clones,
            self.lisa_hops,
            self.triple_acts,
            self.sweep_steps,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.queue_stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_diff() {
        let mut a = CommandStats::new();
        a.activates = 5;
        a.precharges = 3;
        let mut b = a;
        b.activates = 9;
        b.sweep_steps = 2;
        let d = b.since(&a);
        assert_eq!(d.activates, 4);
        assert_eq!(d.precharges, 0);
        assert_eq!(d.sweep_steps, 2);
        assert_eq!(d.total_commands(), 6);
    }

    #[test]
    fn row_buffer_classifications_are_not_commands() {
        let mut a = CommandStats::new();
        a.activates = 4;
        a.row_hits = 3;
        a.row_misses = 1;
        a.row_conflicts = 2;
        a.queue_stalls = 5;
        // Hits/misses/conflicts/stalls classify existing ACTs; only the
        // ACT itself is a command.
        assert_eq!(a.total_commands(), 4);
        let mut b = a;
        b.row_hits = 7;
        b.queue_stalls = 6;
        let d = b.since(&a);
        assert_eq!(d.row_hits, 4);
        assert_eq!(d.queue_stalls, 1);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m.row_hits, 7);
        assert_eq!(m.row_conflicts, 2);
        assert_eq!(m.queue_stalls, 6);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CommandStats::new().to_string().is_empty());
    }
}
