//! The DRAM command vocabulary.
//!
//! Besides the standard ACT/PRE/RD/WR set (paper §2.1), the simulator models
//! the enhanced-DRAM commands pLUTo composes (§2.2): RowClone-FPM
//! intra-subarray copy, LISA-RBM inter-subarray row-buffer movement, Ambit
//! triple-row activation, DRISA shifting — and the new pLUTo sweep-step
//! activations (§5).

use crate::geometry::{BankId, RowId, RowLoc, SubarrayId};
use std::fmt;

/// The kind of row activation performed during a pLUTo Row Sweep.
///
/// The three pLUTo designs differ in what one sweep step costs (Table 1):
///
/// * **BSA** performs a *full* activate-precharge cycle per swept row
///   (`tRCD + tRP` per step).
/// * **GSA** and **GMC** only trigger charge sharing per step (`tRCD`), with
///   one final precharge for the whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepStepKind {
    /// Full ACT + PRE cycle (pLUTo-BSA).
    FullCycle,
    /// Charge-share-only activation, no per-step precharge (pLUTo-GSA and
    /// pLUTo-GMC).
    ChargeShare,
}

impl fmt::Display for SweepStepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepStepKind::FullCycle => write!(f, "full-cycle"),
            SweepStepKind::ChargeShare => write!(f, "charge-share"),
        }
    }
}

/// A single DRAM command as executed by the [`crate::Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Activate a row: wordline assert, charge share, sense, restore.
    Activate(RowLoc),
    /// Precharge a subarray's bitlines, closing any open row.
    Precharge(BankId, SubarrayId),
    /// Read one burst from the open row buffer.
    ReadBurst(BankId, SubarrayId),
    /// Write one burst into the open row buffer (and the open row).
    WriteBurst(BankId, SubarrayId),
    /// RowClone-FPM: copy `src` row onto `dst` row of the same subarray via
    /// two back-to-back activations (Seshadri et al., MICRO 2013).
    RowCloneFpm {
        /// Source row.
        src: RowLoc,
        /// Destination row (same bank and subarray as `src`).
        dst_row: RowId,
    },
    /// LISA-RBM: move the contents of `from`'s row buffer into `to`'s row
    /// buffer through linked isolation transistors (Chang et al., HPCA 2016).
    LisaRbm {
        /// Bank in which the movement happens.
        bank: BankId,
        /// Source subarray (must have an open/latched row buffer).
        from: SubarrayId,
        /// Destination subarray.
        to: SubarrayId,
    },
    /// Ambit triple-row activation: simultaneously activate three rows; the
    /// row buffer and all three rows settle to the bitwise majority
    /// (Seshadri et al., MICRO 2017).
    TripleRowActivate {
        /// Bank and subarray (row field unused).
        bank: BankId,
        /// Subarray holding the three rows.
        subarray: SubarrayId,
        /// The three simultaneously activated rows.
        rows: [RowId; 3],
    },
    /// One step of a pLUTo Row Sweep: activate `loc` with the given step
    /// kind. Match-dependent data movement is handled by the pLUTo layer;
    /// the engine accounts time/energy and exposes the activated row.
    SweepStep {
        /// The swept row.
        loc: RowLoc,
        /// Cost class of this step.
        kind: SweepStepKind,
    },
}

impl Command {
    /// Whether this command issues at least one row activation (and hence
    /// participates in the tFAW window).
    pub fn activation_count(&self) -> u32 {
        match self {
            Command::Activate(_) => 1,
            Command::RowCloneFpm { .. } => 2,
            Command::TripleRowActivate { .. } => 1, // one ACT asserting 3 wordlines
            Command::SweepStep { .. } => 1,
            _ => 0,
        }
    }

    /// Short mnemonic used in traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate(_) => "ACT",
            Command::Precharge(..) => "PRE",
            Command::ReadBurst(..) => "RD",
            Command::WriteBurst(..) => "WR",
            Command::RowCloneFpm { .. } => "RC-FPM",
            Command::LisaRbm { .. } => "LISA",
            Command::TripleRowActivate { .. } => "TRA",
            Command::SweepStep { .. } => "SWEEP",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Activate(loc) => write!(f, "ACT {loc}"),
            Command::Precharge(b, s) => write!(f, "PRE {b}/{s}"),
            Command::ReadBurst(b, s) => write!(f, "RD {b}/{s}"),
            Command::WriteBurst(b, s) => write!(f, "WR {b}/{s}"),
            Command::RowCloneFpm { src, dst_row } => write!(f, "RC-FPM {src} -> {dst_row}"),
            Command::LisaRbm { bank, from, to } => write!(f, "LISA {bank}: {from} -> {to}"),
            Command::TripleRowActivate {
                bank,
                subarray,
                rows,
            } => write!(
                f,
                "TRA {bank}/{subarray} [{}, {}, {}]",
                rows[0], rows[1], rows[2]
            ),
            Command::SweepStep { loc, kind } => write!(f, "SWEEP({kind}) {loc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_counts() {
        assert_eq!(
            Command::Activate(RowLoc::new(0, 0, 0)).activation_count(),
            1
        );
        assert_eq!(
            Command::RowCloneFpm {
                src: RowLoc::new(0, 0, 0),
                dst_row: RowId(1)
            }
            .activation_count(),
            2
        );
        assert_eq!(
            Command::Precharge(BankId(0), SubarrayId(0)).activation_count(),
            0
        );
        assert_eq!(
            Command::ReadBurst(BankId(0), SubarrayId(0)).activation_count(),
            0
        );
    }

    #[test]
    fn mnemonics_and_display() {
        let c = Command::SweepStep {
            loc: RowLoc::new(0, 1, 2),
            kind: SweepStepKind::ChargeShare,
        };
        assert_eq!(c.mnemonic(), "SWEEP");
        assert!(c.to_string().contains("charge-share"));
        let t = Command::TripleRowActivate {
            bank: BankId(0),
            subarray: SubarrayId(0),
            rows: [RowId(1), RowId(2), RowId(3)],
        };
        assert!(t.to_string().contains("TRA"));
    }
}
