//! # pluto-dram — DRAM substrate simulator for the pLUTo reproduction
//!
//! This crate implements the DRAM substrate that the pLUTo architecture
//! (Ferreira et al., MICRO 2022) is built on: a *command-level timing and
//! energy model* combined with a *bit-accurate functional array model*.
//!
//! The paper evaluates pLUTo with a custom analytical simulator that parses
//! the sequence of DRAM commands required by each operation and enforces the
//! memory's timing parameters (paper §7.1). This crate reproduces that
//! simulator and extends it with functional semantics so that every workload's
//! output can be validated bit-for-bit against reference software.
//!
//! ## Subsystems
//!
//! * [`geometry`] — hierarchical DRAM organization (module → bank group →
//!   bank → subarray → row → cell) with typed addresses.
//! * [`timing`] — DDR4-2400 and HMC/3DS timing parameter sets (tRCD, tRP,
//!   tRAS, tFAW, …) in integer picoseconds.
//! * [`energy`] — per-command energy model seeded from CACTI-7-derived
//!   published values (paper §7.1 uses CACTI 7 directly).
//! * [`command`] — the DRAM command vocabulary, including the enhanced
//!   commands pLUTo relies on (RowClone-FPM, LISA-RBM, Ambit TRA, DRISA
//!   shifts, and pLUTo sweep steps).
//! * [`mod@array`] — sparse bit-accurate storage for banks/subarrays/rows with
//!   row-buffer semantics.
//! * [`engine`] — the serial command-level simulator: executes commands,
//!   mutates the functional array, accumulates elapsed time and energy, and
//!   enforces timing constraints (including the four-activate window, tFAW).
//! * [`timing_model`] / [`banked`] — the pluggable timing-backend seam:
//!   the analytic model as one implementation, and an event-driven
//!   per-bank backend charging row-buffer conflicts and command-queue
//!   contention as the second (`DESIGN.md` §11).
//! * [`schedule`] — the multi-lane makespan scheduler used to model
//!   subarray-level parallelism (MASA/SALP) under the shared tFAW constraint.
//! * [`stats`] — command counters.
//!
//! ## Example
//!
//! ```
//! use pluto_dram::{DramConfig, Engine, RowLoc};
//!
//! # fn main() -> Result<(), pluto_dram::DramError> {
//! let mut engine = Engine::new(DramConfig::ddr4_2400());
//! let loc = RowLoc::new(0, 3, 7);
//! engine.write_row(loc, &vec![0xAB; engine.config().row_bytes()])?;
//! engine.activate(loc)?;
//! assert!(engine.row_buffer(loc.bank, loc.subarray)?.data.iter().all(|&b| b == 0xAB));
//! engine.precharge(loc.bank, loc.subarray)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod banked;
pub mod command;
pub mod energy;
pub mod engine;
pub mod error;
pub mod geometry;
pub mod schedule;
pub mod stats;
pub mod timing;
pub mod timing_model;
pub mod units;

pub use array::{set_word_at_bit, word_at_bit, MemoryArray, RowBuffer, MAX_FIELD_BITS};
pub use banked::BankedTiming;
pub use command::{Command, SweepStepKind};
pub use energy::EnergyModel;
pub use engine::{CostTape, Engine, LaneClock, LaneOutcome};
pub use error::DramError;
pub use geometry::{BankId, DramConfig, MemoryKind, RowId, RowLoc, SubarrayId};
pub use schedule::{Lane, LaneStep, ParallelScheduler, StepKind};
pub use stats::CommandStats;
pub use timing::TimingParams;
pub use timing_model::{
    model_for, ActClass, ActIssue, AnalyticTiming, TimingBackend, TimingModel, ACT_QUEUE_DEPTH,
};
pub use units::{PicoJoules, Picos};
