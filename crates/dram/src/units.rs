//! Typed physical units used throughout the simulator.
//!
//! Time is tracked in integer picoseconds ([`Picos`]) so that command-level
//! accounting is exact and deterministic; energy is tracked in picojoules
//! ([`PicoJoules`]) as a non-negative floating point accumulator.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or timestamp in integer picoseconds.
///
/// All DRAM timing parameters (tRCD, tRP, …) are expressed in `Picos` so
/// that the simulated clock never accumulates floating-point drift.
///
/// ```
/// use pluto_dram::Picos;
/// let trcd = Picos::from_ns(14.16);
/// assert_eq!(trcd.as_ps(), 14_160);
/// assert!((trcd.as_ns() - 14.16).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(pub u64);

impl Picos {
    /// The zero duration.
    pub const ZERO: Picos = Picos(0);

    /// Creates a duration from a (non-negative) nanosecond value.
    ///
    /// # Panics
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        Picos((ns * 1e3).round() as u64)
    }

    /// Creates a duration from an integer picosecond count.
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer count.
    pub const fn times(self, n: u64) -> Picos {
        Picos(self.0 * n)
    }

    /// Returns the larger of two durations.
    pub fn max(self, rhs: Picos) -> Picos {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// picosecond. Used e.g. for the tFAW sensitivity sweep (paper Fig. 13).
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Picos {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Picos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// An energy quantity in picojoules.
///
/// ```
/// use pluto_dram::PicoJoules;
/// let act = PicoJoules::from_nj(18.0);
/// assert!((act.as_nj() - 18.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PicoJoules(pub f64);

impl PicoJoules {
    /// The zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0.0);

    /// Creates an energy from a (non-negative) nanojoule value.
    ///
    /// # Panics
    /// Panics if `nj` is negative or not finite.
    pub fn from_nj(nj: f64) -> Self {
        assert!(nj.is_finite() && nj >= 0.0, "invalid nanojoule value: {nj}");
        PicoJoules(nj * 1e3)
    }

    /// Creates an energy from a raw picojoule value.
    ///
    /// # Panics
    /// Panics if `pj` is negative or not finite.
    pub fn from_pj(pj: f64) -> Self {
        assert!(pj.is_finite() && pj >= 0.0, "invalid picojoule value: {pj}");
        PicoJoules(pj)
    }

    /// Returns the energy in picojoules.
    pub const fn as_pj(self) -> f64 {
        self.0
    }

    /// Returns the energy in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the energy in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the energy in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the energy in joules.
    pub fn as_joules(self) -> f64 {
        self.0 / 1e12
    }

    /// Multiplies the energy by an integer count.
    pub fn times(self, n: u64) -> PicoJoules {
        PicoJoules(self.0 * n as f64)
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl Sub for PicoJoules {
    type Output = PicoJoules;
    fn sub(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 - rhs.0)
    }
}

impl Mul<f64> for PicoJoules {
    type Output = PicoJoules;
    fn mul(self, rhs: f64) -> PicoJoules {
        PicoJoules(self.0 * rhs)
    }
}

impl Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        iter.fold(PicoJoules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for PicoJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} mJ", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} nJ", self.0 / 1e3)
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_roundtrip_ns() {
        let t = Picos::from_ns(14.16);
        assert_eq!(t.as_ps(), 14_160);
        assert!((t.as_ns() - 14.16).abs() < 1e-9);
    }

    #[test]
    fn picos_arithmetic() {
        let a = Picos::from_ps(100);
        let b = Picos::from_ps(50);
        assert_eq!((a + b).as_ps(), 150);
        assert_eq!((a - b).as_ps(), 50);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
    }

    #[test]
    fn picos_scale_rounds() {
        assert_eq!(Picos::from_ps(100).scale(0.5).as_ps(), 50);
        assert_eq!(Picos::from_ps(3).scale(0.5).as_ps(), 2); // rounds .5 away
        assert_eq!(Picos::from_ps(100).scale(0.0), Picos::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn picos_scale_rejects_negative() {
        let _ = Picos::from_ps(1).scale(-1.0);
    }

    #[test]
    fn picos_sum() {
        let total: Picos = (1..=4).map(Picos::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    fn picos_display_units() {
        assert_eq!(format!("{}", Picos::from_ps(5)), "5 ps");
        assert_eq!(format!("{}", Picos::from_ps(5_000)), "5.000 ns");
        assert_eq!(format!("{}", Picos::from_ps(5_000_000)), "5.000 us");
        assert_eq!(format!("{}", Picos::from_ps(5_000_000_000)), "5.000 ms");
    }

    #[test]
    fn energy_roundtrip() {
        let e = PicoJoules::from_nj(18.0);
        assert!((e.as_nj() - 18.0).abs() < 1e-12);
        assert!((e.as_joules() - 18.0e-9).abs() < 1e-20);
    }

    #[test]
    fn energy_accumulates() {
        let mut e = PicoJoules::ZERO;
        for _ in 0..10 {
            e += PicoJoules::from_pj(1.5);
        }
        assert!((e.as_pj() - 15.0).abs() < 1e-12);
        assert!((e.times(2).as_pj() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn energy_display_units() {
        assert_eq!(format!("{}", PicoJoules::from_pj(2.0)), "2.000 pJ");
        assert_eq!(format!("{}", PicoJoules::from_nj(2.0)), "2.000 nJ");
    }
}
