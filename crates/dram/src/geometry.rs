//! Hierarchical DRAM organization and typed addresses.
//!
//! Mirrors the paper's Figure 1: a DRAM *module* consists of chips; each chip
//! contains *banks* (grouped into bank groups in DDR4); each bank is divided
//! into *subarrays*; each subarray is a 2-D array of cells organized as
//! *rows*. The simulator operates at module granularity: a "row" here is a
//! module-level row (8 KiB for the paper's DDR4 configuration, 256 B for the
//! 3D-stacked configuration — paper Table 3 and §7).

use std::fmt;

/// Identifies a bank within the module (bank group × bank flattened).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u16);

/// Identifies a subarray within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubarrayId(pub u16);

/// Identifies a row within a subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u16);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SA{}", self.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Fully qualified location of a DRAM row: bank, subarray, row.
///
/// ```
/// use pluto_dram::RowLoc;
/// let loc = RowLoc::new(1, 2, 3);
/// assert_eq!(loc.to_string(), "B1/SA2/R3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowLoc {
    /// Bank containing the row.
    pub bank: BankId,
    /// Subarray within the bank.
    pub subarray: SubarrayId,
    /// Row within the subarray.
    pub row: RowId,
}

impl RowLoc {
    /// Creates a row location from raw indices.
    pub const fn new(bank: u16, subarray: u16, row: u16) -> Self {
        RowLoc {
            bank: BankId(bank),
            subarray: SubarrayId(subarray),
            row: RowId(row),
        }
    }

    /// Returns the same location with a different row index.
    pub const fn with_row(self, row: u16) -> Self {
        RowLoc {
            bank: self.bank,
            subarray: self.subarray,
            row: RowId(row),
        }
    }

    /// Returns the same location with a different subarray index.
    pub const fn with_subarray(self, subarray: u16) -> Self {
        RowLoc {
            bank: self.bank,
            subarray: SubarrayId(subarray),
            row: self.row,
        }
    }
}

impl fmt::Display for RowLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.bank, self.subarray, self.row)
    }
}

/// Which class of memory device the configuration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Commodity DDR4 DIMM (the paper's primary configuration).
    Ddr4,
    /// 3D-stacked memory modeled after HMC (the paper's "3DS" configuration).
    Stacked3d,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::Ddr4 => write!(f, "DDR4"),
            MemoryKind::Stacked3d => write!(f, "3DS"),
        }
    }
}

/// Static description of a DRAM module's organization.
///
/// The two presets correspond to the paper's Table 3 / §7 configurations:
///
/// * [`DramConfig::ddr4_2400`]: 8 GB, 1 channel, 1 rank, 4 bank groups × 4
///   banks, 512 rows per subarray, 8 KiB rows.
/// * [`DramConfig::hmc_3ds`]: HMC-like stack with 256 B rows and enough
///   subarrays for 512-subarray parallelism.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Device class.
    pub kind: MemoryKind,
    /// Number of independently addressable banks (bank groups × banks).
    pub banks: u16,
    /// Number of subarrays per bank.
    pub subarrays_per_bank: u16,
    /// Number of rows in each subarray.
    pub rows_per_subarray: u16,
    /// Row (and row buffer) size in bytes.
    pub row_bytes: usize,
    /// Column burst size in bytes (per RD/WR command at module level).
    pub burst_bytes: usize,
}

impl DramConfig {
    /// The paper's DDR4 configuration (Table 3): DDR4-2400, 8 GB, 1 channel,
    /// 1 rank, 4 bank groups with 4 banks each, 512 rows per subarray, 8 KiB
    /// per row.
    pub fn ddr4_2400() -> Self {
        DramConfig {
            kind: MemoryKind::Ddr4,
            banks: 16,
            subarrays_per_bank: 128, // 8 GB / (16 banks * 512 rows * 8 KiB)
            rows_per_subarray: 512,
            row_bytes: 8 * 1024,
            burst_bytes: 64,
        }
    }

    /// The paper's 3D-stacked (HMC-like) configuration (§7): 256 B row
    /// buffers, 512-subarray default parallelism. We model the stack as 32
    /// vaults (banks) × 512 subarrays.
    pub fn hmc_3ds() -> Self {
        DramConfig {
            kind: MemoryKind::Stacked3d,
            banks: 32,
            subarrays_per_bank: 512,
            rows_per_subarray: 512,
            row_bytes: 256,
            burst_bytes: 32,
        }
    }

    /// Row size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Row size in bits.
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Total capacity of the module in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks as u64
            * self.subarrays_per_bank as u64
            * self.rows_per_subarray as u64
            * self.row_bytes as u64
    }

    /// Total number of subarrays in the module.
    pub fn total_subarrays(&self) -> u32 {
        self.banks as u32 * self.subarrays_per_bank as u32
    }

    /// Number of RD/WR bursts needed to transfer one full row over the bus.
    pub fn bursts_per_row(&self) -> usize {
        self.row_bytes.div_ceil(self.burst_bytes)
    }

    /// Checks that a location is within this configuration's bounds.
    pub fn contains(&self, loc: RowLoc) -> bool {
        loc.bank.0 < self.banks
            && loc.subarray.0 < self.subarrays_per_bank
            && loc.row.0 < self.rows_per_subarray
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} banks x {} subarrays x {} rows x {} B)",
            self.kind, self.banks, self.subarrays_per_bank, self.rows_per_subarray, self.row_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_capacity_is_8_gib() {
        let cfg = DramConfig::ddr4_2400();
        assert_eq!(cfg.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn ddr4_row_is_8_kib() {
        let cfg = DramConfig::ddr4_2400();
        assert_eq!(cfg.row_bytes(), 8192);
        assert_eq!(cfg.row_bits(), 65536);
        assert_eq!(cfg.bursts_per_row(), 128);
    }

    #[test]
    fn hmc_rows_are_256_bytes() {
        let cfg = DramConfig::hmc_3ds();
        assert_eq!(cfg.row_bytes(), 256);
        // 512-subarray parallelism must be expressible.
        assert!(cfg.total_subarrays() >= 512);
    }

    #[test]
    fn paper_equivalence_16x8kib_eq_512x256b() {
        // §7: "16 x 8 kB = 512 x 256 B = 128 kB" — the two default design
        // points process identical data volumes per operation.
        let ddr4 = DramConfig::ddr4_2400();
        let hmc = DramConfig::hmc_3ds();
        assert_eq!(16 * ddr4.row_bytes(), 512 * hmc.row_bytes());
        assert_eq!(16 * ddr4.row_bytes(), 128 * 1024);
    }

    #[test]
    fn bounds_checking() {
        let cfg = DramConfig::ddr4_2400();
        assert!(cfg.contains(RowLoc::new(0, 0, 0)));
        assert!(cfg.contains(RowLoc::new(15, 127, 511)));
        assert!(!cfg.contains(RowLoc::new(16, 0, 0)));
        assert!(!cfg.contains(RowLoc::new(0, 128, 0)));
        assert!(!cfg.contains(RowLoc::new(0, 0, 512)));
    }

    #[test]
    fn row_loc_helpers() {
        let loc = RowLoc::new(1, 2, 3);
        assert_eq!(loc.with_row(9).row, RowId(9));
        assert_eq!(loc.with_subarray(5).subarray, SubarrayId(5));
        assert_eq!(loc.with_row(9).bank, BankId(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(RowLoc::new(1, 2, 3).to_string(), "B1/SA2/R3");
        assert_eq!(MemoryKind::Ddr4.to_string(), "DDR4");
        assert_eq!(MemoryKind::Stacked3d.to_string(), "3DS");
        let s = DramConfig::ddr4_2400().to_string();
        assert!(s.contains("DDR4"));
    }
}
