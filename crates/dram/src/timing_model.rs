//! The pluggable timing-backend seam (`DESIGN.md` §11).
//!
//! The paper's evaluation uses a purely *analytic* cost model: every
//! command has a fixed latency and the only cross-command constraint is
//! the rolling four-activate window (tFAW). That is faithful to §7.1 of
//! the paper, but the serving front-end and compiled plans now generate
//! concurrent traffic whose realism is capped by it. This module
//! introduces the seam between *what the command stream is* (the
//! [`crate::Engine`]) and *when each activation may issue*
//! (a [`TimingModel`]):
//!
//! * [`AnalyticTiming`] — the original model. Row-buffer state is
//!   *tracked* (hit/miss/conflict counters) but never *charged*.
//! * [`crate::BankedTiming`] — an event-driven per-bank engine that
//!   charges row-buffer conflicts (tRAS/tRP interplay) and models a
//!   bounded per-rank command queue whose contention delays issue.
//!
//! Both backends share the same tracking state (`RankState`) and the
//! same classification rules, so on any serial single-bank command
//! stream — where no conflict and no queue pressure can arise — they
//! agree *bit for bit* on latency and energy. That exact-agreement
//! invariant is the correctness contract locked by
//! `tests/timing_backend.rs`.
//!
//! ## Geometry alignment (what gets classified)
//!
//! Borrowing the DRAMsim3-integration lesson that the backend's view of
//! the geometry must match the command stream's *exactly* (SNIPPETS.md
//! §1–2), only commands that use a bank-level or subarray-level row
//! buffer participate:
//!
//! * **Standard activations** (`Engine::activate`, including those
//!   inside `read_row`/`write_row`) contend for the *bank-level* row
//!   buffer: at most one open row per bank; opening over another
//!   subarray's open row is a conflict.
//! * **pLUTo sweep steps** use the pLUTo subarray's *local* sense
//!   amplifiers (the SALP-style isolation the paper's design depends
//!   on), so they never conflict with the bank-level buffer. A
//!   charge-share step chaining onto an already-open local buffer is a
//!   row-buffer *hit*; a full ACT+PRE cycle step is always a miss and
//!   leaves nothing open.
//! * **Compound in-DRAM ops** (RowClone, LISA, Ambit TRA, DRISA shifts)
//!   are internally precharge-terminated and bypass both buffers: they
//!   stay subject to tFAW, but are exempt from classification and the
//!   command queue.

use crate::geometry::{BankId, RowId, SubarrayId};
use crate::timing::TimingParams;
use crate::units::Picos;
use std::collections::VecDeque;
use std::fmt;

/// Selects which [`TimingModel`] an [`crate::Engine`] runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimingBackend {
    /// The paper's analytic model: fixed per-command latencies under the
    /// tFAW window only. Row-buffer state is tracked but never charged.
    #[default]
    Analytic,
    /// Event-driven per-bank backend ([`crate::BankedTiming`]): charges
    /// row-buffer conflicts and bounded command-queue contention.
    Banked,
}

impl fmt::Display for TimingBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingBackend::Analytic => write!(f, "analytic"),
            TimingBackend::Banked => write!(f, "banked"),
        }
    }
}

/// Row-buffer classification of one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActClass {
    /// The target row buffer already holds the needed row (charge-share
    /// chain, or re-activation of the open row).
    Hit,
    /// The target row buffer is closed.
    Miss,
    /// The bank-level row buffer holds a different row, which must be
    /// closed (tRAS residency + tRP) before this activation can issue.
    Conflict,
}

/// Depth of the bounded per-rank command queue modeled by the banked
/// backend: an activation finding [`ACT_QUEUE_DEPTH`] not-yet-retired
/// predecessors must wait for the oldest to age out (one tRAS).
pub const ACT_QUEUE_DEPTH: usize = 8;

/// A [`TimingModel`]'s resolved issue decision for one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActIssue {
    /// The final issue time.
    pub at: Picos,
    /// Whether the bounded command queue was full at the attempted issue
    /// time (counted by both backends; only the banked one delays).
    pub queue_stalled: bool,
}

/// Policy half of the timing seam: given a classified activation and the
/// shared tracking state's verdicts, decide when it actually issues.
///
/// Implementations must be pure (no interior state) — all state lives in
/// the engine's `RankState` so that both backends observe identical
/// streams and the differential contract stays meaningful.
pub trait TimingModel: Sync {
    /// Which backend this model implements.
    fn backend(&self) -> TimingBackend;

    /// Resolves the issue time of one activation.
    ///
    /// `at` already honors the tFAW window. `conflict_open` carries the
    /// conflicting open row's activation time when `class` is
    /// [`ActClass::Conflict`]; `queue_gate` carries the earliest time a
    /// queue slot frees when the bounded queue is full.
    fn act_issue(
        &self,
        at: Picos,
        class: ActClass,
        conflict_open: Option<Picos>,
        queue_gate: Option<Picos>,
        timing: &TimingParams,
    ) -> ActIssue;
}

/// The paper's analytic backend: every penalty policy is "charge
/// nothing". Classifications and would-be stalls are still counted so
/// the two backends' statistics stay comparable.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticTiming;

impl TimingModel for AnalyticTiming {
    fn backend(&self) -> TimingBackend {
        TimingBackend::Analytic
    }

    fn act_issue(
        &self,
        at: Picos,
        _class: ActClass,
        _conflict_open: Option<Picos>,
        queue_gate: Option<Picos>,
        _timing: &TimingParams,
    ) -> ActIssue {
        ActIssue {
            at,
            queue_stalled: queue_gate.is_some_and(|gate| gate > at),
        }
    }
}

/// Returns the (stateless) model implementing `backend`.
pub fn model_for(backend: TimingBackend) -> &'static dyn TimingModel {
    match backend {
        TimingBackend::Analytic => &AnalyticTiming,
        TimingBackend::Banked => &crate::banked::BankedTiming,
    }
}

/// One open row buffer tracked by [`RankState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OpenEntry {
    pub(crate) bank: BankId,
    pub(crate) subarray: SubarrayId,
    pub(crate) row: RowId,
    /// When the row was activated (tRAS residency reference).
    pub(crate) opened_at: Picos,
}

/// Compact open-entry form used in timing signatures and tape
/// end-states: `(bank, subarray, row, age)`. Ages are clamped to tRAS —
/// an entry resident longer than tRAS behaves identically to one
/// resident exactly tRAS for every future decision.
pub(crate) type OpenSig = (u16, u16, u16, Picos);

/// Complete timing-state signature of an engine relative to its clock:
/// tFAW-window ages, command-queue ages, and both open-row domains. Two
/// engine states with equal signatures time any identical future
/// command stream identically — the replay-legality witness recorded on
/// cost tapes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TimingSig {
    /// tFAW-window entry ages (oldest first), empty when inert.
    pub(crate) faw: Vec<Picos>,
    /// Command-queue entry ages still younger than tRAS.
    pub(crate) queue: Vec<Picos>,
    /// Open bank-level rows, ages clamped to tRAS.
    pub(crate) bank_open: Vec<OpenSig>,
    /// Open charge-share chains, ages clamped to tRAS.
    pub(crate) share_open: Vec<OpenSig>,
}

/// Timing-relevant tracking state maintained identically by both
/// backends: the open bank-level row buffers, the open charge-share
/// chains, and the bounded command queue of recent classified ACT issue
/// times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RankState {
    /// Bank-level row buffers (at most one entry per bank).
    pub(crate) bank_open: Vec<OpenEntry>,
    /// Subarray-local charge-share chains (pLUTo sweep state).
    pub(crate) share_open: Vec<OpenEntry>,
    /// Issue times of the most recent classified activations (at most
    /// [`ACT_QUEUE_DEPTH`]).
    pub(crate) queue: VecDeque<Picos>,
}

impl RankState {
    /// Classifies a standard activation against the bank-level row
    /// buffer, returning the conflicting open time if any.
    pub(crate) fn classify_standard(
        &self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowId,
    ) -> (ActClass, Option<Picos>) {
        match self.bank_open.iter().find(|o| o.bank == bank) {
            None => (ActClass::Miss, None),
            Some(o) if o.subarray == subarray && o.row == row => (ActClass::Hit, None),
            Some(o) => (ActClass::Conflict, Some(o.opened_at)),
        }
    }

    /// Records a standard activation: the bank's row buffer now holds
    /// this row (closing whatever it held before).
    pub(crate) fn apply_standard(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowId,
        at: Picos,
    ) {
        self.bank_open.retain(|o| o.bank != bank);
        self.bank_open.push(OpenEntry {
            bank,
            subarray,
            row,
            opened_at: at,
        });
    }

    /// Classifies a charge-share sweep step against the subarray-local
    /// chain state.
    pub(crate) fn classify_share(&self, bank: BankId, subarray: SubarrayId) -> ActClass {
        if self
            .share_open
            .iter()
            .any(|o| o.bank == bank && o.subarray == subarray)
        {
            ActClass::Hit
        } else {
            ActClass::Miss
        }
    }

    /// Records a charge-share step: the subarray's local buffer is (or
    /// stays) open, refreshed to `at`.
    pub(crate) fn apply_share(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowId,
        at: Picos,
    ) {
        if let Some(o) = self
            .share_open
            .iter_mut()
            .find(|o| o.bank == bank && o.subarray == subarray)
        {
            o.row = row;
            o.opened_at = at;
        } else {
            self.share_open.push(OpenEntry {
                bank,
                subarray,
                row,
                opened_at: at,
            });
        }
    }

    /// A precharge closes both the bank-level buffer (when it holds this
    /// subarray's row) and the subarray's charge-share chain.
    pub(crate) fn close(&mut self, bank: BankId, subarray: SubarrayId) {
        self.bank_open
            .retain(|o| !(o.bank == bank && o.subarray == subarray));
        self.share_open
            .retain(|o| !(o.bank == bank && o.subarray == subarray));
    }

    /// The earliest time a queue slot frees, when the queue is full.
    pub(crate) fn queue_gate(&self, t_ras: Picos) -> Option<Picos> {
        (self.queue.len() >= ACT_QUEUE_DEPTH)
            .then(|| self.queue[self.queue.len() - ACT_QUEUE_DEPTH] + t_ras)
    }

    /// Pushes a classified activation's issue time, keeping the newest
    /// [`ACT_QUEUE_DEPTH`] entries.
    pub(crate) fn push_queue(&mut self, at: Picos) {
        self.queue.push_back(at);
        if self.queue.len() > ACT_QUEUE_DEPTH {
            self.queue.pop_front();
        }
    }

    /// Drops every record from `to` onward (strict boundary, matching
    /// `Engine::rewind_clock`: an event at exactly `to` belongs to the
    /// abandoned region being rewound away).
    pub(crate) fn rewind(&mut self, to: Picos) {
        self.queue.retain(|&t| t < to);
        self.bank_open.retain(|o| o.opened_at < to);
        self.share_open.retain(|o| o.opened_at < to);
    }

    /// Forgets all tracking state (used by `reset_accounting`).
    pub(crate) fn clear(&mut self) {
        self.bank_open.clear();
        self.share_open.clear();
        self.queue.clear();
    }

    fn open_sig(entries: &[OpenEntry], clock: Picos, t_ras: Picos) -> Vec<OpenSig> {
        entries
            .iter()
            .map(|o| {
                let age = clock.saturating_sub(o.opened_at);
                (
                    o.bank.0,
                    o.subarray.0,
                    o.row.0,
                    if age > t_ras { t_ras } else { age },
                )
            })
            .collect()
    }

    /// Bank-level open-row signature relative to `clock`.
    pub(crate) fn bank_open_sig(&self, clock: Picos, t_ras: Picos) -> Vec<OpenSig> {
        Self::open_sig(&self.bank_open, clock, t_ras)
    }

    /// Charge-share open signature relative to `clock`.
    pub(crate) fn share_open_sig(&self, clock: Picos, t_ras: Picos) -> Vec<OpenSig> {
        Self::open_sig(&self.share_open, clock, t_ras)
    }

    /// Queue signature relative to `clock`: ages of the entries still
    /// young enough to matter. An entry older than tRAS can never gate a
    /// future activation (its slot frees in the past) and the overflow
    /// eviction order is age-independent, so it is omitted.
    pub(crate) fn queue_sig(&self, clock: Picos, t_ras: Picos) -> Vec<Picos> {
        self.queue
            .iter()
            .filter(|&&t| clock.saturating_sub(t) < t_ras)
            .map(|&t| clock.saturating_sub(t))
            .collect()
    }

    /// Allocation-free check that this state's queue and open-row
    /// signatures (relative to `clock`) equal the recorded ones (the
    /// tFAW half of the signature is the engine's to check).
    pub(crate) fn matches_sig(&self, sig: &TimingSig, clock: Picos, t_ras: Picos) -> bool {
        let open_matches = |entries: &[OpenEntry], recorded: &[OpenSig]| {
            entries.len() == recorded.len()
                && entries
                    .iter()
                    .zip(recorded)
                    .all(|(o, &(bank, subarray, row, age))| {
                        let a = clock.saturating_sub(o.opened_at);
                        o.bank.0 == bank
                            && o.subarray.0 == subarray
                            && o.row.0 == row
                            && (if a > t_ras { t_ras } else { a }) == age
                    })
        };
        self.queue
            .iter()
            .filter(|&&t| clock.saturating_sub(t) < t_ras)
            .map(|&t| clock.saturating_sub(t))
            .eq(sig.queue.iter().copied())
            && open_matches(&self.bank_open, &sig.bank_open)
            && open_matches(&self.share_open, &sig.share_open)
    }

    /// Replaces the open-state from a tape's recorded end-state (ages
    /// relative to `clock`).
    pub(crate) fn restore_open(
        &mut self,
        bank_open: &[OpenSig],
        share_open: &[OpenSig],
        clock: Picos,
    ) {
        let expand = |sig: &[OpenSig]| {
            sig.iter()
                .map(|&(bank, subarray, row, age)| OpenEntry {
                    bank: BankId(bank),
                    subarray: SubarrayId(subarray),
                    row: RowId(row),
                    opened_at: clock.saturating_sub(age),
                })
                .collect::<Vec<_>>()
        };
        self.bank_open = expand(bank_open);
        self.share_open = expand(share_open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_classification_hits_misses_and_conflicts() {
        let mut rank = RankState::default();
        let (b, sa, row) = (BankId(0), SubarrayId(1), RowId(7));
        assert_eq!(rank.classify_standard(b, sa, row), (ActClass::Miss, None));
        rank.apply_standard(b, sa, row, Picos::from_ns(10.0));
        assert_eq!(rank.classify_standard(b, sa, row), (ActClass::Hit, None));
        // Different row, same bank: conflict against the open time.
        let (class, open) = rank.classify_standard(b, SubarrayId(2), RowId(0));
        assert_eq!(class, ActClass::Conflict);
        assert_eq!(open, Some(Picos::from_ns(10.0)));
        // Another bank is independent.
        assert_eq!(
            rank.classify_standard(BankId(1), sa, row),
            (ActClass::Miss, None)
        );
        rank.close(b, sa);
        assert_eq!(rank.classify_standard(b, sa, row), (ActClass::Miss, None));
    }

    #[test]
    fn share_chains_are_subarray_local_and_never_conflict() {
        let mut rank = RankState::default();
        let (b, sa) = (BankId(0), SubarrayId(3));
        // A standard open row in the same bank does not make the sweep
        // a conflict — sweeps use the subarray's local sense amps.
        rank.apply_standard(b, SubarrayId(1), RowId(0), Picos::ZERO);
        assert_eq!(rank.classify_share(b, sa), ActClass::Miss);
        rank.apply_share(b, sa, RowId(4), Picos::from_ns(5.0));
        assert_eq!(rank.classify_share(b, sa), ActClass::Hit);
        rank.close(b, sa);
        assert_eq!(rank.classify_share(b, sa), ActClass::Miss);
        // Closing the share chain left the bank-level entry alone.
        assert_eq!(
            rank.classify_standard(b, SubarrayId(1), RowId(0)),
            (ActClass::Hit, None)
        );
    }

    #[test]
    fn queue_gates_only_when_full() {
        let mut rank = RankState::default();
        let t_ras = Picos::from_ns(32.0);
        for i in 0..ACT_QUEUE_DEPTH as u64 - 1 {
            rank.push_queue(Picos(i));
            assert_eq!(rank.queue_gate(t_ras), None);
        }
        rank.push_queue(Picos(99));
        // Full: the slot occupied by the oldest entry frees at t + tRAS.
        assert_eq!(rank.queue_gate(t_ras), Some(Picos(0) + t_ras));
        rank.push_queue(Picos(100));
        assert_eq!(rank.queue.len(), ACT_QUEUE_DEPTH);
        assert_eq!(rank.queue_gate(t_ras), Some(Picos(1) + t_ras));
    }

    #[test]
    fn rewind_boundary_is_strict() {
        let mut rank = RankState::default();
        rank.push_queue(Picos(5));
        rank.push_queue(Picos(10));
        rank.apply_standard(BankId(0), SubarrayId(0), RowId(0), Picos(10));
        rank.apply_share(BankId(0), SubarrayId(1), RowId(0), Picos(9));
        rank.rewind(Picos(10));
        assert_eq!(rank.queue, [Picos(5)]);
        assert!(rank.bank_open.is_empty(), "entry opened at the mark drops");
        assert_eq!(rank.share_open.len(), 1);
    }

    #[test]
    fn signatures_clamp_stale_ages() {
        let mut rank = RankState::default();
        let t_ras = Picos::from_ns(32.0);
        rank.apply_standard(BankId(0), SubarrayId(0), RowId(3), Picos::ZERO);
        rank.push_queue(Picos::ZERO);
        rank.push_queue(Picos::from_ns(100.0));
        let clock = Picos::from_ns(120.0);
        // The open entry is far past tRAS: age clamps to tRAS.
        assert_eq!(rank.bank_open_sig(clock, t_ras), vec![(0, 0, 3, t_ras)]);
        // The tRAS-stale queue entry is inert and omitted; the young one
        // appears as an age.
        assert_eq!(rank.queue_sig(clock, t_ras), vec![Picos::from_ns(20.0)]);
    }

    #[test]
    fn restore_open_round_trips() {
        let mut rank = RankState::default();
        let t_ras = Picos::from_ns(32.0);
        let clock = Picos::from_ns(50.0);
        rank.apply_standard(BankId(1), SubarrayId(2), RowId(3), Picos::from_ns(40.0));
        rank.apply_share(BankId(1), SubarrayId(4), RowId(0), Picos::from_ns(45.0));
        let banks = rank.bank_open_sig(clock, t_ras);
        let shares = rank.share_open_sig(clock, t_ras);
        let mut fresh = RankState::default();
        fresh.restore_open(&banks, &shares, clock);
        assert_eq!(fresh, rank);
    }

    #[test]
    fn analytic_model_charges_nothing() {
        let timing = TimingParams::ddr4_2400();
        let at = Picos::from_ns(100.0);
        let issue = AnalyticTiming.act_issue(
            at,
            ActClass::Conflict,
            Some(Picos::from_ns(99.0)),
            Some(Picos::from_ns(150.0)),
            &timing,
        );
        assert_eq!(issue.at, at, "analytic issue time is never delayed");
        assert!(issue.queue_stalled, "but the would-be stall is counted");
        assert_eq!(
            model_for(TimingBackend::Analytic).backend(),
            TimingBackend::Analytic
        );
        assert_eq!(
            model_for(TimingBackend::Banked).backend(),
            TimingBackend::Banked
        );
    }
}
