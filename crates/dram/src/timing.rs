//! DRAM timing parameter sets.
//!
//! The paper's Table 3 specifies DDR4-2400 with 17-17-17 timings, i.e.
//! tRCD = tRP = tCL = 17 clock cycles × 0.833 ns = 14.16 ns, and (§8.7) a
//! nominal tFAW of 13.328 ns. The 3D-stacked (HMC) configuration benefits
//! from faster row activation (§8.2 reports 3DS designs outperform DDR4 by
//! 38 % on average, i.e. activation phases take ≈ 1/1.38 of the DDR4 time).

use crate::units::Picos;
use std::fmt;

/// The timing parameters the simulator enforces.
///
/// All durations are integer picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// ACT-to-RD/WR delay, also the charge-share + sense phase of a row
    /// activation (the paper's tRCD).
    pub t_rcd: Picos,
    /// PRE-to-ACT delay (row precharge time).
    pub t_rp: Picos,
    /// Minimum time a row must stay open (ACT to PRE).
    pub t_ras: Picos,
    /// Four-activate window: at most four ACTs may issue within any window
    /// of this length per rank (paper §5.5, §8.7; nominal 13.328 ns).
    pub t_faw: Picos,
    /// Column access latency (CAS latency), used for RD data return.
    pub t_cl: Picos,
    /// Column-to-column delay between successive bursts.
    pub t_ccd: Picos,
    /// Data burst duration on the bus for one RD/WR command.
    pub t_burst: Picos,
    /// One hop of a LISA row-buffer-movement between adjacent subarrays.
    /// LISA's RBM performs paired activations across the isolation
    /// transistors; its per-row cost exceeds a precharge (this is what
    /// makes the GSA query latency strictly worse than BSA's, paper
    /// §5.2.2 / Table 1).
    pub t_lisa_hop: Picos,
    /// Scaling factor currently applied to `t_faw` (1.0 = nominal). Retained
    /// so that sensitivity studies can report the active setting.
    pub t_faw_scale_applied: f64,
}

impl TimingParams {
    /// DDR4-2400 17-17-17 (paper Table 3: "timings 17-17-17 (14.16 ns)").
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_rcd: Picos::from_ns(14.16),
            t_rp: Picos::from_ns(14.16),
            t_ras: Picos::from_ns(32.0),
            t_faw: Picos::from_ns(13.328),
            t_cl: Picos::from_ns(14.16),
            t_ccd: Picos::from_ns(4.166),   // tCCD_S = 4 tCK
            t_burst: Picos::from_ns(3.332), // BL8 @ 2400 MT/s
            t_lisa_hop: Picos::from_ns(16.0),
            t_faw_scale_applied: 1.0,
        }
    }

    /// HMC-like 3D-stacked timings. Row activation phases are scaled by
    /// 1/1.38 relative to DDR4 (§8.2: 3DS designs outperform their DDR4
    /// counterparts by 38 % on average due to HMC's faster row activations).
    pub fn hmc_3ds() -> Self {
        let f = 1.0 / 1.38;
        let ddr4 = TimingParams::ddr4_2400();
        TimingParams {
            t_rcd: ddr4.t_rcd.scale(f),
            t_rp: ddr4.t_rp.scale(f),
            t_ras: ddr4.t_ras.scale(f),
            t_faw: ddr4.t_faw.scale(f),
            t_cl: ddr4.t_cl.scale(f),
            t_ccd: ddr4.t_ccd.scale(f),
            t_burst: Picos::from_ns(0.25), // 32 B on a wide TSV interface
            t_lisa_hop: ddr4.t_lisa_hop.scale(f),
            t_faw_scale_applied: 1.0,
        }
    }

    /// Returns a copy with tFAW scaled to `scale` × nominal.
    ///
    /// `scale = 0.0` removes the constraint entirely (the paper's
    /// "tFAW = 0 s" unthrottled configuration, Table 3); `scale = 0.5` allows
    /// twice as many activations per unit time as nominal (§8.7).
    ///
    /// # Panics
    /// Panics if `scale` is negative or not finite.
    pub fn with_t_faw_scale(&self, scale: f64) -> Self {
        let mut t = self.clone();
        t.t_faw = t
            .t_faw
            .scale(scale / self.t_faw_scale_applied.max(f64::MIN_POSITIVE));
        // Recompute from the nominal value to avoid compounding rounding.
        let nominal = self
            .t_faw
            .scale(1.0 / self.t_faw_scale_applied.max(f64::MIN_POSITIVE));
        t.t_faw = nominal.scale(scale);
        t.t_faw_scale_applied = scale;
        t
    }

    /// Whether the four-activate window is currently enforced.
    pub fn t_faw_enabled(&self) -> bool {
        self.t_faw > Picos::ZERO
    }

    /// Latency of one full ACT + PRE cycle (the paper's per-element sweep
    /// step for pLUTo-BSA: tRCD + tRP).
    pub fn act_pre_cycle(&self) -> Picos {
        self.t_rcd + self.t_rp
    }

    /// Latency to read one full row out over the bus after activation
    /// (bursts pipelined at tCCD).
    pub fn row_readout(&self, bursts: usize) -> Picos {
        if bursts == 0 {
            return Picos::ZERO;
        }
        self.t_cl + self.t_ccd.times(bursts as u64 - 1) + self.t_burst
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr4_2400()
    }
}

impl fmt::Display for TimingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tRCD={} tRP={} tRAS={} tFAW={}",
            self.t_rcd, self.t_rp, self.t_ras, self.t_faw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_matches_paper_table3() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.t_rcd, Picos::from_ps(14_160));
        assert_eq!(t.t_rp, Picos::from_ps(14_160));
        assert_eq!(t.t_faw, Picos::from_ps(13_328));
    }

    #[test]
    fn act_pre_cycle_is_sum() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.act_pre_cycle(), Picos::from_ps(28_320));
    }

    #[test]
    fn hmc_is_38_percent_faster_activation() {
        let d = TimingParams::ddr4_2400();
        let h = TimingParams::hmc_3ds();
        let ratio = d.t_rcd.as_ns() / h.t_rcd.as_ns();
        assert!((ratio - 1.38).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn t_faw_scaling() {
        let t = TimingParams::ddr4_2400();
        let half = t.with_t_faw_scale(0.5);
        assert_eq!(half.t_faw, Picos::from_ps(6_664));
        assert!(half.t_faw_enabled());
        let off = t.with_t_faw_scale(0.0);
        assert_eq!(off.t_faw, Picos::ZERO);
        assert!(!off.t_faw_enabled());
        // Scaling an already-scaled set recovers from the nominal value.
        let back = half.with_t_faw_scale(1.0);
        assert_eq!(back.t_faw, t.t_faw);
    }

    #[test]
    fn row_readout_pipelines_bursts() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.row_readout(0), Picos::ZERO);
        let one = t.row_readout(1);
        let two = t.row_readout(2);
        assert_eq!(two - one, t.t_ccd);
    }
}
