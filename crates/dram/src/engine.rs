//! The command-level DRAM simulation engine.
//!
//! [`Engine`] couples the functional array model with the timing and energy
//! models: every operation mutates data exactly as the hardware would *and*
//! advances the simulated clock / energy accumulators according to the
//! command sequence it implies. This mirrors the paper's methodology (§7.1:
//! "Our simulator estimates the performance of pLUTo operations by parsing
//! the sequence of memory commands required to perform them and enforcing
//! the memory's timing parameters"), with the addition of bit-accurate data.
//!
//! The engine is *serial*: commands execute one after another. Overlapped
//! execution across subarrays (SALP) is modeled by [`crate::schedule`],
//! which computes the parallel makespan for the same command streams. Energy
//! is unaffected by parallelism (paper §8.3), so the engine's accumulator is
//! authoritative in both cases.

use crate::array::{MemoryArray, RowBuffer};
use crate::command::{Command, SweepStepKind};
use crate::energy::EnergyModel;
use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, RowId, RowLoc, SubarrayId};
use crate::stats::CommandStats;
use crate::timing::TimingParams;
use crate::timing_model::{
    model_for, ActClass, RankState, TimingBackend, TimingSig, ACT_QUEUE_DEPTH,
};
use crate::units::{PicoJoules, Picos};
use std::collections::VecDeque;
use std::sync::Arc;

/// Command-level DRAM simulator with functional, timing, and energy models.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: DramConfig,
    timing: TimingParams,
    energy_model: EnergyModel,
    array: MemoryArray,
    clock: Picos,
    command_energy: PicoJoules,
    stats: CommandStats,
    /// Issue timestamps of the last four activations (tFAW window, per rank;
    /// the paper's configurations are single-rank).
    act_window: VecDeque<Picos>,
    /// Which timing backend resolves activation issue times (see
    /// `DESIGN.md` §11). [`TimingBackend::Analytic`] by default.
    backend: TimingBackend,
    /// Row-buffer and command-queue tracking state, maintained
    /// identically under both backends.
    rank: RankState,
    /// Optional command trace (off by default; enable for golden tests).
    trace: Option<Vec<Command>>,
    /// Active cost-tape recorder (see [`Engine::begin_tape`]); `None`
    /// outside a capture.
    recorder: Option<TapeRecorder>,
}

impl Engine {
    /// Creates an engine with the timing/energy models matching `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        let timing = match cfg.kind {
            crate::geometry::MemoryKind::Ddr4 => TimingParams::ddr4_2400(),
            crate::geometry::MemoryKind::Stacked3d => TimingParams::hmc_3ds(),
        };
        let energy_model = EnergyModel::for_config(&cfg);
        Engine {
            array: MemoryArray::new(cfg.clone()),
            cfg,
            timing,
            energy_model,
            clock: Picos::ZERO,
            command_energy: PicoJoules::ZERO,
            stats: CommandStats::new(),
            act_window: VecDeque::with_capacity(4),
            backend: TimingBackend::default(),
            rank: RankState::default(),
            trace: None,
            recorder: None,
        }
    }

    /// Creates an engine with explicit timing/energy models (e.g. a scaled
    /// tFAW for the paper's Fig. 13 sensitivity study).
    pub fn with_models(cfg: DramConfig, timing: TimingParams, energy: EnergyModel) -> Self {
        Engine {
            array: MemoryArray::new(cfg.clone()),
            cfg,
            timing,
            energy_model: energy,
            clock: Picos::ZERO,
            command_energy: PicoJoules::ZERO,
            stats: CommandStats::new(),
            act_window: VecDeque::with_capacity(4),
            backend: TimingBackend::default(),
            rank: RankState::default(),
            trace: None,
            recorder: None,
        }
    }

    /// Selects the timing backend (builder-style; see `DESIGN.md` §11).
    /// Must be called on a pristine engine — switching backends
    /// mid-stream would mix two models' issue decisions in one clock.
    #[must_use]
    pub fn with_timing_backend(mut self, backend: TimingBackend) -> Self {
        debug_assert!(
            self.clock == Picos::ZERO && self.stats == CommandStats::new(),
            "select the timing backend before issuing commands"
        );
        self.backend = backend;
        self
    }

    /// The timing backend resolving this engine's activation issue times.
    pub fn timing_backend(&self) -> TimingBackend {
        self.backend
    }

    /// Enables command tracing. Traced commands are retrievable with
    /// [`Engine::take_trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes and clears the accumulated trace (empty if tracing disabled).
    pub fn take_trace(&mut self) -> Vec<Command> {
        self.trace
            .take()
            .map(|t| {
                self.trace = Some(Vec::new());
                t
            })
            .unwrap_or_default()
    }

    /// The geometry this engine simulates.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Read-only access to the functional array.
    pub fn array(&self) -> &MemoryArray {
        &self.array
    }

    /// Simulated time elapsed since construction (or the last reset).
    pub fn elapsed(&self) -> Picos {
        self.clock
    }

    /// Dynamic (per-command) energy consumed so far.
    pub fn command_energy(&self) -> PicoJoules {
        self.command_energy
    }

    /// Total energy: dynamic command energy plus background power
    /// integrated over elapsed time.
    pub fn total_energy(&self) -> PicoJoules {
        let background_pj = self.energy_model.background_watts * self.clock.as_secs() * 1e12;
        self.command_energy + PicoJoules::from_pj(background_pj)
    }

    /// Command counters.
    pub fn stats(&self) -> CommandStats {
        self.stats
    }

    /// Rewinds the simulated clock to `to` (a timestamp at or before the
    /// current clock; later values are a no-op), dropping tFAW-window
    /// entries issued after it.
    ///
    /// Together with [`Engine::advance_clock_to`] this models **parallel
    /// command lanes**: command streams that execute simultaneously in
    /// different subarrays (the paper's §5.6 partitioned LUT sweep) but
    /// are *issued* serially by the simulator. The caller records the
    /// region's start time, rewinds to it before issuing each lane, and
    /// finally advances to the slowest lane's end time. Energy and
    /// command counters are untouched — they keep accumulating across
    /// lanes, which is exactly the §5.6 semantics (latency does not
    /// increase, energy multiplies by the lane count).
    ///
    /// tFAW entries issued inside an abandoned lane are dropped rather
    /// than carried across lanes: the four-activation window is modeled
    /// per lane, a deliberate simplification of the rank-global window
    /// for overlapped subarray streams (see `crate::schedule` for the
    /// SALP treatment of the same question). The boundary is strict: an
    /// ACT issued *exactly at* `to` belongs to the abandoned lane (a
    /// lane's first ACT can issue at the region start, but every
    /// pre-region ACT issued strictly before it), so it is dropped too.
    /// The same strict rule drops row-buffer and command-queue records
    /// from `to` onward.
    pub fn rewind_clock(&mut self, to: Picos) {
        // A clock rewind is not expressible as a translation-invariant
        // cost delta, so it invalidates any capture in progress.
        self.recorder = None;
        if to >= self.clock {
            return;
        }
        self.clock = to;
        self.act_window.retain(|&t| t < to);
        self.rank.rewind(to);
    }

    /// Advances the simulated clock to `to` without issuing commands or
    /// consuming energy (earlier values are a no-op) — closing a
    /// parallel-lane region at its slowest lane's end time (see
    /// [`Engine::rewind_clock`]).
    pub fn advance_clock_to(&mut self, to: Picos) {
        // An absolute-time jump (like a rewind) cannot be replayed as a
        // relative delta; drop any capture in progress.
        self.recorder = None;
        if to > self.clock {
            self.clock = to;
        }
    }

    /// Resets clock, energy, and counters (array contents are preserved).
    pub fn reset_accounting(&mut self) {
        self.recorder = None;
        self.clock = Picos::ZERO;
        self.command_energy = PicoJoules::ZERO;
        self.stats = CommandStats::new();
        self.act_window.clear();
        self.rank.clear();
    }

    fn record(&mut self, cmd: Command) {
        if let Some(t) = self.trace.as_mut() {
            t.push(cmd);
        }
    }

    /// The earliest tFAW-legal issue time at the current clock.
    fn faw_slot(&self) -> Picos {
        let mut at = self.clock;
        if self.timing.t_faw_enabled() && self.act_window.len() >= 4 {
            let fourth_back = self.act_window[self.act_window.len() - 4];
            let earliest = fourth_back + self.timing.t_faw;
            at = at.max(earliest);
        }
        at
    }

    /// Records an issued ACT in the tFAW window (and, when `classified`,
    /// in the bounded command queue), mirroring both into an active
    /// tape recorder.
    fn push_act(&mut self, at: Picos, classified: bool) {
        self.act_window.push_back(at);
        while self.act_window.len() > 4 {
            self.act_window.pop_front();
        }
        if classified {
            self.rank.push_queue(at);
        }
        if let Some(rec) = self.recorder.as_mut() {
            rec.acts += 1;
            rec.act_tail.push(at - rec.entry_clock);
            if rec.act_tail.len() > 4 {
                rec.act_tail.remove(0);
            }
            if classified {
                rec.queued += 1;
                rec.queue_tail.push(at - rec.entry_clock);
                if rec.queue_tail.len() > ACT_QUEUE_DEPTH {
                    rec.queue_tail.remove(0);
                }
            }
        }
    }

    /// Reserves an activation slot for a compound, classification-exempt
    /// command (RowClone, TRA, DRISA shifts — internally
    /// precharge-terminated, bypassing both row buffers and the command
    /// queue): returns the issue time respecting tFAW, and records the
    /// issue in the window.
    fn issue_act(&mut self) -> Picos {
        let at = self.faw_slot();
        self.push_act(at, false);
        at
    }

    /// Issues one row-buffer-classified activation through the timing
    /// backend: tFAW gate, hit/miss/conflict classification against the
    /// tracked rank state, then the backend's conflict and queue policy.
    /// `sweep` is `None` for standard activations (bank-level row
    /// buffer) and the step kind for pLUTo sweeps (subarray-local sense
    /// amps — see `crate::timing_model` for the geometry rules).
    fn issue_act_classified(&mut self, loc: RowLoc, sweep: Option<SweepStepKind>) -> Picos {
        let at = self.faw_slot();
        let (class, conflict_open) = match sweep {
            None => self.rank.classify_standard(loc.bank, loc.subarray, loc.row),
            Some(SweepStepKind::ChargeShare) => {
                (self.rank.classify_share(loc.bank, loc.subarray), None)
            }
            Some(SweepStepKind::FullCycle) => (ActClass::Miss, None),
        };
        let queue_gate = self.rank.queue_gate(self.timing.t_ras);
        let issue =
            model_for(self.backend).act_issue(at, class, conflict_open, queue_gate, &self.timing);
        match class {
            ActClass::Hit => self.stats.row_hits += 1,
            ActClass::Miss => self.stats.row_misses += 1,
            ActClass::Conflict => self.stats.row_conflicts += 1,
        }
        if issue.queue_stalled {
            self.stats.queue_stalls += 1;
        }
        self.push_act(issue.at, true);
        match sweep {
            None => self
                .rank
                .apply_standard(loc.bank, loc.subarray, loc.row, issue.at),
            Some(SweepStepKind::ChargeShare) => {
                self.rank
                    .apply_share(loc.bank, loc.subarray, loc.row, issue.at)
            }
            // A full ACT+PRE cycle leaves nothing open.
            Some(SweepStepKind::FullCycle) => {}
        }
        issue.at
    }

    fn spend(&mut self, duration: Picos, energy: PicoJoules) {
        if let Some(rec) = self.recorder.as_mut() {
            // Fold any forward clock jump since the previous spend (a
            // tFAW-throttled ACT issue) into this op's delta: the two
            // u64 additions associate, so replaying the combined delta
            // lands on exactly the clock the issuing path reaches.
            let delta = (self.clock - rec.last_clock) + duration;
            rec.last_clock = self.clock + duration;
            rec.spends += 1;
            match rec.ops.last_mut() {
                Some(op)
                    if op.delta == delta
                        && op.energy.as_pj().to_bits() == energy.as_pj().to_bits() =>
                {
                    op.repeat += 1
                }
                _ => rec.ops.push(TapeOp {
                    delta,
                    energy,
                    repeat: 1,
                }),
            }
        }
        self.clock += duration;
        self.command_energy += energy;
    }

    // ------------------------------------------------------------------
    // Standard commands
    // ------------------------------------------------------------------

    /// ACT: open `loc` (tRCD; `E_ACT`).
    ///
    /// # Errors
    /// Fails on out-of-bounds locations or if the subarray already has an
    /// open row.
    pub fn activate(&mut self, loc: RowLoc) -> Result<(), DramError> {
        self.array.activate(loc, false)?;
        let at = self.issue_act_classified(loc, None);
        self.clock = at;
        self.spend(self.timing.t_rcd, self.energy_model.e_act);
        self.stats.activates += 1;
        self.record(Command::Activate(loc));
        Ok(())
    }

    /// PRE: close the open row (tRP; `E_PRE`). Idempotent on a precharged
    /// subarray (real controllers may issue redundant PREs).
    ///
    /// # Errors
    /// Fails on out-of-bounds bank/subarray.
    pub fn precharge(&mut self, bank: BankId, subarray: SubarrayId) -> Result<(), DramError> {
        let probe = RowLoc {
            bank,
            subarray,
            row: RowId(0),
        };
        if !self.cfg.contains(probe) {
            return Err(DramError::OutOfBounds { loc: probe });
        }
        self.array.precharge(bank, subarray);
        self.rank.close(bank, subarray);
        self.spend(self.timing.t_rp, self.energy_model.e_pre);
        self.stats.precharges += 1;
        self.record(Command::Precharge(bank, subarray));
        Ok(())
    }

    /// Returns the latched row-buffer contents of a subarray.
    ///
    /// # Errors
    /// Fails if the subarray has no latched contents.
    pub fn row_buffer(&self, bank: BankId, subarray: SubarrayId) -> Result<&RowBuffer, DramError> {
        self.array
            .buffer(bank, subarray)
            .filter(|b| b.latched)
            .ok_or(DramError::NoOpenRow { bank, subarray })
    }

    /// Host read of a full row over the memory bus: ACT + RD bursts + PRE.
    /// Returns the row contents.
    ///
    /// # Errors
    /// Fails on out-of-bounds locations or an already-open row.
    pub fn read_row(&mut self, loc: RowLoc) -> Result<Vec<u8>, DramError> {
        self.activate(loc)?;
        let bursts = self.cfg.bursts_per_row();
        let data = self
            .array
            .buffer(loc.bank, loc.subarray)
            .unwrap()
            .data
            .clone();
        self.spend(
            self.timing.row_readout(bursts),
            self.energy_model.e_rd_burst.times(bursts as u64),
        );
        self.stats.read_bursts += bursts as u64;
        for _ in 0..bursts.min(1) {
            self.record(Command::ReadBurst(loc.bank, loc.subarray));
        }
        self.precharge(loc.bank, loc.subarray)?;
        Ok(data)
    }

    /// Host write of a full row over the memory bus: ACT + WR bursts + PRE.
    ///
    /// # Errors
    /// Fails on out-of-bounds locations, an already-open row, or mismatched
    /// data length.
    pub fn write_row(&mut self, loc: RowLoc, data: &[u8]) -> Result<(), DramError> {
        if data.len() != self.cfg.row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: self.cfg.row_bytes,
                actual: data.len(),
            });
        }
        self.activate(loc)?;
        self.array.write_buffer(loc.bank, loc.subarray, 0, data)?;
        let bursts = self.cfg.bursts_per_row();
        self.spend(
            self.timing.row_readout(bursts),
            self.energy_model.e_wr_burst.times(bursts as u64),
        );
        self.stats.write_bursts += bursts as u64;
        self.record(Command::WriteBurst(loc.bank, loc.subarray));
        self.precharge(loc.bank, loc.subarray)?;
        Ok(())
    }

    /// Zero-cost backdoor for test/workload setup: writes a row without
    /// advancing time or energy (models data already resident in DRAM).
    ///
    /// # Errors
    /// Fails on out-of-bounds or mismatched length.
    pub fn poke_row(&mut self, loc: RowLoc, data: &[u8]) -> Result<(), DramError> {
        self.array.set_row(loc, data)
    }

    /// Zero-cost backdoor: reads a row without advancing time or energy.
    ///
    /// # Errors
    /// Fails on out-of-bounds locations.
    pub fn peek_row(&self, loc: RowLoc) -> Result<Vec<u8>, DramError> {
        self.array.row(loc)
    }

    /// Zero-cost backdoor: reads a row into a caller-owned buffer without
    /// advancing time or energy (the allocation-free sibling of
    /// [`Engine::peek_row`], used by the word-parallel query hot path).
    ///
    /// # Errors
    /// Fails on out-of-bounds locations.
    pub fn peek_row_into(&self, loc: RowLoc, out: &mut Vec<u8>) -> Result<(), DramError> {
        self.array.read_row_into(loc, out)
    }

    /// Zero-cost backdoor: bulk row fill from shared packed rows — row
    /// `first + i` becomes `rows[i]` as a copy-on-write handle, with
    /// repeat loads of an unchanged table skipped entirely (see
    /// [`MemoryArray::set_rows_shared`]). This is how a cached segment
    /// pack lands in DRAM without re-copying a byte.
    ///
    /// # Errors
    /// Fails on out-of-bounds ranges or mismatched row lengths.
    pub fn poke_rows_shared(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        first: RowId,
        rows: &[Arc<Vec<u8>>],
    ) -> Result<(), DramError> {
        self.array.set_rows_shared(bank, subarray, first, rows)
    }

    /// Zero-cost backdoor: reverts rows to the never-written state (read
    /// as zeros) — models the aftermath of destructive charge-share reads
    /// whose cost was already charged by the sweep itself.
    ///
    /// # Errors
    /// Fails on out-of-bounds ranges.
    pub fn poke_clear_rows(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        self.array.clear_rows(bank, subarray, first, count)
    }

    // ------------------------------------------------------------------
    // Enhanced-DRAM commands (paper §2.2)
    // ------------------------------------------------------------------

    /// RowClone-FPM: intra-subarray row copy via back-to-back activations
    /// (ACT src, ACT dst, PRE). Latency 2·tRCD + tRP; energy 2·E_ACT + E_PRE.
    ///
    /// # Errors
    /// Fails if the rows are in different subarrays or out of bounds.
    pub fn row_clone_fpm(&mut self, src: RowLoc, dst_row: RowId) -> Result<(), DramError> {
        let dst = RowLoc {
            bank: src.bank,
            subarray: src.subarray,
            row: dst_row,
        };
        if !self.cfg.contains(src) {
            return Err(DramError::OutOfBounds { loc: src });
        }
        if !self.cfg.contains(dst) {
            return Err(DramError::OutOfBounds { loc: dst });
        }
        self.array.activate(src, false)?;
        self.array.activate_into(dst)?;
        self.array.precharge(src.bank, src.subarray);
        let at = self.issue_act();
        self.clock = at;
        // Second ACT also occupies a tFAW slot.
        let _ = self.issue_act();
        self.spend(
            self.timing.t_rcd.times(2) + self.timing.t_rp,
            self.energy_model.e_act.times(2) + self.energy_model.e_pre,
        );
        self.stats.activates += 2;
        self.stats.precharges += 1;
        self.stats.row_clones += 1;
        self.record(Command::RowCloneFpm { src, dst_row });
        Ok(())
    }

    /// Ambit dual-contact-cell (DCC) negating copy: clones `src` onto
    /// `dst_row` of the same subarray with every bit complemented
    /// (Seshadri et al. use DCC rows to implement in-DRAM NOT). Costs the
    /// same ACT-ACT-PRE sequence as RowClone-FPM.
    ///
    /// # Errors
    /// Fails if either row is out of bounds.
    pub fn row_clone_dcc(&mut self, src: RowLoc, dst_row: RowId) -> Result<(), DramError> {
        let dst = RowLoc {
            bank: src.bank,
            subarray: src.subarray,
            row: dst_row,
        };
        if !self.cfg.contains(src) {
            return Err(DramError::OutOfBounds { loc: src });
        }
        if !self.cfg.contains(dst) {
            return Err(DramError::OutOfBounds { loc: dst });
        }
        let negated: Vec<u8> = self.array.row(src)?.iter().map(|b| !b).collect();
        self.array.set_row(dst, &negated)?;
        let at = self.issue_act();
        self.clock = at;
        let _ = self.issue_act();
        self.spend(
            self.timing.t_rcd.times(2) + self.timing.t_rp,
            self.energy_model.e_act.times(2) + self.energy_model.e_pre,
        );
        self.stats.activates += 2;
        self.stats.precharges += 1;
        self.stats.row_clones += 1;
        self.record(Command::RowCloneFpm { src, dst_row });
        Ok(())
    }

    /// LISA-RBM: move `from`'s latched row buffer to `to`'s row buffer
    /// (writes through to `to`'s open row if any). Cost is one hop per
    /// subarray crossed.
    ///
    /// # Errors
    /// Fails if `from == to` or `from` has no latched contents.
    pub fn lisa_rbm(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        to: SubarrayId,
    ) -> Result<(), DramError> {
        self.array.lisa_rbm(bank, from, to)?;
        let hops = from.0.abs_diff(to.0) as u64;
        self.spend(
            self.timing.t_lisa_hop.times(hops),
            self.energy_model.e_lisa_hop.times(hops),
        );
        self.stats.lisa_hops += hops;
        self.record(Command::LisaRbm { bank, from, to });
        Ok(())
    }

    /// Zero-cost functional deposit of data into a subarray's row buffer,
    /// modeling a pLUTo FF buffer (or gated sense amplifiers) driving the
    /// LISA links. The buffer becomes latched; no open row is implied and
    /// no time or energy is charged (the cost sits in the subsequent
    /// [`Engine::lisa_rbm_to_row`]).
    ///
    /// # Errors
    /// Fails on out-of-bounds subarrays or mismatched data length.
    pub fn deposit_buffer(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        data: &[u8],
    ) -> Result<(), DramError> {
        let probe = RowLoc {
            bank,
            subarray,
            row: RowId(0),
        };
        if !self.cfg.contains(probe) {
            return Err(DramError::OutOfBounds { loc: probe });
        }
        if data.len() != self.cfg.row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: self.cfg.row_bytes,
                actual: data.len(),
            });
        }
        self.array.deposit_buffer(bank, subarray, data);
        Ok(())
    }

    /// LISA-RBM variant that *commits* the moved row buffer into a specific
    /// destination row (the RBM operation activates the destination row as
    /// part of the movement; its published per-row cost covers the whole
    /// transfer, which is why no separate ACT is charged — see paper Table 1
    /// where GSA reload costs exactly `LISA_RBM × N`).
    ///
    /// # Errors
    /// Fails if `from == to`, `from` has no latched contents, or `dst_row`
    /// is out of bounds.
    pub fn lisa_rbm_to_row(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        to: SubarrayId,
        dst_row: RowId,
    ) -> Result<(), DramError> {
        let dst = RowLoc {
            bank,
            subarray: to,
            row: dst_row,
        };
        if !self.cfg.contains(dst) {
            return Err(DramError::OutOfBounds { loc: dst });
        }
        self.array.lisa_rbm(bank, from, to)?;
        let data = self
            .array
            .buffer(bank, to)
            .expect("lisa_rbm latched destination")
            .data
            .clone();
        self.array.set_row(dst, &data)?;
        let hops = from.0.abs_diff(to.0) as u64;
        self.spend(
            self.timing.t_lisa_hop.times(hops),
            self.energy_model.e_lisa_hop.times(hops),
        );
        self.stats.lisa_hops += hops;
        self.record(Command::LisaRbm { bank, from, to });
        Ok(())
    }

    /// Ambit triple-row activation (one ACT asserting three wordlines, plus
    /// PRE). The three rows and the row buffer settle to bitwise majority.
    /// Energy is 1.5 × E_ACT (three wordlines, shared bitline swing) + E_PRE.
    ///
    /// # Errors
    /// Fails if any row is out of bounds.
    pub fn triple_row_activate(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        rows: [RowId; 3],
    ) -> Result<(), DramError> {
        self.array.triple_row_activate(bank, subarray, rows)?;
        self.array.precharge(bank, subarray);
        let at = self.issue_act();
        self.clock = at;
        self.spend(
            self.timing.t_rcd + self.timing.t_rp,
            self.energy_model.e_act * 1.5 + self.energy_model.e_pre,
        );
        self.stats.activates += 1;
        self.stats.precharges += 1;
        self.stats.triple_acts += 1;
        self.record(Command::TripleRowActivate {
            bank,
            subarray,
            rows,
        });
        Ok(())
    }

    /// DRISA-style in-DRAM shift of a row. DRISA shifts 1 or 8 bits per
    /// ACT-ACT-PRE sequence (paper §2.2); an arbitrary `amount` is composed
    /// of `amount / 8` byte-steps plus `amount % 8` bit-steps.
    ///
    /// # Errors
    /// Fails on out-of-bounds locations.
    pub fn shift_row(&mut self, loc: RowLoc, left: bool, amount: u32) -> Result<(), DramError> {
        if !self.cfg.contains(loc) {
            return Err(DramError::OutOfBounds { loc });
        }
        let byte_steps = (amount / 8) as u64;
        let bit_steps = (amount % 8) as u64;
        let steps = byte_steps + bit_steps;
        if steps == 0 {
            return Ok(());
        }
        self.array.shift_row_bits(loc, left, amount)?;
        // Each step costs one ACT-ACT-PRE sequence (like RowClone).
        let per_step_t = self.timing.t_rcd.times(2) + self.timing.t_rp;
        let per_step_e = self.energy_model.e_act.times(2) + self.energy_model.e_pre;
        for _ in 0..steps {
            let at = self.issue_act();
            self.clock = at;
            let _ = self.issue_act();
            self.spend(per_step_t, per_step_e);
        }
        self.stats.activates += 2 * steps;
        self.stats.precharges += steps;
        self.record(Command::Activate(loc)); // summarized in trace
        Ok(())
    }

    // ------------------------------------------------------------------
    // pLUTo sweep steps (paper §5)
    // ------------------------------------------------------------------

    /// One step of a pLUTo Row Sweep.
    ///
    /// * [`SweepStepKind::FullCycle`] (BSA): full ACT + PRE per step —
    ///   latency tRCD + tRP, energy E_ACT + E_PRE; the row buffer holds the
    ///   activated row's contents and the subarray ends precharged.
    /// * [`SweepStepKind::ChargeShare`] (GSA/GMC): activation only — latency
    ///   tRCD, energy `e_charge_share`; back-to-back steps are allowed and
    ///   the subarray stays open until [`Engine::precharge`].
    ///
    /// # Errors
    /// Fails on out-of-bounds locations.
    pub fn sweep_step(&mut self, loc: RowLoc, kind: SweepStepKind) -> Result<(), DramError> {
        if !self.cfg.contains(loc) {
            return Err(DramError::OutOfBounds { loc });
        }
        self.array.activate(loc, true)?;
        let at = self.issue_act_classified(loc, Some(kind));
        self.clock = at;
        match kind {
            SweepStepKind::FullCycle => {
                self.array.precharge(loc.bank, loc.subarray);
                self.spend(
                    self.timing.act_pre_cycle(),
                    self.energy_model.act_pre_cycle(),
                );
            }
            SweepStepKind::ChargeShare => {
                self.spend(self.timing.t_rcd, self.energy_model.e_charge_share);
            }
        }
        self.stats.activates += 1;
        if kind == SweepStepKind::FullCycle {
            self.stats.precharges += 1;
        }
        self.stats.sweep_steps += 1;
        self.record(Command::SweepStep { loc, kind });
        Ok(())
    }

    /// Batched Row Sweep over `count` consecutive rows starting at `first`:
    /// clock, energy, counters, tFAW interaction, and trace are identical
    /// to `count` individual [`Engine::sweep_step`] calls (the per-step
    /// accounting loop is kept verbatim so `f64` energy accumulates in the
    /// same order), but the functional row-buffer work — a row-sized
    /// memcpy per step in the serial loop — collapses to a single latch of
    /// the last swept row, which is the only intermediate state the serial
    /// loop leaves observable.
    ///
    /// # Errors
    /// Fails if the row range is out of bounds (checked up front; a
    /// partially out-of-range sweep issues no commands at all, unlike the
    /// step-at-a-time loop).
    pub fn sweep_rows(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        first: RowId,
        count: usize,
        kind: SweepStepKind,
    ) -> Result<(), DramError> {
        if count == 0 {
            return Ok(());
        }
        let first_loc = RowLoc {
            bank,
            subarray,
            row: first,
        };
        if !self.cfg.contains(first_loc) {
            return Err(DramError::OutOfBounds { loc: first_loc });
        }
        let last = first.0 as usize + count - 1;
        if last > u16::MAX as usize {
            return Err(DramError::OutOfBounds { loc: first_loc });
        }
        let last_loc = RowLoc {
            bank,
            subarray,
            row: RowId(last as u16),
        };
        if !self.cfg.contains(last_loc) {
            return Err(DramError::OutOfBounds { loc: last_loc });
        }
        self.array.activate(last_loc, true)?;
        if kind == SweepStepKind::FullCycle {
            self.array.precharge(bank, subarray);
        }
        for i in 0..count {
            let at = self.issue_act_classified(
                RowLoc {
                    bank,
                    subarray,
                    row: RowId(first.0 + i as u16),
                },
                Some(kind),
            );
            self.clock = at;
            match kind {
                SweepStepKind::FullCycle => self.spend(
                    self.timing.act_pre_cycle(),
                    self.energy_model.act_pre_cycle(),
                ),
                SweepStepKind::ChargeShare => {
                    self.spend(self.timing.t_rcd, self.energy_model.e_charge_share)
                }
            }
            self.stats.activates += 1;
            if kind == SweepStepKind::FullCycle {
                self.stats.precharges += 1;
            }
            self.stats.sweep_steps += 1;
            if self.trace.is_some() {
                self.record(Command::SweepStep {
                    loc: RowLoc {
                        bank,
                        subarray,
                        row: RowId(first.0 + i as u16),
                    },
                    kind,
                });
            }
        }
        Ok(())
    }

    /// Batched GSA-style reload of `count` rows from `from` (the master
    /// copy, rows `from_first..`) into `to` (rows `to_first..`): clock,
    /// energy, counters, and trace are identical to the per-row
    /// deposit-buffer + [`Engine::lisa_rbm_to_row`] loop, but the
    /// functional transfer is a bulk copy-on-write handle copy plus one
    /// replay of the final movement, so both row buffers (and any
    /// write-through into `to`'s open row) end exactly as the serial loop
    /// leaves them.
    ///
    /// # Errors
    /// Fails if `from == to` or either row range is out of bounds (checked
    /// up front).
    pub fn lisa_reload_rows(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        from_first: RowId,
        to: SubarrayId,
        to_first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        if count == 0 {
            return Ok(());
        }
        self.validate_lisa_ranges(bank, from, from_first, to, to_first, count)?;
        self.array
            .copy_rows(bank, from, from_first, to, to_first, count)?;
        // Replay the last row's deposit + movement so buffer states (and a
        // write-through into `to`'s open row, which the serial loop would
        // overwrite once per row, last one winning) match the serial loop.
        let mut data = Vec::new();
        self.array.read_row_into(
            RowLoc {
                bank,
                subarray: from,
                row: RowId(from_first.0 + count as u16 - 1),
            },
            &mut data,
        )?;
        self.array.deposit_buffer(bank, from, &data);
        self.array.lisa_rbm(bank, from, to)?;
        self.spend_lisa_rows(bank, from, to, count);
        Ok(())
    }

    /// [`Engine::lisa_reload_rows`] with the functional restore elided:
    /// clock, energy, counters, and trace are identical, but no row
    /// handles move and no buffers are touched. For reloads whose restored
    /// contents are provably never observed — a GSA per-query reload
    /// inside a fused partitioned query, where the same composite
    /// operation destroys the rows again before returning. The destination
    /// rows keep whatever (destroyed) contents they had; buffer residue
    /// differs from the functional reload and is unspecified.
    ///
    /// # Errors
    /// Same conditions as [`Engine::lisa_reload_rows`].
    pub fn lisa_reload_rows_transient(
        &mut self,
        bank: BankId,
        from: SubarrayId,
        from_first: RowId,
        to: SubarrayId,
        to_first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        if count == 0 {
            return Ok(());
        }
        self.validate_lisa_ranges(bank, from, from_first, to, to_first, count)?;
        self.spend_lisa_rows(bank, from, to, count);
        Ok(())
    }

    fn validate_lisa_ranges(
        &self,
        bank: BankId,
        from: SubarrayId,
        from_first: RowId,
        to: SubarrayId,
        to_first: RowId,
        count: usize,
    ) -> Result<(), DramError> {
        if from == to {
            return Err(DramError::InvalidLisa { bank, from, to });
        }
        for (sa, first) in [(from, from_first), (to, to_first)] {
            let first_loc = RowLoc {
                bank,
                subarray: sa,
                row: first,
            };
            let last = first.0 as usize + count - 1;
            if !self.cfg.contains(first_loc) || last > u16::MAX as usize {
                return Err(DramError::OutOfBounds { loc: first_loc });
            }
            let last_loc = RowLoc {
                bank,
                subarray: sa,
                row: RowId(last as u16),
            };
            if !self.cfg.contains(last_loc) {
                return Err(DramError::OutOfBounds { loc: last_loc });
            }
        }
        Ok(())
    }

    /// The per-row cost loop shared by both reload flavours: one LISA
    /// movement per row, each spending `hops` hop costs.
    fn spend_lisa_rows(&mut self, bank: BankId, from: SubarrayId, to: SubarrayId, count: usize) {
        let hops = from.0.abs_diff(to.0) as u64;
        for _ in 0..count {
            self.spend(
                self.timing.t_lisa_hop.times(hops),
                self.energy_model.e_lisa_hop.times(hops),
            );
            self.stats.lisa_hops += hops;
            if self.trace.is_some() {
                self.record(Command::LisaRbm { bank, from, to });
            }
        }
    }

    // ------------------------------------------------------------------
    // Parallel-lane cost replay (§5.6 segment farming)
    // ------------------------------------------------------------------

    /// Snapshots the timing state into a detached [`LaneClock`] that can
    /// replay one parallel lane's command costs off-engine (e.g. on a
    /// `Cluster` worker thread). The lane starts at the current clock with
    /// the current tFAW window — the same state [`Engine::rewind_clock`]
    /// restores between serially-issued lanes — and accumulates its own
    /// energy and counter deltas for a later [`Engine::merge_lane`].
    pub fn fork_lane(&self) -> LaneClock {
        LaneClock {
            clock: self.clock,
            act_window: self.act_window.clone(),
            queue: self.rank.queue.clone(),
            backend: self.backend,
            open: None,
            share: None,
            timing: self.timing.clone(),
            energy_model: self.energy_model.clone(),
            energy: PicoJoules::ZERO,
            stats: CommandStats::new(),
        }
    }

    /// Folds a finished lane back in with §5.6 semantics: the clock
    /// advances to the lane's end if it is the slowest so far, energy and
    /// command counters sum unconditionally. Energy is added as one lane
    /// subtotal, so a farmed query's energy can differ from the serially
    /// issued stream by float-summation reassociation (deterministic for
    /// a fixed lane split, but not bit-identical).
    pub fn merge_lane(&mut self, outcome: &LaneOutcome) {
        self.advance_clock_to(outcome.end);
        self.command_energy += outcome.energy;
        self.stats.merge(&outcome.stats);
    }

    // ------------------------------------------------------------------
    // Compiled cost tapes (plan-cache replay, DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Whether command tracing is currently enabled (traced command
    /// streams are per-issue, so a recorded cost tape cannot stand in for
    /// them — plan replay must fall back to full issuance).
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether the tFAW window can no longer throttle any future ACT: every
    /// recorded activation is at least `t_faw` in the past (or the window
    /// is disabled). Equivalent to an empty window *signature* — an aged
    /// entry occupies a window slot but its `t + t_faw` bound lies in the
    /// past, so it can never delay an ACT and is indistinguishable from an
    /// absent one.
    pub fn tfaw_window_inert(&self) -> bool {
        !self.timing.t_faw_enabled()
            || self
                .act_window
                .iter()
                .all(|&t| t + self.timing.t_faw <= self.clock)
    }

    /// Ages (`now − issue time`, oldest first) of the tFAW-window entries
    /// that can still throttle a future ACT; empty when the window is
    /// inert or tFAW is disabled. Two engine states with equal signatures
    /// throttle any identical future command stream identically, which is
    /// the replay-legality contract of [`CostTape::replayable_from`].
    fn tfaw_window_signature(&self) -> Vec<Picos> {
        if !self.timing.t_faw_enabled() {
            return Vec::new();
        }
        self.act_window
            .iter()
            .filter(|&&t| t + self.timing.t_faw > self.clock)
            .map(|&t| self.clock - t)
            .collect()
    }

    /// Allocation-free comparison of the current window signature against
    /// a recorded one (the replay hot path checks this per query).
    fn tfaw_window_signature_matches(&self, sig: &[Picos]) -> bool {
        if !self.timing.t_faw_enabled() {
            return sig.is_empty();
        }
        self.act_window
            .iter()
            .filter(|&&t| t + self.timing.t_faw > self.clock)
            .map(|&t| self.clock - t)
            .eq(sig.iter().copied())
    }

    /// The full timing-state signature at the current clock: tFAW window
    /// plus the rank's command-queue and open-row state.
    fn timing_signature(&self) -> TimingSig {
        TimingSig {
            faw: self.tfaw_window_signature(),
            queue: self.rank.queue_sig(self.clock, self.timing.t_ras),
            bank_open: self.rank.bank_open_sig(self.clock, self.timing.t_ras),
            share_open: self.rank.share_open_sig(self.clock, self.timing.t_ras),
        }
    }

    /// Allocation-free comparison of the full timing-state signature
    /// (replay-legality check, per query on the hot path).
    fn timing_signature_matches(&self, sig: &TimingSig) -> bool {
        self.tfaw_window_signature_matches(&sig.faw)
            && self.rank.matches_sig(sig, self.clock, self.timing.t_ras)
    }

    /// Starts recording a cost tape at the current clock: every subsequent
    /// costed command appends its clock/energy delta (run-length
    /// compressed) until [`Engine::end_tape`]. The entry state's tFAW
    /// window signature is recorded on the tape, and replay is only legal
    /// from a state with the identical signature
    /// ([`CostTape::replayable_from`]). A capture in progress is dropped
    /// by any absolute-time mutation ([`Engine::rewind_clock`],
    /// [`Engine::advance_clock_to`], [`Engine::reset_accounting`],
    /// [`Engine::merge_lane`]) — `end_tape` then returns `None` and the
    /// caller falls back to uncached issuance. Beginning a new capture
    /// discards any previous one.
    pub fn begin_tape(&mut self) {
        self.recorder = Some(TapeRecorder {
            entry_clock: self.clock,
            last_clock: self.clock,
            entry_stats: self.stats,
            entry_sig: self.timing_signature(),
            ops: Vec::new(),
            marks: Vec::new(),
            spends: 0,
            acts: 0,
            act_tail: Vec::new(),
            queued: 0,
            queue_tail: Vec::new(),
        });
    }

    /// Records a phase boundary on the active tape (a no-op outside a
    /// capture): [`Engine::apply_replayed`] returns one `(clock, energy)`
    /// snapshot per mark, in order, letting callers reconstruct per-phase
    /// cost breakdowns without re-issuing commands.
    pub fn mark_tape_phase(&mut self) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.marks.push(rec.spends);
        }
    }

    /// Finishes the active capture and returns the tape, or `None` if no
    /// capture is active (never started, or dropped by an absolute-time
    /// mutation — see [`Engine::begin_tape`]).
    pub fn end_tape(&mut self) -> Option<CostTape> {
        let end_bank_open = self.rank.bank_open_sig(self.clock, self.timing.t_ras);
        let end_share_open = self.rank.share_open_sig(self.clock, self.timing.t_ras);
        self.recorder.take().map(|rec| CostTape {
            ops: rec.ops,
            marks: rec.marks,
            stats: self.stats.since(&rec.entry_stats),
            entry_sig: rec.entry_sig,
            acts: rec.acts,
            act_tail: rec.act_tail,
            queued: rec.queued,
            queue_tail: rec.queue_tail,
            end_bank_open,
            end_share_open,
            backend: self.backend,
        })
    }

    /// Discards any capture in progress without producing a tape.
    pub fn abort_tape(&mut self) {
        self.recorder = None;
    }

    /// Applies a recorded cost tape as if its command stream had been
    /// issued from the current clock: clock and energy advance through the
    /// identical sequence of additions the issuing path performs (so the
    /// end state is bit-identical), command counters merge, and the tFAW
    /// window is reconstructed from the tape's activation tail. Returns
    /// one `(clock, energy)` snapshot per recorded phase mark.
    ///
    /// Legality is the caller's contract:
    /// [`CostTape::replayable_from`] must hold (checked by
    /// `debug_assert`). Any capture in progress on *this* engine is
    /// dropped (a replayed delta has no per-command structure to
    /// re-record).
    pub fn apply_replayed(&mut self, tape: &CostTape) -> Vec<(Picos, PicoJoules)> {
        debug_assert!(
            tape.replayable_from(self),
            "cost-tape replay across backends or from a state with a different timing signature"
        );
        self.recorder = None;
        let entry = self.clock;
        let mut snapshots = Vec::with_capacity(tape.marks.len());
        let mut next_mark = tape.marks.iter().copied();
        let mut pending = next_mark.next();
        let mut done = 0u64;
        while pending == Some(done) {
            snapshots.push((self.clock, self.command_energy));
            pending = next_mark.next();
        }
        for op in &tape.ops {
            for _ in 0..op.repeat {
                self.clock += op.delta;
                self.command_energy += op.energy;
                done += 1;
                while pending == Some(done) {
                    snapshots.push((self.clock, self.command_energy));
                    pending = next_mark.next();
                }
            }
        }
        self.stats.merge(&tape.stats);
        // Reconstruct the window the issuing path would leave: its last
        // ≤4 ACTs at their recorded offsets from the entry clock. With 4+
        // recorded ACTs they displace every pre-existing entry.
        if tape.acts >= 4 {
            self.act_window.clear();
        }
        for &off in &tape.act_tail {
            self.act_window.push_back(entry + off);
        }
        while self.act_window.len() > 4 {
            self.act_window.pop_front();
        }
        // Likewise the command queue (its last ≤8 classified ACTs) and
        // the open-row state the taped stream would leave. The entry
        // signatures matched, so wholesale replacement of the open set
        // is exact.
        if tape.queued >= ACT_QUEUE_DEPTH as u64 {
            self.rank.queue.clear();
        }
        for &off in &tape.queue_tail {
            self.rank.push_queue(entry + off);
        }
        self.rank
            .restore_open(&tape.end_bank_open, &tape.end_share_open, self.clock);
        snapshots
    }
}

/// A detached replay of one parallel command lane's *costs* (no array, no
/// data): the same clock arithmetic, tFAW window, energy accounting, and
/// counters as [`Engine`], minus the functional model. Created by
/// [`Engine::fork_lane`], consumed by [`Engine::merge_lane`]. `Send`, so
/// lanes can be costed on worker threads while the caller owns the engine.
#[derive(Debug, Clone)]
pub struct LaneClock {
    clock: Picos,
    act_window: VecDeque<Picos>,
    /// The forking engine's command queue at fork time (rank-global, so
    /// a lane inherits pre-region queue pressure like it inherits the
    /// tFAW window).
    queue: VecDeque<Picos>,
    backend: TimingBackend,
    /// The lane's bank-level open row (its activation time). Lanes are
    /// forked at region starts, which the partitioned data path enters
    /// with every subarray precharged, so lane-local tracking suffices.
    open: Option<Picos>,
    /// The lane's charge-share chain state (last step's issue time).
    share: Option<Picos>,
    timing: TimingParams,
    energy_model: EnergyModel,
    energy: PicoJoules,
    stats: CommandStats,
}

/// The summable result of a [`LaneClock`] replay.
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// The lane's end time (absolute, on the forking engine's clock).
    pub end: Picos,
    /// Dynamic energy the lane consumed.
    pub energy: PicoJoules,
    /// Commands the lane issued.
    pub stats: CommandStats,
}

impl LaneClock {
    /// Issues one classified activation through the same backend policy
    /// as [`Engine::issue_act_classified`], against the lane-local
    /// row-buffer state and the inherited command queue.
    fn issue_act(&mut self, class: ActClass, conflict_open: Option<Picos>) -> Picos {
        let mut at = self.clock;
        if self.timing.t_faw_enabled() && self.act_window.len() >= 4 {
            let fourth_back = self.act_window[self.act_window.len() - 4];
            let earliest = fourth_back + self.timing.t_faw;
            at = at.max(earliest);
        }
        let queue_gate = (self.queue.len() >= ACT_QUEUE_DEPTH)
            .then(|| self.queue[self.queue.len() - ACT_QUEUE_DEPTH] + self.timing.t_ras);
        let issue =
            model_for(self.backend).act_issue(at, class, conflict_open, queue_gate, &self.timing);
        match class {
            ActClass::Hit => self.stats.row_hits += 1,
            ActClass::Miss => self.stats.row_misses += 1,
            ActClass::Conflict => self.stats.row_conflicts += 1,
        }
        if issue.queue_stalled {
            self.stats.queue_stalls += 1;
        }
        self.act_window.push_back(issue.at);
        while self.act_window.len() > 4 {
            self.act_window.pop_front();
        }
        self.queue.push_back(issue.at);
        if self.queue.len() > ACT_QUEUE_DEPTH {
            self.queue.pop_front();
        }
        issue.at
    }

    fn spend(&mut self, duration: Picos, energy: PicoJoules) {
        self.clock += duration;
        self.energy += energy;
    }

    /// The lane's current clock (absolute).
    pub fn elapsed(&self) -> Picos {
        self.clock
    }

    /// Cost of one ACT (mirrors [`Engine::activate`]).
    pub fn activate(&mut self) {
        let class = match self.open {
            Some(_) => ActClass::Conflict,
            None => ActClass::Miss,
        };
        let at = self.issue_act(class, self.open);
        self.open = Some(at);
        self.clock = at;
        self.spend(self.timing.t_rcd, self.energy_model.e_act);
        self.stats.activates += 1;
    }

    /// Cost of one PRE (mirrors [`Engine::precharge`]). Like the
    /// engine's `RankState::close`, it closes the charge-share chain
    /// first if one is open (partitioned lanes precharge the pLUTo
    /// subarray before the source), otherwise the bank-level row.
    pub fn precharge(&mut self) {
        if self.share.is_some() {
            self.share = None;
        } else {
            self.open = None;
        }
        self.spend(self.timing.t_rp, self.energy_model.e_pre);
        self.stats.precharges += 1;
    }

    /// Cost of `count` sweep steps (mirrors [`Engine::sweep_rows`]).
    pub fn sweep_rows(&mut self, count: usize, kind: SweepStepKind) {
        for _ in 0..count {
            let class = match kind {
                SweepStepKind::FullCycle => ActClass::Miss,
                SweepStepKind::ChargeShare => match self.share {
                    Some(_) => ActClass::Hit,
                    None => ActClass::Miss,
                },
            };
            let at = self.issue_act(class, None);
            if kind == SweepStepKind::ChargeShare {
                self.share = Some(at);
            }
            self.clock = at;
            match kind {
                SweepStepKind::FullCycle => self.spend(
                    self.timing.act_pre_cycle(),
                    self.energy_model.act_pre_cycle(),
                ),
                SweepStepKind::ChargeShare => {
                    self.spend(self.timing.t_rcd, self.energy_model.e_charge_share)
                }
            }
            self.stats.activates += 1;
            if kind == SweepStepKind::FullCycle {
                self.stats.precharges += 1;
            }
            self.stats.sweep_steps += 1;
        }
    }

    /// Cost of `count` LISA row movements of `hops` hops each (mirrors
    /// [`Engine::lisa_rbm_to_row`] / [`Engine::lisa_reload_rows`]).
    pub fn lisa_rbm_rows(&mut self, hops: u64, count: usize) {
        for _ in 0..count {
            self.spend(
                self.timing.t_lisa_hop.times(hops),
                self.energy_model.e_lisa_hop.times(hops),
            );
            self.stats.lisa_hops += hops;
        }
    }

    /// Closes the lane, yielding its end time and accumulated deltas.
    pub fn finish(self) -> LaneOutcome {
        LaneOutcome {
            end: self.clock,
            energy: self.energy,
            stats: self.stats,
        }
    }
}

/// One run-length-compressed cost step on a [`CostTape`]: `repeat`
/// consecutive spends, each advancing the clock by `delta` and the energy
/// accumulator by `energy`. `delta` folds in any tFAW forward jump the
/// issuing path took before the spend (the two u64 additions associate, so
/// replay lands on exactly the clock the issuing path reached).
#[derive(Debug, Clone, Copy)]
struct TapeOp {
    delta: Picos,
    energy: PicoJoules,
    repeat: u64,
}

/// In-progress capture state (see [`Engine::begin_tape`]).
#[derive(Debug, Clone)]
struct TapeRecorder {
    /// Clock at capture start; ACT offsets are recorded relative to it.
    entry_clock: Picos,
    /// Clock immediately after the previous spend (for delta folding).
    last_clock: Picos,
    /// Counter snapshot at capture start, subtracted out at `end_tape`.
    entry_stats: CommandStats,
    /// Timing-state signature at capture start (replay-legality witness).
    entry_sig: TimingSig,
    ops: Vec<TapeOp>,
    /// Phase boundaries, as spend counts (see [`Engine::mark_tape_phase`]).
    marks: Vec<u64>,
    /// Total spends so far (mark positions index into this count).
    spends: u64,
    /// Total ACT issues so far.
    acts: u64,
    /// Offsets (from `entry_clock`) of the last ≤4 ACT issues, for
    /// reconstructing the tFAW window on replay.
    act_tail: Vec<Picos>,
    /// Total classified (queue-entering) ACT issues so far.
    queued: u64,
    /// Offsets of the last ≤[`ACT_QUEUE_DEPTH`] classified ACT issues,
    /// for reconstructing the command queue on replay.
    queue_tail: Vec<Picos>,
}

/// A recorded command-stream cost delta: the exact sequence of clock/energy
/// additions, counter deltas, and tFAW-window tail a query's command stream
/// produces when issued from a [`Engine::tfaw_window_inert`] state.
/// Captured with [`Engine::begin_tape`]/[`Engine::end_tape`] and applied —
/// bit-identically, without re-simulating commands — with
/// [`Engine::apply_replayed`]. The plan-cache layer in `pluto-core` keys
/// tapes by everything that can shift the delta (config, design, LUT
/// geometry, residency); see `DESIGN.md` §10.
#[derive(Debug, Clone)]
pub struct CostTape {
    ops: Vec<TapeOp>,
    marks: Vec<u64>,
    stats: CommandStats,
    entry_sig: TimingSig,
    acts: u64,
    act_tail: Vec<Picos>,
    queued: u64,
    queue_tail: Vec<Picos>,
    /// Open-row state (bank-level / charge-share, as end-relative ages)
    /// the taped stream leaves behind.
    end_bank_open: Vec<crate::timing_model::OpenSig>,
    end_share_open: Vec<crate::timing_model::OpenSig>,
    /// The backend the tape was recorded under. A tape embeds that
    /// backend's conflict/queue penalties in its deltas, so it is never
    /// replayable under the other backend.
    backend: TimingBackend,
}

impl CostTape {
    /// Number of phase marks recorded on this tape (one
    /// [`Engine::apply_replayed`] snapshot is returned per mark).
    pub fn mark_count(&self) -> usize {
        self.marks.len()
    }

    /// Command-counter delta the taped stream produces.
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// The timing backend this tape was recorded under.
    pub fn backend(&self) -> TimingBackend {
        self.backend
    }

    /// Whether applying this tape from `engine`'s current state is exact:
    /// the engine must run the same timing backend (a tape embeds its
    /// backend's penalties in the deltas), and the live timing-state
    /// signature — tFAW-window ages, command-queue ages, and open-row
    /// state — must equal the signature at capture time; anything else
    /// would shift the throttling/penalties the recorded deltas embed.
    /// Allocation-free; callers fall back to full issuance when this is
    /// false.
    pub fn replayable_from(&self, engine: &Engine) -> bool {
        self.backend == engine.backend && engine.timing_signature_matches(&self.entry_sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Engine {
        Engine::new(DramConfig {
            row_bytes: 16,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 32,
            ..DramConfig::ddr4_2400()
        })
    }

    #[test]
    fn activate_precharge_timing() {
        let mut e = tiny();
        let loc = RowLoc::new(0, 0, 0);
        e.activate(loc).unwrap();
        assert_eq!(e.elapsed(), e.timing().t_rcd);
        e.precharge(loc.bank, loc.subarray).unwrap();
        assert_eq!(e.elapsed(), e.timing().t_rcd + e.timing().t_rp);
        assert_eq!(e.stats().activates, 1);
        assert_eq!(e.stats().precharges, 1);
    }

    #[test]
    fn activate_energy_accumulates() {
        let mut e = tiny();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        let expect = e.energy_model().act_pre_cycle();
        assert!((e.command_energy().as_pj() - expect.as_pj()).abs() < 1e-9);
        assert!(
            e.total_energy() > e.command_energy(),
            "background power adds in"
        );
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut e = tiny();
        let loc = RowLoc::new(1, 3, 9);
        let data: Vec<u8> = (0..16).collect();
        e.write_row(loc, &data).unwrap();
        assert_eq!(e.read_row(loc).unwrap(), data);
        assert!(e.stats().read_bursts > 0);
        assert!(e.stats().write_bursts > 0);
    }

    #[test]
    fn write_row_length_validated() {
        let mut e = tiny();
        assert!(matches!(
            e.write_row(RowLoc::new(0, 0, 0), &[1, 2, 3]),
            Err(DramError::RowSizeMismatch { .. })
        ));
    }

    #[test]
    fn row_clone_copies_and_costs_two_acts() {
        let mut e = tiny();
        let src = RowLoc::new(0, 2, 4);
        e.poke_row(src, &[0x5A; 16]).unwrap();
        let t0 = e.elapsed();
        e.row_clone_fpm(src, RowId(7)).unwrap();
        assert_eq!(e.peek_row(src.with_row(7)).unwrap(), vec![0x5A; 16]);
        let dt = e.elapsed() - t0;
        assert_eq!(dt, e.timing().t_rcd.times(2) + e.timing().t_rp);
        assert_eq!(e.stats().row_clones, 1);
        assert_eq!(e.stats().activates, 2);
    }

    #[test]
    fn lisa_cost_scales_with_distance() {
        let mut e = tiny();
        let src = RowLoc::new(0, 1, 0);
        e.poke_row(src, &[9; 16]).unwrap();
        e.activate(src).unwrap();
        let t0 = e.elapsed();
        e.lisa_rbm(BankId(0), SubarrayId(1), SubarrayId(4)).unwrap();
        assert_eq!(e.elapsed() - t0, e.timing().t_lisa_hop.times(3));
        assert_eq!(e.stats().lisa_hops, 3);
        assert_eq!(
            e.row_buffer(BankId(0), SubarrayId(4)).unwrap().data,
            vec![9; 16]
        );
    }

    #[test]
    fn sweep_step_costs_match_table1_components() {
        // BSA step: tRCD + tRP. GSA/GMC step: tRCD only.
        let mut e = tiny();
        let loc = RowLoc::new(0, 0, 0);
        e.sweep_step(loc, SweepStepKind::FullCycle).unwrap();
        assert_eq!(e.elapsed(), e.timing().act_pre_cycle());
        let mut e = tiny();
        e.sweep_step(loc, SweepStepKind::ChargeShare).unwrap();
        assert_eq!(e.elapsed(), e.timing().t_rcd);
        // Charge-share steps may run back to back.
        e.sweep_step(loc.with_row(1), SweepStepKind::ChargeShare)
            .unwrap();
        assert_eq!(e.elapsed(), e.timing().t_rcd.times(2));
    }

    #[test]
    fn bsa_sweep_of_n_rows_costs_n_act_pre_cycles() {
        // Table 1: BSA query latency = (tRCD + tRP) × N.
        let mut e = tiny();
        let n = 16u16;
        for r in 0..n {
            e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::FullCycle)
                .unwrap();
        }
        assert_eq!(e.elapsed(), e.timing().act_pre_cycle().times(n as u64));
        let expect_e = e.energy_model().act_pre_cycle().times(n as u64);
        assert!((e.command_energy().as_pj() - expect_e.as_pj()).abs() < 1e-6);
    }

    #[test]
    fn gmc_sweep_of_n_rows_costs_n_trcd_plus_trp() {
        // Table 1: GMC query latency = tRCD × N + tRP.
        let mut e = tiny();
        let n = 16u16;
        for r in 0..n {
            e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::ChargeShare)
                .unwrap();
        }
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        assert_eq!(
            e.elapsed(),
            e.timing().t_rcd.times(n as u64) + e.timing().t_rp
        );
    }

    #[test]
    fn shift_row_composes_byte_and_bit_steps() {
        let mut e = tiny();
        let loc = RowLoc::new(0, 0, 0);
        let mut data = vec![0u8; 16];
        data[1] = 0xFF;
        e.poke_row(loc, &data).unwrap();
        let t0 = e.elapsed();
        e.shift_row(loc, true, 10).unwrap(); // 1 byte-step + 2 bit-steps
        let steps = 3u64;
        assert_eq!(
            e.elapsed() - t0,
            (e.timing().t_rcd.times(2) + e.timing().t_rp).times(steps)
        );
        let row = e.peek_row(loc).unwrap();
        // 0xFF at byte 1 shifted left 10 bits: moves into byte 0 shifted by 2.
        assert_eq!(row[0], 0xFC);
    }

    #[test]
    fn shift_zero_is_free() {
        let mut e = tiny();
        e.shift_row(RowLoc::new(0, 0, 0), true, 0).unwrap();
        assert_eq!(e.elapsed(), Picos::ZERO);
    }

    #[test]
    fn tfaw_throttles_rapid_activations() {
        // Craft a timing set where activations are much faster than tFAW so
        // the window binds: tRCD = 1 ns, tFAW = 100 ns.
        let cfg = DramConfig {
            row_bytes: 8,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing.t_faw = Picos::from_ns(100.0);
        let mut e = Engine::with_models(cfg, timing, EnergyModel::ddr4());
        for r in 0..5 {
            e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::ChargeShare)
                .unwrap();
        }
        // Fifth ACT cannot issue before t = 100 ns (first ACT at t=0).
        assert!(e.elapsed() >= Picos::from_ns(100.0));
    }

    #[test]
    fn tfaw_disabled_when_zero() {
        let cfg = DramConfig {
            row_bytes: 8,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing = timing.with_t_faw_scale(0.0);
        let mut e = Engine::with_models(cfg, timing, EnergyModel::ddr4());
        for r in 0..8 {
            e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::ChargeShare)
                .unwrap();
        }
        assert_eq!(e.elapsed(), Picos::from_ns(8.0));
    }

    #[test]
    fn trace_records_commands() {
        let mut e = tiny();
        e.enable_trace();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        let trace = e.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].mnemonic(), "ACT");
        assert_eq!(trace[1].mnemonic(), "PRE");
    }

    #[test]
    fn parallel_lane_region_merges_as_max_latency_summed_energy() {
        // Two "lanes" of different lengths issued from one start time:
        // the clock ends at the slower lane's end, the energy at the sum.
        let mut e = tiny();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        let t0 = e.elapsed();
        let e0 = e.command_energy();
        // Lane 0: three sweep steps.
        for r in 0..3 {
            e.sweep_step(RowLoc::new(0, 1, r), SweepStepKind::FullCycle)
                .unwrap();
        }
        let lane0 = e.elapsed();
        // Lane 1: one sweep step, issued from the same start time.
        e.rewind_clock(t0);
        e.sweep_step(RowLoc::new(0, 2, 0), SweepStepKind::FullCycle)
            .unwrap();
        let lane1 = e.elapsed();
        assert!(lane1 < lane0);
        e.advance_clock_to(lane0.max(lane1));
        assert_eq!(e.elapsed() - t0, e.timing().act_pre_cycle().times(3));
        let de = e.command_energy() - e0;
        let expect = e.energy_model().act_pre_cycle().times(4);
        assert!((de.as_pj() - expect.as_pj()).abs() < 1e-9, "energy sums");
        assert_eq!(e.stats().sweep_steps, 4, "commands count across lanes");
    }

    #[test]
    fn rewind_and_advance_clamp_to_no_ops() {
        let mut e = tiny();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        let now = e.elapsed();
        e.rewind_clock(now + Picos::from_ns(5.0)); // future: no-op
        assert_eq!(e.elapsed(), now);
        e.advance_clock_to(now.saturating_sub(Picos::from_ns(1.0))); // past: no-op
        assert_eq!(e.elapsed(), now);
    }

    #[test]
    fn rewind_drops_tfaw_entries_issued_after_the_mark() {
        // tFAW binds after 4 ACTs; rewinding to before a lane's ACTs must
        // forget them, so the next lane is throttled identically.
        let cfg = DramConfig {
            row_bytes: 8,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing.t_faw = Picos::from_ns(100.0);
        let mut e = Engine::with_models(cfg, timing, EnergyModel::ddr4());
        let t0 = e.elapsed();
        let lane = |e: &mut Engine| {
            for r in 0..5 {
                e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::ChargeShare)
                    .unwrap();
            }
            e.elapsed()
        };
        let lane0 = lane(&mut e);
        e.rewind_clock(t0);
        let lane1 = lane(&mut e);
        assert_eq!(lane0, lane1, "each lane sees a fresh tFAW window");
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_step_loop() {
        // Use a tFAW-binding timing set so the activation window matters.
        let cfg = DramConfig {
            row_bytes: 16,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing.t_faw = Picos::from_ns(25.0);
        for kind in [SweepStepKind::FullCycle, SweepStepKind::ChargeShare] {
            let mut serial = Engine::with_models(cfg.clone(), timing.clone(), EnergyModel::ddr4());
            let mut batched = serial.clone();
            serial.enable_trace();
            batched.enable_trace();
            for e in [&mut serial, &mut batched] {
                for r in 0..9u16 {
                    e.poke_row(RowLoc::new(0, 1, r), &[r as u8; 16]).unwrap();
                }
            }
            for r in 0..9u16 {
                serial.sweep_step(RowLoc::new(0, 1, r), kind).unwrap();
            }
            batched
                .sweep_rows(BankId(0), SubarrayId(1), RowId(0), 9, kind)
                .unwrap();
            assert_eq!(serial.elapsed(), batched.elapsed(), "{kind:?} clock");
            assert_eq!(
                serial.command_energy().as_pj().to_bits(),
                batched.command_energy().as_pj().to_bits(),
                "{kind:?} energy bits"
            );
            assert_eq!(serial.stats(), batched.stats(), "{kind:?} stats");
            assert_eq!(serial.take_trace(), batched.take_trace(), "{kind:?} trace");
            assert_eq!(
                serial.array().buffer(BankId(0), SubarrayId(1)),
                batched.array().buffer(BankId(0), SubarrayId(1)),
                "{kind:?} buffer end state"
            );
        }
    }

    #[test]
    fn batched_sweep_rejects_out_of_range() {
        let mut e = tiny();
        assert!(e
            .sweep_rows(
                BankId(0),
                SubarrayId(0),
                RowId(30),
                5,
                SweepStepKind::FullCycle
            )
            .is_err());
        assert_eq!(e.stats().sweep_steps, 0, "no partial issue");
        e.sweep_rows(
            BankId(0),
            SubarrayId(0),
            RowId(0),
            0,
            SweepStepKind::FullCycle,
        )
        .unwrap();
        assert_eq!(e.elapsed(), Picos::ZERO, "empty sweep is free");
    }

    #[test]
    fn batched_lisa_reload_is_bit_identical_to_per_row_loop() {
        let master = SubarrayId(3);
        let pluto = SubarrayId(2);
        let mut serial = tiny();
        let mut batched = serial.clone();
        for e in [&mut serial, &mut batched] {
            for r in 0..7u16 {
                e.poke_row(
                    RowLoc {
                        bank: BankId(0),
                        subarray: master,
                        row: RowId(r),
                    },
                    &[0x40 + r as u8; 16],
                )
                .unwrap();
            }
        }
        serial.enable_trace();
        batched.enable_trace();
        // Serial reference: the per-row deposit + RBM loop the GSA reload
        // path used to issue.
        let mut row = Vec::new();
        for r in 0..7u16 {
            serial
                .peek_row_into(
                    RowLoc {
                        bank: BankId(0),
                        subarray: master,
                        row: RowId(r),
                    },
                    &mut row,
                )
                .unwrap();
            let data = row.clone();
            serial.deposit_buffer(BankId(0), master, &data).unwrap();
            serial
                .lisa_rbm_to_row(BankId(0), master, pluto, RowId(r))
                .unwrap();
        }
        batched
            .lisa_reload_rows(BankId(0), master, RowId(0), pluto, RowId(0), 7)
            .unwrap();
        assert_eq!(serial.elapsed(), batched.elapsed());
        assert_eq!(
            serial.command_energy().as_pj().to_bits(),
            batched.command_energy().as_pj().to_bits()
        );
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.take_trace(), batched.take_trace());
        for r in 0..7u16 {
            let loc = RowLoc {
                bank: BankId(0),
                subarray: pluto,
                row: RowId(r),
            };
            assert_eq!(
                serial.peek_row(loc).unwrap(),
                batched.peek_row(loc).unwrap()
            );
        }
        for sa in [master, pluto] {
            assert_eq!(
                serial.array().buffer(BankId(0), sa),
                batched.array().buffer(BankId(0), sa),
                "buffer end state of {sa:?}"
            );
        }
    }

    #[test]
    fn lane_clock_replays_engine_costs_exactly() {
        // Issue the same lane twice: once serially on the engine between
        // rewind/advance marks, once on a forked LaneClock. End time,
        // energy delta, and counter delta must agree exactly.
        let cfg = DramConfig {
            row_bytes: 16,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing.t_faw = Picos::from_ns(25.0);
        let mut e = Engine::with_models(cfg, timing, EnergyModel::ddr4());
        // Pre-history so the fork inherits a nonempty tFAW window.
        for r in 0..4u16 {
            e.sweep_step(RowLoc::new(0, 0, r), SweepStepKind::ChargeShare)
                .unwrap();
        }
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        // An identical twin that will receive the lane via merge instead
        // of issuing it serially.
        let mut twin = e.clone();
        let e0 = e.command_energy();
        let s0 = e.stats();
        let mut lane = e.fork_lane();
        // The lane: reload, activate, sweep, precharge, copy-out RBM.
        lane.lisa_rbm_rows(1, 6);
        lane.activate();
        lane.sweep_rows(6, SweepStepKind::ChargeShare);
        lane.precharge();
        lane.lisa_rbm_rows(2, 1);
        lane.precharge();
        let outcome = lane.finish();
        // Same stream issued serially on the engine.
        e.lisa_reload_rows(
            BankId(0),
            SubarrayId(4),
            RowId(0),
            SubarrayId(3),
            RowId(0),
            6,
        )
        .unwrap();
        e.activate(RowLoc::new(0, 1, 0)).unwrap();
        e.sweep_rows(
            BankId(0),
            SubarrayId(3),
            RowId(0),
            6,
            SweepStepKind::ChargeShare,
        )
        .unwrap();
        e.precharge(BankId(0), SubarrayId(3)).unwrap();
        e.deposit_buffer(BankId(0), SubarrayId(3), &[0; 16])
            .unwrap();
        e.lisa_rbm_to_row(BankId(0), SubarrayId(3), SubarrayId(1), RowId(9))
            .unwrap();
        e.precharge(BankId(0), SubarrayId(1)).unwrap();
        assert_eq!(outcome.end, e.elapsed(), "lane end == serial end");
        assert_eq!(
            outcome.energy.as_pj().to_bits(),
            (e.command_energy() - e0).as_pj().to_bits(),
            "lane energy == serial delta"
        );
        assert_eq!(outcome.stats, e.stats().since(&s0), "lane stats == delta");
        // Merging the outcome into the twin reproduces the serial clock
        // and counters exactly; energy folds as one lane subtotal, equal
        // here because the lane's additions start from zero either way.
        twin.merge_lane(&outcome);
        assert_eq!(twin.elapsed(), e.elapsed());
        assert_eq!(twin.stats(), e.stats());
        assert!(
            (twin.command_energy() - e.command_energy()).as_pj().abs() < 1e-9,
            "merged energy within float reassociation tolerance"
        );
    }

    #[test]
    fn reset_accounting_preserves_data() {
        let mut e = tiny();
        let loc = RowLoc::new(0, 0, 0);
        e.write_row(loc, &[3; 16]).unwrap();
        e.reset_accounting();
        assert_eq!(e.elapsed(), Picos::ZERO);
        assert_eq!(e.stats().total_commands(), 0);
        assert_eq!(e.peek_row(loc).unwrap(), vec![3; 16]);
    }

    #[test]
    fn out_of_bounds_everywhere() {
        let mut e = tiny();
        assert!(e.activate(RowLoc::new(99, 0, 0)).is_err());
        assert!(e.precharge(BankId(99), SubarrayId(0)).is_err());
        assert!(e
            .sweep_step(RowLoc::new(0, 99, 0), SweepStepKind::FullCycle)
            .is_err());
        assert!(e.row_clone_fpm(RowLoc::new(0, 0, 0), RowId(999)).is_err());
        assert!(e.shift_row(RowLoc::new(0, 0, 999), true, 1).is_err());
    }

    /// An engine with binding timing: 1 ns ACT/PRE against a 25 ns tFAW,
    /// so four back-to-back sweep steps leave a window that throttles.
    fn binding() -> Engine {
        let cfg = DramConfig {
            row_bytes: 16,
            burst_bytes: 8,
            ..DramConfig::ddr4_2400()
        };
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rcd = Picos::from_ns(1.0);
        timing.t_rp = Picos::from_ns(1.0);
        timing.t_faw = Picos::from_ns(25.0);
        Engine::with_models(cfg, timing, EnergyModel::ddr4())
    }

    /// A representative query-shaped stream (reload, activate, sweep,
    /// precharge, copy-out RBM, precharge) issued on `e`, with a phase
    /// mark after the reload and after the sweep.
    fn issue_query_shape(e: &mut Engine) {
        e.lisa_reload_rows(
            BankId(0),
            SubarrayId(4),
            RowId(0),
            SubarrayId(3),
            RowId(0),
            6,
        )
        .unwrap();
        e.mark_tape_phase();
        e.activate(RowLoc::new(0, 1, 0)).unwrap();
        e.sweep_rows(
            BankId(0),
            SubarrayId(3),
            RowId(0),
            6,
            SweepStepKind::ChargeShare,
        )
        .unwrap();
        e.mark_tape_phase();
        e.precharge(BankId(0), SubarrayId(3)).unwrap();
        e.deposit_buffer(BankId(0), SubarrayId(3), &[0; 16])
            .unwrap();
        e.lisa_rbm_to_row(BankId(0), SubarrayId(3), SubarrayId(1), RowId(9))
            .unwrap();
        e.precharge(BankId(0), SubarrayId(1)).unwrap();
    }

    #[test]
    fn tape_replay_is_bit_identical_from_a_different_inert_state() {
        // Capture from one inert state, replay from another (different
        // clock, different energy history). End clock, energy bits,
        // counters, and phase snapshots must all match a freshly issued
        // stream from the replay state.
        let mut rec = binding();
        rec.begin_tape();
        issue_query_shape(&mut rec);
        let tape = rec.end_tape().expect("capture survived");
        assert_eq!(tape.mark_count(), 2);

        // A different start state: some prior history, then idle long
        // enough that the window is inert.
        let mut a = binding();
        a.sweep_step(RowLoc::new(0, 0, 0), SweepStepKind::FullCycle)
            .unwrap();
        a.advance_clock_to(a.elapsed() + Picos::from_ns(100.0));
        assert!(a.tfaw_window_inert());
        let mut b = a.clone();

        issue_query_shape(&mut a); // issuing oracle
        let snaps = b.apply_replayed(&tape); // memoized replay
        assert_eq!(b.elapsed(), a.elapsed(), "replayed clock == issued clock");
        assert_eq!(
            b.command_energy().as_pj().to_bits(),
            a.command_energy().as_pj().to_bits(),
            "replayed energy bit-identical"
        );
        assert_eq!(b.stats(), a.stats(), "replayed counters == issued");
        assert_eq!(snaps.len(), 2);
        // Snapshots land on the same absolute clocks a marked issue would.
        assert!(snaps[0].0 < snaps[1].0 && snaps[1].0 < b.elapsed());
    }

    #[test]
    fn tape_replay_reconstructs_the_tfaw_window() {
        // After replay, a follow-on burst of ACTs must throttle exactly
        // as it does after the issued stream.
        let mut rec = binding();
        rec.begin_tape();
        issue_query_shape(&mut rec);
        let tape = rec.end_tape().expect("capture survived");

        let mut a = binding();
        a.advance_clock_to(Picos::from_ns(50.0));
        let mut b = a.clone();
        issue_query_shape(&mut a);
        b.apply_replayed(&tape);
        // Immediate follow-on ACT pressure: the 4-deep window recorded on
        // the tape must throttle the replayed engine identically.
        for r in 0..6u16 {
            a.sweep_step(RowLoc::new(0, 2, r), SweepStepKind::ChargeShare)
                .unwrap();
            b.sweep_step(RowLoc::new(0, 2, r), SweepStepKind::ChargeShare)
                .unwrap();
        }
        assert_eq!(a.elapsed(), b.elapsed(), "tFAW throttling agrees");
    }

    #[test]
    fn tfaw_window_inert_truth_table() {
        let mut e = binding();
        assert!(e.tfaw_window_inert(), "empty window is inert");
        e.sweep_step(RowLoc::new(0, 0, 0), SweepStepKind::ChargeShare)
            .unwrap();
        assert!(!e.tfaw_window_inert(), "fresh ACT arms the window");
        e.advance_clock_to(e.elapsed() + Picos::from_ns(30.0));
        assert!(e.tfaw_window_inert(), "aged past t_faw");
        let mut z = tiny();
        let mut timing = z.timing().clone();
        timing.t_faw = Picos::ZERO;
        z = Engine::with_models(z.config().clone(), timing, EnergyModel::ddr4());
        z.sweep_step(RowLoc::new(0, 0, 0), SweepStepKind::ChargeShare)
            .unwrap();
        assert!(z.tfaw_window_inert(), "disabled window is always inert");
    }

    #[test]
    fn rewind_during_capture_voids_the_tape() {
        let mut e = binding();
        e.begin_tape();
        let mark = e.elapsed();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        e.rewind_clock(mark);
        assert!(e.end_tape().is_none(), "absolute-time jump drops capture");
        e.begin_tape();
        e.abort_tape();
        assert!(e.end_tape().is_none(), "abort drops capture");
    }

    #[test]
    fn replay_with_leading_marks_snapshots_the_entry_state() {
        // A tape whose first phase costs nothing (e.g. a no-reload query)
        // has its first mark at zero spends; the snapshot must be the
        // entry clock/energy.
        let mut e = binding();
        e.begin_tape();
        e.mark_tape_phase();
        e.activate(RowLoc::new(0, 0, 0)).unwrap();
        e.precharge(BankId(0), SubarrayId(0)).unwrap();
        let tape = e.end_tape().expect("capture survived");
        let mut b = binding();
        b.advance_clock_to(Picos::from_ns(40.0));
        let entry = (b.elapsed(), b.command_energy());
        let snaps = b.apply_replayed(&tape);
        assert_eq!(snaps, vec![entry]);
    }
}
