//! Per-command DRAM energy model.
//!
//! The paper evaluates energy with CACTI 7 DDR4 and HMC models (§7.1): each
//! memory command is assigned an energy, and operation energy is the sum over
//! the command sequence. We reproduce that structure with parameter tables
//! seeded from published CACTI-7/DRAMPower-derived figures for an 8 KiB-row
//! DDR4 module and scale by row size for the HMC configuration.
//!
//! Absolute joule values are not expected to match the authors' (their CACTI
//! runs are not public); all of the paper's energy *results* are ratios
//! (CPU-normalized, design-vs-design), which depend only on the relative
//! magnitudes encoded here.

use crate::geometry::{DramConfig, MemoryKind};
use crate::units::PicoJoules;

/// Energy assigned to each DRAM command class.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of a full row activation (charge share + sense + restore)
    /// — the paper's `E_RCD`.
    pub e_act: PicoJoules,
    /// Energy of a precharge — the paper's `E_RP`.
    pub e_pre: PicoJoules,
    /// Energy of one RD burst (column read + I/O).
    pub e_rd_burst: PicoJoules,
    /// Energy of one WR burst (column write + I/O).
    pub e_wr_burst: PicoJoules,
    /// Energy of one LISA row-buffer-movement hop — the paper's `E_LISARBM`.
    pub e_lisa_hop: PicoJoules,
    /// Energy of a charge-share-only sweep step (GSA/GMC): the sense phase
    /// without the restore/precharge of a full cycle. For GMC only matched
    /// bitlines move charge, which is captured by the per-step fraction
    /// below.
    pub e_charge_share: PicoJoules,
    /// Static/background power of the module in watts, integrated over
    /// elapsed time by the engine.
    pub background_watts: f64,
}

impl EnergyModel {
    /// DDR4 module-level energies for 8 KiB rows.
    ///
    /// Seeds: an ACT/PRE pair on a x64 DDR4 module with a 8 KiB row costs
    /// ≈ 30 nJ in CACTI-7-class models; we split it 60/40 between ACT and
    /// PRE. RD/WR bursts (64 B) cost ≈ 4 nJ module-wide including I/O.
    pub fn ddr4() -> Self {
        EnergyModel {
            e_act: PicoJoules::from_nj(18.0),
            e_pre: PicoJoules::from_nj(12.0),
            e_rd_burst: PicoJoules::from_nj(4.0),
            e_wr_burst: PicoJoules::from_nj(4.2),
            e_lisa_hop: PicoJoules::from_nj(13.5), // 0.75 x E_ACT; > E_PRE, per Table 1 orderings
            e_charge_share: PicoJoules::from_nj(18.0), // Table 1 charges full E_RCD per step
            background_watts: 0.35,
        }
    }

    /// HMC-like 3D-stacked energies. The cell-array portion of an
    /// activation scales with row size (256 B vs 8 KiB), but per-activation
    /// peripheral costs (decoders, wordline drivers, TSV signaling) do not
    /// amortize over the small row — so energy *per activated bit* is ≈ 8×
    /// the DDR4 figure. This is why the paper's 3DS configurations save
    /// roughly 8× less energy than DDR4 pLUTo (Fig. 10: 1855× vs 236× for
    /// BSA).
    pub fn hmc_3ds() -> Self {
        let per_act_ratio = (256.0 / 8192.0) * 8.0;
        let d = EnergyModel::ddr4();
        EnergyModel {
            e_act: d.e_act * per_act_ratio,
            e_pre: d.e_pre * per_act_ratio,
            e_rd_burst: PicoJoules::from_nj(0.6),
            e_wr_burst: PicoJoules::from_nj(0.65),
            e_lisa_hop: d.e_lisa_hop * per_act_ratio,
            e_charge_share: d.e_charge_share * per_act_ratio,
            background_watts: 0.5,
        }
    }

    /// Picks the model matching a configuration's memory kind.
    pub fn for_config(cfg: &DramConfig) -> Self {
        match cfg.kind {
            MemoryKind::Ddr4 => EnergyModel::ddr4(),
            MemoryKind::Stacked3d => EnergyModel::hmc_3ds(),
        }
    }

    /// Energy of one full ACT+PRE cycle (`E_RCD + E_RP` in the paper's
    /// Table 1 formulas).
    pub fn act_pre_cycle(&self) -> PicoJoules {
        self.e_act + self.e_pre
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_act_pre_is_30_nj() {
        let e = EnergyModel::ddr4();
        assert!((e.act_pre_cycle().as_nj() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn hmc_activation_cheaper_per_row_dearer_per_bit() {
        let d = EnergyModel::ddr4();
        let h = EnergyModel::hmc_3ds();
        // Per activation: 4x cheaper (smaller row)…
        let ratio = d.e_act.as_pj() / h.e_act.as_pj();
        assert!((ratio - 4.0).abs() < 1e-6, "got {ratio}");
        // …but per activated bit: 8x more expensive (fixed peripherals).
        let d_per_bit = d.e_act.as_pj() / (8192.0 * 8.0);
        let h_per_bit = h.e_act.as_pj() / (256.0 * 8.0);
        assert!((h_per_bit / d_per_bit - 8.0).abs() < 1e-6);
    }

    #[test]
    fn for_config_dispatches_on_kind() {
        assert_eq!(
            EnergyModel::for_config(&DramConfig::ddr4_2400()),
            EnergyModel::ddr4()
        );
        assert_eq!(
            EnergyModel::for_config(&DramConfig::hmc_3ds()),
            EnergyModel::hmc_3ds()
        );
    }

    #[test]
    fn lisa_hop_cheaper_than_act_pre() {
        // LISA avoids a full activation pair; its energy must sit below one
        // ACT+PRE cycle for the paper's GSA-vs-BSA energy ordering to hold.
        let e = EnergyModel::ddr4();
        assert!(e.e_lisa_hop < e.act_pre_cycle());
    }
}
