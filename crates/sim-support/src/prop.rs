//! Seeded property-based testing with shrinking-lite.
//!
//! This is the workspace's offline replacement for `proptest`. A property
//! is an ordinary `#[test]` that calls [`check`] with a closure; the
//! closure receives a [`Gen`] (a seeded case generator) and returns
//! [`CaseResult`]. Assertion macros ([`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq),
//! [`prop_assert_ne!`](crate::prop_assert_ne)) short-circuit the case with
//! a formatted failure instead of panicking, so the harness can report the
//! reproducing seed.
//!
//! ## Shrinking-lite
//!
//! Full value-level shrinking needs a strategy tree; we use a cheaper
//! scheme that covers the common "smaller input still fails" payoff: every
//! [`Gen`] carries a *budget* in `(0, 1]` that scales generated collection
//! lengths toward their minimum. On failure the harness replays the same
//! case seed at successively smaller budgets and reports the smallest
//! budget that still fails, together with the seed and case index needed
//! to reproduce it (`SIM_PROP_SEED` replays a whole run under a chosen
//! base seed; `SIM_PROP_CASES` overrides the case count).
//!
//! ## Example
//!
//! ```
//! use sim_support::prop::{self, CaseResult, Gen};
//! use sim_support::prop_assert_eq;
//!
//! fn reverse_twice_is_identity(g: &mut Gen) -> CaseResult {
//!     let v: Vec<u8> = g.vec_any(0, 64);
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert_eq!(v, w);
//!     Ok(())
//! }
//!
//! prop::check("reverse_twice_is_identity", 32, reverse_twice_is_identity);
//! ```

use crate::rng::{Rng, SampleRange, SampleUniform, SeedableRng, SplitMix64, Standard, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A failed property case: the formatted assertion message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFailure {
    /// Human-readable description of what failed.
    pub message: String,
}

impl CaseFailure {
    /// Creates a failure from any message.
    pub fn new(message: impl Into<String>) -> Self {
        CaseFailure {
            message: message.into(),
        }
    }
}

/// What a property closure returns for one generated case.
pub type CaseResult = Result<(), CaseFailure>;

/// Default base seed for property runs (override with `SIM_PROP_SEED`).
pub const DEFAULT_SEED: u64 = 0x0BAD_5EED_CAFE_F00D;

const SHRINK_BUDGETS: [f64; 4] = [0.5, 0.25, 0.1, 0.03];

/// A seeded case generator handed to property closures.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
    budget: f64,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn with_seed(seed: u64, budget: f64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            budget,
        }
    }

    /// The underlying stream, for call sites that want raw draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Samples a value of `T` from its full domain (`any::<T>()`).
    pub fn any<T: Standard>(&mut self) -> T {
        self.rng.gen()
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.rng.gen_range(range)
    }

    /// Draws a collection length in `[lo, hi]`, scaled toward `lo` by the
    /// shrink budget.
    pub fn len(&mut self, lo: usize, hi: usize) -> usize {
        let raw = self.rng.gen_range(lo..=hi);
        lo + ((raw - lo) as f64 * self.budget).round() as usize
    }

    /// A vector of budget-scaled length in `[lo, hi]` with elements drawn
    /// by `item`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len(lo, hi);
        (0..n).map(|_| item(self)).collect()
    }

    /// A vector of full-domain elements (`vec(any::<T>(), lo..=hi)`).
    pub fn vec_any<T: Standard>(&mut self, lo: usize, hi: usize) -> Vec<T> {
        self.vec(lo, hi, |g| g.any())
    }

    /// A vector of elements drawn from `range` (`vec(range, lo..=hi)`).
    pub fn vec_range<T, R>(&mut self, lo: usize, hi: usize, range: R) -> Vec<T>
    where
        T: SampleUniform,
        R: SampleRange<T> + Clone,
    {
        self.vec(lo, hi, |g| g.range(range.clone()))
    }

    /// A lowercase ASCII string of budget-scaled length in `[lo, hi]`
    /// (the `"[a-z]{lo,hi}"` regex strategy).
    pub fn lowercase(&mut self, lo: usize, hi: usize) -> String {
        let n = self.len(lo, hi);
        (0..n)
            .map(|_| char::from(b'a' + self.rng.gen_range(0..26u8)))
            .collect()
    }
}

/// Runs `property` over `cases` generated cases with the default base
/// seed, panicking with a reproducible report on the first failure.
pub fn check(name: &str, cases: u32, property: impl Fn(&mut Gen) -> CaseResult) {
    check_seeded(name, cases, base_seed(), property);
}

/// [`check`] with an explicit base seed (used by the harness's own tests;
/// normal properties should prefer [`check`] so `SIM_PROP_SEED` works).
pub fn check_seeded(name: &str, cases: u32, seed: u64, property: impl Fn(&mut Gen) -> CaseResult) {
    let cases = case_count(cases);
    let mut seeder = SplitMix64::new(seed);
    for case in 0..cases {
        let case_seed = seeder.next_u64();
        if let Err(message) = run_case(&property, case_seed, 1.0) {
            // Shrinking-lite: replay the same stream at smaller budgets and
            // keep the smallest one that still fails.
            let mut final_budget = 1.0;
            let mut final_message = message;
            for &budget in &SHRINK_BUDGETS {
                if let Err(m) = run_case(&property, case_seed, budget) {
                    final_budget = budget;
                    final_message = m;
                }
            }
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (case seed {case_seed:#018x}, shrink budget {final_budget}):\n  {final_message}\n\
                 reproduce the run with SIM_PROP_SEED={seed}"
            );
        }
    }
}

fn run_case(
    property: &impl Fn(&mut Gen) -> CaseResult,
    case_seed: u64,
    budget: f64,
) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        property(&mut Gen::with_seed(case_seed, budget))
    }));
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(failure)) => Err(failure.message),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

fn base_seed() -> u64 {
    match std::env::var("SIM_PROP_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("SIM_PROP_SEED must be a u64, got '{v}'")),
        Err(_) => DEFAULT_SEED,
    }
}

fn case_count(default: u32) -> u32 {
    match std::env::var("SIM_PROP_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("SIM_PROP_CASES must be a u32, got '{v}'")),
        Err(_) => default,
    }
}

/// Fails the current property case unless `cond` holds.
///
/// With a single argument the message is the stringified condition;
/// additional arguments are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseFailure::new(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseFailure::new(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::CaseFailure::new(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::CaseFailure::new(format!(
                "assertion failed: {} == {} ({})\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current property case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::prop::CaseFailure::new(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check_seeded("counts", 17, 99, |g| {
            count.set(count.get() + 1);
            let v: u64 = g.any();
            prop_assert_eq!(v, v);
            Ok(())
        });
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_property_reports_seed_and_budget() {
        let result = catch_unwind(|| {
            check_seeded("always_fails", 8, 5, |g| {
                let v: Vec<u8> = g.vec_any(0, 50);
                prop_assert!(v.len() > 1000, "len {}", v.len());
                Ok(())
            });
        });
        let payload = result.unwrap_err();
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
        assert!(msg.contains("shrink budget 0.03"), "{msg}");
    }

    #[test]
    fn panics_inside_properties_are_reported_not_propagated_raw() {
        let result = catch_unwind(|| {
            check_seeded("panics", 3, 5, |_g| {
                let v: Vec<u8> = vec![];
                prop_assert_eq!(v[10], 0); // indexing panic, caught
                Ok(())
            });
        });
        let payload = result.unwrap_err();
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("panicked"), "{msg}");
    }

    #[test]
    fn budget_scales_lengths_toward_minimum() {
        let mut g1 = Gen::with_seed(7, 1.0);
        let mut g2 = Gen::with_seed(7, 0.03);
        let long: Vec<u8> = g1.vec_any(2, 1000);
        let short: Vec<u8> = g2.vec_any(2, 1000);
        assert!(short.len() <= long.len());
        assert!(short.len() >= 2);
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let collect = |seed| {
            let values = std::cell::RefCell::new(Vec::new());
            check_seeded("collect", 5, seed, |g| {
                values.borrow_mut().push(g.any::<u64>());
                Ok(())
            });
            values.into_inner()
        };
        assert_eq!(collect(11), collect(11));
        assert_ne!(collect(11), collect(12));
    }

    #[test]
    fn lowercase_matches_charset() {
        let mut g = Gen::with_seed(3, 1.0);
        for _ in 0..100 {
            let s = g.lowercase(1, 8);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
