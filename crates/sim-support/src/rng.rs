//! Deterministic pseudo-random number generation.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — the classic 64-bit state mixer. Used for seed
//!   expansion and anywhere a tiny, splittable stream is enough.
//! * [`StdRng`] — xoshiro256** seeded from SplitMix64. This is the
//!   workhorse generator; the name deliberately mirrors `rand::rngs::StdRng`
//!   so call sites read identically to the `rand`-based originals.
//!
//! The trait surface ([`Rng`], [`SeedableRng`], [`Standard`],
//! [`SampleUniform`], [`SampleRange`]) is shaped after `rand` 0.8 so the
//! simulation crates could be ported off crates.io with import changes
//! only. Determinism is a hard contract: a fixed seed yields a
//! bit-identical stream on every platform, pinned by known-answer tests at
//! the bottom of this module.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed (mirrors
/// `rand::SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic stream of pseudo-random words with `rand`-shaped
/// convenience samplers.
pub trait Rng {
    /// Returns the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` built from the top 53 bits of
    /// the next word.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value of `T` from its full domain (mirrors `Rng::gen`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`). Mirrors `Rng::gen_range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable from their full domain (the `rand` `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

// `usize`/`isize` are deliberately excluded: their width is
// platform-dependent, so a full-domain draw would truncate differently on
// 32-bit targets and break the bit-identical-stream contract. Use
// `gen_range` (computed in u64/i128 domain) or a fixed-width type instead.
impl_standard_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // Use the high bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`inclusive == false`) or
    /// `[low, high]` (`inclusive == true`).
    fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range {low}..{high}");
                // Lemire-style multiply-shift: uniform up to a bias of
                // span/2^64, negligible for the spans simulation uses, and
                // branch-free so streams stay bit-stable.
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
        if inclusive {
            // [low, high]: map the 53-bit draw onto [0, 1] *inclusive* so
            // both endpoints are reachable; low == high is a valid
            // degenerate range.
            assert!(low <= high, "empty range {low}..={high}");
            let t = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            low + t * (high - low)
        } else {
            assert!(low < high, "empty range {low}..{high}");
            low + rng.next_f64() * (high - low)
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value of `T` uniformly from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// SplitMix64 (Steele, Lea & Flood 2014): one 64-bit state word, a fixed
/// Weyl increment, and an avalanche finisher. Equidistributed over its full
/// 2^64 period and ideal for expanding one seed into many.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 Weyl-sequence increment (the golden-ratio constant).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018), seeded by expanding a 64-bit
/// seed through [`SplitMix64`] — the same construction `rand`'s
/// `SeedableRng::seed_from_u64` uses, so quality is equivalent to the
/// generator it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        StdRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the exact SplitMix64 stream for seed 1234567,
    /// from the reference C implementation (Vigna, `splitmix64.c`).
    #[test]
    fn splitmix64_reference_vectors() {
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(rng.next_u64(), 0x2C73_F084_5854_0FA5);
        assert_eq!(rng.next_u64(), 0x883E_BCE5_A3F2_7C77);
        // Stream restart reproduces identically.
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next_u64(), 0x599E_D017_FB08_FC85);
    }

    /// Bit-stability regression: the first words of the StdRng stream for
    /// two fixed seeds are pinned. If these change, every seeded workload,
    /// Monte Carlo sweep, and synthetic dataset in the workspace changes —
    /// treat any edit here as a breaking change to recorded baselines.
    #[test]
    fn stdrng_stream_is_pinned() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, second);

        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-16..=16);
            assert!((-16..=16).contains(&v));
            let u: usize = rng.gen_range(0..28);
            assert!(u < 28);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let b: u8 = rng.gen_range(0..2u8);
            assert!(b < 2);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 33];
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-16..=16);
            seen[(v + 16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 33 values reachable");
    }

    #[test]
    fn standard_samples_whole_domain_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let bytes: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        assert!(bytes.iter().any(|&b| b > 200) && bytes.iter().any(|&b| b < 50));
        let bools: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
        let w: u64 = rng.gen();
        let w2: u64 = rng.gen();
        assert_ne!(w, w2);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn inclusive_f64_range_honors_both_endpoints() {
        // Degenerate x..=x is valid and returns x exactly.
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(0.25..=0.25), 0.25);
        // Values stay within [low, high] and approach the top endpoint
        // (the half-open sampler caps at high - ulp-scale gap instead).
        let mut max_seen = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            max_seen = max_seen.max(v);
        }
        assert!(max_seen > 0.999);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reversed_inclusive_f64_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(1.0..=0.0);
    }
}
