//! Wall-clock micro-benchmark harness (`criterion` replacement).
//!
//! The API is shaped after `criterion` so bench files port with import
//! changes only: a [`Criterion`] driver, [`BenchmarkId`]s, groups with
//! `bench_with_input`, and a [`Bencher`] whose `iter` closure is the
//! measured body. Measurement is intentionally simple — [`std::time::Instant`]
//! around batches of iterations, auto-calibrated so one sample takes a few
//! milliseconds — which is plenty to catch order-of-magnitude regressions
//! in the simulator hot paths.
//!
//! Every harness run writes `BENCH_<name>.json` (into `SIM_BENCH_DIR`, or
//! the current directory) with per-benchmark iteration counts and
//! nanosecond statistics, so future PRs can diff machine-readable
//! baselines. Set `PLUTO_QUICK=1` (or `SIM_BENCH_QUICK=1`) to shrink
//! sample counts for smoke runs.
//!
//! Wire a bench target up with the [`bench_group!`](crate::bench_group)
//! and [`bench_main!`](crate::bench_main) macros and `harness = false` in
//! the crate manifest.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target wall time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
const SAMPLES_FULL: usize = 30;
const SAMPLES_QUICK: usize = 8;

/// Identifier of one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying only a parameter value (`group/<param>`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter (`group/<name>/<param>`).
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Full benchmark id (`group/param` or bare function name).
    pub id: String,
    /// Iterations per measured sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of measured samples.
    pub samples: usize,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Sample standard deviation of ns/iter.
    pub stddev_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// Slowest sample ns/iter.
    pub max_ns: f64,
}

/// Passed to the measured closure; call [`Bencher::iter`] exactly once.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    result: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Calibrates, then measures `routine` and stores the samples. The
    /// routine's return value is passed through [`std::hint::black_box`]
    /// so the optimizer cannot delete the measured work.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibration: find an iteration count whose sample takes at
        // least SAMPLE_TARGET.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            // Grow geometrically toward the target.
            let grow =
                (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(2.0, 16.0);
            iters = ((iters as f64 * grow) as u64).max(iters + 1);
        }
        let mut ns_per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            ns_per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some((iters, ns_per_iter));
    }
}

/// The harness driver: owns configuration and collected [`Record`]s.
#[derive(Debug)]
pub struct Criterion {
    name: String,
    samples: usize,
    records: Vec<Record>,
    /// Derived summary statistics (percentiles, ratios) keyed by id —
    /// serialized as a separate `"summaries"` JSON object, never as
    /// benchmark rows.
    summaries: Vec<(String, f64)>,
    /// [`Criterion::record_ns`] calls skipped because their sample
    /// vector was empty (a quick-mode run that produced no events must
    /// not abort the whole bench binary).
    skipped: u64,
}

impl Criterion {
    /// Creates a driver named `name` (the JSON baseline becomes
    /// `BENCH_<name>.json`), honoring `PLUTO_QUICK`/`SIM_BENCH_QUICK`.
    pub fn named(name: &str) -> Self {
        let quick = ["PLUTO_QUICK", "SIM_BENCH_QUICK"]
            .iter()
            .any(|k| std::env::var(k).map(|v| v == "1").unwrap_or(false));
        Criterion {
            name: name.to_string(),
            samples: if quick { SAMPLES_QUICK } else { SAMPLES_FULL },
            records: Vec::new(),
            summaries: Vec::new(),
            skipped: 0,
        }
    }

    /// The mean ns/iter of the collected record with the given id. Bench
    /// targets use this for in-process regression guards (e.g. the
    /// word-vs-scalar packing throughput gate in `pluto-bench`'s
    /// `benches/query.rs`).
    ///
    /// # Panics
    /// Panics if no record with that id was collected.
    pub fn mean_ns(&self, id: &str) -> f64 {
        self.records
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no benchmark record named '{id}'"))
            .mean_ns
    }

    /// Opens a named group; benchmarks inside report as `group/<id>`.
    pub fn benchmark_group(&mut self, group: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: group.to_string(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Records an externally measured distribution of per-event durations
    /// in nanoseconds — for latency-style benchmarks (per-query serve
    /// latencies, end-to-end request times) where the caller, not the
    /// harness, drives the measured loop. The resulting [`Record`] treats
    /// each event as one sample: `median_ns` is the distribution's p50
    /// and `max_ns` its worst case. Combine with [`percentile_ns`] for
    /// in-process tail-latency guards.
    ///
    /// An empty sample vector records nothing: the call is counted in
    /// [`Criterion::skipped_records`] and noted on stdout, but does not
    /// abort the run — a quick-mode pass that produced no events of one
    /// class must still write the baseline for the classes that did.
    pub fn record_ns(&mut self, id: &str, samples_ns: Vec<f64>) -> &mut Self {
        if samples_ns.is_empty() {
            println!("skipped  {id:<39} (no samples)");
            self.skipped += 1;
            return self;
        }
        self.push_record(id.to_string(), 1, samples_ns);
        self
    }

    /// Number of [`Criterion::record_ns`] calls skipped for lack of
    /// samples.
    pub fn skipped_records(&self) -> u64 {
        self.skipped
    }

    /// Records a derived summary statistic — a percentile computed with
    /// [`percentile_ns`], a ratio, a worst case — under `id`. Summaries
    /// land in the baseline's `"summaries"` JSON object, not in
    /// `"results"`: a p50/p99 is a property of one measured
    /// distribution, and emitting it as a one-sample benchmark row would
    /// give it a fake `samples: 1, stddev: 0` shape that regression
    /// tooling can't distinguish from a real (degenerate) benchmark.
    pub fn summary_ns(&mut self, id: &str, value_ns: f64) -> &mut Self {
        println!("summary {:<39} {:>12.1} ns", id, value_ns);
        self.summaries.push((id.to_string(), value_ns));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        let (iters, samples) = bencher
            .result
            .unwrap_or_else(|| panic!("benchmark '{id}' never called Bencher::iter"));
        self.push_record(id, iters, samples);
    }

    fn push_record(&mut self, id: String, iters: u64, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        // Sample (Bessel-corrected) variance, as documented on `Record`.
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let record = Record {
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            iters_per_sample: iters,
            samples: samples.len(),
            id,
        };
        println!(
            "bench {:<40} {:>12.1} ns/iter (median {:.1}, σ {:.1}, {} iters × {} samples)",
            record.id,
            record.mean_ns,
            record.median_ns,
            record.stddev_ns,
            record.iters_per_sample,
            record.samples
        );
        self.records.push(record);
    }

    /// Writes the `BENCH_<name>.json` baseline and prints its path.
    ///
    /// # Panics
    /// Panics if the baseline file cannot be written.
    pub fn finalize(&mut self) {
        let dir = std::env::var("SIM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{}.json", self.name);
        let json = self.to_json();
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} benchmarks)", self.records.len());
    }

    /// Serializes the collected records (hand-rolled; no serde offline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"harness\": \"sim-support\",\n  \"name\": {},\n  \"samples_per_benchmark\": {},\n  \"results\": [",
            json_string(&self.name),
            self.samples
        );
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"id\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \"stddev_ns\": {:.3}, \
                 \"min_ns\": {:.3}, \"max_ns\": {:.3}}}",
                if i == 0 { "" } else { "," },
                json_string(&r.id),
                r.iters_per_sample,
                r.samples,
                r.mean_ns,
                r.median_ns,
                r.stddev_ns,
                r.min_ns,
                r.max_ns
            );
        }
        out.push_str("\n  ],\n  \"summaries\": {");
        for (i, (id, value)) in self.summaries.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {:.3}",
                if i == 0 { "" } else { "," },
                json_string(id),
                value
            );
        }
        if self.summaries.is_empty() {
            out.push('}');
        } else {
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

/// A group of related benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one `input`, reporting as `group/<id>`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id.0);
        self.criterion.run(full, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input, reporting as `group/<id>`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{id}", self.group);
        self.criterion.run(full, f);
        self
    }

    /// Ends the group (kept for criterion API parity; groups hold no
    /// deferred state).
    pub fn finish(self) {}
}

/// Nearest-rank percentile of a duration distribution: `pct` in 0–100,
/// e.g. `percentile_ns(&lat, 99.0)` for p99. Used by bench targets for
/// in-process tail-latency guards next to [`Criterion::record_ns`].
///
/// Boundary contract: `p0` is the minimum, `p100` the maximum, and any
/// percentile of a single-sample distribution is that sample. The rank
/// multiplies before dividing — `pct / 100.0` first would round
/// `p70` of 10 samples up to the 8th (0.7 × 10 = 7.000000000000001).
///
/// # Panics
/// Panics if `samples` is empty.
pub fn percentile_ns(samples: &[f64], pct: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty distribution");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let rank = (pct * sorted.len() as f64 / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Defines a bench group function `fn $name(c: &mut Criterion)` calling
/// each listed benchmark function in order (mirrors `criterion_group!`).
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $($func(c);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target: runs each group
/// and writes the JSON baseline (mirrors `criterion_main!`).
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::named(env!("CARGO_CRATE_NAME"));
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_json_is_parseable_shape() {
        let mut c = Criterion::named("selftest");
        c.samples = 3;
        let mut acc = 0u64;
        c.bench_function("tiny_add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[1].id, "grp/7");
        assert!(c.records.iter().all(|r| r.mean_ns >= 0.0 && r.samples == 3));
        let json = c.to_json();
        assert!(json.contains("\"grp/7\""));
        assert!(json.contains("\"mean_ns\""));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn missing_iter_is_an_error() {
        let mut c = Criterion::named("selftest2");
        c.samples = 2;
        c.bench_function("forgot", |_b| {});
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn summaries_serialize_as_an_object_not_benchmark_rows() {
        let mut c = Criterion::named("selftest4");
        c.record_ns("lat", vec![10.0, 20.0, 30.0]);
        c.summary_ns("lat_p99", percentile_ns(&[10.0, 20.0, 30.0], 99.0));
        let json = c.to_json();
        assert!(json.contains("\"summaries\": {"));
        assert!(json.contains("\"lat_p99\": 30.000"));
        // The summary must NOT appear as a results row.
        assert!(!json.contains("{\"id\": \"lat_p99\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(c.records.len(), 1);
    }

    #[test]
    fn record_ns_treats_events_as_samples() {
        let mut c = Criterion::named("selftest3");
        c.record_ns("lat", vec![30.0, 10.0, 20.0]);
        let r = c.records.last().unwrap();
        assert_eq!(r.iters_per_sample, 1);
        assert_eq!(r.samples, 3);
        assert_eq!(r.median_ns, 20.0);
        assert_eq!(r.min_ns, 10.0);
        assert_eq!(r.max_ns, 30.0);
        assert!((c.mean_ns("lat") - 20.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ns(&v, 50.0), 50.0);
        assert_eq!(percentile_ns(&v, 99.0), 99.0);
        assert_eq!(percentile_ns(&v, 100.0), 100.0);
        assert_eq!(percentile_ns(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_boundaries() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        // p0 clamps to the minimum; p100 is the maximum.
        assert_eq!(percentile_ns(&v, 0.0), 1.0);
        assert_eq!(percentile_ns(&v, 100.0), 100.0);
        // Every percentile of a single sample is that sample.
        for pct in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_ns(&[7.5], pct), 7.5);
        }
        // Regression: pct/100 first rounds 0.7 * 10 up to rank 8
        // (7.000000000000001); nearest-rank p70 of 10 is the 7th value.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile_ns(&ten, 70.0), 7.0);
    }

    #[test]
    fn record_ns_skips_empty_distributions() {
        let mut c = Criterion::named("selftest4");
        c.record_ns("empty", Vec::new());
        assert_eq!(c.skipped_records(), 1);
        assert!(c.records.is_empty(), "an empty record must not be pushed");
        // Later non-empty records still work.
        c.record_ns("lat", vec![1.0, 2.0]);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.skipped_records(), 1);
    }
}
