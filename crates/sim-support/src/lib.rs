//! # sim-support — the workspace's in-repo determinism layer
//!
//! This workspace builds **offline**: no crates.io dependency may appear
//! anywhere in the dependency graph. `sim-support` replaces the three
//! external crates the reproduction would otherwise need:
//!
//! * [`rng`] — deterministic pseudo-random number generation (SplitMix64
//!   and xoshiro256**) behind `Rng`/`SeedableRng`-shaped traits, replacing
//!   `rand`. Fixed seeds produce bit-identical streams on every platform
//!   and every run; a known-answer test pins the exact output words.
//! * [`prop`] — a seeded property-testing harness with shrinking-lite
//!   (budget-scaled case regeneration), replacing `proptest`.
//! * [`mod@bench`] — a wall-clock micro-benchmark harness built on
//!   [`std::time::Instant`], replacing `criterion`. Each harness run emits
//!   a machine-readable `BENCH_<name>.json` baseline.
//!
//! All three modules are `std`-only. Nothing here aims at cryptographic
//! quality or statistical rigor beyond what deterministic simulation and
//! regression testing require.

#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{Rng, SeedableRng, SplitMix64, StdRng};
